"""Deterministic churn schedules — every decision a pure function of (seed, epoch).

A :class:`ChurnSchedule` describes how a generated graph evolves: Poisson
node arrivals that attach preferentially with ``attach_x`` edges, per-node
departures, Poisson edge deletions, and degree-proportional rewiring.  Every
decision is drawn from :meth:`repro.rng.StreamFactory.counter_substream`
keys, so a schedule is

* a **pure function of (seed, epoch)** — no draw depends on what was drawn
  before, on the engine, or on how arrivals are sliced across ranks;
* **replayable at any rank count** — rank ``r`` computing arrivals
  ``[lo, hi)`` evaluates exactly the counter slots a sequential run would,
  which is what makes ``evolve()`` bit-identical across engines
  (asserted by ``tests/dyngraph/test_evolve.py``).

The decision streams live in their own namespace (:data:`_NS`), disjoint
from the generators' spaces (the copy model uses ``(rank, purpose)`` keys,
commfree uses namespace 23), so evolving a graph never perturbs how it was
generated.

Within one epoch the phases apply in a fixed order — arrivals, departures,
edge deletions, rewires — and arrivals attach to the **epoch-start**
endpoint pool (each live edge contributes both endpoints, so a node's
multiplicity in the pool *is* its degree).  Freezing the pool for the epoch
is what makes per-arrival target computation embarrassingly parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.rng.streams import CounterStream, StreamFactory

__all__ = ["ChurnSchedule", "EpochDelta"]

#: dyngraph decision-stream namespace.  Substream keys are
#: ``(_NS, purpose, epoch)``; commfree owns namespace 23, the schedule
#: fuzzer draws from the event-driven retry space — this constant keeps the
#: churn decisions out of everyone else's key space.
_NS = 31

# purposes within the namespace
_COUNTS = 0  #: per-epoch Poisson counts — slot=epoch, draw=kind
_DEPART = 1  #: per-epoch departures — slot=node id
_ATTACH = 2  #: arrival attachment — slot=arrival*x+k, draw=attempt
_DELETE = 3  #: edge-deletion scores — slot=live-edge position
_REWIRE = 4  #: rewires — slot=rewire index, draw=attempt*3+field
_FAULT = 5  #: departure-coupled fault plans — slot=field


def _poisson_from_uniform(u: float, lam: float, cap: int) -> int:
    """Inverse-CDF Poisson sample from one uniform (deterministic)."""
    if lam <= 0.0:
        return 0
    p = math.exp(-lam)
    cdf = p
    k = 0
    while u >= cdf and k < cap:
        k += 1
        p *= lam / k
        cdf += p
    return k


@dataclass(frozen=True)
class EpochDelta:
    """Exact record of what one epoch changed.

    ``added``/``removed`` list edge endpoint arrays in application order;
    an edge rewired within the epoch appears in both (old orientation
    removed, new orientation added).  The delta is what
    :mod:`repro.dyngraph.incremental` folds into warm-started analyses, so
    it is exact by construction — not a sampled approximation.
    """

    epoch: int
    born: np.ndarray  #: node ids that arrived this epoch
    departed: np.ndarray  #: node ids that departed this epoch
    added_u: np.ndarray
    added_v: np.ndarray
    removed_u: np.ndarray
    removed_v: np.ndarray
    rewires: int = 0  #: rewires applied (their edges are in added+removed)

    @property
    def edges_added(self) -> int:
        return len(self.added_u)

    @property
    def edges_removed(self) -> int:
        return len(self.removed_u)

    def summary(self) -> dict[str, int]:
        return {
            "epoch": int(self.epoch),
            "born": len(self.born),
            "departed": len(self.departed),
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "rewires": int(self.rewires),
        }


@dataclass(frozen=True)
class ChurnSchedule:
    """A seeded, deterministic description of network churn.

    Parameters
    ----------
    seed:
        Root seed of the decision streams.  Two schedules with equal
        parameters are interchangeable objects: the draws depend only on
        the field values, never on object identity.
    epochs:
        Default epoch count for drivers that don't override it.
    arrival_rate:
        Mean Poisson node arrivals per epoch.
    attach_x:
        Edges each arriving node attaches (preferentially, to the
        epoch-start endpoint pool); distinct targets per arrival.
    departure_prob:
        Per-node, per-epoch departure probability.  A departing node takes
        all its incident edges with it.
    deletion_rate:
        Mean Poisson count of live edges deleted per epoch (uniformly,
        by position score).
    rewire_rate:
        Mean Poisson count of rewires per epoch: a uniform live edge has
        one endpoint replaced by a degree-proportional draw from the
        current endpoint pool.
    max_attempts:
        Retry bound for rejection sampling (duplicate arrival targets,
        self-loop rewires).  Slots that exhaust it are dropped — which
        only happens when the pool has fewer distinct endpoints than
        requested targets, and happens identically on every engine.

    Examples
    --------
    >>> s = ChurnSchedule(seed=7, arrival_rate=4.0)
    >>> s.counts(0) == ChurnSchedule(seed=7, arrival_rate=4.0).counts(0)
    True
    """

    seed: int
    epochs: int = 10
    arrival_rate: float = 8.0
    attach_x: int = 2
    departure_prob: float = 0.02
    deletion_rate: float = 2.0
    rewire_rate: float = 2.0
    max_attempts: int = 64

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.arrival_rate < 0 or self.deletion_rate < 0 or self.rewire_rate < 0:
            raise ValueError("rates must be non-negative")
        if self.attach_x < 0:
            raise ValueError(f"attach_x must be >= 0, got {self.attach_x}")
        if not 0.0 <= self.departure_prob < 1.0:
            raise ValueError(
                f"departure_prob must be in [0, 1), got {self.departure_prob}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    # -- decision streams --------------------------------------------------

    def _stream(self, purpose: int, *rest: int) -> CounterStream:
        return StreamFactory(self.seed).counter_substream(_NS, purpose, *rest)

    def counts(self, epoch: int) -> tuple[int, int, int]:
        """(arrivals, deletions, rewires) Poisson counts for ``epoch``."""
        u = self._stream(_COUNTS, 0).uniforms(epoch, draw=np.arange(3))
        cap = int(10 * max(self.arrival_rate, self.deletion_rate,
                           self.rewire_rate) + 100)
        return (
            _poisson_from_uniform(float(u[0]), self.arrival_rate, cap),
            _poisson_from_uniform(float(u[1]), self.deletion_rate, cap),
            _poisson_from_uniform(float(u[2]), self.rewire_rate, cap),
        )

    def departure_mask(self, epoch: int, alive: np.ndarray) -> np.ndarray:
        """Boolean mask over node ids: which alive nodes depart this epoch."""
        n = len(alive)
        if n == 0 or self.departure_prob == 0.0:
            return np.zeros(n, dtype=bool)
        u = self._stream(_DEPART, epoch).uniforms(np.arange(n, dtype=np.int64))
        return alive & (u < self.departure_prob)

    def arrival_targets(
        self, epoch: int, pool: np.ndarray, lo: int, hi: int
    ) -> np.ndarray:
        """Attachment targets for arrivals ``[lo, hi)`` of ``epoch``.

        Returns an ``(hi - lo, attach_x)`` int64 matrix; entry ``[j, k]`` is
        the k-th target of arrival ``lo + j`` (``-1`` = dropped, only when
        the pool cannot supply ``attach_x`` distinct endpoints).  A pure
        function of ``(seed, epoch, pool, arrival index)`` — slicing the
        arrival range across ranks changes nothing, which is the whole
        cross-engine bit-identity argument.
        """
        count = hi - lo
        x = self.attach_x
        targets = np.full((max(count, 0), x), -1, dtype=np.int64)
        m = len(pool)
        if count <= 0 or x == 0 or m == 0:
            return targets
        cs = self._stream(_ATTACH, epoch)
        base_slots = np.arange(lo, hi, dtype=np.int64) * x
        for k in range(x):
            slots = base_slots + k
            unresolved = np.arange(count, dtype=np.int64)
            for attempt in range(self.max_attempts):
                if not len(unresolved):
                    break
                u = cs.uniforms(slots[unresolved], draw=attempt)
                cand = pool[(u * m).astype(np.int64)]
                dup = np.zeros(len(unresolved), dtype=bool)
                for j in range(k):
                    dup |= targets[unresolved, j] == cand
                ok = ~dup
                targets[unresolved[ok], k] = cand[ok]
                unresolved = unresolved[dup]
        return targets

    def deletion_scores(self, epoch: int, m: int) -> np.ndarray:
        """Per-live-edge-position scores; the k smallest positions die."""
        return self._stream(_DELETE, epoch).uniforms(np.arange(m, dtype=np.int64))

    def rewire_draws(self, epoch: int, index: int, attempt: int) -> np.ndarray:
        """Three uniforms for rewire ``index``: (edge pick, side, endpoint)."""
        return self._stream(_REWIRE, epoch).uniforms(
            index, draw=attempt * 3 + np.arange(3)
        )

    # -- departure-coupled faults -----------------------------------------

    def fault_plan(self, epoch: int, ranks: int, supersteps: int = 4) -> Any:
        """A deterministic :class:`~repro.mpsim.faults.FaultPlan` for ``epoch``.

        Expresses the epoch's departures through the fault machinery: one
        rank crash at a superstep derived from the epoch's decision stream.
        Run under a supervisor (``evolve(..., checkpoint_dir=...)``) the
        crash is recovered and the evolution stays bit-identical to a
        fault-free one — the property ``tests/dyngraph/test_evolve.py``
        asserts.
        """
        from repro.mpsim.faults import FaultPlan

        if ranks < 2:
            return None
        u = self._stream(_FAULT, epoch).uniforms(np.arange(2))
        rank = int(u[0] * ranks)
        step = 1 + int(u[1] * max(supersteps - 1, 1))
        return FaultPlan().crash(rank, at_superstep=step)
