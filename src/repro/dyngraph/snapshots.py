"""Temporal snapshots: sealed checkpoint generations + an epoch manifest.

A :class:`SnapshotStore` persists an evolving network's history as one
sha256-sealed file per saved epoch — the same tamper-evident envelope the
checkpoint subsystem uses (:func:`repro.mpsim.checkpoint.save_sealed`),
under the dyngraph magic — plus a small JSON ``manifest.json`` indexing the
generations (epoch, sizes, churn counts, edge digest).  The manifest is
rewritten atomically (write-then-rename), so a reader never observes a
half-written index, and every payload is checksum-verified on load, so a
truncated or corrupted generation fails loudly instead of silently
analysing garbage.

Snapshots are self-contained: each stores the full state (``n``,
``alive``, live edges) plus the :class:`~repro.dyngraph.schedule.EpochDelta`
that produced it, which is exactly what
:mod:`repro.dyngraph.incremental` needs to keep analyses warm offline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.dyngraph.schedule import EpochDelta
from repro.mpsim.checkpoint import load_sealed, save_sealed

__all__ = ["Snapshot", "SnapshotStore", "SNAPSHOT_MAGIC"]

#: envelope magic for dyngraph temporal snapshots (the checkpoint subsystem
#: uses its own magics; sharing the sealing code, not the namespace)
SNAPSHOT_MAGIC = "repro-dyngraph-snapshot"
_SCHEMA = 1


@dataclass(frozen=True)
class Snapshot:
    """One sealed temporal generation, loaded and checksum-verified."""

    epoch: int  #: churn epochs applied when this state was captured
    n: int  #: total node ids ever allocated
    alive: np.ndarray
    u: np.ndarray
    v: np.ndarray
    #: the delta that produced this state (``None`` for the initial state)
    delta: EpochDelta | None
    digest: str  #: streaming sha256 of the edge content

    @property
    def num_alive(self) -> int:
        return int(self.alive.sum())

    @property
    def num_edges(self) -> int:
        return len(self.u)

    def state(self):
        """Reconstruct a mutable :class:`~repro.dyngraph.evolve.EvolvingState`."""
        from repro.dyngraph.evolve import EvolvingState

        return EvolvingState(
            n=self.n, alive=self.alive.copy(), u=self.u.copy(),
            v=self.v.copy(), epoch=self.epoch,
        )

    def graph(self, ranks: int = 1, scheme: str = "rrp"):
        """Materialise the snapshot as a :class:`DistributedGraph`."""
        from repro.core.partitioning import make_partition
        from repro.distgraph.storage import DistributedGraph
        from repro.graph.edgelist import EdgeList

        part = make_partition(scheme, self.n, ranks)
        return DistributedGraph.from_edgelist(
            EdgeList.from_arrays(self.u, self.v, copy=False), part
        )


class SnapshotStore:
    """Sealed temporal snapshots under one directory, indexed by a manifest."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def _generation_path(self, epoch: int) -> Path:
        return self.directory / f"epoch{epoch:06d}.snap"

    # -- writing -----------------------------------------------------------

    def save(self, state: Any, delta: EpochDelta | None = None) -> Path:
        """Seal ``state`` (plus the delta that produced it) as one generation."""
        digest = state.digest()
        payload = {
            "schema": _SCHEMA,
            "epoch": int(state.epoch),
            "n": int(state.n),
            "alive": np.asarray(state.alive, dtype=bool),
            "u": np.asarray(state.u, dtype=np.int64),
            "v": np.asarray(state.v, dtype=np.int64),
            "delta": delta,
            "digest": digest,
        }
        path = self._generation_path(state.epoch)
        save_sealed(path, SNAPSHOT_MAGIC, payload)
        entry = {
            "epoch": int(state.epoch),
            "file": path.name,
            "n": int(state.n),
            "alive": int(state.alive.sum()),
            "edges": int(len(state.u)),
            "digest": digest,
        }
        if delta is not None:
            entry.update(
                born=len(delta.born),
                departed=len(delta.departed),
                edges_added=delta.edges_added,
                edges_removed=delta.edges_removed,
                rewires=int(delta.rewires),
            )
        self._update_manifest(entry)
        return path

    def _update_manifest(self, entry: dict) -> None:
        manifest = self.manifest()
        entries = [e for e in manifest["entries"] if e["epoch"] != entry["epoch"]]
        entries.append(entry)
        entries.sort(key=lambda e: e["epoch"])
        manifest["entries"] = entries
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            json.dump(manifest, fh, indent=1)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)

    # -- reading -----------------------------------------------------------

    def manifest(self) -> dict:
        if not self.manifest_path.exists():
            return {"schema": _SCHEMA, "entries": []}
        with open(self.manifest_path) as fh:
            return json.load(fh)

    def epochs(self) -> list[int]:
        return [int(e["epoch"]) for e in self.manifest()["entries"]]

    def load(self, epoch: int) -> Snapshot:
        """Load and checksum-verify one generation."""
        payload = load_sealed(
            self._generation_path(epoch), SNAPSHOT_MAGIC, "dyngraph snapshot"
        )
        if payload["schema"] != _SCHEMA:
            raise ValueError(
                f"snapshot schema {payload['schema']} != {_SCHEMA}"
            )
        return Snapshot(
            epoch=int(payload["epoch"]),
            n=int(payload["n"]),
            alive=payload["alive"],
            u=payload["u"],
            v=payload["v"],
            delta=payload["delta"],
            digest=payload["digest"],
        )

    def __iter__(self):
        for epoch in self.epochs():
            yield self.load(epoch)

    def summary_lines(self) -> list[str]:
        """Human-readable per-generation summary (the CLI inspect view)."""
        lines = []
        for e in self.manifest()["entries"]:
            churn = ""
            if "born" in e:
                churn = (
                    f"  +{e['born']} born -{e['departed']} departed"
                    f"  +{e['edges_added']}/-{e['edges_removed']} edges"
                    f"  {e['rewires']} rewired"
                )
            lines.append(
                f"epoch {e['epoch']:4d}  n={e['n']}  alive={e['alive']}"
                f"  m={e['edges']}{churn}  digest={e['digest'][:12]}"
            )
        return lines
