"""Incremental recomputation between temporal snapshots.

Rebuilding every analysis from scratch after each epoch wastes exactly the
work churn did *not* touch.  This module keeps three distgraph analyses
warm across epochs, each with a different — and exact — freshness story:

**Degrees / degree histogram** — folded exactly: the epoch delta lists
every added and removed edge, so ``degrees += bincount(added) -
bincount(removed)`` reproduces the from-scratch degree array bit for bit.
No kernel runs at all.

**Connected components** — warm-started
:func:`~repro.distgraph.components.distributed_components`: labels of
components untouched by the delta are seeded from the previous epoch (they
are already final), while every previous component containing a *dirty*
node (an endpoint of a removed edge, or a departed node) is reset to
self-labels.  Seeding is sound — every seed label is the id of a node in
the same current component (removals only ever split previous components,
and a split component is fully reset; additions only merge) — and complete
— the current minimum id always reappears as its own seed — so hash-min
propagation converges to **exactly** the from-scratch labels, just in
fewer rounds.

**PageRank** — warm-started
:func:`~repro.distgraph.pagerank.distributed_pagerank`: the previous
vector (extended with ``1/n`` mass for arrivals, renormalised) seeds the
power iteration, which then runs to the same ``tol`` as a cold run.  Power
iteration is a contraction with factor ``d``, so any run stopped at
L1-step ``< tol`` is within ``d/(1-d) * tol`` of the unique fixed point —
warm and cold results agree to that ball (``tol=1e-12`` ⇒ agreement well
under the 1e-9 the tests assert), and the warm start pays for itself by
entering the ball in far fewer iterations (the ``dyngraph_incremental``
bench case measures the speedup).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.partitioning import make_partition
from repro.distgraph.components import distributed_components
from repro.distgraph.pagerank import distributed_pagerank
from repro.distgraph.storage import DistributedGraph
from repro.dyngraph.schedule import EpochDelta
from repro.graph.edgelist import EdgeList

__all__ = [
    "incremental_degrees",
    "warm_start_labels",
    "warm_start_pagerank",
    "IncrementalAnalyzer",
]


def incremental_degrees(
    prev_degrees: np.ndarray, delta: EpochDelta, n: int
) -> np.ndarray:
    """Exact degree array after ``delta`` (no kernel run, pure folding)."""
    deg = np.zeros(n, dtype=np.int64)
    deg[: len(prev_degrees)] = prev_degrees
    if len(delta.added_u):
        ends = np.concatenate([delta.added_u, delta.added_v])
        deg += np.bincount(ends, minlength=n).astype(np.int64)
    if len(delta.removed_u):
        ends = np.concatenate([delta.removed_u, delta.removed_v])
        deg -= np.bincount(ends, minlength=n).astype(np.int64)
    return deg


def degree_histogram(degrees: np.ndarray) -> np.ndarray:
    """Histogram in :func:`distributed_degree_histogram`'s default shape."""
    return np.bincount(degrees).astype(np.int64)


def warm_start_labels(
    prev_labels: np.ndarray, delta: EpochDelta, n: int
) -> np.ndarray:
    """Seed labels for a warm (and still exact) components run.

    Nodes of previous components untouched by removals keep their previous
    label; every previous component containing a dirty node is reset to
    self-labels; new nodes label themselves.
    """
    n_prev = len(prev_labels)
    labels0 = np.arange(n, dtype=np.int64)
    labels0[:n_prev] = prev_labels
    dirty = np.concatenate([delta.removed_u, delta.removed_v, delta.departed])
    dirty = dirty[dirty < n_prev]
    if len(dirty):
        dirty_components = np.unique(prev_labels[dirty])
        reset = np.flatnonzero(np.isin(prev_labels, dirty_components))
        labels0[reset] = reset
    return labels0


def warm_start_pagerank(prev_pr: np.ndarray, n: int) -> np.ndarray:
    """Seed vector for a warm pagerank run: extend with 1/n, renormalise."""
    x0 = np.full(n, 1.0 / n, dtype=np.float64)
    x0[: len(prev_pr)] = prev_pr
    total = x0.sum()
    if total > 0:
        x0 /= total
    return x0


class IncrementalAnalyzer:
    """Keep degree/components/pagerank warm across an evolution.

    Feed it the initial state, then one ``(state, delta)`` pair per epoch
    (or per snapshot); after every :meth:`advance` the attributes
    ``degrees``, ``labels``, and ``pagerank`` hold results equal to a
    from-scratch recomputation — bit-identical for degrees and labels,
    within the contraction ball (``<< 1e-9`` at the default ``tol``) for
    pagerank.  :meth:`verify` recomputes all three cold and asserts it.
    """

    def __init__(
        self,
        state: Any,
        *,
        ranks: int = 1,
        scheme: str = "rrp",
        damping: float = 0.85,
        tol: float = 1e-12,
        max_iterations: int = 500,
        cost_model: Any = None,
    ) -> None:
        self.ranks = ranks
        self.scheme = scheme
        self.damping = damping
        self.tol = tol
        self.max_iterations = max_iterations
        self.cost_model = cost_model
        self.degrees = state.degrees()
        g = self.graph(state)
        self.labels, _ = distributed_components(g, cost_model=cost_model)
        self.pagerank, _ = distributed_pagerank(
            g, damping=damping, iterations=max_iterations, tol=tol,
            cost_model=cost_model,
        )

    def graph(self, state: Any) -> DistributedGraph:
        part = make_partition(self.scheme, state.n, self.ranks)
        return DistributedGraph.from_edgelist(
            EdgeList.from_arrays(state.u, state.v, copy=False), part
        )

    def advance(self, state: Any, delta: EpochDelta) -> dict[str, np.ndarray]:
        """Fold one epoch: exact degrees, warm components, warm pagerank."""
        self.degrees = incremental_degrees(self.degrees, delta, state.n)
        g = self.graph(state)
        labels0 = warm_start_labels(self.labels, delta, state.n)
        self.labels, _ = distributed_components(
            g, cost_model=self.cost_model, labels0=labels0
        )
        x0 = warm_start_pagerank(self.pagerank, state.n)
        self.pagerank, _ = distributed_pagerank(
            g, damping=self.damping, iterations=self.max_iterations,
            tol=self.tol, x0=x0, cost_model=self.cost_model,
        )
        return {
            "degrees": self.degrees,
            "labels": self.labels,
            "pagerank": self.pagerank,
        }

    def verify(self, state: Any, atol: float = 1e-9) -> dict[str, float]:
        """Recompute everything cold; assert the warm results match.

        Returns the observed deviations (degree/label mismatches are
        required to be exactly zero; pagerank within ``atol`` in L-inf).
        """
        from repro.distgraph.degree import distributed_degree_histogram

        g = self.graph(state)
        cold_hist, _ = distributed_degree_histogram(g, cost_model=self.cost_model)
        warm_hist = degree_histogram(self.degrees)
        if not np.array_equal(warm_hist, cold_hist):
            raise AssertionError(
                f"epoch {state.epoch}: incremental degree histogram diverged"
            )
        cold_labels, _ = distributed_components(g, cost_model=self.cost_model)
        label_diff = int((cold_labels != self.labels).sum())
        if label_diff:
            raise AssertionError(
                f"epoch {state.epoch}: {label_diff} warm component labels "
                "differ from scratch"
            )
        cold_pr, _ = distributed_pagerank(
            g, damping=self.damping, iterations=self.max_iterations,
            tol=self.tol, cost_model=self.cost_model,
        )
        pr_dev = float(np.abs(cold_pr - self.pagerank).max())
        if pr_dev > atol:
            raise AssertionError(
                f"epoch {state.epoch}: warm pagerank deviates {pr_dev:.3e} "
                f"> {atol:.0e} from scratch"
            )
        return {"pagerank_linf": pr_dev, "label_mismatches": 0.0}
