"""Apply a :class:`~repro.dyngraph.schedule.ChurnSchedule` to a graph.

:func:`evolve` is the driver: it takes a generated edge list, applies
``epochs`` churn epochs, and returns the evolved state plus the exact
per-epoch deltas.  The only data-parallel work in an epoch is computing the
arrival attachment targets, and because each target is a pure function of
``(seed, epoch, arrival index)`` (see :mod:`repro.dyngraph.schedule`), the
three engines differ *only* in where that computation runs:

``"sequential"``
    one call in the driver process;
``"bsp"``
    the arrival range is sliced contiguously across simulated ranks; each
    rank program computes its slice in chunks across supersteps (so crash
    injection and checkpoint cuts have somewhere to land) and reports
    per-chunk progress to rank 0;
``"mp"``
    the same rank programs in real forked worker processes
    (:class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine`), where an
    injected crash is a real ``SIGKILL``.

Assembling slice results in rank order reproduces the sequential arrival
order, so **evolution output is bit-identical across engines and rank
counts** — with or without a crash-recovered epoch, since the supervised
recovery machinery (:mod:`repro.mpsim.supervisor`) restores or replays
deterministic programs.  The test-suite asserts both properties.

Departures can additionally be *expressed through* the existing
:class:`~repro.mpsim.faults.FaultPlan` machinery
(``departure_faults=True``): each epoch with departures derives a
deterministic rank-crash plan from the schedule's decision stream and runs
its arrival computation under it, so every such epoch exercises a real
crash + recovery while the evolved graph stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.dyngraph.schedule import ChurnSchedule, EpochDelta
from repro.graph.edgelist import EdgeList
from repro.telemetry.collector import resolve

__all__ = ["EvolvingState", "EvolutionResult", "evolve"]


@dataclass
class EvolvingState:
    """The mutable state of an evolving network.

    Node ids are never reused: ``n`` counts every id ever allocated and
    ``alive`` marks which are present.  ``u``/``v`` hold the live edges in
    application order — a deterministic order, which is what makes the
    position-keyed deletion scores replayable.
    """

    n: int  #: total node ids ever allocated (departed ids stay allocated)
    alive: np.ndarray  #: bool[n]
    u: np.ndarray  #: live edge sources, application order
    v: np.ndarray  #: live edge targets, application order
    epoch: int = 0  #: churn epochs applied so far

    @classmethod
    def from_edges(cls, edges: Any, n: int) -> "EvolvingState":
        u = np.asarray(edges.sources, dtype=np.int64).copy()
        v = np.asarray(edges.targets, dtype=np.int64).copy()
        if len(u) and max(int(u.max()), int(v.max())) >= n:
            raise ValueError("edge endpoints exceed n")
        return cls(n=int(n), alive=np.ones(int(n), dtype=bool), u=u, v=v)

    @property
    def num_edges(self) -> int:
        return len(self.u)

    @property
    def num_alive(self) -> int:
        return int(self.alive.sum())

    def edgelist(self) -> EdgeList:
        return EdgeList.from_arrays(self.u, self.v, copy=False)

    def degrees(self) -> np.ndarray:
        """Exact degree of every allocated id (0 for departed/isolated)."""
        if not len(self.u):
            return np.zeros(self.n, dtype=np.int64)
        return np.bincount(
            np.concatenate([self.u, self.v]), minlength=self.n
        ).astype(np.int64)

    def digest(self) -> str:
        """Streaming sha256 of the live edge content (bit-identity probe)."""
        from repro.core.spill import edges_digest

        return edges_digest(self.edgelist())

    def copy(self) -> "EvolvingState":
        return EvolvingState(
            n=self.n, alive=self.alive.copy(), u=self.u.copy(),
            v=self.v.copy(), epoch=self.epoch,
        )


@dataclass
class EvolutionResult:
    """Everything an evolution produced."""

    state: EvolvingState
    schedule: ChurnSchedule
    engine: str
    ranks: int
    epochs: int
    deltas: list[EpochDelta]
    #: attached :class:`~repro.dyngraph.snapshots.SnapshotStore` when
    #: ``snapshot_dir`` was given
    snapshots: Any = None
    #: supervised crash-recovery events across all epochs
    recoveries: list = field(default_factory=list)

    @property
    def edges(self) -> EdgeList:
        return self.state.edgelist()

    def summary(self) -> list[dict[str, int]]:
        return [d.summary() for d in self.deltas]


def _epoch_pool(state: EvolvingState) -> np.ndarray:
    """The attachment pool frozen at epoch start.

    Each live edge contributes both endpoints, so a node's multiplicity is
    its degree — sampling a uniform pool index *is* preferential
    attachment.  When no edges are live the pool degenerates to the alive
    node ids (uniform attachment), and when nothing is alive it is empty
    (arrivals attach nothing).
    """
    if len(state.u):
        return np.concatenate([state.u, state.v])
    return np.flatnonzero(state.alive).astype(np.int64)


def _arrival_slices(count: int, ranks: int) -> list[tuple[int, int]]:
    """Contiguous near-even split of ``[0, count)`` across ``ranks``."""
    sizes = np.full(ranks, count // ranks, dtype=np.int64)
    sizes[: count % ranks] += 1
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    return [(int(bounds[r]), int(bounds[r + 1])) for r in range(ranks)]


class _ArrivalProgram:
    """BSP rank program computing one contiguous slice of arrival targets.

    Processes ``chunk`` arrivals per superstep and sends a tiny progress
    row to rank 0 each chunk — observational traffic that gives crash
    injection and checkpoint cuts superstep boundaries to land on.  State
    (two counter-stream keys, the frozen pool, completed chunks) is
    picklable, so both the in-process checkpointer and the mp backend's
    cross-process shards can snapshot and resume it mid-epoch.
    """

    def __init__(
        self,
        rank: int,
        schedule: ChurnSchedule,
        epoch: int,
        pool: np.ndarray,
        lo: int,
        hi: int,
        chunk: int,
    ) -> None:
        self.rank = rank
        self.schedule = schedule
        self.epoch = epoch
        self.pool = pool
        self.lo = lo
        self.hi = hi
        self.pos = lo
        self.chunk = max(int(chunk), 1)
        self.parts: list[np.ndarray] = []
        self.acked = 0  # rank 0: arrivals other ranks reported complete

    @property
    def done(self) -> bool:
        return self.pos >= self.hi

    def step(self, ctx, inbox):
        for _src, arr in inbox:  # progress rows: observational only
            self.acked += int(np.asarray(arr).reshape(-1, 2)[:, 1].sum())
        if self.pos >= self.hi:
            return None
        hi = min(self.pos + self.chunk, self.hi)
        t = self.schedule.arrival_targets(self.epoch, self.pool, self.pos, hi)
        self.parts.append(t)
        ctx.charge(work_items=(hi - self.pos) * max(self.schedule.attach_x, 1))
        done_now = hi - self.pos
        self.pos = hi
        if self.rank == 0:
            self.acked += done_now
            return None
        # flat [rank, count] pairs: the shm exchange ships 1-D payloads
        return {0: [np.array([self.rank, done_now], dtype=np.int64)]}

    def result(self) -> np.ndarray:
        if self.parts:
            return np.concatenate(self.parts, axis=0)
        return np.empty((0, self.schedule.attach_x), dtype=np.int64)


def _apply_epoch(
    state: EvolvingState,
    schedule: ChurnSchedule,
    epoch: int,
    targets_fn: Callable[[np.ndarray, int], np.ndarray],
) -> EpochDelta:
    """Apply one epoch in place; return the exact delta.

    Phase order (fixed): arrivals attach to the epoch-start pool, then
    departures remove nodes (and all incident edges, including edges the
    epoch's own arrivals just added), then edge deletions, then rewires.
    """
    pool = _epoch_pool(state)
    arrivals, deletions, rewires = schedule.counts(epoch)

    # 1. arrivals — the only engine-dependent computation
    born = np.arange(state.n, state.n + arrivals, dtype=np.int64)
    targets = targets_fn(pool, arrivals)
    valid = targets >= 0
    added_u = np.repeat(born, targets.shape[1])[valid.ravel()]
    added_v = targets.ravel()[valid.ravel()]
    state.n += arrivals
    state.alive = np.concatenate([state.alive, np.ones(arrivals, dtype=bool)])
    state.u = np.concatenate([state.u, added_u])
    state.v = np.concatenate([state.v, added_v])

    # 2. departures
    dep_mask = schedule.departure_mask(epoch, state.alive)
    departed = np.flatnonzero(dep_mask).astype(np.int64)
    removed_u: list[np.ndarray] = []
    removed_v: list[np.ndarray] = []
    if len(departed):
        state.alive[departed] = False
        edge_dead = dep_mask[state.u] | dep_mask[state.v]
        if edge_dead.any():
            removed_u.append(state.u[edge_dead])
            removed_v.append(state.v[edge_dead])
            state.u = state.u[~edge_dead]
            state.v = state.v[~edge_dead]

    # 3. edge deletions — k smallest position scores die
    k = min(deletions, len(state.u))
    if k:
        scores = schedule.deletion_scores(epoch, len(state.u))
        kill = np.argsort(scores, kind="stable")[:k]
        mask = np.zeros(len(state.u), dtype=bool)
        mask[kill] = True
        removed_u.append(state.u[mask])
        removed_v.append(state.v[mask])
        state.u = state.u[~mask]
        state.v = state.v[~mask]

    # 4. degree-proportional rewires against the post-deletion pool
    rewired = 0
    rw_removed_u: list[int] = []
    rw_removed_v: list[int] = []
    rw_added_u: list[int] = []
    rw_added_v: list[int] = []
    if rewires and len(state.u):
        rw_pool = np.concatenate([state.u, state.v])
        m = len(state.u)
        for i in range(rewires):
            for attempt in range(schedule.max_attempts):
                d = schedule.rewire_draws(epoch, i, attempt)
                e = int(d[0] * m)
                replace_source = d[1] < 0.5
                t = int(rw_pool[int(d[2] * len(rw_pool))])
                old_u, old_v = int(state.u[e]), int(state.v[e])
                kept = old_v if replace_source else old_u
                old = old_u if replace_source else old_v
                if t == kept or t == old:
                    continue  # self-loop or no-op: redraw
                rw_removed_u.append(old_u)
                rw_removed_v.append(old_v)
                if replace_source:
                    state.u[e] = t
                else:
                    state.v[e] = t
                rw_added_u.append(int(state.u[e]))
                rw_added_v.append(int(state.v[e]))
                rewired += 1
                break
    if rewired:
        removed_u.append(np.array(rw_removed_u, dtype=np.int64))
        removed_v.append(np.array(rw_removed_v, dtype=np.int64))
        added_u = np.concatenate([added_u, np.array(rw_added_u, dtype=np.int64)])
        added_v = np.concatenate([added_v, np.array(rw_added_v, dtype=np.int64)])

    state.epoch += 1
    empty = np.empty(0, dtype=np.int64)
    return EpochDelta(
        epoch=epoch,
        born=born,
        departed=departed,
        added_u=added_u,
        added_v=added_v,
        removed_u=np.concatenate(removed_u) if removed_u else empty,
        removed_v=np.concatenate(removed_v) if removed_v else empty,
        rewires=rewired,
    )


def evolve(
    edges: Any,
    n: int,
    schedule: ChurnSchedule,
    *,
    epochs: int | None = None,
    engine: str = "sequential",
    ranks: int = 1,
    exchange: str = "p2p",
    chunk: int | None = None,
    snapshot_dir: str | None = None,
    snapshot_every: int = 1,
    checkpoint_dir: str | None = None,
    checkpoint_keep: int = 3,
    max_retries: int = 3,
    fault_plan: Any = None,
    fault_epoch: int = 0,
    departure_faults: bool = False,
    cost_model: Any = None,
    telemetry: Any = None,
    barrier_timeout: float = 120.0,
) -> EvolutionResult:
    """Evolve a graph under a churn schedule; return state + exact deltas.

    Parameters
    ----------
    edges, n:
        The starting graph (any object with ``sources``/``targets`` int64
        views, e.g. :class:`~repro.graph.edgelist.EdgeList`) and its node
        count.  The input is not mutated.
    schedule:
        The :class:`~repro.dyngraph.schedule.ChurnSchedule`; output is a
        pure function of ``(edges, n, schedule, epochs)`` — engine, rank
        count, chunking, faults, and recovery never change it.
    epochs:
        Epoch count; defaults to ``schedule.epochs``.
    engine, ranks, exchange:
        Where arrival targets are computed: ``"sequential"`` (requires
        ``ranks=1``), ``"bsp"`` (simulated ranks), or ``"mp"`` (real
        forked workers; ``exchange`` as in :func:`repro.core.generator.generate`,
        default ``"p2p"`` so checkpoint shards can resume mid-epoch).
    chunk:
        Arrivals one rank computes per superstep (default: slice/4,
        so every epoch spans a few supersteps for faults and checkpoint
        cuts to land on).
    snapshot_dir, snapshot_every:
        Persist sealed temporal snapshots (epoch 0 = the initial state,
        then every ``snapshot_every`` epochs plus the final one) through a
        :class:`~repro.dyngraph.snapshots.SnapshotStore`.
    checkpoint_dir, checkpoint_keep, max_retries:
        Run each epoch's arrival computation under a
        :class:`~repro.mpsim.supervisor.Supervisor` with rotated
        checkpoints — injected crashes (``fault_plan`` /
        ``departure_faults``) are recovered bit-identically.
    fault_plan, fault_epoch:
        Inject an explicit single-use :class:`~repro.mpsim.faults.FaultPlan`
        into epoch ``fault_epoch``'s engine run.
    departure_faults:
        Express departures through the fault machinery: every epoch with
        at least one departure runs under ``schedule.fault_plan(epoch,
        ranks)`` — a deterministic rank crash recovered by the supervisor.
        Requires ``checkpoint_dir`` and a parallel engine.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; per-epoch spans and
        ``dyngraph_*`` counters land on it.  Observation-only.
    """
    epochs = schedule.epochs if epochs is None else int(epochs)
    if epochs < 0:
        raise ValueError(f"epochs must be >= 0, got {epochs}")
    if engine not in ("sequential", "bsp", "mp"):
        raise ValueError(
            f"unknown engine {engine!r}; choose sequential, bsp, or mp"
        )
    if engine == "sequential":
        if ranks != 1:
            raise ValueError("sequential engine requires ranks=1")
        if fault_plan is not None or departure_faults:
            raise ValueError("fault injection requires a parallel engine")
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    if departure_faults:
        if checkpoint_dir is None:
            raise ValueError(
                "departure_faults injects real crashes; recovering them "
                "bit-identically needs supervised checkpoints — set "
                "checkpoint_dir="
            )
        if ranks < 2:
            raise ValueError("departure_faults needs ranks >= 2 to crash one")
    if fault_plan is not None and not 0 <= fault_epoch < max(epochs, 1):
        raise ValueError(
            f"fault_epoch {fault_epoch} outside the {epochs}-epoch run"
        )

    tel = resolve(telemetry)
    if tel.enabled:
        tel.meta.update(
            dyngraph_engine=engine, dyngraph_ranks=ranks,
            churn_seed=schedule.seed, churn_epochs=epochs,
        )
    c_epochs = tel.counter("dyngraph_epochs_total", "churn epochs applied")
    c_born = tel.counter("dyngraph_arrivals_total", "nodes arrived")
    c_dep = tel.counter("dyngraph_departures_total", "nodes departed")
    c_add = tel.counter("dyngraph_edges_added_total", "edges added")
    c_rem = tel.counter("dyngraph_edges_removed_total", "edges removed")
    c_rw = tel.counter("dyngraph_rewires_total", "edges rewired")
    c_rec = tel.counter("dyngraph_recoveries_total", "crash recoveries")

    state = EvolvingState.from_edges(edges, n)
    store = None
    if snapshot_dir is not None:
        from repro.dyngraph.snapshots import SnapshotStore

        store = SnapshotStore(snapshot_dir)
        store.save(state, None)

    deltas: list[EpochDelta] = []
    recoveries: list = []
    for e in range(epochs):
        plan = None
        if fault_plan is not None and e == fault_epoch:
            plan = fault_plan
        elif departure_faults and schedule.departure_mask(e, state.alive).any():
            plan = schedule.fault_plan(e, ranks)

        def targets_fn(pool: np.ndarray, count: int) -> np.ndarray:
            return _compute_targets(
                schedule, e, pool, count, engine, ranks, exchange, chunk,
                checkpoint_dir, checkpoint_keep, max_retries, plan,
                cost_model, telemetry, barrier_timeout, recoveries,
            )

        with tel.span("evolve.epoch", cat="evolve", tid=-1, epoch=e) as sp:
            delta = _apply_epoch(state, schedule, e, targets_fn)
            sp.note(**delta.summary())
        deltas.append(delta)
        c_epochs.inc()
        c_born.inc(len(delta.born))
        c_dep.inc(len(delta.departed))
        c_add.inc(delta.edges_added)
        c_rem.inc(delta.edges_removed)
        c_rw.inc(delta.rewires)

        if store is not None and (
            (e + 1) % snapshot_every == 0 or e == epochs - 1
        ):
            store.save(state, delta)

    c_rec.inc(len(recoveries))
    return EvolutionResult(
        state=state,
        schedule=schedule,
        engine=engine,
        ranks=ranks,
        epochs=epochs,
        deltas=deltas,
        snapshots=store,
        recoveries=recoveries,
    )


def _compute_targets(
    schedule: ChurnSchedule,
    epoch: int,
    pool: np.ndarray,
    count: int,
    engine: str,
    ranks: int,
    exchange: str,
    chunk: int | None,
    checkpoint_dir: str | None,
    checkpoint_keep: int,
    max_retries: int,
    plan: Any,
    cost_model: Any,
    telemetry: Any,
    barrier_timeout: float,
    recoveries: list,
) -> np.ndarray:
    """Compute the epoch's arrival-target matrix on the requested engine."""
    # trivial epochs short-circuit every engine identically: the target
    # matrix is already determined (empty or all-dropped)
    if count == 0 or schedule.attach_x == 0 or len(pool) == 0:
        return np.full((count, schedule.attach_x), -1, dtype=np.int64)
    if engine == "sequential":
        return schedule.arrival_targets(epoch, pool, 0, count)

    slices = _arrival_slices(count, ranks)
    per_rank = max((count + ranks - 1) // ranks, 1)
    step = max(int(chunk), 1) if chunk is not None else max(per_rank // 4, 1)

    def program_factory():
        return [
            _ArrivalProgram(r, schedule, epoch, pool, lo, hi, step)
            for r, (lo, hi) in enumerate(slices)
        ]

    checkpointer = None
    if checkpoint_dir is not None:
        from pathlib import Path

        from repro.mpsim.checkpoint import Checkpointer

        checkpointer = Checkpointer(
            Path(checkpoint_dir) / f"epoch{epoch:04d}" / "run.ckpt",
            every=1, keep=checkpoint_keep, telemetry=telemetry,
        )

    if engine == "bsp":
        from repro.mpsim.bsp import BSPEngine

        def engine_factory():
            return BSPEngine(ranks, cost_model=cost_model, telemetry=telemetry)

        if checkpointer is not None:
            from repro.mpsim.supervisor import Supervisor

            supervisor = Supervisor(
                engine_factory, program_factory, checkpointer,
                max_retries=max_retries, telemetry=telemetry,
            )
            eng, programs = supervisor.run(fault_plan=plan)
            recoveries.extend(eng.stats.recoveries)
        else:
            eng = engine_factory()
            programs = program_factory()
            eng.run(programs, fault_plan=plan)
        return np.concatenate([prog.result() for prog in programs], axis=0)

    # engine == "mp"
    from repro.mpsim.mp_backend import MultiprocessingBSPEngine

    def mp_engine_factory():
        return MultiprocessingBSPEngine(
            ranks, exchange=exchange, cost_model=cost_model,
            telemetry=telemetry, barrier_timeout=barrier_timeout,
        )

    if checkpointer is not None:
        from repro.mpsim.supervisor import Supervisor

        supervisor = Supervisor(
            mp_engine_factory, program_factory, checkpointer,
            max_retries=max_retries, telemetry=telemetry,
        )
        eng, _ = supervisor.run(fault_plan=plan)
        recoveries.extend(eng.stats.recoveries)
    else:
        eng = mp_engine_factory()
        eng.run(program_factory(), fault_plan=plan)
    return np.concatenate(list(eng.results), axis=0)
