"""Dynamic networks: churn schedules, temporal snapshots, warm analyses.

The generators build a scale-free network; this package makes it *move*.
A :class:`ChurnSchedule` describes seeded, deterministic churn (Poisson
arrivals attaching preferentially, departures, edge deletions,
degree-proportional rewires); :func:`evolve` applies it on the sequential,
bsp, or mp engine with bit-identical results; :class:`SnapshotStore`
persists sealed temporal generations; and :class:`IncrementalAnalyzer`
keeps degree/components/pagerank warm between snapshots instead of
recomputing from scratch.  See ``docs/dynamic_networks.md``.
"""

from repro.dyngraph.evolve import EvolutionResult, EvolvingState, evolve
from repro.dyngraph.incremental import (
    IncrementalAnalyzer,
    incremental_degrees,
    warm_start_labels,
    warm_start_pagerank,
)
from repro.dyngraph.schedule import ChurnSchedule, EpochDelta
from repro.dyngraph.snapshots import SNAPSHOT_MAGIC, Snapshot, SnapshotStore

__all__ = [
    "ChurnSchedule",
    "EpochDelta",
    "EvolvingState",
    "EvolutionResult",
    "evolve",
    "Snapshot",
    "SnapshotStore",
    "SNAPSHOT_MAGIC",
    "IncrementalAnalyzer",
    "incremental_degrees",
    "warm_start_labels",
    "warm_start_pagerank",
]
