"""Budgeted schedule-space exploration: sweep, watchdog, shrink, replay.

:func:`explore` runs one generator configuration under many schedules (one
per derived seed) and asserts every run's *outcome* — the SHA-256 of the
canonical edge list, or the canonicalised error — matches the baseline
schedule's.  This is the executable form of the paper's Section 3.4 claim
that the algorithm computes the same network under any message arrival
order: the engines' schedule hooks realise "any order", and the digest
comparison realises "the same network".

When a schedule diverges, the recorded decision sequence is shrunk with
delta debugging (:func:`ddmin` over the non-baseline decisions) to a minimal
reproducer and dumped as a JSON artifact that :func:`replay` — or
``repro-pa explore --replay`` — re-runs exactly.

Fault composition: a fault *spec* (plain dict, JSON-serialisable) is
rebuilt into a fresh :class:`~repro.mpsim.faults.FaultPlan` for every trial,
so crash timing becomes part of the explored space.  Drop/duplicate fates
and multi-crash plans are rejected: their RNG draws happen in delivery
order, so which message dies (or which crash fires first) would itself be a
function of the schedule and every comparison would be vacuously divergent.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.mpsim.errors import DeadlockError, LivelockError, MPSimError, RankFailure
from repro.mpsim.faults import FaultPlan
from repro.schedsim.policy import BaselinePolicy, Schedule, make_policy
from repro.telemetry.collector import resolve

__all__ = [
    "ScheduleOutcome",
    "Divergence",
    "ExplorationReport",
    "ReplayResult",
    "explore",
    "replay",
    "ddmin",
    "make_fault_plan",
    "dump_artifact",
    "load_artifact",
    "ARTIFACT_KIND",
    "ARTIFACT_VERSION",
]

ARTIFACT_KIND = "repro-schedule"
ARTIFACT_VERSION = 1

#: config keys the default runner understands (and artifacts round-trip)
_CONFIG_KEYS = ("n", "x", "p", "ranks", "scheme", "seed", "engine", "knobs", "fault")


# --------------------------------------------------------------------- faults
def make_fault_plan(spec: Mapping[str, Any] | None) -> FaultPlan | None:
    """Build a fresh :class:`FaultPlan` from a JSON-able spec dict.

    Spec shape::

        {"crashes": [{"rank": 1, "at_superstep": 2}],   # or "at_time": 0.5
         "stragglers": [{"rank": 0, "factor": 4.0}]}

    At most one crash is allowed (with several pending crashes, *which* fires
    first depends on the schedule, so outcomes could not be compared), and
    drop/duplicate fates are rejected outright (their per-message RNG draws
    happen in delivery order — not schedule-stable).
    """
    if not spec:
        return None
    if "drops" in spec or "duplicates" in spec:
        raise ValueError(
            "drop/duplicate fates draw from the plan RNG in delivery order, "
            "so they are not schedule-stable; explore() supports crashes "
            "and stragglers only"
        )
    unknown = set(spec) - {"crashes", "stragglers", "seed"}
    if unknown:
        raise ValueError(f"unknown fault spec keys: {sorted(unknown)}")
    crashes = list(spec.get("crashes") or [])
    if len(crashes) > 1:
        raise ValueError(
            "explore() allows at most one pending crash: with several, "
            "which fires first is itself schedule-dependent"
        )
    plan = FaultPlan(seed=spec.get("seed", 0))
    for c in crashes:
        plan.crash(
            int(c["rank"]),
            at_superstep=c.get("at_superstep"),
            at_time=c.get("at_time"),
        )
    for s in spec.get("stragglers") or []:
        plan.straggle(int(s["rank"]), factor=float(s["factor"]))
    return plan


# -------------------------------------------------------------------- running
@dataclass
class ScheduleOutcome:
    """What one scheduled run produced (digest XOR canonical error)."""

    digest: str | None
    error: str | None
    decisions: list[int] = field(default_factory=list)
    deviations: dict[int, int] = field(default_factory=dict)
    ticks: int = 0

    def same_as(self, other: "ScheduleOutcome | Mapping[str, Any]") -> bool:
        if isinstance(other, ScheduleOutcome):
            return self.digest == other.digest and self.error == other.error
        return self.digest == other.get("digest") and self.error == other.get("error")


def _canon_error(exc: BaseException) -> str:
    """Schedule-stable rendering of an engine failure."""
    if isinstance(exc, RankFailure):
        return f"RankFailure(rank={exc.rank})"
    if isinstance(exc, LivelockError):
        return "LivelockError"
    if isinstance(exc, DeadlockError):
        return "DeadlockError"
    return type(exc).__name__


def _default_runner(config: Mapping[str, Any], schedule: Schedule):
    """Run the configured generator under ``schedule``; return the EdgeList."""
    from repro.core.partitioning import make_partition

    n = int(config["n"])
    x = int(config.get("x", 1))
    p = float(config.get("p", 0.5))
    ranks = int(config.get("ranks", 4))
    scheme = str(config.get("scheme", "ecp"))
    seed = config.get("seed", 0)
    engine = str(config.get("engine", "bsp"))
    knobs = dict(config.get("knobs") or {})
    part = make_partition(scheme, n, ranks)
    plan = make_fault_plan(config.get("fault"))
    if engine == "bsp":
        if x == 1:
            from repro.core.parallel_pa import run_parallel_pa_x1

            edges, _, _ = run_parallel_pa_x1(
                n, part, p=p, seed=seed, fault_plan=plan, schedule=schedule
            )
        else:
            from repro.core.parallel_pa_general import run_parallel_pa

            edges, _, _ = run_parallel_pa(
                n,
                x,
                part,
                p=p,
                seed=seed,
                fault_plan=plan,
                schedule=schedule,
                canonical_inbox=bool(knobs.get("canonical_inbox", True)),
            )
    elif engine == "event":
        from repro.core.event_driven import run_event_driven_pa

        edges, _ = run_event_driven_pa(
            n,
            x,
            part,
            p=p,
            seed=seed,
            fault_injector=plan,
            schedule=schedule,
            confluent=bool(knobs.get("confluent", True)),
        )
    else:
        raise ValueError(
            "schedule exploration drives the in-process engines only; "
            f"engine must be 'bsp' or 'event', got {engine!r}"
        )
    return edges


Runner = Callable[[Mapping[str, Any], Schedule], Any]


def _run_one(
    config: Mapping[str, Any], schedule: Schedule, runner: Runner
) -> ScheduleOutcome:
    digest: str | None = None
    error: str | None = None
    try:
        edges = runner(config, schedule)
        digest = hashlib.sha256(np.ascontiguousarray(edges.canonical()).tobytes()).hexdigest()
    except MPSimError as exc:
        error = _canon_error(exc)
    return ScheduleOutcome(
        digest=digest,
        error=error,
        decisions=list(schedule.decisions),
        deviations=schedule.deviations(),
        ticks=schedule.ticks,
    )


# ------------------------------------------------------------------ shrinking
def ddmin(
    positions: Sequence[int],
    test: Callable[[list[int]], bool],
    max_tests: int = 256,
) -> list[int]:
    """Zeller's delta debugging over decision positions.

    ``test(subset)`` must return True when replaying only ``subset`` of the
    deviations still reproduces the divergence.  Returns a subset that still
    fails and from which no single complement-chunk can be removed (1-minimal
    up to the ``max_tests`` budget).
    """
    cur = list(positions)
    if not cur:
        return cur
    n = 2
    tests = 0
    while len(cur) >= 2 and tests < max_tests:
        chunk = max(1, len(cur) // n)
        reduced = False
        for start in range(0, len(cur), chunk):
            cand = cur[:start] + cur[start + chunk :]
            if not cand:
                continue
            tests += 1
            if test(cand):
                cur = cand
                n = max(n - 1, 2)
                reduced = True
                break
            if tests >= max_tests:
                break
        if not reduced:
            if n >= len(cur):
                break
            n = min(len(cur), n * 2)
    return cur


# ------------------------------------------------------------------ artifacts
def dump_artifact(
    path: str,
    config: Mapping[str, Any],
    policy: str,
    policy_seed: int,
    deviations: Mapping[int, int],
    total_decisions: int,
    baseline: ScheduleOutcome,
    observed: ScheduleOutcome,
) -> str:
    """Write a replayable failing-schedule artifact; return ``path``."""
    doc = {
        "version": ARTIFACT_VERSION,
        "kind": ARTIFACT_KIND,
        "config": {k: config.get(k) for k in _CONFIG_KEYS if config.get(k) is not None},
        "policy": policy,
        "policy_seed": int(policy_seed),
        "decisions": {str(k): int(v) for k, v in sorted(deviations.items())},
        "total_decisions": int(total_decisions),
        "baseline": {"digest": baseline.digest, "error": baseline.error},
        "observed": {"digest": observed.digest, "error": observed.error},
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_artifact(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != ARTIFACT_KIND:
        raise ValueError(f"{path!r} is not a {ARTIFACT_KIND} artifact")
    if doc.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"artifact version {doc.get('version')!r} not supported "
            f"(expected {ARTIFACT_VERSION})"
        )
    return doc


@dataclass
class ReplayResult:
    """Outcome of re-running a dumped failing schedule."""

    outcome: ScheduleOutcome
    expected: dict
    baseline: dict
    #: True when the replay produced exactly the artifact's observed outcome
    reproduced: bool
    #: True when the replay still differs from the artifact's baseline
    diverges: bool


def replay(
    artifact: str | Mapping[str, Any],
    runner: Runner | None = None,
    watchdog: int | None = None,
) -> ReplayResult:
    """Re-run a failing-schedule artifact (path or loaded dict) exactly."""
    doc = load_artifact(artifact) if isinstance(artifact, str) else dict(artifact)
    decisions = {int(k): int(v) for k, v in doc.get("decisions", {}).items()}
    schedule = Schedule(replay=decisions, watchdog=watchdog)
    outcome = _run_one(doc["config"], schedule, runner or _default_runner)
    expected = doc.get("observed", {})
    baseline = doc.get("baseline", {})
    return ReplayResult(
        outcome=outcome,
        expected=expected,
        baseline=baseline,
        reproduced=outcome.same_as(expected),
        diverges=not outcome.same_as(baseline),
    )


# ---------------------------------------------------------------- exploration
@dataclass
class Divergence:
    """One schedule whose outcome differed from the baseline's."""

    trial: int
    policy: str
    policy_seed: int
    outcome: ScheduleOutcome
    deviations: dict[int, int]
    minimal: dict[int, int]
    artifact: str | None = None


@dataclass
class ExplorationReport:
    config: dict
    policy: str
    baseline: ScheduleOutcome
    explored: int
    divergences: list[Divergence]
    #: distinct Mazurkiewicz-trace classes seen (DPOR policy only)
    unique_classes: int | None = None
    deduped: int = 0
    watchdog: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences


def _trial_seed(policy_seed: int, i: int) -> int:
    word = np.random.SeedSequence(entropy=policy_seed, spawn_key=(i,)).generate_state(1)
    return int(word[0])


def explore(
    config: Mapping[str, Any],
    policy: str = "random",
    schedules: int = 64,
    policy_seed: int = 0,
    watchdog_factor: int = 10,
    shrink_budget: int = 256,
    runner: Runner | None = None,
    telemetry: Any = None,
    artifact_dir: str | None = None,
) -> ExplorationReport:
    """Sweep ``schedules`` seeded schedules; shrink and dump any divergence.

    Parameters
    ----------
    config:
        Generator configuration (``n``/``x``/``p``/``ranks``/``scheme``/
        ``seed``/``engine``/``knobs``/``fault``) — the dict the runner and
        the replay artifacts share.
    policy:
        Name from :data:`repro.schedsim.POLICIES`.  ``"dpor"`` deduplicates
        trials by Mazurkiewicz-trace signature, drawing up to ``3 ×
        schedules`` seeds to reach ``schedules`` *unique* classes.
    watchdog_factor:
        Each trial's no-progress budget is ``max(1000, watchdog_factor ×
        baseline ticks)``; a trial exceeding it fails with
        ``LivelockError`` (itself a divergence from a clean baseline).
    runner:
        Override the engine dispatch — ``runner(config, schedule)`` must
        return an object with ``canonical()`` (tests use tiny synthetic
        runners to exercise watchdog and shrinking deterministically).
    """
    runner = runner or _default_runner
    tel = resolve(telemetry)
    baseline_schedule = Schedule(BaselinePolicy())
    baseline = _run_one(config, baseline_schedule, runner)
    if baseline.deviations:
        raise RuntimeError("baseline schedule recorded non-canonical decisions")
    budget = max(1000, int(watchdog_factor) * max(baseline.ticks, 1))

    dedupe = policy == "dpor"
    seen_classes: set = set()
    deduped = 0
    divergences: list[Divergence] = []
    explored = 0
    max_draws = 3 * schedules if dedupe else schedules

    for i in range(max_draws):
        if dedupe and len(seen_classes) >= schedules:
            break
        if not dedupe and explored >= schedules:
            break
        seed_i = _trial_seed(policy_seed, i)
        schedule = Schedule(make_policy(policy, seed_i), watchdog=budget)
        with tel.span(
            "schedule_trial", cat="schedsim", tid=-1, trial=i, policy=policy,
            policy_seed=seed_i,
        ):
            outcome = _run_one(config, schedule, runner)
        if dedupe:
            sig = schedule.signature()
            if sig in seen_classes:
                deduped += 1
                if tel.enabled:
                    tel.counter(
                        "schedules_deduped",
                        "trials skipped as an already-seen Mazurkiewicz class",
                    ).inc()
                continue
            seen_classes.add(sig)
        explored += 1
        if tel.enabled:
            tel.counter("schedules_explored", "schedules executed by explore()").inc()
        if outcome.same_as(baseline):
            continue
        if tel.enabled:
            tel.counter(
                "schedules_divergent", "schedules whose outcome differed"
            ).inc()

        deviations = dict(outcome.deviations)

        def still_fails(subset: list[int]) -> bool:
            rep = {pos: deviations[pos] for pos in subset}
            trial = Schedule(replay=rep, watchdog=budget)
            return not _run_one(config, trial, runner).same_as(baseline)

        minimal_positions = ddmin(
            sorted(deviations), still_fails, max_tests=shrink_budget
        )
        minimal = {pos: deviations[pos] for pos in minimal_positions}
        # The artifact's "observed" outcome is the *minimal* replay's (not
        # the original trial's): shrinking preserves "diverges from
        # baseline", not the exact digest, and replay asserts against what
        # the artifact's own decision set actually produces.
        minimal_outcome = _run_one(
            config, Schedule(replay=minimal, watchdog=budget), runner
        )
        path = None
        if artifact_dir is not None:
            path = os.path.join(
                artifact_dir,
                f"schedule-{config.get('engine', 'bsp')}-{policy}-trial{i}.json",
            )
            dump_artifact(
                path,
                config,
                policy,
                seed_i,
                minimal,
                total_decisions=len(outcome.decisions),
                baseline=baseline,
                observed=minimal_outcome,
            )
        divergences.append(
            Divergence(
                trial=i,
                policy=policy,
                policy_seed=seed_i,
                outcome=outcome,
                deviations=deviations,
                minimal=minimal,
                artifact=path,
            )
        )

    return ExplorationReport(
        config=dict(config),
        policy=policy,
        baseline=baseline,
        explored=explored,
        divergences=divergences,
        unique_classes=len(seen_classes) if dedupe else None,
        deduped=deduped,
        watchdog=budget,
    )
