"""Schedule-space exploration for the in-process engines.

The deterministic simulators only ever exercise one message interleaving per
seed; this package turns delivery order and rank activation order into
explicit, recordable choice points and sweeps them:

* :mod:`repro.schedsim.policy` — pluggable :class:`SchedulePolicy`
  implementations (baseline, seeded-random, priority-fuzzed,
  straggler-skewed, DPOR-deduped) and the :class:`Schedule` adapter the
  engines consume (decision recording, replay, bounded-progress watchdog);
* :mod:`repro.schedsim.explore` — the budgeted sweep driver
  (:func:`explore`), delta-debugging shrinker (:func:`ddmin`) and the
  replayable failing-schedule artifact format (:func:`replay`).

See ``docs/schedule_exploration.md`` for the full story.
"""

from repro.schedsim.explore import (
    ARTIFACT_KIND,
    ARTIFACT_VERSION,
    Divergence,
    ExplorationReport,
    ReplayResult,
    ScheduleOutcome,
    ddmin,
    dump_artifact,
    explore,
    load_artifact,
    make_fault_plan,
    replay,
)
from repro.schedsim.policy import (
    POLICIES,
    BaselinePolicy,
    DPORRandomPolicy,
    PriorityFuzzPolicy,
    RandomPolicy,
    Schedule,
    SchedulePolicy,
    StragglerSkewPolicy,
    make_policy,
)

__all__ = [
    "SchedulePolicy",
    "BaselinePolicy",
    "RandomPolicy",
    "PriorityFuzzPolicy",
    "StragglerSkewPolicy",
    "DPORRandomPolicy",
    "Schedule",
    "POLICIES",
    "make_policy",
    "ScheduleOutcome",
    "Divergence",
    "ExplorationReport",
    "ReplayResult",
    "explore",
    "replay",
    "ddmin",
    "make_fault_plan",
    "dump_artifact",
    "load_artifact",
    "ARTIFACT_KIND",
    "ARTIFACT_VERSION",
]
