"""Schedule policies and the :class:`Schedule` adapter the engines consume.

The paper's correctness argument (Section 3.4) is about *any* message
arrival order, but a deterministic simulator only ever exercises one
schedule per seed.  This module turns delivery order and rank activation
order into explicit *choice points*: wherever an engine would pick the
canonical candidate (globally earliest delivery, lowest rank first), it
instead asks a :class:`Schedule`, which delegates to a pluggable
:class:`SchedulePolicy` and records the decision.

Choice-point protocol
---------------------

Engines present candidates in **canonical order** — index 0 is always the
choice the unscheduled engine would have made — as ``(lane, src)`` tags:
``lane`` identifies the receiving mailbox (the destination rank, or
``(superstep, dest)`` for BSP inboxes) and ``src`` the sending rank.  A
policy returns an index; :class:`BaselinePolicy` returns 0 everywhere, so a
baseline schedule reproduces the engine's native run bit-exactly.

Decisions are recorded as a flat list of chosen indices.  Because the
engines are deterministic *given* the decision sequence, replaying the
recorded indices (:class:`Schedule` with ``replay=``) reproduces the run
exactly — the property the shrinker and the ``repro-pa explore --replay``
artifact format build on.  Single-candidate points are not recorded (there
is no decision to make), which keeps recordings small and shrink-friendly.

The watchdog rides the same object: every choice point (and every BSP
superstep) ticks a counter that only engine-reported progress resets;
exceeding the budget raises :class:`~repro.mpsim.errors.LivelockError`.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.mpsim.errors import LivelockError

__all__ = [
    "SchedulePolicy",
    "BaselinePolicy",
    "RandomPolicy",
    "PriorityFuzzPolicy",
    "StragglerSkewPolicy",
    "DPORRandomPolicy",
    "Schedule",
    "POLICIES",
    "make_policy",
]

#: spawn-key namespace for :class:`StragglerSkewPolicy`'s per-rank coin
_SKEW_NS = 91


def _src_rank(tag: Any) -> int:
    """The sending rank of a candidate tag (plain int or ``(lane, src)``)."""
    if isinstance(tag, tuple):
        return int(tag[1])
    return int(tag)


class SchedulePolicy:
    """Decide which candidate a choice point takes.  Base = deterministic.

    Subclasses override :meth:`choose`; a fresh policy instance is one run's
    worth of state (seeded policies are deterministic per seed, so the same
    ``(config, policy, seed)`` triple always explores the same schedule).
    """

    name = "baseline"

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed

    def choose(self, kind: str, tags: Sequence[Any]) -> int:
        """Return the index of the candidate to take (0 = canonical)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(seed={self.seed})"


class BaselinePolicy(SchedulePolicy):
    """Always index 0: reproduces the engine's native schedule bit-exactly."""


class RandomPolicy(SchedulePolicy):
    """Uniform seeded-random permutation of every choice point."""

    name = "random"

    def __init__(self, seed: int | None = 0) -> None:
        super().__init__(seed)
        self._rng = np.random.default_rng(seed)

    def choose(self, kind: str, tags: Sequence[Any]) -> int:
        return int(self._rng.integers(len(tags)))


class PriorityFuzzPolicy(SchedulePolicy):
    """Seeded per-rank priorities: high-priority senders always win.

    Models a cluster where some ranks' messages systematically overtake
    others (fast NICs, switch affinity) — a *consistent* skew, unlike
    :class:`RandomPolicy`'s white noise.  A small ``jitter`` probability of
    a uniform pick keeps the explored set from collapsing to one schedule.
    """

    name = "priority"

    def __init__(self, seed: int | None = 0, jitter: float = 0.1) -> None:
        super().__init__(seed)
        self._rng = np.random.default_rng(seed)
        self.jitter = jitter
        self._prio: dict[int, float] = {}

    def _priority(self, rank: int) -> float:
        if rank not in self._prio:
            self._prio[rank] = float(self._rng.random())
        return self._prio[rank]

    def choose(self, kind: str, tags: Sequence[Any]) -> int:
        if self.jitter and self._rng.random() < self.jitter:
            return int(self._rng.integers(len(tags)))
        # highest-priority sender wins; canonical order breaks ties
        return max(
            range(len(tags)), key=lambda i: (self._priority(_src_rank(tags[i])), -i)
        )


class StragglerSkewPolicy(SchedulePolicy):
    """Defer everything sent by a seeded set of straggler ranks.

    Candidates from slow ranks are starved until nothing else is available —
    the delivery-order shadow of a compute straggler, without touching the
    cost model.  Each rank's slow/fast coin is a pure function of
    ``(seed, rank)``, so the straggler set is stable across choice points.
    """

    name = "straggler"

    def __init__(self, seed: int | None = 0, fraction: float = 0.34) -> None:
        super().__init__(seed)
        self.fraction = fraction
        self._slow: dict[int, bool] = {}

    def _is_slow(self, rank: int) -> bool:
        if rank not in self._slow:
            word = np.random.SeedSequence(
                entropy=self.seed or 0, spawn_key=(_SKEW_NS, rank)
            ).generate_state(1)[0]
            self._slow[rank] = (word / 2**32) < self.fraction
        return self._slow[rank]

    def choose(self, kind: str, tags: Sequence[Any]) -> int:
        for i, tag in enumerate(tags):
            if not self._is_slow(_src_rank(tag)):
                return i
        return 0


class DPORRandomPolicy(RandomPolicy):
    """Random choices, deduplicated by Mazurkiewicz-trace signature.

    Deliveries into *different* mailboxes commute (shared-nothing rank
    programs observe only their own inbox sequence), so two schedules whose
    per-mailbox source sequences agree are the same partial-order class.
    The policy itself chooses like :class:`RandomPolicy`; the
    :func:`~repro.schedsim.explore` driver computes each explored run's
    :meth:`Schedule.signature` and skips classes it has already covered,
    drawing replacement seeds until the budget of *unique* classes is met.
    """

    name = "dpor"


POLICIES: Mapping[str, type[SchedulePolicy]] = {
    "baseline": BaselinePolicy,
    "random": RandomPolicy,
    "priority": PriorityFuzzPolicy,
    "straggler": StragglerSkewPolicy,
    "dpor": DPORRandomPolicy,
}


def make_policy(name: str, seed: int | None = 0) -> SchedulePolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(seed)


class Schedule:
    """One run's schedule: policy + decision recorder + progress watchdog.

    Parameters
    ----------
    policy:
        The :class:`SchedulePolicy` consulted at every multi-candidate
        choice point.  Defaults to :class:`BaselinePolicy`.
    replay:
        Sparse ``{decision position: chosen index}`` mapping.  When set, the
        policy is ignored: each decision takes the mapped index (clamped to
        the candidate count; unmapped positions take 0).  Replaying the
        deviations recorded by a previous run reproduces it exactly.
    watchdog:
        Progress budget in scheduler ticks, or ``None`` to disable.  Every
        choice point and every explicit :meth:`tick` counts one tick;
        :meth:`on_progress` (called by the engines when a rank finishes /
        when the done-count rises) resets the counter.  Exceeding the budget
        raises :class:`~repro.mpsim.errors.LivelockError`.

    A ``Schedule`` is single-use: drive exactly one engine run with it, then
    read :attr:`decisions` / :meth:`deviations` / :meth:`signature`.
    """

    def __init__(
        self,
        policy: SchedulePolicy | None = None,
        replay: Mapping[int, int] | None = None,
        watchdog: int | None = None,
    ) -> None:
        self.policy = policy or BaselinePolicy()
        self.replay = {int(k): int(v) for k, v in replay.items()} if replay else None
        self.watchdog = watchdog
        #: chosen index of every multi-candidate decision, in decision order
        self.decisions: list[int] = []
        #: total scheduler ticks (choice points + explicit superstep ticks)
        self.ticks = 0
        self._since_progress = 0
        self._events: list[tuple[Any, int]] = []  # (lane, src) delivery log

    # ------------------------------------------------------------- watchdog
    def tick(self) -> None:
        """Count one scheduler step toward the bounded-progress watchdog."""
        self.ticks += 1
        self._since_progress += 1
        if self.watchdog is not None and self._since_progress > self.watchdog:
            raise LivelockError(
                f"no progress for {self._since_progress} scheduler steps "
                f"(budget {self.watchdog}): the schedule is spinning without "
                "any rank completing work",
                ticks=self._since_progress,
                budget=self.watchdog,
            )

    def on_progress(self) -> None:
        """Engine hook: a rank finished / the global done-count rose."""
        self._since_progress = 0

    # ------------------------------------------------------------ decisions
    def choose(self, kind: str, tags: Sequence[Any]) -> int:
        """Pick one of ``tags`` (canonical order; 0 = the engine's native
        choice).  Records the decision when there is one to make."""
        self.tick()
        n = len(tags)
        if n == 0:
            raise ValueError("choice point with no candidates")
        if n == 1:
            pick = 0
        else:
            pos = len(self.decisions)
            if self.replay is not None:
                pick = min(self.replay.get(pos, 0), n - 1)
            else:
                pick = self.policy.choose(kind, tags)
                if not 0 <= pick < n:
                    pick = 0
            self.decisions.append(pick)
        tag = tags[pick]
        if isinstance(tag, tuple):  # a delivery: log (lane, src) for dedupe
            self._events.append((tag[0], int(tag[1])))
        return pick

    def permute(self, kind: str, tags: Sequence[Any]) -> list[int]:
        """Order all of ``tags``: repeated :meth:`choose` over the remainder.

        Returns an index permutation (identity under the baseline policy).
        Selection is decision-at-a-time rather than one monolithic
        permutation pick so the shrinker can remove individual reorderings.
        """
        if len(tags) <= 1:
            self.tick()
            return list(range(len(tags)))
        remaining = list(range(len(tags)))
        order: list[int] = []
        while remaining:
            pick = self.choose(kind, [tags[i] for i in remaining])
            order.append(remaining.pop(pick))
        return order

    # ------------------------------------------------------------ inspection
    def deviations(self) -> dict[int, int]:
        """The sparse non-baseline decisions: ``{position: chosen index}``."""
        return {i: c for i, c in enumerate(self.decisions) if c != 0}

    def signature(self) -> tuple:
        """Mazurkiewicz-trace class of the run's deliveries.

        Two schedules with equal signatures delivered the same per-mailbox
        source sequences; everything else (activation order, tie-breaks
        between different mailboxes) commutes for shared-nothing programs.
        """
        lanes: dict[Any, list[int]] = {}
        for lane, src in self._events:
            lanes.setdefault(lane, []).append(src)
        return tuple(sorted((repr(k), tuple(v)) for k, v in lanes.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "replay" if self.replay is not None else self.policy.name
        return (
            f"Schedule({mode}, decisions={len(self.decisions)}, "
            f"ticks={self.ticks}, watchdog={self.watchdog})"
        )
