"""Scalar reference oracle for the communication-free generators.

:mod:`repro.core.commfree` resolves attachments with vectorised frontier
chases and demand-driven fixpoints — machinery with real room for subtle
bugs.  This module re-implements the *identical draw protocol* (documented
in :mod:`repro.core.commfree`) in the most boring way possible: a plain
Python sweep over nodes in ascending order, one scalar hash lookup at a
time.  Because every source node precedes its dependents, the sweep never
needs recursion, chases, or pending queues — each attachment is read off
directly.

The test-suite pins every vectorised surface (batch, slice, mp, streaming)
to this oracle bit for bit; agreement means the clever resolution order
changes nothing, which is the whole point of counter-based randomness.
"""

from __future__ import annotations

import numpy as np

from repro.core.commfree import _NS, _check_params, _coin_threshold
from repro.graph.edgelist import EdgeList
from repro.rng import StreamFactory

__all__ = ["commfree_reference"]

#: Duplicate-rejection retries per slot before giving up (mirrors
#: :data:`repro.seq.copy_model._MAX_RETRIES`).
_MAX_RETRIES = 10_000


def commfree_reference(
    n: int,
    x: int = 1,
    p: float = 0.5,
    seed: int | None = None,
) -> EdgeList:
    """Generate the commfree network by direct ascending-order evaluation.

    Bit-identical to :func:`repro.core.commfree.commfree` (and its slice,
    mp, and streaming variants) for equal parameters — but O(n) scalar
    Python, so only suitable as a correctness oracle at small ``n``.
    """
    _check_params(n, x, p)
    cs = StreamFactory(seed).counter_substream(_NS, x, 0)
    u: list[int] = []
    v: list[int] = []

    if x == 1:
        thresh = int(_coin_threshold(p))
        F = [0] * n  # F[1] = 0; F[0] unused
        for t in range(2, n):
            h = int(cs.hashes(t, 0))
            k = 1 + (((h >> 32) * (t - 1)) >> 32)
            F[t] = k if (h & 0xFFFFFFFF) < thresh else F[k]
        for t in range(1, n):
            u.append(t)
            v.append(F[t])
    else:
        rows: dict[int, list[int]] = {x: list(range(x))}
        for t in range(1, min(n, x)):
            for i in range(t):
                u.append(t)
                v.append(i)
        for i in range(x):
            u.append(x)
            v.append(i)
        for t in range(x + 1, n):
            row: list[int] = []
            for e in range(x):
                sid = (t - x) * x + e
                for a in range(_MAX_RETRIES):
                    u1 = float(cs.uniforms(sid, 3 * a))
                    k = x + min(int(u1 * (t - x)), t - x - 1)
                    if float(cs.uniforms(sid, 3 * a + 1)) < p:
                        cand = k
                    else:
                        l = min(int(float(cs.uniforms(sid, 3 * a + 2)) * x), x - 1)
                        cand = rows[k][l]
                    if cand not in row:
                        row.append(cand)
                        break
                else:  # pragma: no cover - statistically unreachable
                    raise RuntimeError(f"slot ({t}, {e}) exhausted retries")
            rows[t] = row
            u.extend([t] * x)
            v.extend(row)

    return EdgeList.from_arrays(
        np.asarray(u, dtype=np.int64), np.asarray(v, dtype=np.int64)
    )
