"""Naive Θ(n²) Barabási–Albert generator (the paper's strawman).

Section 3.1: "One naive approach is to maintain a list of the degrees of the
nodes, and in each phase t, generate a uniform random number in
[1, Σ d_i] and scan the list of the degrees sequentially to find F_t.  In
this case, phase t takes Θ(t) time, and the total time is Ω(n²)."

This implementation exists as the asymptotic baseline for the sequential
benchmark (``benchmarks/bench_sequential.py``); do not use it above a few
tens of thousands of nodes.  The degree "scan" is a vectorised cumulative-sum
search, which keeps the constant small without changing the Θ(t)-per-phase
asymptotics.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["ba_naive"]


def ba_naive(
    n: int,
    x: int = 1,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> EdgeList:
    """Generate a BA graph by per-phase degree scanning.

    Parameters
    ----------
    n:
        Total number of nodes.
    x:
        Edges contributed by each new node (the BA parameter ``m``).
    seed, rng:
        Either a seed or a ready generator (``rng`` wins).

    Returns
    -------
    EdgeList with ``C(x,2) + (n - x) x`` edges (``n - 1`` when ``x = 1``).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    if n <= x and x > 1:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    rng = rng or np.random.default_rng(seed)

    edges = EdgeList(capacity=max(n * x, 1))
    degrees = np.zeros(n, dtype=np.int64)

    start = _seed_initial(edges, degrees, n, x)

    for t in range(start, n):
        chosen: set[int] = set()
        while len(chosen) < min(x, t):
            # Scan: draw in [0, sum degrees) and walk the cumulative sums.
            total = int(degrees[:t].sum())
            r = rng.integers(0, total)
            target = int(np.searchsorted(np.cumsum(degrees[:t]), r, side="right"))
            if target in chosen:
                continue
            chosen.add(target)
        for target in sorted(chosen):
            edges.append(t, target)
            degrees[t] += 1
            degrees[target] += 1
    return edges


def _seed_initial(edges: EdgeList, degrees: np.ndarray, n: int, x: int) -> int:
    """Install the initial structure; return the first growing node id.

    ``x = 1`` starts from the single edge (1, 0); ``x > 1`` starts from the
    clique on nodes ``0 .. x-1`` (the paper's Algorithm 3.2 initialisation).
    """
    if x == 1:
        if n == 1:
            return n
        edges.append(1, 0)
        degrees[0] += 1
        degrees[1] += 1
        return 2
    for i in range(x):
        for j in range(i + 1, x):
            edges.append(j, i)
            degrees[i] += 1
            degrees[j] += 1
    return x
