"""Chung–Lu expected-degree generator (Miller–Hagberg style).

Context model from the paper's introduction (reference [23]).  Given target
weights ``w``, edge ``(u, v)`` appears independently with probability
``min(1, w_u w_v / S)`` where ``S = Σ w``.  Implemented with the
weight-sorted geometric-skipping technique of Miller & Hagberg, giving
expected O(n + m) time instead of Θ(n²).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["chung_lu"]


def chung_lu(
    weights: np.ndarray,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> EdgeList:
    """Sample a Chung–Lu graph for the given expected-degree weights.

    Node ids refer to positions in ``weights`` (the implementation sorts
    internally and maps back).

    Examples
    --------
    >>> w = np.full(200, 5.0)
    >>> el = chung_lu(w, seed=5)         # ~ G(n, p) at uniform weights
    >>> 300 < len(el) < 700
    True
    """
    rng = rng or np.random.default_rng(seed)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be 1-D")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    n = len(w)
    edges = EdgeList()
    if n < 2:
        return edges
    S = float(w.sum())
    if S <= 0:
        return edges

    order = np.argsort(-w, kind="stable")  # descending weights
    ws = w[order]

    us: list[int] = []
    vs: list[int] = []
    for i in range(n - 1):
        if ws[i] <= 0:
            break
        j = i + 1
        p = min(1.0, ws[i] * ws[j] / S)
        while j < n and p > 0:
            if p < 1.0:
                # Skip ahead geometrically at the current probability bound.
                r = rng.random()
                j += int(np.floor(np.log(r) / np.log1p(-p)))
            if j < n:
                q = min(1.0, ws[i] * ws[j] / S)
                if rng.random() < q / p:
                    us.append(i)
                    vs.append(j)
                p = q
                j += 1
    if us:
        edges.append_arrays(order[np.array(us)], order[np.array(vs)])
    return edges
