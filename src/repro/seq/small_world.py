"""Watts–Strogatz small-world generator (introduction context model).

Transforms a ring lattice of even degree ``k`` by rewiring each edge with
probability ``beta`` to a uniformly random endpoint, avoiding self-loops and
duplicates — the construction the paper's related-work section describes.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["watts_strogatz"]


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> EdgeList:
    """Generate a Watts–Strogatz graph.

    Parameters
    ----------
    n:
        Number of nodes (ring positions).
    k:
        Even lattice degree; each node starts connected to its ``k/2``
        clockwise neighbours.
    beta:
        Rewiring probability in ``[0, 1]``.

    Examples
    --------
    >>> el = watts_strogatz(50, 4, 0.1, seed=11)
    >>> len(el)
    100
    """
    if n < 3:
        raise ValueError(f"n must be >= 3, got {n}")
    if k < 2 or k % 2 != 0:
        raise ValueError(f"k must be a positive even integer, got {k}")
    if k >= n:
        raise ValueError(f"need k < n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must be in [0, 1], got {beta}")
    rng = rng or np.random.default_rng(seed)

    # adjacency as a set of canonical tuples for O(1) duplicate checks.
    present: set[tuple[int, int]] = set()

    def canon(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    for v in range(n):
        for j in range(1, k // 2 + 1):
            present.add(canon(v, (v + j) % n))

    edges = sorted(present)
    rewired: set[tuple[int, int]] = set(edges)
    for a, b in edges:
        if rng.random() >= beta:
            continue
        rewired.discard((a, b))
        for _ in range(4 * n):
            c = int(rng.integers(0, n))
            cand = canon(a, c)
            if c != a and cand not in rewired:
                rewired.add(cand)
                break
        else:
            rewired.add((a, b))  # saturated neighbourhood: keep the edge

    out = EdgeList(capacity=len(rewired))
    for a, b in sorted(rewired):
        out.append(a, b)
    return out
