"""Batagelj–Brandes O(m) Barabási–Albert generator.

The efficient sequential algorithm the paper credits (Section 3.1):
"maintain a list of nodes such that each node i appears in this list exactly
d_i times"; appending both endpoints of every new edge keeps the list
current, and sampling it uniformly samples nodes proportionally to degree.
NetworkX's ``barabasi_albert_graph`` implements the same idea; this version
preallocates the repeated-nodes list as one NumPy array (its final length is
exactly ``2m``, known in advance), making it the fastest sequential
generator in this repository and the ``T_s`` baseline for the speedup
figures.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["batagelj_brandes"]


def batagelj_brandes(
    n: int,
    x: int = 1,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> EdgeList:
    """Generate a BA graph with the repeated-nodes-list algorithm.

    Parameters mirror :func:`repro.seq.ba_naive.ba_naive`.  Duplicate targets
    within one node's ``x`` draws are rejected and redrawn, which keeps the
    graph simple (the "separate lists of neighbors" the paper mentions,
    realised as a per-phase set).

    Examples
    --------
    >>> el = batagelj_brandes(1000, x=3, seed=7)
    >>> len(el)
    2994
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    if n <= x and x > 1:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    rng = rng or np.random.default_rng(seed)

    if x == 1:
        return _bb_x1(n, rng)
    return _bb_general(n, x, rng)


def _bb_x1(n: int, rng: np.random.Generator) -> EdgeList:
    """x = 1 specialisation: no duplicate hazard, tight loop."""
    edges = EdgeList(capacity=max(n - 1, 1))
    if n == 1:
        return edges
    # repeated[0:2m] with m = n - 1 eventually; seeded with edge (1, 0).
    repeated = np.empty(2 * (n - 1), dtype=np.int64)
    repeated[0] = 1
    repeated[1] = 0
    fill = 2
    edges.append(1, 0)
    # Draw all randoms up front: target index for node t is uniform in
    # [0, fill_t) with fill_t = 2 (t - 1).
    u = rng.random(max(n - 2, 0))
    for t in range(2, n):
        idx = int(u[t - 2] * fill)
        target = int(repeated[idx])
        edges.append(t, target)
        repeated[fill] = t
        repeated[fill + 1] = target
        fill += 2
    return edges


def _bb_general(n: int, x: int, rng: np.random.Generator) -> EdgeList:
    clique_edges = x * (x - 1) // 2
    m = clique_edges + (n - x) * x
    edges = EdgeList(capacity=m)
    repeated = np.empty(2 * m, dtype=np.int64)
    fill = 0
    for i in range(x):
        for j in range(i + 1, x):
            edges.append(j, i)
            repeated[fill] = j
            repeated[fill + 1] = i
            fill += 2
    for t in range(x, n):
        chosen: set[int] = set()
        while len(chosen) < x:
            target = int(repeated[int(rng.integers(0, fill))])
            chosen.add(target)
        for target in sorted(chosen):
            edges.append(t, target)
        # Update the repeated list only after all x draws: matches the BA
        # convention that a phase's edges attach to the *previous* network.
        for target in sorted(chosen):
            repeated[fill] = t
            repeated[fill + 1] = target
            fill += 2
    return edges
