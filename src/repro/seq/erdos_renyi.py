"""Efficient Erdős–Rényi G(n, p) generation (Batagelj–Brandes skipping).

Context model from the paper's introduction.  The naive Θ(n²) coin-flip per
pair is replaced by the geometric-skip technique from the same Batagelj &
Brandes paper the PA algorithm builds on: the gap to the next present edge
is geometric with parameter ``p``, so only the ``m ≈ p n(n-1)/2`` realised
edges cost work.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["erdos_renyi_gnp"]


def erdos_renyi_gnp(
    n: int,
    p: float,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> EdgeList:
    """Sample G(n, p) in expected O(m) time.

    Edges are enumerated in lexicographic order of the flattened
    upper-triangular pair index; geometric skips jump directly between the
    realised ones.

    Examples
    --------
    >>> el = erdos_renyi_gnp(100, 0.05, seed=3)
    >>> el.has_duplicates() or el.has_self_loops()
    False
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = rng or np.random.default_rng(seed)
    edges = EdgeList()
    total_pairs = n * (n - 1) // 2
    if total_pairs == 0 or p == 0.0:
        return edges
    if p == 1.0:
        idx = np.arange(total_pairs)
        u, v = _unrank_pairs(idx)
        edges.append_arrays(u, v)
        return edges

    # Geometric skipping, drawn in blocks for vectorisation.
    log_q = np.log1p(-p)
    pos = -1
    block = max(1024, int(total_pairs * p * 1.2))
    picks: list[np.ndarray] = []
    while pos < total_pairs:
        r = rng.random(block)
        # Clip in float space before casting: for tiny p a single skip can
        # exceed int64 (or even float64) range; anything past total_pairs
        # ends the stream, so the clipped value is exact enough.
        with np.errstate(over="ignore"):
            skips_f = np.minimum(np.floor(np.log(r) / log_q), float(total_pairs))
        skips = 1 + skips_f.astype(np.int64)
        positions = pos + np.cumsum(skips)
        picks.append(positions[positions < total_pairs])
        if positions[-1] >= total_pairs:
            break
        pos = int(positions[-1])
    idx = np.concatenate(picks) if picks else np.empty(0, dtype=np.int64)
    u, v = _unrank_pairs(idx)
    edges.append_arrays(u, v)
    return edges


def _unrank_pairs(idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map flat indices to (u, v) with u > v over the lower triangle.

    Pair index ``i`` corresponds to the i-th pair in the order
    (1,0), (2,0), (2,1), (3,0), ...: ``u`` is the largest integer with
    ``u(u-1)/2 <= i`` and ``v = i - u(u-1)/2``.
    """
    idx = np.asarray(idx, dtype=np.int64)
    u = np.floor((1.0 + np.sqrt(1.0 + 8.0 * idx)) / 2.0).astype(np.int64)
    # Guard against floating-point rounding at triangular-number boundaries.
    tri = u * (u - 1) // 2
    too_big = tri > idx
    u[too_big] -= 1
    tri = u * (u - 1) // 2
    too_small = idx - tri >= u
    u[too_small] += 1
    tri = u * (u - 1) // 2
    v = idx - tri
    return u, v
