"""Sequential random-graph generators (Section 3.1 of the paper + context models).

This subpackage provides the sequential algorithms the paper discusses or
compares against:

* :mod:`repro.seq.ba_naive` — the Θ(n²) degree-scan Barabási–Albert
  implementation (the paper's strawman);
* :mod:`repro.seq.batagelj_brandes` — the O(m) repeated-nodes-list algorithm
  of Batagelj & Brandes, the efficient sequential baseline (what NetworkX
  implements);
* :mod:`repro.seq.copy_model` — the copy model of Kumar et al., the basis of
  the parallel algorithms; exact BA dynamics at ``p = 1/2``;
* :mod:`repro.seq.commfree_ref` — scalar oracle for the communication-free
  generators of :mod:`repro.core.commfree` (bit-identity reference);
* :mod:`repro.seq.erdos_renyi`, :mod:`repro.seq.small_world`,
  :mod:`repro.seq.chung_lu` — the other random-graph families the
  introduction situates the work against, implemented with the efficient
  (geometric-skip) techniques from the same Batagelj–Brandes paper.

All generators return a :class:`repro.graph.edgelist.EdgeList` and accept a
``rng``/``seed`` for reproducibility.
"""

from repro.seq.ba_naive import ba_naive
from repro.seq.batagelj_brandes import batagelj_brandes
from repro.seq.commfree_ref import commfree_reference
from repro.seq.copy_model import copy_model, copy_model_x1
from repro.seq.erdos_renyi import erdos_renyi_gnp
from repro.seq.small_world import watts_strogatz
from repro.seq.chung_lu import chung_lu

__all__ = [
    "ba_naive",
    "batagelj_brandes",
    "commfree_reference",
    "copy_model",
    "copy_model_x1",
    "erdos_renyi_gnp",
    "watts_strogatz",
    "chung_lu",
]
