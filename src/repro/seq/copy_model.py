"""Sequential copy model (Kumar et al.), the basis of the parallel algorithms.

Section 3.1 of the paper: in each phase ``t``,

1. pick ``k`` uniformly among existing nodes;
2. with probability ``p`` set ``F_t = k`` (a *direct* attachment), otherwise
   set ``F_t = F_k`` (a *copy* attachment).

At ``p = 1/2`` this reproduces the Barabási–Albert attachment probabilities
exactly, and the exponent of the resulting power law varies with ``p``.

Two implementations are provided:

* :func:`copy_model_x1` — the ``x = 1`` case.  All variates are drawn up
  front and the copy chains are resolved by vectorised *pointer jumping*
  (the parallel-algorithms classic: ``ptr <- ptr[ptr]`` until fixed point),
  which finishes in ``O(log L_max) = O(log log n)`` NumPy passes because
  dependency chains are ``O(log n)`` long (Theorem 3.3).
* :func:`copy_model` — the general ``x >= 1`` case with the initial
  ``x``-clique and duplicate-edge rejection, matching Algorithm 3.2's
  sequential semantics.

Both return the attachment table ``F`` on request so analyses (dependency
chains, cross-validation against the parallel engines) can inspect it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["copy_model_x1", "copy_model", "resolve_pointers"]

#: Safety bound on duplicate-rejection attempts per edge slot; a correct
#: configuration retries a handful of times at worst, so hitting this means
#: a logic error rather than bad luck.
_MAX_RETRIES = 10_000


def resolve_pointers(ptr: np.ndarray) -> np.ndarray:
    """Pointer-jump ``ptr`` to its fixed point (``ptr[i] == ptr[ptr[i]]``).

    ``ptr`` must be acyclic-with-self-loops: following pointers from any
    index must reach a self-pointing index.  Each pass squares the distance
    covered, so the number of passes is logarithmic in the longest chain.

    Only still-moving indices are touched after the first pass: an index is
    settled exactly when it points at a root (``ptr[ptr[i]] == ptr[i]``
    means ``ptr[i]`` self-points), and settled indices never move again, so
    each pass shrinks the active set instead of re-squaring and comparing
    the full array.
    """
    ptr = ptr.copy()
    active = np.flatnonzero(ptr[ptr] != ptr)
    while len(active):
        ptr[active] = ptr[ptr[active]]
        moved = ptr[ptr[active]] != ptr[active]
        active = active[moved]
    return ptr


def copy_model_x1(
    n: int,
    p: float = 0.5,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    return_attachments: bool = False,
) -> EdgeList | tuple[EdgeList, np.ndarray]:
    """Copy-model PA network with one edge per node.

    Parameters
    ----------
    n:
        Number of nodes; nodes are ``0 .. n-1`` and node 1 attaches to 0.
    p:
        Direct-attachment probability; ``0 < p <= 1``.  ``p = 1/2`` gives BA.
    return_attachments:
        Also return ``F`` where ``F[t]`` is the node ``t`` attached to
        (``F[0] = -1``).

    Examples
    --------
    >>> el, F = copy_model_x1(10, seed=1, return_attachments=True)
    >>> len(el), F[0]
    (9, np.int64(-1))
    >>> bool((F[1:] < np.arange(1, 10)).all())
    True
    """
    _check_params(n, 1, p)
    rng = rng or np.random.default_rng(seed)

    F = np.full(n, -1, dtype=np.int64)
    edges = EdgeList(capacity=max(n - 1, 1))
    if n >= 2:
        F[1] = 0
    if n > 2:
        ts = np.arange(2, n, dtype=np.int64)
        # Two uniforms per node in node order (k first, then the coin): the
        # library-wide draw protocol, shared with the parallel engines and
        # the streaming generator so equal seeds give bit-identical graphs.
        u = rng.random(2 * (n - 2))
        k = 1 + (u[0::2] * (ts - 1)).astype(np.int64)
        direct = u[1::2] < p
        # anchor pointers: direct nodes point to themselves, copy nodes to k.
        ptr = np.arange(n, dtype=np.int64)
        ptr[ts[~direct]] = k[~direct]
        anchors = resolve_pointers(ptr)
        # target[a] = the k drawn at direct node a (node 1's "draw" is 0).
        target = np.full(n, -1, dtype=np.int64)
        if n >= 2:
            target[1] = 0
        target[ts[direct]] = k[direct]
        F[2:] = target[anchors[2:]]
    if n >= 2:
        edges.append_arrays(np.arange(1, n), F[1:])
    if return_attachments:
        return edges, F
    return edges


def copy_model(
    n: int,
    x: int = 1,
    p: float = 0.5,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    return_attachments: bool = False,
    method: str = "reference",
) -> EdgeList | tuple[EdgeList, np.ndarray]:
    """Copy-model PA network with ``x`` edges per node (Algorithm 3.2, serial).

    Starts from a clique on nodes ``0 .. x-1``; node ``x`` necessarily
    attaches to all clique nodes; every later node ``t`` draws, per edge
    slot, a uniform ``k in [x, t-1]`` and attaches to ``k`` (probability
    ``p``) or to ``F_k[l]`` with ``l`` uniform in ``[0, x)`` (probability
    ``1 - p``), rejecting duplicates.

    ``method`` selects the implementation:

    * ``"reference"`` (default) — the literal per-slot loop above, consuming
      the library-wide scalar draw protocol.  This is the oracle every other
      implementation is validated against.
    * ``"fast"`` — batched draws with vectorised per-row duplicate rejection
      and a retry tail (see :func:`_copy_model_fast`).  It samples the same
      attachment distribution but consumes the stream in batches, so equal
      seeds give a *different instance* than the reference; the two are tied
      together by statistical-equivalence tests instead of bit-identity.

    Returns the edge list, plus the ``(n, x)`` attachment table if
    ``return_attachments`` (clique rows are ``-1``).
    """
    if method not in ("reference", "fast"):
        raise ValueError(f"unknown method {method!r}; use 'reference' or 'fast'")
    if x == 1:
        return copy_model_x1(
            n, p=p, seed=seed, rng=rng, return_attachments=return_attachments
        )
    _check_params(n, x, p)
    rng = rng or np.random.default_rng(seed)
    if method == "fast":
        return _copy_model_fast(n, x, p, rng, return_attachments)

    m = x * (x - 1) // 2 + (n - x) * x
    edges = EdgeList(capacity=m)
    F = np.full((n, x), -1, dtype=np.int64)

    for i in range(x):
        for j in range(i + 1, x):
            edges.append(j, i)

    if n > x:
        F[x, :] = np.arange(x)
        edges.append_arrays(np.full(x, x, dtype=np.int64), np.arange(x, dtype=np.int64))

    for t in range(x + 1, n):
        row = F[t]
        for e in range(x):
            for attempt in range(_MAX_RETRIES):
                k = int(rng.integers(x, t))
                if rng.random() < p:
                    v = k
                else:
                    l = int(rng.integers(0, x))
                    v = int(F[k, l])
                if v not in row[:e]:
                    row[e] = v
                    break
            else:  # pragma: no cover - indicates a logic error
                raise RuntimeError(
                    f"exceeded {_MAX_RETRIES} duplicate-rejection attempts at t={t}"
                )
        edges.append_arrays(np.full(x, t, dtype=np.int64), row.copy())

    if return_attachments:
        return edges, F
    return edges


def _copy_model_fast(
    n: int, x: int, p: float, rng: np.random.Generator, return_attachments: bool
) -> EdgeList | tuple[EdgeList, np.ndarray]:
    """Vectorised Algorithm 3.2: batched draws + bulk duplicate rejection.

    Slots are flattened to ``sid(t, e) = (t - x) * x + e`` for ``t >= x``.
    Each round draws ``(k, coin, l)`` for every slot that still needs a
    value, then runs a release sweep: direct slots become candidates at
    once, copy slots wait until their source slot ``(k, l)`` has *committed*
    — so a copy always reads the final ``F[k, l]``, the same semantics as
    the sequential loop (where ``k < t`` is fully resolved at read time)
    and as the parallel wait-queues.  Candidates commit under the same
    first-wins-per-``(row, value)`` arbitration as
    ``PAGeneralRankProgram._try_assign``; losers join the next round's
    redraw batch.  Chains strictly decrease in node id, so every round
    makes progress and the retry tail shrinks geometrically.
    """
    m = x * (x - 1) // 2 + (n - x) * x
    edges = EdgeList(capacity=m)
    F = np.full((n, x), -1, dtype=np.int64)

    ci, cj = np.triu_indices(x, k=1)
    edges.append_arrays(cj.astype(np.int64), ci.astype(np.int64))

    F[x, :] = np.arange(x)
    edges.append_arrays(np.full(x, x, dtype=np.int64), np.arange(x, dtype=np.int64))

    # flat slot values; node x's slots are the only ones resolved up front
    val = np.full((n - x) * x, -1, dtype=np.int64)
    val[:x] = np.arange(x)

    todo_t = np.repeat(np.arange(x + 1, n, dtype=np.int64), x)
    todo_e = np.tile(np.arange(x, dtype=np.int64), max(n - x - 1, 0))
    pend_dst = np.empty(0, dtype=np.int64)  # slot waiting for a copy value
    pend_src = np.empty(0, dtype=np.int64)  # the slot it copies from

    for _round in range(_MAX_RETRIES):
        nt = len(todo_t)
        if nt == 0 and len(pend_dst) == 0:
            break
        # one batched draw per round: k, coin, then l for the copy subset —
        # the batch analogue of the scalar k/coin/l order per attempt
        k = x + (rng.random(nt) * (todo_t - x)).astype(np.int64)
        direct = rng.random(nt) < p
        dst = (todo_t - x) * x + todo_e
        csel = ~direct
        if csel.any():
            l = (rng.random(int(csel.sum())) * x).astype(np.int64)
            pend_dst = np.concatenate([pend_dst, dst[csel]])
            pend_src = np.concatenate([pend_src, (k[csel] - x) * x + l])

        # initial candidates: this round's direct slots, plus any copy whose
        # source slot has already committed (most sources are old nodes)
        src_val = val[pend_src]
        released = src_val >= 0
        ready_dst = np.concatenate([dst[direct], pend_dst[released]])
        ready_v = np.concatenate([k[direct], src_val[released]])
        pend_dst = pend_dst[~released]
        pend_src = pend_src[~released]

        loser_dst: list[np.ndarray] = []
        while len(ready_dst):
            rows = ready_dst // x + x
            cols = ready_dst % x
            v = ready_v
            # reject values already in the row, first-wins within the batch
            dup_row = (F[rows] == v[:, None]).any(axis=1)
            order = np.lexsort((np.arange(len(rows)), v, rows))
            srow, sv = rows[order], v[order]
            first = np.ones(len(order), dtype=bool)
            first[1:] = (srow[1:] != srow[:-1]) | (sv[1:] != sv[:-1])
            keep = np.zeros(len(rows), dtype=bool)
            keep[order[first]] = True
            win = keep & ~dup_row
            if win.any():
                F[rows[win], cols[win]] = v[win]
                val[ready_dst[win]] = v[win]
            lose = ~win
            if lose.any():
                loser_dst.append(ready_dst[lose])
            # release pending copies whose source slot just committed
            src_val = val[pend_src]
            released = src_val >= 0
            ready_dst = pend_dst[released]
            ready_v = src_val[released]
            pend_dst = pend_dst[~released]
            pend_src = pend_src[~released]

        if loser_dst:
            dst = np.concatenate(loser_dst)
            todo_t = dst // x + x
            todo_e = dst % x
        else:
            todo_t = todo_e = np.empty(0, dtype=np.int64)
    else:  # pragma: no cover - indicates a logic error
        raise RuntimeError(f"exceeded {_MAX_RETRIES} vectorised retry rounds")

    if n > x + 1:
        ts = np.arange(x + 1, n, dtype=np.int64)
        edges.append_arrays(np.repeat(ts, x), F[x + 1 :].reshape(-1))
    if return_attachments:
        return edges, F
    return edges


def _check_params(n: int, x: int, p: float) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    if x > 1 and n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
