"""Sequential copy model (Kumar et al.), the basis of the parallel algorithms.

Section 3.1 of the paper: in each phase ``t``,

1. pick ``k`` uniformly among existing nodes;
2. with probability ``p`` set ``F_t = k`` (a *direct* attachment), otherwise
   set ``F_t = F_k`` (a *copy* attachment).

At ``p = 1/2`` this reproduces the Barabási–Albert attachment probabilities
exactly, and the exponent of the resulting power law varies with ``p``.

Two implementations are provided:

* :func:`copy_model_x1` — the ``x = 1`` case.  All variates are drawn up
  front and the copy chains are resolved by vectorised *pointer jumping*
  (the parallel-algorithms classic: ``ptr <- ptr[ptr]`` until fixed point),
  which finishes in ``O(log L_max) = O(log log n)`` NumPy passes because
  dependency chains are ``O(log n)`` long (Theorem 3.3).
* :func:`copy_model` — the general ``x >= 1`` case with the initial
  ``x``-clique and duplicate-edge rejection, matching Algorithm 3.2's
  sequential semantics.

Both return the attachment table ``F`` on request so analyses (dependency
chains, cross-validation against the parallel engines) can inspect it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["copy_model_x1", "copy_model", "resolve_pointers"]

#: Safety bound on duplicate-rejection attempts per edge slot; a correct
#: configuration retries a handful of times at worst, so hitting this means
#: a logic error rather than bad luck.
_MAX_RETRIES = 10_000


def resolve_pointers(ptr: np.ndarray) -> np.ndarray:
    """Pointer-jump ``ptr`` to its fixed point (``ptr[i] == ptr[ptr[i]]``).

    ``ptr`` must be acyclic-with-self-loops: following pointers from any
    index must reach a self-pointing index.  Each pass squares the distance
    covered, so the number of passes is logarithmic in the longest chain.
    """
    ptr = ptr.copy()
    while True:
        nxt = ptr[ptr]
        if np.array_equal(nxt, ptr):
            return ptr
        ptr = nxt


def copy_model_x1(
    n: int,
    p: float = 0.5,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    return_attachments: bool = False,
) -> EdgeList | tuple[EdgeList, np.ndarray]:
    """Copy-model PA network with one edge per node.

    Parameters
    ----------
    n:
        Number of nodes; nodes are ``0 .. n-1`` and node 1 attaches to 0.
    p:
        Direct-attachment probability; ``0 < p <= 1``.  ``p = 1/2`` gives BA.
    return_attachments:
        Also return ``F`` where ``F[t]`` is the node ``t`` attached to
        (``F[0] = -1``).

    Examples
    --------
    >>> el, F = copy_model_x1(10, seed=1, return_attachments=True)
    >>> len(el), F[0]
    (9, np.int64(-1))
    >>> bool((F[1:] < np.arange(1, 10)).all())
    True
    """
    _check_params(n, 1, p)
    rng = rng or np.random.default_rng(seed)

    F = np.full(n, -1, dtype=np.int64)
    edges = EdgeList(capacity=max(n - 1, 1))
    if n >= 2:
        F[1] = 0
    if n > 2:
        ts = np.arange(2, n, dtype=np.int64)
        # Two uniforms per node in node order (k first, then the coin): the
        # library-wide draw protocol, shared with the parallel engines and
        # the streaming generator so equal seeds give bit-identical graphs.
        u = rng.random(2 * (n - 2))
        k = 1 + (u[0::2] * (ts - 1)).astype(np.int64)
        direct = u[1::2] < p
        # anchor pointers: direct nodes point to themselves, copy nodes to k.
        ptr = np.arange(n, dtype=np.int64)
        ptr[ts[~direct]] = k[~direct]
        anchors = resolve_pointers(ptr)
        # target[a] = the k drawn at direct node a (node 1's "draw" is 0).
        target = np.full(n, -1, dtype=np.int64)
        if n >= 2:
            target[1] = 0
        target[ts[direct]] = k[direct]
        F[2:] = target[anchors[2:]]
    if n >= 2:
        edges.append_arrays(np.arange(1, n), F[1:])
    if return_attachments:
        return edges, F
    return edges


def copy_model(
    n: int,
    x: int = 1,
    p: float = 0.5,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    return_attachments: bool = False,
) -> EdgeList | tuple[EdgeList, np.ndarray]:
    """Copy-model PA network with ``x`` edges per node (Algorithm 3.2, serial).

    Starts from a clique on nodes ``0 .. x-1``; node ``x`` necessarily
    attaches to all clique nodes; every later node ``t`` draws, per edge
    slot, a uniform ``k in [x, t-1]`` and attaches to ``k`` (probability
    ``p``) or to ``F_k[l]`` with ``l`` uniform in ``[0, x)`` (probability
    ``1 - p``), rejecting duplicates.

    Returns the edge list, plus the ``(n, x)`` attachment table if
    ``return_attachments`` (clique rows are ``-1``).
    """
    if x == 1:
        return copy_model_x1(
            n, p=p, seed=seed, rng=rng, return_attachments=return_attachments
        )
    _check_params(n, x, p)
    rng = rng or np.random.default_rng(seed)

    m = x * (x - 1) // 2 + (n - x) * x
    edges = EdgeList(capacity=m)
    F = np.full((n, x), -1, dtype=np.int64)

    for i in range(x):
        for j in range(i + 1, x):
            edges.append(j, i)

    if n > x:
        F[x, :] = np.arange(x)
        edges.append_arrays(np.full(x, x, dtype=np.int64), np.arange(x, dtype=np.int64))

    for t in range(x + 1, n):
        row = F[t]
        for e in range(x):
            for attempt in range(_MAX_RETRIES):
                k = int(rng.integers(x, t))
                if rng.random() < p:
                    v = k
                else:
                    l = int(rng.integers(0, x))
                    v = int(F[k, l])
                if v not in row[:e]:
                    row[e] = v
                    break
            else:  # pragma: no cover - indicates a logic error
                raise RuntimeError(
                    f"exceeded {_MAX_RETRIES} duplicate-rejection attempts at t={t}"
                )
        edges.append_arrays(np.full(x, t, dtype=np.int64), row.copy())

    if return_attachments:
        return edges, F
    return edges


def _check_params(n: int, x: int, p: float) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    if x > 1 and n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
