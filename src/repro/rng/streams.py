"""Per-rank independent random streams built on :class:`numpy.random.SeedSequence`.

The paper's algorithms draw three kinds of random variates per node *t*:

* ``k`` — a uniform random existing node (Line 3 of Algorithm 3.1 / Line 4 of
  Algorithm 3.2),
* ``c`` — a uniform variate in ``[0, 1)`` deciding between the direct
  attachment and the copy attachment,
* ``l`` — for the general case, a uniform index into ``F_k``.

On a real MPI cluster each rank owns an independent stream and draws the
variates for the nodes it owns.  We reproduce that structure exactly: a
:class:`StreamFactory` derives one child :class:`numpy.random.SeedSequence`
per ``(rank, purpose)`` pair, so

* two ranks never share a stream (independence),
* re-running with the same seed reproduces the identical graph,
* the event-driven and the bulk (BSP) implementations can be driven from the
  *same* streams and therefore produce bit-identical graphs, which is how the
  test-suite cross-validates them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["CounterStream", "StreamFactory", "rank_stream", "spawn_streams"]

#: Upper bound on the "purpose" namespace.  Purposes are small integers; each
#: (rank, purpose) pair maps to a unique child of the root seed sequence.
_PURPOSE_SPACE = 64

# SplitMix64 finalizer constants (Steele/Lea/Flood; also xxHash's avalanche).
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
#: Weyl increments decorrelating the slot and draw axes of the counter.
_PHI64 = np.uint64(0x9E3779B97F4A7C15)
_DRAW_STEP = np.uint64(0xC2B2AE3D27D4EB4F)
_INV_2_53 = float(2.0 ** -53)


def _mix64(z: np.ndarray) -> np.ndarray:
    """SplitMix64 avalanche: every input bit flips each output bit w.p. ~1/2.

    Operates in place on (and returns) ``z``, which must be a uint64 array
    the caller owns; integer overflow wraps mod 2**64 by design.
    """
    z ^= z >> np.uint64(30)
    z *= _MIX_1
    z ^= z >> np.uint64(27)
    z *= _MIX_2
    z ^= z >> np.uint64(31)
    return z


class CounterStream:
    """Counter-based, O(1)-seekable stream of uniforms.

    Where :meth:`StreamFactory.substream` returns a *sequential* generator (a
    fresh PCG64 positioned at slot 0 — reaching draw ``i`` means generating
    draws ``0..i-1`` first), a counter stream is a pure function
    ``(slot, draw) -> uniform``: any draw is recomputable in O(1) without
    touching its predecessors, and the evaluation is vectorised over whole
    slot arrays.  This is the primitive the communication-free generators
    (:mod:`repro.core.commfree`) are built on — every rank can re-derive any
    other rank's variates locally instead of requesting them in messages.

    The mapping is SplitMix64 over a keyed Weyl-composed counter
    ``k0 + slot * phi + draw * step`` with a final xor of the second key;
    the two 64-bit keys are derived from the owning factory's root
    :class:`numpy.random.SeedSequence` and the namespace key, so distinct
    ``(seed, key)`` pairs give independent streams while equal pairs are
    bit-reproducible across processes (the object is trivially picklable
    and fork-safe: its state is two integers).

    Examples
    --------
    >>> cs = StreamFactory(7).counter_substream(9, 0, 0)
    >>> bool(np.all(cs.uniforms(np.arange(4)) ==
    ...             StreamFactory(7).counter_substream(9, 0, 0).uniforms(np.arange(4))))
    True
    >>> float(cs.uniforms(3)) == float(cs.uniforms(np.array([5, 3, 1]))[1])
    True
    """

    __slots__ = ("_k0", "_k1")

    def __init__(self, entropy, key: tuple[int, ...]) -> None:
        child = np.random.SeedSequence(entropy=entropy, spawn_key=key)
        k0, k1 = child.generate_state(2, dtype=np.uint64)
        self._k0 = np.uint64(k0)
        self._k1 = np.uint64(k1)

    def hashes(self, slot, draw=0) -> np.ndarray:
        """Raw 64-bit hash words for ``(slot, draw)`` pairs.

        ``slot`` and ``draw`` are integers or integer arrays (broadcast
        together); the result has the broadcast shape, dtype uint64 with all
        64 bits uniform.  ``hashes(s, d)`` depends only on the stream's key
        and ``(s, d)`` — never on what was drawn before — which is what
        makes any draw O(1)-recomputable by any rank.  Hot callers split
        one word into several bounded variates instead of paying one hash
        per variate (see :mod:`repro.core.commfree`).
        """
        scalar = np.ndim(slot) == 0 and np.ndim(draw) == 0
        z = np.atleast_1d(np.asarray(slot, dtype=np.uint64)) * _PHI64
        d = np.atleast_1d(np.asarray(draw, dtype=np.uint64))
        if d.shape == (1,) and z.shape != (1,):
            if d[0]:
                z += d * _DRAW_STEP
        else:
            z = z + d * _DRAW_STEP
        z += self._k0
        z = _mix64(z)
        z ^= self._k1
        return z[0] if scalar else z

    def uniforms(self, slot, draw=0) -> np.ndarray:
        """Uniform variates in ``[0, 1)`` for ``(slot, draw)`` pairs.

        Float64 view of :meth:`hashes` with 53 random bits per variate.
        """
        return (self.hashes(slot, draw) >> np.uint64(11)) * _INV_2_53

    def __getstate__(self):
        return (int(self._k0), int(self._k1))

    def __setstate__(self, state):
        self._k0 = np.uint64(state[0])
        self._k1 = np.uint64(state[1])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterStream):
            return NotImplemented
        return self._k0 == other._k0 and self._k1 == other._k1

    def __hash__(self) -> int:
        return hash((int(self._k0), int(self._k1)))

    def __repr__(self) -> str:
        return f"CounterStream(k0={int(self._k0):#x}, k1={int(self._k1):#x})"


class StreamFactory:
    """Derive independent :class:`numpy.random.Generator` streams from one seed.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws entropy from the OS (non-reproducible).

    Examples
    --------
    >>> f = StreamFactory(42)
    >>> g0 = f.stream(rank=0)
    >>> g1 = f.stream(rank=1)
    >>> g0 is not g1
    True
    >>> f2 = StreamFactory(42)
    >>> bool(np.all(f2.stream(0).integers(0, 100, 8) == StreamFactory(42).stream(0).integers(0, 100, 8)))
    True
    """

    def __init__(self, seed: int | None = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self.seed = seed

    def stream(self, rank: int, purpose: int = 0) -> np.random.Generator:
        """Return the generator for ``(rank, purpose)``.

        The same ``(rank, purpose)`` pair always yields a *fresh* generator
        positioned at the start of the same underlying stream, so callers that
        need to re-draw an identical sequence (e.g. the cross-validation
        between the BSP and event-driven engines) simply request the stream
        again.
        """
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        if not 0 <= purpose < _PURPOSE_SPACE:
            raise ValueError(f"purpose must be in [0, {_PURPOSE_SPACE}), got {purpose}")
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(rank, purpose),
        )
        return np.random.Generator(np.random.PCG64(child))

    def streams(self, ranks: Iterable[int], purpose: int = 0) -> list[np.random.Generator]:
        """Vector form of :meth:`stream`."""
        return [self.stream(r, purpose) for r in ranks]

    def substream(self, *key: int) -> np.random.Generator:
        """Return a generator keyed by an arbitrary integer tuple.

        Used for draws that must be reproducible *per logical entity* rather
        than per rank — e.g. the event-driven general-case retry of edge slot
        ``(t, e)`` at attempt ``a`` draws from ``substream(NS, t, e, a)``, so
        the redraw sequence is a function of the slot alone and not of the
        message arrival order that triggered it (the property the schedule
        fuzzer asserts).

        Keys of length 2 are rejected: they would collide with the
        ``(rank, purpose)`` spawn keys of :meth:`stream`.  Callers namespace
        their keys with a leading constant.
        """
        if len(key) == 2:
            raise ValueError(
                "2-element substream keys collide with (rank, purpose) "
                "stream keys; prepend a namespace constant"
            )
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(int(k) for k in key),
        )
        return np.random.Generator(np.random.PCG64(child))

    def counter_substream(self, *key: int) -> CounterStream:
        """Return the counter-based, O(1)-seekable substream for ``key``.

        The sequential :meth:`substream` answers "give me slot ``k``'s
        private stream"; this answers the stronger question the
        communication-free generators need — "give me draw ``(slot, d)``
        of the keyed stream, for a whole *array* of slots, without
        generating anything that came before".  Same key rules as
        :meth:`substream` (2-element keys are rejected: they would collide
        with ``(rank, purpose)`` stream keys), and the same reproducibility
        contract: equal ``(seed, key)`` yield bit-identical draws in any
        process, which is what makes every rank able to recompute any
        other rank's variates locally.
        """
        if len(key) == 2:
            raise ValueError(
                "2-element substream keys collide with (rank, purpose) "
                "stream keys; prepend a namespace constant"
            )
        return CounterStream(self._root.entropy, tuple(int(k) for k in key))


def rank_stream(seed: int | None, rank: int, purpose: int = 0) -> np.random.Generator:
    """Convenience wrapper: one-off stream for ``(seed, rank, purpose)``."""
    return StreamFactory(seed).stream(rank, purpose)


def spawn_streams(seed: int | None, nranks: int, purpose: int = 0) -> list[np.random.Generator]:
    """Return one independent generator for each of ``nranks`` ranks."""
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    return StreamFactory(seed).streams(range(nranks), purpose)
