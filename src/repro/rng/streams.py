"""Per-rank independent random streams built on :class:`numpy.random.SeedSequence`.

The paper's algorithms draw three kinds of random variates per node *t*:

* ``k`` — a uniform random existing node (Line 3 of Algorithm 3.1 / Line 4 of
  Algorithm 3.2),
* ``c`` — a uniform variate in ``[0, 1)`` deciding between the direct
  attachment and the copy attachment,
* ``l`` — for the general case, a uniform index into ``F_k``.

On a real MPI cluster each rank owns an independent stream and draws the
variates for the nodes it owns.  We reproduce that structure exactly: a
:class:`StreamFactory` derives one child :class:`numpy.random.SeedSequence`
per ``(rank, purpose)`` pair, so

* two ranks never share a stream (independence),
* re-running with the same seed reproduces the identical graph,
* the event-driven and the bulk (BSP) implementations can be driven from the
  *same* streams and therefore produce bit-identical graphs, which is how the
  test-suite cross-validates them.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["StreamFactory", "rank_stream", "spawn_streams"]

#: Upper bound on the "purpose" namespace.  Purposes are small integers; each
#: (rank, purpose) pair maps to a unique child of the root seed sequence.
_PURPOSE_SPACE = 64


class StreamFactory:
    """Derive independent :class:`numpy.random.Generator` streams from one seed.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` draws entropy from the OS (non-reproducible).

    Examples
    --------
    >>> f = StreamFactory(42)
    >>> g0 = f.stream(rank=0)
    >>> g1 = f.stream(rank=1)
    >>> g0 is not g1
    True
    >>> f2 = StreamFactory(42)
    >>> bool(np.all(f2.stream(0).integers(0, 100, 8) == StreamFactory(42).stream(0).integers(0, 100, 8)))
    True
    """

    def __init__(self, seed: int | None = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self.seed = seed

    def stream(self, rank: int, purpose: int = 0) -> np.random.Generator:
        """Return the generator for ``(rank, purpose)``.

        The same ``(rank, purpose)`` pair always yields a *fresh* generator
        positioned at the start of the same underlying stream, so callers that
        need to re-draw an identical sequence (e.g. the cross-validation
        between the BSP and event-driven engines) simply request the stream
        again.
        """
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        if not 0 <= purpose < _PURPOSE_SPACE:
            raise ValueError(f"purpose must be in [0, {_PURPOSE_SPACE}), got {purpose}")
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(rank, purpose),
        )
        return np.random.Generator(np.random.PCG64(child))

    def streams(self, ranks: Iterable[int], purpose: int = 0) -> list[np.random.Generator]:
        """Vector form of :meth:`stream`."""
        return [self.stream(r, purpose) for r in ranks]

    def substream(self, *key: int) -> np.random.Generator:
        """Return a generator keyed by an arbitrary integer tuple.

        Used for draws that must be reproducible *per logical entity* rather
        than per rank — e.g. the event-driven general-case retry of edge slot
        ``(t, e)`` at attempt ``a`` draws from ``substream(NS, t, e, a)``, so
        the redraw sequence is a function of the slot alone and not of the
        message arrival order that triggered it (the property the schedule
        fuzzer asserts).

        Keys of length 2 are rejected: they would collide with the
        ``(rank, purpose)`` spawn keys of :meth:`stream`.  Callers namespace
        their keys with a leading constant.
        """
        if len(key) == 2:
            raise ValueError(
                "2-element substream keys collide with (rank, purpose) "
                "stream keys; prepend a namespace constant"
            )
        child = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(int(k) for k in key),
        )
        return np.random.Generator(np.random.PCG64(child))


def rank_stream(seed: int | None, rank: int, purpose: int = 0) -> np.random.Generator:
    """Convenience wrapper: one-off stream for ``(seed, rank, purpose)``."""
    return StreamFactory(seed).stream(rank, purpose)


def spawn_streams(seed: int | None, nranks: int, purpose: int = 0) -> list[np.random.Generator]:
    """Return one independent generator for each of ``nranks`` ranks."""
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    return StreamFactory(seed).streams(range(nranks), purpose)
