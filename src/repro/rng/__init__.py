"""Deterministic random-number stream management.

Everything random in :mod:`repro` flows from a single integer seed through
:class:`StreamFactory`, which hands out statistically independent
:class:`numpy.random.Generator` streams keyed by ``(rank, purpose)``.  This
mirrors how a careful MPI code seeds one independent stream per rank, and it
is what makes every run reproducible given ``(seed, n, x, p, P, scheme)``.
"""

from repro.rng.streams import CounterStream, StreamFactory, rank_stream, spawn_streams

__all__ = ["CounterStream", "StreamFactory", "rank_stream", "spawn_streams"]
