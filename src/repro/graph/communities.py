"""Community detection: asynchronous label propagation + modularity.

A lightweight community toolkit for the generated networks:

* :func:`label_propagation` — Raghavan et al.'s near-linear-time algorithm:
  nodes repeatedly adopt their neighbourhood's most frequent label (ties
  broken randomly) until labels are stable.  Non-deterministic by nature;
  seeded here for reproducibility.
* :func:`modularity` — Newman's Q for a given labelling.

Pure PA graphs are an instructive *negative control*: they lack planted
community structure, so label propagation finds either one giant community
or a weak partition with low modularity — whereas a planted-partition
benchmark graph (see the tests) is recovered cleanly.  Exposing that
contrast is the point of shipping the tool with a generator library.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.metrics import adjacency_from_edges

__all__ = ["label_propagation", "modularity"]


def label_propagation(
    edges: EdgeList,
    num_nodes: int | None = None,
    max_rounds: int = 100,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Community label per node via asynchronous label propagation.

    Examples
    --------
    >>> el = EdgeList.from_arrays([1, 2, 2, 4, 5, 5], [0, 0, 1, 3, 3, 4])
    >>> labels = label_propagation(el, 6, seed=0)
    >>> len(set(labels[:3])) == 1 and len(set(labels[3:])) == 1
    True
    >>> bool(labels[0] != labels[3])
    True
    """
    rng = rng or np.random.default_rng(seed)
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    indptr, nbrs = adjacency_from_edges(edges, n)
    labels = np.arange(n, dtype=np.int64)

    order = np.arange(n)
    for _round in range(max_rounds):
        rng.shuffle(order)
        changed = 0
        for v in order.tolist():
            span = nbrs[indptr[v]:indptr[v + 1]]
            if len(span) == 0:
                continue
            neigh_labels = labels[span]
            values, counts = np.unique(neigh_labels, return_counts=True)
            best = values[counts == counts.max()]
            new = int(best[rng.integers(0, len(best))]) if len(best) > 1 else int(best[0])
            if new != labels[v]:
                labels[v] = new
                changed += 1
        if changed == 0:
            break
    # compact labels to 0..k-1
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def modularity(edges: EdgeList, labels: np.ndarray, num_nodes: int | None = None) -> float:
    """Newman modularity Q of a labelling.

    ``Q = (1/2m) Σ_ij (A_ij − d_i d_j / 2m) δ(c_i, c_j)``, computed in
    O(n + m) from per-community internal-edge and degree totals.

    Examples
    --------
    >>> el = EdgeList.from_arrays([1, 3], [0, 2])   # two disjoint dyads
    >>> round(modularity(el, np.array([0, 0, 1, 1]), 4), 3)
    0.5
    """
    n = num_nodes if num_nodes is not None else edges.num_nodes
    labels = np.asarray(labels)
    if len(labels) != n:
        raise ValueError(f"labels cover {len(labels)} nodes, graph has {n}")
    m = len(edges)
    if m == 0:
        return 0.0
    from repro.graph.degree import degrees_from_edges

    deg = degrees_from_edges(edges, n).astype(np.float64)
    ncomm = int(labels.max()) + 1 if n else 0
    internal = np.zeros(ncomm)
    same = labels[edges.sources] == labels[edges.targets]
    np.add.at(internal, labels[edges.sources[same]], 1.0)
    comm_degree = np.zeros(ncomm)
    np.add.at(comm_degree, labels, deg)
    q = (internal / m - (comm_degree / (2.0 * m)) ** 2).sum()
    return float(q)
