"""Degree-preserving randomisation (double-edge swaps) and null models.

Network analyses ask "is this structure more than the degree sequence
forces?"  The standard answer compares against the *configuration-model
null*: the same degree sequence with everything else randomised.  This
module provides:

* :func:`double_edge_swap` — the Markov-chain null-model sampler: pick two
  edges ``(a, b), (c, d)``, rewire to ``(a, d), (c, b)`` when that creates
  neither self-loops nor duplicates.  Degrees are exactly preserved.
* :func:`normalized_rich_club` — the rich-club coefficient divided by its
  null-model expectation (Colizza et al.), removing the mechanical
  degree-sequence contribution that raw ``phi`` includes.

The generated PA graphs make an instructive subject (and the test-suite
pins both effects):

* the simple-graph configuration null is *structurally disassortative* for
  heavy-tailed degrees — forbidding multi-edges starves hub-hub pairs — so
  randomisation drives assortativity *more* negative than BA's own mild
  disassortativity;
* the normalised rich club of a PA graph stays well above 1: early hubs
  attached to each other while the network was small, a temporal
  correlation the degree sequence alone does not reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["double_edge_swap", "normalized_rich_club"]


def double_edge_swap(
    edges: EdgeList,
    nswap: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    max_tries_factor: int = 20,
) -> EdgeList:
    """Return a degree-preserving randomisation of ``edges``.

    Performs ``nswap`` successful swaps (each touching two edges); proposals
    creating self-loops or duplicate edges are rejected and retried, up to
    ``max_tries_factor * nswap`` proposals in total.

    Examples
    --------
    >>> from repro.seq.copy_model import copy_model
    >>> el = copy_model(200, x=2, seed=0)
    >>> swapped = double_edge_swap(el, 300, seed=1)
    >>> from repro.graph.degree import degrees_from_edges
    >>> bool((degrees_from_edges(swapped, 200) == degrees_from_edges(el, 200)).all())
    True
    """
    if nswap < 0:
        raise ValueError(f"nswap must be >= 0, got {nswap}")
    rng = rng or np.random.default_rng(seed)
    m = len(edges)
    if m < 2 and nswap > 0:
        raise ValueError("need at least 2 edges to swap")
    u = edges.sources.copy()
    v = edges.targets.copy()
    present = {(int(min(a, b)), int(max(a, b))) for a, b in zip(u, v)}

    done = 0
    tries = 0
    budget = max_tries_factor * max(nswap, 1)
    while done < nswap and tries < budget:
        tries += 1
        i, j = rng.integers(0, m, size=2)
        if i == j:
            continue
        a, b = int(u[i]), int(v[i])
        c, d = int(u[j]), int(v[j])
        # proposed: (a, d) and (c, b)
        if a == d or c == b:
            continue
        p1 = (min(a, d), max(a, d))
        p2 = (min(c, b), max(c, b))
        if p1 in present or p2 in present or p1 == p2:
            continue
        present.discard((min(a, b), max(a, b)))
        present.discard((min(c, d), max(c, d)))
        present.add(p1)
        present.add(p2)
        v[i], v[j] = d, b
        done += 1
    return EdgeList.from_arrays(u, v)


def normalized_rich_club(
    edges: EdgeList,
    num_nodes: int | None = None,
    fraction: float = 0.01,
    null_swaps_per_edge: float = 3.0,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> tuple[float, float, float]:
    """Rich-club coefficient normalised by a degree-preserving null model.

    Returns ``(rho, phi, phi_null)`` with ``rho = phi / phi_null``;
    ``rho > 1`` indicates hub interconnection beyond what the degree
    sequence forces.
    """
    from repro.graph.analysis import rich_club_coefficient

    rng = rng or np.random.default_rng(seed)
    phi = rich_club_coefficient(edges, num_nodes, fraction)
    nswap = int(null_swaps_per_edge * len(edges))
    null = double_edge_swap(edges, nswap, rng=rng)
    phi_null = rich_club_coefficient(null, num_nodes, fraction)
    if phi_null == 0:
        return float("inf") if phi > 0 else 1.0, phi, phi_null
    return phi / phi_null, phi, phi_null
