"""Discrete power-law exponent estimation.

The paper reports γ ≈ 2.7 for the degree distribution of the generated
network (Section 4.2).  We estimate γ two ways:

* :func:`fit_powerlaw` — the discrete maximum-likelihood estimator of
  Clauset, Shalizi & Newman (2009): γ̂ maximises the zeta-distribution
  likelihood over degrees ``k ≥ k_min``; the Hill approximation
  ``γ̂ ≈ 1 + n / Σ ln(k_i / (k_min - 1/2))`` seeds the optimiser.  A
  Kolmogorov–Smirnov distance between the fitted and empirical tails
  quantifies fit quality, and ``k_min`` can be selected by KS minimisation.
* :func:`fit_ccdf_slope` — a least-squares slope on the log–log CCDF, the
  quick-and-dirty estimator many papers (including this one, most likely)
  actually use.  For a power law with exponent γ the CCDF slope is
  ``1 - γ``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, special

from repro.graph.degree import ccdf

__all__ = ["PowerLawFit", "fit_powerlaw", "fit_ccdf_slope"]


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a power-law tail fit.

    Attributes
    ----------
    gamma:
        Estimated exponent γ in ``P(k) ∝ k^{-γ}``.
    k_min:
        Smallest degree included in the tail fit.
    ks_distance:
        Kolmogorov–Smirnov distance between fitted and empirical tail CDFs.
    n_tail:
        Number of observations with ``k >= k_min``.
    """

    gamma: float
    k_min: int
    ks_distance: float
    n_tail: int

    def __str__(self) -> str:
        return (
            f"PowerLawFit(gamma={self.gamma:.3f}, k_min={self.k_min}, "
            f"ks={self.ks_distance:.4f}, n_tail={self.n_tail})"
        )


def _zeta_tail(gamma: float, k_min: int) -> float:
    """Hurwitz zeta ζ(γ, k_min) — the normaliser of the discrete power law."""
    return float(special.zeta(gamma, k_min))


def _mle_gamma(degrees: np.ndarray, k_min: int) -> float:
    """Maximise the discrete power-law log-likelihood in γ."""
    tail = degrees[degrees >= k_min].astype(np.float64)
    n = tail.size
    sum_log = np.log(tail).sum()

    def neg_loglik(gamma: float) -> float:
        if gamma <= 1.0001:
            return np.inf
        return n * np.log(_zeta_tail(gamma, k_min)) + gamma * sum_log

    # Hill-style seed, then bounded scalar minimisation.
    seed = 1.0 + n / np.log(tail / (k_min - 0.5)).sum()
    lo, hi = max(1.01, seed - 1.5), seed + 1.5
    res = optimize.minimize_scalar(neg_loglik, bounds=(lo, hi), method="bounded")
    return float(res.x)


def _ks_tail(degrees: np.ndarray, gamma: float, k_min: int) -> float:
    """KS distance between empirical and fitted tail CDFs."""
    tail = np.sort(degrees[degrees >= k_min])
    if tail.size == 0:
        return np.inf
    ks, values = 0.0, np.unique(tail)
    z = _zeta_tail(gamma, k_min)
    # Fitted CDF at k: 1 - zeta(gamma, k+1)/zeta(gamma, k_min)
    fitted = 1.0 - special.zeta(gamma, values + 1) / z
    empirical = np.searchsorted(tail, values, side="right") / tail.size
    ks = float(np.abs(empirical - fitted).max())
    return ks


def fit_powerlaw(
    degrees: np.ndarray,
    k_min: int | None = None,
    k_min_candidates: int = 20,
) -> PowerLawFit:
    """Fit a discrete power law to the degree tail.

    Parameters
    ----------
    degrees:
        Degree of every node.
    k_min:
        Fixed tail cutoff; when ``None``, scan candidate cutoffs and keep the
        one minimising the KS distance (Clauset et al.'s procedure, over a
        bounded candidate set for speed).
    k_min_candidates:
        How many distinct small degrees to consider as cutoffs.

    Examples
    --------
    >>> rng = np.random.default_rng(0)
    >>> u = rng.random(200_000)
    >>> k = np.floor(u ** (-1 / 1.7)).astype(int)   # gamma = 2.7 tail
    >>> fit = fit_powerlaw(k, k_min=2)
    >>> 2.4 < fit.gamma < 3.0
    True
    """
    degrees = np.asarray(degrees)
    degrees = degrees[degrees > 0]
    if degrees.size < 10:
        raise ValueError(f"need at least 10 positive degrees, got {degrees.size}")
    if k_min is not None:
        gamma = _mle_gamma(degrees, k_min)
        return PowerLawFit(
            gamma=gamma,
            k_min=k_min,
            ks_distance=_ks_tail(degrees, gamma, k_min),
            n_tail=int((degrees >= k_min).sum()),
        )
    candidates = np.unique(degrees)
    candidates = candidates[: min(len(candidates), k_min_candidates)]
    best: PowerLawFit | None = None
    for km in candidates:
        n_tail = int((degrees >= km).sum())
        if n_tail < 50:
            break
        gamma = _mle_gamma(degrees, int(km))
        ks = _ks_tail(degrees, gamma, int(km))
        fit = PowerLawFit(gamma=gamma, k_min=int(km), ks_distance=ks, n_tail=n_tail)
        if best is None or fit.ks_distance < best.ks_distance:
            best = fit
    assert best is not None
    return best


def fit_ccdf_slope(degrees: np.ndarray, k_min: int = 1) -> float:
    """Estimate γ from the log–log CCDF slope (γ = 1 − slope).

    Cruder than the MLE but robust for eyeballing — the estimator behind a
    "measured to be 2.7" statement in a systems paper.
    """
    k, tail = ccdf(np.asarray(degrees))
    keep = k >= k_min
    k, tail = k[keep], tail[keep]
    if k.size < 3:
        raise ValueError("not enough distinct degrees for a slope fit")
    slope, _ = np.polyfit(np.log(k), np.log(tail), 1)
    return float(1.0 - slope)
