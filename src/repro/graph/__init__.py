"""Graph containers, statistics, and validation utilities.

* :mod:`repro.graph.edgelist` — the compact NumPy edge-list container every
  generator produces;
* :mod:`repro.graph.degree` — degree sequences, empirical distributions,
  CCDFs, and logarithmic binning (what Figure 4 plots);
* :mod:`repro.graph.powerlaw` — discrete maximum-likelihood power-law
  exponent estimation and KS distance (the γ ≈ 2.7 measurement);
* :mod:`repro.graph.metrics` — clustering, connected components,
  assortativity (sampled where exact computation would not scale);
* :mod:`repro.graph.theory` — the closed-form BA degree law and the
  chi-square goodness-of-fit certifier;
* :mod:`repro.graph.analysis` — exact k-cores, triangle counts, rich club;
* :mod:`repro.graph.sampling` — node/endpoint/snowball sampling estimators;
* :mod:`repro.graph.communities` — label propagation and modularity;
* :mod:`repro.graph.rewire` — degree-preserving null models;
* :mod:`repro.graph.validation` — structural invariants of PA graphs
  (no self-loops, no parallel edges, exactly ``x`` smaller-id neighbours);
* :mod:`repro.graph.io` — per-rank edge-file output and merging, mirroring
  the paper's shared-file-system model.
"""

from repro.graph.edgelist import EdgeList
from repro.graph.degree import (
    ccdf,
    degree_distribution,
    degrees_from_edges,
    log_binned_distribution,
)
from repro.graph.powerlaw import fit_powerlaw, PowerLawFit
from repro.graph.validation import validate_pa_graph, ValidationReport

__all__ = [
    "EdgeList",
    "PowerLawFit",
    "ValidationReport",
    "ccdf",
    "degree_distribution",
    "degrees_from_edges",
    "fit_powerlaw",
    "log_binned_distribution",
    "validate_pa_graph",
]
