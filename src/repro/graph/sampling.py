"""Graph sampling: estimate structural quantities without full passes.

For billion-edge networks even linear-time metrics are expensive; standard
practice samples.  These helpers implement the three canonical designs with
their known estimator properties (documented and tested):

* :func:`node_sample` — uniform nodes; unbiased for node-average
  quantities (mean degree, degree distribution);
* :func:`edge_endpoint_sample` — endpoints of uniform edges; *size-biased*
  (probability ∝ degree), the textbook "friendship paradox" sampler, useful
  for hub discovery and for estimating ``E[d²]/E[d]``;
* :func:`snowball_sample` — BFS ball around a seed; preserves local
  structure, biased toward the seed's community.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.metrics import adjacency_from_edges

__all__ = [
    "node_sample",
    "edge_endpoint_sample",
    "snowball_sample",
    "estimate_mean_degree",
    "friendship_paradox_ratio",
]


def node_sample(
    n: int, size: int, rng: np.random.Generator | None = None, seed: int | None = None
) -> np.ndarray:
    """Uniform node ids without replacement."""
    rng = rng or np.random.default_rng(seed)
    if size > n:
        raise ValueError(f"sample size {size} exceeds n={n}")
    return rng.choice(n, size=size, replace=False)


def edge_endpoint_sample(
    edges: EdgeList,
    size: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Node ids drawn as uniform-edge endpoints (degree-proportional).

    Each draw picks a uniform edge, then a uniform endpoint of it — node
    ``v`` appears with probability ``d_v / 2m``.
    """
    rng = rng or np.random.default_rng(seed)
    m = len(edges)
    if m == 0:
        raise ValueError("cannot endpoint-sample an empty edge list")
    idx = rng.integers(0, m, size=size)
    side = rng.integers(0, 2, size=size)
    return np.where(side == 0, edges.sources[idx], edges.targets[idx])


def snowball_sample(
    edges: EdgeList,
    seed_node: int,
    max_nodes: int,
    num_nodes: int | None = None,
) -> np.ndarray:
    """BFS ball: the first ``max_nodes`` nodes reached from ``seed_node``."""
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if not 0 <= seed_node < n:
        raise ValueError(f"seed node {seed_node} outside [0, {n})")
    indptr, nbrs = adjacency_from_edges(edges, n)
    seen = np.zeros(n, dtype=bool)
    seen[seed_node] = True
    order = [seed_node]
    q = deque([seed_node])
    while q and len(order) < max_nodes:
        v = q.popleft()
        for w in nbrs[indptr[v]:indptr[v + 1]].tolist():
            if not seen[w]:
                seen[w] = True
                order.append(w)
                q.append(w)
                if len(order) >= max_nodes:
                    break
    return np.array(order[:max_nodes], dtype=np.int64)


def estimate_mean_degree(
    degrees: np.ndarray,
    sample_size: int,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> tuple[float, float]:
    """Unbiased mean-degree estimate from a uniform node sample.

    Returns ``(estimate, standard_error)``.
    """
    rng = rng or np.random.default_rng(seed)
    picks = node_sample(len(degrees), sample_size, rng=rng)
    vals = degrees[picks].astype(np.float64)
    return float(vals.mean()), float(vals.std(ddof=1) / np.sqrt(sample_size))


def friendship_paradox_ratio(
    edges: EdgeList,
    degrees: np.ndarray,
    sample_size: int = 2000,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> float:
    """Mean degree of sampled *neighbours* over mean degree of *nodes*.

    "Your friends have more friends than you": the ratio estimates
    ``E[d²]/E[d]²`` and blows up for heavy-tailed graphs — a cheap
    scale-freeness probe used by the examples.
    """
    rng = rng or np.random.default_rng(seed)
    neighbours = edge_endpoint_sample(edges, sample_size, rng=rng)
    mean_neighbour = degrees[neighbours].mean()
    mean_node = degrees.mean()
    if mean_node == 0:
        return 0.0
    return float(mean_neighbour / mean_node)
