"""Compact growable edge-list container.

Generating billions of edges rules out per-edge Python objects; every
generator in this repository therefore produces an :class:`EdgeList`, a thin
wrapper over two ``int64`` NumPy arrays with amortised-O(1) bulk append.
This is the Python analogue of the paper's in-memory edge arrays ("each of
the algorithms we considered generates the network in the main memory").

The container is undirected in meaning but stores each edge once as the
ordered pair ``(u, v)`` in generation order; for PA graphs the convention is
``u > v`` (node ``u`` attached to the earlier node ``v``), which several
validation checks rely on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["EdgeList"]


class EdgeList:
    """A growable list of edges backed by NumPy arrays.

    Parameters
    ----------
    capacity:
        Initial buffer capacity in edges.

    Examples
    --------
    >>> el = EdgeList()
    >>> el.append_arrays(np.array([1, 2, 3]), np.array([0, 0, 1]))
    >>> len(el)
    3
    >>> el.num_nodes
    4
    """

    __slots__ = ("_u", "_v", "_size", "_max_node")

    def __init__(self, capacity: int = 1024) -> None:
        capacity = max(int(capacity), 1)
        self._u = np.empty(capacity, dtype=np.int64)
        self._v = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._max_node = -1  # running max node id; -1 when empty

    # ------------------------------------------------------------- building
    @classmethod
    def from_arrays(cls, u: np.ndarray, v: np.ndarray, copy: bool = True) -> "EdgeList":
        """Build an edge list from two equal-length integer arrays.

        With ``copy=False`` the list wraps the given arrays directly —
        zero-copy, which is what lets :func:`repro.graph.io.read_edges_binary`
        expose a multi-gigabyte on-disk file as memmap-backed views without
        pulling it into RAM.  Appending to a zero-copy list falls back to an
        ordinary in-RAM reallocation (the wrapped arrays are never mutated).
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError(f"u and v must be equal-length 1-D arrays, got {u.shape} and {v.shape}")
        if not copy:
            el = cls(capacity=1)
            if len(u):
                el._u, el._v = u, v
                el._size = len(u)
                el._max_node = int(max(u.max(), v.max()))
            return el
        el = cls(capacity=max(len(u), 1))
        el._u[: len(u)] = u
        el._v[: len(v)] = v
        el._size = len(u)
        if len(u):
            el._max_node = int(max(u.max(), v.max()))
        return el

    @staticmethod
    def spilled(directory, budget_bytes: int = 64 << 20):
        """An API-compatible spill-to-disk edge list (out-of-core runs).

        Returns a :class:`repro.core.spill.SpillEdgeList`: appends buffer in
        at most ``budget_bytes`` of RAM and flush to segment files under
        ``directory``; reads come back as read-only memmap views.  See
        ``docs/performance.md`` (out-of-core section).
        """
        from repro.core.spill import SpillEdgeList

        return SpillEdgeList(directory, budget_bytes=budget_bytes)

    def _grow_to(self, needed: int) -> None:
        cap = len(self._u)
        if needed <= cap:
            return
        # one fresh allocation per array + one copy of the live prefix (the
        # previous np.concatenate built an extra temporary per growth step)
        new_cap = max(needed, cap * 2)
        new_u = np.empty(new_cap, dtype=np.int64)
        new_v = np.empty(new_cap, dtype=np.int64)
        new_u[: self._size] = self._u[: self._size]
        new_v[: self._size] = self._v[: self._size]
        self._u, self._v = new_u, new_v

    def append(self, u: int, v: int) -> None:
        """Append one edge (scalar path; prefer :meth:`append_arrays` in bulk)."""
        self._grow_to(self._size + 1)
        self._u[self._size] = u
        self._v[self._size] = v
        self._size += 1
        if u > self._max_node:
            self._max_node = int(u)
        if v > self._max_node:
            self._max_node = int(v)

    def append_arrays(self, u: np.ndarray, v: np.ndarray) -> None:
        """Append a batch of edges."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape:
            raise ValueError("batch arrays must have equal length")
        self._grow_to(self._size + len(u))
        self._u[self._size : self._size + len(u)] = u
        self._v[self._size : self._size + len(v)] = v
        self._size += len(u)
        if len(u):
            self._max_node = max(self._max_node, int(max(u.max(), v.max())))

    def extend(self, other: "EdgeList") -> None:
        """Append all edges of another edge list."""
        self.append_arrays(other.sources, other.targets)

    # -------------------------------------------------------------- viewing
    @property
    def sources(self) -> np.ndarray:
        """The ``u`` endpoints, one per edge (view; do not mutate)."""
        return self._u[: self._size]

    @property
    def targets(self) -> np.ndarray:
        """The ``v`` endpoints, one per edge (view; do not mutate)."""
        return self._v[: self._size]

    def __len__(self) -> int:
        return self._size

    @property
    def num_edges(self) -> int:
        return self._size

    @property
    def num_nodes(self) -> int:
        """1 + max node id (0 for an empty list).

        O(1): the max node id is maintained incrementally by the append
        paths rather than rescanned on every access.
        """
        if self._size == 0:
            return 0
        return self._max_node + 1

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for i in range(self._size):
            yield int(self._u[i]), int(self._v[i])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        return (
            self._size == other._size
            and bool(np.array_equal(self.sources, other.sources))
            and bool(np.array_equal(self.targets, other.targets))
        )

    def __hash__(self) -> int:  # pragma: no cover - containers are unhashable
        raise TypeError("EdgeList is mutable and unhashable")

    def __repr__(self) -> str:
        return f"EdgeList(num_edges={self._size}, num_nodes={self.num_nodes})"

    # ---------------------------------------------------------- conversions
    def as_array(self) -> np.ndarray:
        """``(m, 2)`` array of edges in generation order."""
        return np.column_stack([self.sources, self.targets])

    def canonical(self) -> np.ndarray:
        """``(m, 2)`` array with each edge as ``(min, max)``, row-sorted.

        Canonical form is order-insensitive, which is how tests compare
        graphs produced by different execution engines.
        """
        lo = np.minimum(self.sources, self.targets)
        hi = np.maximum(self.sources, self.targets)
        arr = np.column_stack([lo, hi])
        order = np.lexsort((arr[:, 1], arr[:, 0]))
        return arr[order]

    def has_duplicates(self) -> bool:
        """True if any undirected edge appears more than once."""
        if self._size == 0:
            return False
        canon = self.canonical()
        return bool((np.diff(canon, axis=0) == 0).all(axis=1).any())

    def has_self_loops(self) -> bool:
        return bool((self.sources == self.targets).any())

    def to_networkx(self):
        """Convert to ``networkx.Graph`` (test/analysis convenience)."""
        import networkx as nx

        g = nx.Graph()
        g.add_edges_from(zip(self.sources.tolist(), self.targets.tolist()))
        return g

    def copy(self) -> "EdgeList":
        return EdgeList.from_arrays(self.sources, self.targets)
