"""Structural invariants of preferential-attachment graphs.

Algorithm 3.2 promises (and the test-suite verifies) that a generated graph
with parameters ``(n, x)`` satisfies:

* exactly ``C(x, 2)`` clique edges among nodes ``0 .. x-1`` plus ``x`` edges
  for every node ``t >= x`` — ``m = C(x,2) + (n - x) * x`` in total
  (for ``x = 1``: one edge per node ``t >= 1``, ``m = n - 1``);
* every non-clique edge attaches a node ``t`` to a strictly smaller node id
  (the evolving-network property);
* no self-loops;
* no parallel (duplicate) edges;
* every node ``t >= x`` has exactly ``x`` *distinct* smaller neighbours.

:func:`validate_pa_graph` checks all of these and returns a structured
report; generators call it in their own test-suites and the CLI exposes it
via ``repro-pa validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["ValidationReport", "validate_pa_graph"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_pa_graph`."""

    ok: bool
    n: int
    x: int
    num_edges: int
    expected_edges: int
    errors: list[str] = field(default_factory=list)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(
                "PA graph validation failed:\n  " + "\n  ".join(self.errors)
            )


def expected_edge_count(n: int, x: int) -> int:
    """Edges of a PA graph on ``n`` nodes with attachment count ``x``.

    ``x = 1`` graphs start from a single node (node 0), so ``m = n - 1``;
    ``x > 1`` graphs start from an ``x``-clique.
    """
    if x == 1:
        return max(n - 1, 0)
    clique = x * (x - 1) // 2
    return clique + max(n - x, 0) * x


def validate_pa_graph(edges: EdgeList, n: int, x: int) -> ValidationReport:
    """Check every structural invariant; never raises, returns a report."""
    errors: list[str] = []
    expected = expected_edge_count(n, x)

    if len(edges) != expected:
        errors.append(f"edge count {len(edges)} != expected {expected}")

    u, v = edges.sources, edges.targets

    if len(edges):
        if u.min() < 0 or v.min() < 0:
            errors.append("negative node id present")
        top = int(max(u.max(), v.max()))
        if top >= n:
            errors.append(f"node id {top} out of range for n={n}")

    if edges.has_self_loops():
        loops = int((u == v).sum())
        errors.append(f"{loops} self-loop(s) present")

    if edges.has_duplicates():
        canon = edges.canonical()
        dup_rows = np.nonzero((np.diff(canon, axis=0) == 0).all(axis=1))[0]
        sample = canon[dup_rows[:5]].tolist()
        errors.append(f"{len(dup_rows)} duplicate edge(s), e.g. {sample}")

    # Attachment direction: each non-clique edge must connect t -> smaller id.
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    non_clique = hi >= x
    if len(edges) and not (lo[non_clique] < hi[non_clique]).all():  # pragma: no cover
        errors.append("edge with equal endpoints escaped the self-loop check")

    # Per-node attachment count: node t >= x must appear as the larger
    # endpoint of exactly x edges (x = 1: every t >= 1 exactly once).
    if n > 0:
        first_new = x if x > 1 else 1
        counts = np.bincount(hi, minlength=n)
        new_nodes = np.arange(first_new, n)
        bad = new_nodes[counts[first_new:n] != x] if n > first_new else np.array([], dtype=int)
        if bad.size:
            errors.append(
                f"{bad.size} node(s) with wrong attachment count, e.g. "
                f"node {int(bad[0])} has {int(counts[bad[0]])} != x={x}"
            )

    # Clique check for x > 1: nodes 0..x-1 pairwise connected.
    if x > 1 and n >= x:
        canon = edges.canonical()
        clique_rows = canon[canon[:, 1] < x]
        want = {(i, j) for i in range(x) for j in range(i + 1, x)}
        got = {(int(a), int(b)) for a, b in clique_rows}
        if got != want:
            errors.append(
                f"initial clique malformed: missing {sorted(want - got)[:5]}, "
                f"extra {sorted(got - want)[:5]}"
            )

    return ValidationReport(
        ok=not errors,
        n=n,
        x=x,
        num_edges=len(edges),
        expected_edges=expected,
        errors=errors,
    )
