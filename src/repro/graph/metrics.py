"""Network metrics: components, clustering, assortativity, path lengths.

These support the example applications (the paper's introduction motivates
PA generation with complex-network analysis).  Exact computation of some
metrics is super-linear, so the expensive ones are *sampled* with a seeded
RNG and documented error behaviour — the standard practice for massive
graphs.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "adjacency_from_edges",
    "connected_components",
    "largest_component_fraction",
    "sampled_clustering_coefficient",
    "degree_assortativity",
    "sampled_mean_shortest_path",
]


def adjacency_from_edges(edges: EdgeList, num_nodes: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style adjacency: ``(indptr, neighbors)`` arrays.

    ``neighbors[indptr[v]:indptr[v+1]]`` lists the neighbours of node ``v``.
    Built in O(m) with counting sort; the workhorse for every traversal here.
    """
    n = num_nodes if num_nodes is not None else edges.num_nodes
    u, v = edges.sources, edges.targets
    deg = np.zeros(n, dtype=np.int64)
    np.add.at(deg, u, 1)
    np.add.at(deg, v, 1)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    neighbors = np.empty(indptr[-1], dtype=np.int64)
    cursor = indptr[:-1].copy()
    # Two passes (u->v and v->u); np.add.at-style scatter with manual cursors.
    for a, b in ((u, v), (v, u)):
        order = np.argsort(a, kind="stable")
        a_sorted, b_sorted = a[order], b[order]
        # positions for each group of equal a
        idx = cursor[a_sorted] + _group_offsets(a_sorted)
        neighbors[idx] = b_sorted
        np.add.at(cursor, a_sorted, 1)
    return indptr, neighbors


def _group_offsets(sorted_keys: np.ndarray) -> np.ndarray:
    """For a sorted key array, the 0-based offset of each element in its group."""
    if len(sorted_keys) == 0:
        return np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    starts = np.zeros(len(sorted_keys), dtype=np.int64)
    starts[boundaries] = boundaries
    np.maximum.accumulate(starts, out=starts)
    return np.arange(len(sorted_keys)) - starts


def connected_components(edges: EdgeList, num_nodes: int | None = None) -> np.ndarray:
    """Component label of every node (union-find with path halving)."""
    n = num_nodes if num_nodes is not None else edges.num_nodes
    parent = np.arange(n, dtype=np.int64)

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for u, v in zip(edges.sources.tolist(), edges.targets.tolist()):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    # Flatten
    for i in range(n):
        parent[i] = find(i)
    return parent


def largest_component_fraction(edges: EdgeList, num_nodes: int | None = None) -> float:
    """Fraction of nodes in the largest connected component.

    PA graphs with ``x >= 1`` are connected by construction, so this should
    be exactly 1.0 — a useful sanity metric for the examples.
    """
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n == 0:
        return 0.0
    labels = connected_components(edges, n)
    _, counts = np.unique(labels, return_counts=True)
    return float(counts.max() / n)


def sampled_clustering_coefficient(
    edges: EdgeList,
    num_nodes: int | None = None,
    samples: int = 1000,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean local clustering coefficient estimated over sampled nodes.

    Scale-free PA graphs have low clustering that decays with n — a quick
    structural fingerprint used by the social-network example.
    """
    rng = rng or np.random.default_rng()
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n == 0:
        return 0.0
    indptr, nbrs = adjacency_from_edges(edges, n)
    nodes = rng.choice(n, size=min(samples, n), replace=False)
    total, counted = 0.0, 0
    neighbor_sets = {}
    for v in nodes.tolist():
        vn = nbrs[indptr[v] : indptr[v + 1]]
        d = len(vn)
        if d < 2:
            continue
        vset = set(vn.tolist())
        links = 0
        for w in vn.tolist():
            if w not in neighbor_sets:
                neighbor_sets[w] = set(nbrs[indptr[w] : indptr[w + 1]].tolist())
            links += len(vset & neighbor_sets[w])
        total += links / (d * (d - 1))
        counted += 1
    return total / counted if counted else 0.0


def degree_assortativity(edges: EdgeList, num_nodes: int | None = None) -> float:
    """Pearson correlation of endpoint degrees (Newman's assortativity).

    BA-style PA graphs are weakly disassortative (slightly negative).
    """
    from repro.graph.degree import degrees_from_edges

    n = num_nodes if num_nodes is not None else edges.num_nodes
    deg = degrees_from_edges(edges, n).astype(np.float64)
    du = deg[edges.sources]
    dv = deg[edges.targets]
    # Symmetrise: each edge contributes both orientations.
    a = np.concatenate([du, dv])
    b = np.concatenate([dv, du])
    va = a - a.mean()
    vb = b - b.mean()
    denom = np.sqrt((va**2).sum() * (vb**2).sum())
    if denom == 0:
        return 0.0
    return float((va * vb).sum() / denom)


def sampled_mean_shortest_path(
    edges: EdgeList,
    num_nodes: int | None = None,
    sources: int = 8,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean shortest-path length from sampled sources (BFS).

    Scale-free graphs are "ultra-small worlds": the mean distance grows like
    ``log n / log log n``.
    """
    rng = rng or np.random.default_rng()
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n <= 1:
        return 0.0
    indptr, nbrs = adjacency_from_edges(edges, n)
    picks = rng.choice(n, size=min(sources, n), replace=False)
    total, count = 0.0, 0
    for s in picks.tolist():
        dist = np.full(n, -1, dtype=np.int64)
        dist[s] = 0
        q = deque([s])
        while q:
            v = q.popleft()
            for w in nbrs[indptr[v] : indptr[v + 1]].tolist():
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    q.append(w)
        reached = dist > 0
        total += float(dist[reached].sum())
        count += int(reached.sum())
    return total / count if count else 0.0
