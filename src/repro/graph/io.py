"""Edge-list file I/O, including the per-rank output model of the paper.

The paper's machine model gives every processor access to a shared file
system where ranks "read-write data files ... independently" (Section 2).
We mirror that: :func:`write_rank_edges` writes one binary file per rank,
:func:`read_rank_edges` / :func:`merge_rank_files` reassemble the global
edge list.  A simple text format is provided for interchange with external
tools.

Binary format: little-endian ``int64`` pairs, preceded by a 24-byte header
``(magic, version, num_edges)`` so truncated files are detected.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "write_edges_binary",
    "read_edges_binary",
    "write_edges_text",
    "read_edges_text",
    "write_rank_edges",
    "read_rank_edges",
    "merge_rank_files",
    "rank_file_path",
]

_MAGIC = 0x50414E4554  # "PANET"
_VERSION = 1
_HEADER = struct.Struct("<QQQ")


def write_edges_binary(path: str | Path, edges: EdgeList) -> None:
    """Write an edge list in the binary container format."""
    path = Path(path)
    arr = np.ascontiguousarray(edges.as_array(), dtype="<i8")
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, _VERSION, len(edges)))
        fh.write(arr.tobytes())


def read_edges_binary(path: str | Path) -> EdgeList:
    """Read an edge list written by :func:`write_edges_binary`."""
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise ValueError(f"{path}: truncated header")
        magic, version, num_edges = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{path}: bad magic {magic:#x}")
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported version {version}")
        data = np.frombuffer(fh.read(), dtype="<i8")
    if data.size != 2 * num_edges:
        raise ValueError(
            f"{path}: expected {2 * num_edges} int64 values, found {data.size}"
        )
    pairs = data.reshape(-1, 2)
    return EdgeList.from_arrays(pairs[:, 0], pairs[:, 1])


def write_edges_text(path: str | Path, edges: EdgeList) -> None:
    """Write one ``u v`` pair per line (interchange format)."""
    np.savetxt(path, edges.as_array(), fmt="%d")


def read_edges_text(path: str | Path) -> EdgeList:
    """Read a whitespace-separated two-column edge file."""
    arr = np.loadtxt(path, dtype=np.int64, ndmin=2)
    if arr.size == 0:
        return EdgeList()
    if arr.shape[1] != 2:
        raise ValueError(f"{path}: expected 2 columns, found {arr.shape[1]}")
    return EdgeList.from_arrays(arr[:, 0], arr[:, 1])


def rank_file_path(directory: str | Path, rank: int, size: int) -> Path:
    """Canonical name of rank ``rank``'s output file within a run directory."""
    width = max(len(str(size - 1)), 1)
    return Path(directory) / f"edges.rank{rank:0{width}d}.of{size}.bin"


def write_rank_edges(directory: str | Path, rank: int, size: int, edges: EdgeList) -> Path:
    """Write one rank's local edges, as the MPI code would on a shared FS."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = rank_file_path(directory, rank, size)
    write_edges_binary(path, edges)
    return path


def read_rank_edges(directory: str | Path, rank: int, size: int) -> EdgeList:
    """Read back one rank's file."""
    return read_edges_binary(rank_file_path(directory, rank, size))


def merge_rank_files(directory: str | Path, size: int) -> EdgeList:
    """Concatenate all rank files of a run into one global edge list."""
    merged = EdgeList()
    for rank in range(size):
        merged.extend(read_rank_edges(directory, rank, size))
    return merged
