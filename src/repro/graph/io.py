"""Edge-list file I/O, including the per-rank output model of the paper.

The paper's machine model gives every processor access to a shared file
system where ranks "read-write data files ... independently" (Section 2).
We mirror that: :func:`write_rank_edges` writes one binary file per rank,
:func:`read_rank_edges` / :func:`merge_rank_files` reassemble the global
edge list.  A simple text format is provided for interchange with external
tools.

Binary format: little-endian ``int64`` pairs, preceded by a 24-byte header
``(magic, version, num_edges)`` so truncated files are detected.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "write_edges_binary",
    "read_edges_binary",
    "write_edges_text",
    "read_edges_text",
    "write_rank_edges",
    "read_rank_edges",
    "merge_rank_files",
    "rank_file_path",
]

_MAGIC = 0x50414E4554  # "PANET"
_VERSION = 1
_HEADER = struct.Struct("<QQQ")


def write_edges_binary(
    path: str | Path, edges: EdgeList, chunk_edges: int = 1 << 20
) -> None:
    """Write an edge list in the binary container format.

    Streams in ``chunk_edges`` blocks, so writing a spill-backed
    (:class:`repro.core.spill.SpillEdgeList`) graph never materialises it;
    the bytes produced are identical to a single-shot write.
    """
    path = Path(path)
    srcs, tgts = edges.sources, edges.targets
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, _VERSION, len(edges)))
        for lo in range(0, len(srcs), chunk_edges):
            hi = min(lo + chunk_edges, len(srcs))
            pairs = np.empty((hi - lo, 2), dtype="<i8")
            pairs[:, 0] = srcs[lo:hi]
            pairs[:, 1] = tgts[lo:hi]
            fh.write(pairs.tobytes())


def read_edges_binary(path: str | Path, mmap_mode: str | None = None) -> EdgeList:
    """Read an edge list written by :func:`write_edges_binary`.

    ``mmap_mode="r"`` maps the file instead of copying it into RAM: the
    returned list wraps read-only ``np.memmap`` views (zero-copy via
    ``EdgeList.from_arrays(copy=False)``), so validating or analysing a
    multi-gigabyte edge file touches only the pages actually read.  The
    default (``None``) preserves the eager in-RAM behaviour.
    """
    if mmap_mode not in (None, "r"):
        raise ValueError(f"mmap_mode must be None or 'r', got {mmap_mode!r}")
    path = Path(path)
    with open(path, "rb") as fh:
        header = fh.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise ValueError(f"{path}: truncated header")
        magic, version, num_edges = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{path}: bad magic {magic:#x}")
        if version != _VERSION:
            raise ValueError(f"{path}: unsupported version {version}")
        if mmap_mode == "r":
            payload = path.stat().st_size - _HEADER.size
            if payload != 16 * num_edges:
                raise ValueError(
                    f"{path}: expected {2 * num_edges} int64 values, "
                    f"found {payload // 8}"
                )
            if num_edges == 0:
                return EdgeList()
            pairs = np.memmap(
                path, dtype="<i8", mode="r", offset=_HEADER.size,
                shape=(num_edges, 2),
            )
            return EdgeList.from_arrays(pairs[:, 0], pairs[:, 1], copy=False)
        data = np.frombuffer(fh.read(), dtype="<i8")
    if data.size != 2 * num_edges:
        raise ValueError(
            f"{path}: expected {2 * num_edges} int64 values, found {data.size}"
        )
    pairs = data.reshape(-1, 2)
    return EdgeList.from_arrays(pairs[:, 0], pairs[:, 1])


def write_edges_text(path: str | Path, edges: EdgeList) -> None:
    """Write one ``u v`` pair per line (interchange format)."""
    np.savetxt(path, edges.as_array(), fmt="%d")


def read_edges_text(path: str | Path) -> EdgeList:
    """Read a whitespace-separated two-column edge file."""
    if not Path(path).read_text().strip():
        # empty file: np.loadtxt would warn and return a 0-d shape
        return EdgeList()
    arr = np.loadtxt(path, dtype=np.int64, ndmin=2)
    if arr.size == 0:
        return EdgeList()
    if arr.shape[1] != 2:
        raise ValueError(f"{path}: expected 2 columns, found {arr.shape[1]}")
    return EdgeList.from_arrays(arr[:, 0], arr[:, 1])


def rank_file_path(directory: str | Path, rank: int, size: int) -> Path:
    """Canonical name of rank ``rank``'s output file within a run directory."""
    width = max(len(str(size - 1)), 1)
    return Path(directory) / f"edges.rank{rank:0{width}d}.of{size}.bin"


def write_rank_edges(directory: str | Path, rank: int, size: int, edges: EdgeList) -> Path:
    """Write one rank's local edges, as the MPI code would on a shared FS."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = rank_file_path(directory, rank, size)
    write_edges_binary(path, edges)
    return path


def read_rank_edges(directory: str | Path, rank: int, size: int) -> EdgeList:
    """Read back one rank's file."""
    return read_edges_binary(rank_file_path(directory, rank, size))


def _require_rank_files(directory: str | Path, size: int) -> list[Path]:
    """All rank file paths of a run, with a clear error for missing ones."""
    paths = [rank_file_path(directory, rank, size) for rank in range(size)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        names = ", ".join(p.name for p in missing)
        raise FileNotFoundError(
            f"{directory}: missing {len(missing)} of {size} rank files "
            f"({names}); was the run interrupted, or is size={size} wrong?"
        )
    return paths


def merge_rank_files(
    directory: str | Path,
    size: int,
    out: str | Path | None = None,
    chunk_edges: int = 1 << 20,
) -> EdgeList:
    """Concatenate all rank files of a run into one global edge list.

    Default (``out=None``): in-RAM concatenation, as before.  With ``out=``
    set, the rank files are *streamed* into one binary file at that path —
    at most ``chunk_edges`` edges transit RAM at a time, so a run's total
    edge count can exceed memory — and the merged file is returned as a
    memmap-backed list (``read_edges_binary(out, mmap_mode="r")``).

    A missing rank file raises :class:`FileNotFoundError` naming exactly
    which ranks are absent (rather than an opaque open() traceback mid-merge).
    """
    paths = _require_rank_files(directory, size)
    if out is None:
        merged = EdgeList()
        for path in paths:
            merged.extend(read_edges_binary(path))
        return merged

    out = Path(out)
    total = 0
    with open(out, "wb") as dst:
        dst.write(_HEADER.pack(_MAGIC, _VERSION, 0))  # patched below
        for path in paths:
            part = read_edges_binary(path, mmap_mode="r")
            for lo in range(0, len(part), chunk_edges):
                u = part.sources[lo : lo + chunk_edges]
                v = part.targets[lo : lo + chunk_edges]
                pairs = np.empty((len(u), 2), dtype="<i8")
                pairs[:, 0] = u
                pairs[:, 1] = v
                dst.write(pairs.tobytes())
            total += len(part)
        dst.seek(0)
        dst.write(_HEADER.pack(_MAGIC, _VERSION, total))
    return read_edges_binary(out, mmap_mode="r")
