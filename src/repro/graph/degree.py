"""Degree sequences, empirical degree distributions, and log-binning.

These are the measurement tools behind Figure 4: the degree distribution of
the generated network on a log–log scale.  For heavy-tailed data a raw
histogram is noisy in the tail, so :func:`log_binned_distribution` implements
the standard logarithmic binning, and :func:`ccdf` the complementary CDF
(whose slope is ``1 - γ`` for a power law) — both are what practitioners
actually plot.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "degrees_from_edges",
    "degree_distribution",
    "ccdf",
    "log_binned_distribution",
    "average_degree",
]


def degrees_from_edges(edges: EdgeList, num_nodes: int | None = None) -> np.ndarray:
    """Degree of every node, as an ``int64`` array indexed by node id.

    ``num_nodes`` forces the output length (isolated trailing nodes would
    otherwise be dropped).
    """
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n < edges.num_nodes:
        raise ValueError(
            f"num_nodes={n} is smaller than the largest node id implies ({edges.num_nodes})"
        )
    deg = np.zeros(n, dtype=np.int64)
    if len(edges):
        np.add.at(deg, edges.sources, 1)
        np.add.at(deg, edges.targets, 1)
    return deg


def degree_distribution(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical distribution ``P(k)``.

    Returns ``(k, pk)`` where ``k`` lists the distinct observed degrees (> 0)
    and ``pk`` the fraction of nodes with that degree.
    """
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        return np.array([], dtype=np.int64), np.array([])
    counts = np.bincount(degrees[degrees >= 0])
    k = np.nonzero(counts)[0]
    k = k[k > 0]
    pk = counts[k] / degrees.size
    return k.astype(np.int64), pk


def ccdf(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF ``P(K >= k)`` over distinct observed degrees."""
    k, pk = degree_distribution(degrees)
    if k.size == 0:
        return k, pk
    tail = np.cumsum(pk[::-1])[::-1]
    return k, tail


def log_binned_distribution(
    degrees: np.ndarray, bins_per_decade: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Logarithmically binned degree distribution.

    Returns ``(k_centers, density)`` where ``density`` is the per-unit-degree
    probability mass in each bin (so a pure power law appears as a straight
    line of slope ``-γ`` on log–log axes).  Empty bins are dropped.
    """
    degrees = np.asarray(degrees)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return np.array([]), np.array([])
    kmax = degrees.max()
    nbins = max(int(np.ceil(np.log10(max(kmax, 2)) * bins_per_decade)), 1)
    edges = np.unique(np.floor(np.logspace(0, np.log10(kmax + 1), nbins + 1)).astype(np.int64))
    if edges[-1] <= kmax:
        edges = np.append(edges, kmax + 1)
    counts, _ = np.histogram(degrees, bins=edges)
    widths = np.diff(edges).astype(np.float64)
    centers = np.sqrt(edges[:-1] * (edges[1:] - 1).clip(min=1)).astype(np.float64)
    density = counts / (degrees.size * widths)
    keep = counts > 0
    return centers[keep], density[keep]


def average_degree(edges: EdgeList, num_nodes: int | None = None) -> float:
    """Mean degree ``2m / n``."""
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n == 0:
        return 0.0
    return 2.0 * len(edges) / n
