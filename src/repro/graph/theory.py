"""Closed-form reference distributions for preferential attachment.

The strongest exactness test available for a PA generator is a
goodness-of-fit against the *known* limiting degree law of the BA process.
For the BA model with ``x`` edges per node the stationary degree
distribution is (Dorogovtsev–Mendes / Bollobás):

``P(k) = 2 x (x + 1) / (k (k + 1) (k + 2))``  for ``k >= x``

whose tail is ``~ 2 x^2 k^{-3}`` (the γ = 3 law).  This module provides
that pmf, its CCDF, and a chi-square goodness-of-fit helper used by the
statistical test-suite to certify that the parallel generator follows the
exact BA law — the property the paper claims over approximate prior art.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as sps

__all__ = [
    "ba_degree_pmf",
    "ba_degree_ccdf",
    "ba_chi_square_gof",
    "expected_max_degree",
]


def ba_degree_pmf(k: np.ndarray | int, x: int) -> np.ndarray | float:
    """Limiting BA degree probability ``P(K = k)`` for attachment count ``x``.

    Exact for the linear preferential-attachment process the copy model at
    ``p = 1/2`` implements; finite-``n`` samples deviate in the extreme tail
    (``k`` comparable to ``sqrt(n)``).

    Examples
    --------
    >>> round(float(ba_degree_pmf(1, 1)), 4)   # P(K=1) = 2*1*2/(1*2*3)
    0.6667
    """
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    k_arr = np.asarray(k, dtype=np.float64)
    out = np.where(
        k_arr >= x,
        2.0 * x * (x + 1) / (k_arr * (k_arr + 1) * (k_arr + 2)),
        0.0,
    )
    return out if out.ndim else float(out)


def ba_degree_ccdf(k: np.ndarray | int, x: int) -> np.ndarray | float:
    """Limiting BA tail probability ``P(K >= k)``.

    The telescoping sum of the pmf gives the closed form
    ``P(K >= k) = x (x + 1) / (k (k + 1))`` for ``k >= x``.

    Examples
    --------
    >>> float(ba_degree_ccdf(1, 1))
    1.0
    """
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    k_arr = np.asarray(np.maximum(k, x), dtype=np.float64)
    out = x * (x + 1) / (k_arr * (k_arr + 1))
    return out if out.ndim else float(out)


def ba_chi_square_gof(
    degrees: np.ndarray,
    x: int,
    k_max: int | None = None,
    min_expected: float = 10.0,
) -> tuple[float, float]:
    """Chi-square goodness of fit of a degree sample against the exact BA law.

    Bins are single degrees ``x .. k_max`` with everything above pooled into
    one tail bin; bins with expected count below ``min_expected`` are merged
    into the tail.  Returns ``(statistic, p_value)``.  High p-values mean
    the sample is consistent with exact preferential attachment.
    """
    degrees = np.asarray(degrees)
    degrees = degrees[degrees >= x]
    n = degrees.size
    if n < 100:
        raise ValueError(f"need at least 100 tail observations, got {n}")
    if k_max is None:
        # choose k_max so the tail bin keeps a healthy expected count
        k_max = x
        while ba_degree_ccdf(k_max + 1, x) * n > 5 * min_expected and k_max < 10_000:
            k_max += 1
    ks = np.arange(x, k_max + 1)
    expected = ba_degree_pmf(ks, x) * n
    observed = np.array([(degrees == k).sum() for k in ks], dtype=np.float64)
    tail_expected = ba_degree_ccdf(k_max + 1, x) * n
    tail_observed = float((degrees > k_max).sum())

    # merge sparse bins (right to left) into the tail
    keep = expected >= min_expected
    tail_expected += expected[~keep].sum()
    tail_observed += observed[~keep].sum()
    expected = np.append(expected[keep], tail_expected)
    observed = np.append(observed[keep], tail_observed)

    # renormalise the tiny truncation residue so sums match exactly
    expected *= observed.sum() / expected.sum()
    stat, pvalue = sps.chisquare(observed, expected)
    return float(stat), float(pvalue)


def expected_max_degree(n: int, x: int) -> float:
    """Order-of-magnitude estimate of the max degree: ``x sqrt(n)``.

    For BA networks the largest hub grows as ``k_max ~ x n^{1/2}`` (up to a
    distributional constant); used by sanity tests and capacity planning.
    """
    if n < 1 or x < 1:
        raise ValueError("n and x must be >= 1")
    return float(x * np.sqrt(n))
