"""Heavier structural analysis: k-cores, triangles, rich-club.

These complement :mod:`repro.graph.metrics` with the exact (non-sampled)
algorithms downstream studies of scale-free networks routinely run, all
vectorised to handle the multi-million-edge graphs the generators produce:

* :func:`k_core_decomposition` — Matula–Beck peeling in O(m) using a
  bucket queue over degrees;
* :func:`triangle_count` — exact triangle counting via degree-ordered
  neighbour intersection (the standard ``forward`` algorithm);
* :func:`rich_club_coefficient` — density among the top-degree nodes, the
  hub-interconnection fingerprint of PA graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.graph.metrics import adjacency_from_edges

__all__ = ["k_core_decomposition", "triangle_count", "rich_club_coefficient"]


def k_core_decomposition(edges: EdgeList, num_nodes: int | None = None) -> np.ndarray:
    """Core number of every node (largest k with the node in the k-core).

    Matula–Beck: repeatedly remove the minimum-degree node; its degree at
    removal time is its core number.  Implemented with counting-sort
    buckets, so the whole decomposition is O(n + m).

    Examples
    --------
    >>> el = EdgeList.from_arrays([1, 2, 2], [0, 0, 1])   # triangle
    >>> k_core_decomposition(el, 3).tolist()
    [2, 2, 2]
    """
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    indptr, nbrs = adjacency_from_edges(edges, n)
    degree = np.diff(indptr).astype(np.int64)
    max_deg = int(degree.max()) if n else 0

    # bucket sort nodes by degree
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    counts = np.bincount(degree, minlength=max_deg + 1)
    np.cumsum(counts, out=bin_start[1:])
    pos = np.empty(n, dtype=np.int64)  # position of node in vert
    vert = np.empty(n, dtype=np.int64)  # nodes sorted by current degree
    cursor = bin_start[:-1].copy()
    for v in range(n):
        pos[v] = cursor[degree[v]]
        vert[pos[v]] = v
        cursor[degree[v]] += 1
    bin_ptr = bin_start[:-1].copy()  # start of each degree bucket

    core = degree.copy()
    for i in range(n):
        v = vert[i]
        dv = core[v]
        for w in nbrs[indptr[v]:indptr[v + 1]]:
            if core[w] > dv:
                # move w one bucket down: swap it to the front of its bucket
                dw = core[w]
                pw = pos[w]
                first = bin_ptr[dw]
                u = vert[first]
                if u != w:
                    vert[first], vert[pw] = w, u
                    pos[w], pos[u] = first, pw
                bin_ptr[dw] += 1
                core[w] -= 1
    return core


def triangle_count(edges: EdgeList, num_nodes: int | None = None) -> int:
    """Exact number of triangles (unordered node triples forming a 3-cycle).

    Degree-ordered "forward" counting: orient every edge from the lower- to
    the higher-ranked endpoint (rank = (degree, id)), then intersect
    out-neighbour lists.  Runtime O(m^{3/2}) worst case, far better on
    heavy-tailed graphs.

    Examples
    --------
    >>> el = EdgeList.from_arrays([1, 2, 2], [0, 0, 1])
    >>> triangle_count(el, 3)
    1
    """
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n == 0 or len(edges) == 0:
        return 0
    u = edges.sources
    v = edges.targets
    deg = np.zeros(n, dtype=np.int64)
    np.add.at(deg, u, 1)
    np.add.at(deg, v, 1)
    # rank: by (degree, id); orient edge toward the higher rank
    rank = np.lexsort((np.arange(n), deg))
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[rank] = np.arange(n)
    swap = rank_of[u] > rank_of[v]
    src = np.where(swap, v, u)
    dst = np.where(swap, u, v)

    # out-adjacency in CSR, neighbour lists sorted for intersection
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)

    out_sets = [dst[indptr[i]:indptr[i + 1]] for i in range(n)]
    total = 0
    for i in range(n):
        oi = out_sets[i]
        for j in oi.tolist():
            total += np.intersect1d(oi, out_sets[j], assume_unique=False).size
    return int(total)


def rich_club_coefficient(
    edges: EdgeList, num_nodes: int | None = None, fraction: float = 0.01
) -> float:
    """Edge density among the top ``fraction`` of nodes by degree.

    ``phi = 2 E_club / (n_club (n_club - 1))`` where ``E_club`` counts edges
    with both endpoints in the club.  PA hubs interconnect far more densely
    than the graph at large.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    n = num_nodes if num_nodes is not None else edges.num_nodes
    if n < 2:
        return 0.0
    deg = np.zeros(n, dtype=np.int64)
    np.add.at(deg, edges.sources, 1)
    np.add.at(deg, edges.targets, 1)
    club_size = max(int(round(fraction * n)), 2)
    club = np.zeros(n, dtype=bool)
    club[np.argsort(deg)[-club_size:]] = True
    inside = club[edges.sources] & club[edges.targets]
    e_club = int(inside.sum())
    return 2.0 * e_club / (club_size * (club_size - 1))
