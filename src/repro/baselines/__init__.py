"""Baseline generators the paper compares against or supersedes."""

from repro.baselines.yoo_henderson import yoo_henderson

__all__ = ["yoo_henderson"]
