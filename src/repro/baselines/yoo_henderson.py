"""Approximate parallel PA in the spirit of Yoo & Henderson (2010).

The paper's related work (Section 1) identifies exactly one prior
distributed-memory PA generator and criticises it on two counts:

  (i) "to deal [with] the dependencies and the required complex
  synchronization, they came up with an *approximation* algorithm rather
  than an exact algorithm; and (ii) the accuracy of their algorithm depends
  on several *control parameters*, which are manually adjusted by running
  the algorithm repeatedly."

To reproduce that comparison without the original (unreleased) code, this
module implements the approximation's essential mechanism: every rank grows
its slice of the node range using a Batagelj–Brandes repeated-nodes list
that is only *periodically* synchronised across ranks.  Between
synchronisations a rank attaches new nodes using stale global degree
information plus its own fresh local updates; the staleness is governed by
``sync_interval`` — the manually-tuned control parameter.  At
``sync_interval -> 1`` the dynamics approach exact preferential attachment
(at prohibitive communication cost); large intervals skew the degree
distribution — which is precisely the accuracy-vs-parameters trade-off the
paper criticises and ``benchmarks/bench_yoo_henderson.py`` quantifies.

This is a behavioural stand-in, not a line-by-line reimplementation of the
LLNL code; DESIGN.md records the substitution.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.rng import StreamFactory

__all__ = ["yoo_henderson"]


def yoo_henderson(
    n: int,
    x: int = 2,
    ranks: int = 4,
    sync_interval: int = 64,
    seed: int | None = None,
) -> EdgeList:
    """Approximate parallel PA with periodic degree synchronisation.

    Parameters
    ----------
    n:
        Total number of nodes; the growth range ``[x, n)`` is blocked evenly
        across ``ranks``, and all ranks grow their blocks concurrently
        (this concurrent growth is the source of approximation).
    x:
        Edges per new node.
    ranks:
        Simulated rank count.
    sync_interval:
        Nodes each rank adds between global synchronisations of the
        repeated-nodes list — the accuracy control parameter.

    Returns
    -------
    EdgeList; structurally a valid simple graph, but its degree sequence only
    *approximates* preferential attachment (worse for larger
    ``sync_interval`` — see the benchmark).

    Examples
    --------
    >>> el = yoo_henderson(4000, x=2, ranks=4, sync_interval=32, seed=0)
    >>> el.has_duplicates() or el.has_self_loops()
    False
    """
    if n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    if sync_interval < 1:
        raise ValueError(f"sync_interval must be >= 1, got {sync_interval}")
    factory = StreamFactory(seed)
    rngs = [factory.stream(r) for r in range(ranks)]

    edges = EdgeList(capacity=x * (x - 1) // 2 + (n - x) * x)
    present: set[tuple[int, int]] = set()

    def add_edge(a: int, b: int) -> bool:
        key = (a, b) if a < b else (b, a)
        if key in present:
            return False
        present.add(key)
        edges.append(a, b)
        return True

    # Global (synchronised) repeated-nodes list: seeded with the clique.
    global_list: list[int] = []
    for i in range(x):
        for j in range(i + 1, x):
            add_edge(j, i)
            global_list.extend((j, i))

    # Block the growth range across ranks (their node-range decomposition).
    blocks = np.array_split(np.arange(x, n, dtype=np.int64), ranks)
    cursors = [0] * ranks
    local_updates: list[list[int]] = [[] for _ in range(ranks)]

    def rank_attach(r: int, t: int) -> None:
        """Attach node t on rank r using stale global + fresh local lists."""
        rng = rngs[r]
        pool_global = global_list
        pool_local = local_updates[r]
        total = len(pool_global) + len(pool_local)
        chosen: set[int] = set()
        guard = 0
        while len(chosen) < x:
            guard += 1
            if guard > 200 * x:
                # saturated view (tiny stale pools): fall back to uniform
                cand = int(rng.integers(0, t))
                chosen.add(cand)
                continue
            idx = int(rng.integers(0, total))
            cand = (
                pool_global[idx]
                if idx < len(pool_global)
                else pool_local[idx - len(pool_global)]
            )
            if cand != t and (min(cand, t), max(cand, t)) not in present:
                chosen.add(int(cand))
        for v in sorted(chosen):
            if add_edge(t, v):
                pool_local.extend((t, v))

    remaining = True
    while remaining:
        remaining = False
        for r in range(ranks):
            block = blocks[r]
            stop = min(cursors[r] + sync_interval, len(block))
            for i in range(cursors[r], stop):
                rank_attach(r, int(block[i]))
            cursors[r] = stop
            if stop < len(block):
                remaining = True
        # Synchronisation point: merge everyone's updates into the global list.
        for r in range(ranks):
            global_list.extend(local_updates[r])
            local_updates[r] = []
    return edges
