"""repro — distributed-memory parallel preferential-attachment graph generation.

Reproduction of Alam, Khan & Marathe, *Distributed-Memory Parallel Algorithms
for Generating Massive Scale-free Networks Using Preferential Attachment
Model* (SC'13).

Quick start::

    from repro import generate

    result = generate(n=100_000, x=4, ranks=16, scheme="rrp", seed=42)
    result.validate().raise_if_failed()
    print(result.edges)                 # EdgeList(num_edges=399994, ...)
    print(result.simulated_time)        # virtual cluster seconds
    print(result.imbalance)             # load balance (Figure 7d metric)

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the parallel algorithms, partitioning schemes, chain
  analysis (the paper's contribution);
* :mod:`repro.mpsim` — the simulated distributed-memory substrate;
* :mod:`repro.seq` — sequential generators (copy model, Batagelj–Brandes,
  naive BA, ER, small-world, Chung–Lu);
* :mod:`repro.graph` — edge lists, degree statistics, power-law fitting,
  validation, I/O;
* :mod:`repro.baselines` — the Yoo–Henderson approximate parallel baseline;
* :mod:`repro.bench` — scaling drivers and paper-style reporting.
"""

from repro._version import __version__
from repro.core.generator import GenerationResult, generate
from repro.core.partitioning import make_partition
from repro.core.streaming import stream_copy_model_x1
from repro.distgraph import DistributedGraph
from repro.dyngraph import ChurnSchedule, SnapshotStore, evolve
from repro.graph.edgelist import EdgeList
from repro.graph.powerlaw import fit_powerlaw
from repro.graph.validation import validate_pa_graph
from repro.telemetry import Telemetry

__all__ = [
    "ChurnSchedule",
    "DistributedGraph",
    "EdgeList",
    "GenerationResult",
    "SnapshotStore",
    "Telemetry",
    "__version__",
    "evolve",
    "fit_powerlaw",
    "generate",
    "make_partition",
    "stream_copy_model_x1",
    "validate_pa_graph",
]
