"""Experiment execution records.

A benchmark run produces an :class:`ExperimentRecord` capturing both the
wall-clock cost of the simulation *and* the simulated-cluster telemetry (the
quantity the paper reports).  Records serialise to plain dicts so the
benchmark scripts can dump them next to ``bench_output.txt``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from repro.core.generator import GenerationResult, generate

__all__ = ["ExperimentRecord", "run_generation_experiment"]


@dataclass
class ExperimentRecord:
    """One experimental point: configuration + measurements."""

    experiment: str
    n: int
    x: int
    ranks: int
    scheme: str
    seed: int | None
    #: seconds of real host time the simulation took
    wall_time: float
    #: seconds of simulated cluster time (cost-model virtual time)
    simulated_time: float
    supersteps: int
    num_edges: int
    total_messages: int
    imbalance: float
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        d = asdict(self)
        d.update(d.pop("extra"))
        return d


def run_generation_experiment(
    experiment: str,
    n: int,
    x: int,
    ranks: int,
    scheme: str,
    seed: int | None = 0,
    **generate_kwargs: Any,
) -> tuple[ExperimentRecord, GenerationResult]:
    """Generate once and package the measurements."""
    t0 = time.perf_counter()
    result = generate(n=n, x=x, ranks=ranks, scheme=scheme, seed=seed, **generate_kwargs)
    wall = time.perf_counter() - t0
    stats = result.world_stats
    record = ExperimentRecord(
        experiment=experiment,
        n=n,
        x=x,
        ranks=ranks,
        scheme=scheme,
        seed=seed,
        wall_time=wall,
        simulated_time=result.simulated_time,
        supersteps=result.supersteps,
        num_edges=len(result.edges),
        total_messages=int(stats.total_messages) if stats is not None else 0,
        imbalance=result.imbalance,
        extra={
            "requests_total": int(np.sum(result.requests_sent)),
        },
    )
    return record, result
