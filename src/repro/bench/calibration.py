"""Cost-model calibration from measured runs.

The default :class:`~repro.mpsim.costmodel.CostModel` constants target the
paper's 2013 testbed.  Users reproducing the scaling experiments against
*their own* machine measurements (e.g. timings of a real MPI port, or the
wall-clock of the in-process engine) can fit the per-event constants
instead:

* :func:`collect_observations` runs a grid of generation configurations and
  records, per run, the totals of each cost driver (node events, work
  items, records, bytes, rounds) together with a measured time;
* :func:`fit_cost_model` solves the non-negative least-squares system
  ``time ≈ c·nodes + w·work + o·records + β·bytes + α·rounds`` and returns
  a :class:`~repro.mpsim.costmodel.CostModel`.

The test-suite closes the loop: generate observations under a *known*
model, fit, and recover the constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.mpsim.costmodel import CostModel

__all__ = ["Observation", "collect_observations", "fit_cost_model"]


@dataclass(frozen=True)
class Observation:
    """Cost-driver totals and a measured time for one run."""

    nodes: float
    work_items: float
    records: float
    bytes: float
    rounds: float
    measured_time: float

    def drivers(self) -> np.ndarray:
        return np.array(
            [self.nodes, self.work_items, self.records, self.bytes, self.rounds]
        )


def collect_observations(
    configs: list[dict],
    timer: str = "simulated",
    seed: int = 0,
) -> list[Observation]:
    """Run generation configs and collect per-run cost drivers.

    Parameters
    ----------
    configs:
        Keyword dicts for :func:`repro.core.generator.generate`
        (``n``, ``x``, ``ranks``, ``scheme``...).
    timer:
        ``"simulated"`` records the engine's virtual time (useful for tests
        and sensitivity studies); ``"wall"`` records host wall-clock of the
        in-process engine (calibrating Python-level throughput).
    """
    import time as _time

    from repro.core.generator import generate

    if timer not in ("simulated", "wall"):
        raise ValueError(f"timer must be 'simulated' or 'wall', got {timer}")
    out: list[Observation] = []
    for cfg in configs:
        t0 = _time.perf_counter()
        result = generate(seed=seed, **cfg)
        wall = _time.perf_counter() - t0
        stats = result.world_stats
        rounds_total = float(sum(rs.rounds for rs in stats.ranks))
        out.append(
            Observation(
                nodes=float(sum(rs.nodes for rs in stats.ranks)),
                work_items=float(sum(rs.work_items for rs in stats.ranks)),
                records=float(
                    sum(rs.msgs_sent + rs.msgs_received for rs in stats.ranks)
                ),
                # every byte is charged at both endpoints (send + receive)
                bytes=float(
                    sum(rs.bytes_sent + rs.bytes_received for rs in stats.ranks)
                ),
                rounds=rounds_total,
                measured_time=(
                    # total busy time = exactly the sum of all per-event
                    # charges, the quantity the linear model describes
                    float(sum(rs.busy_time for rs in stats.ranks))
                    if timer == "simulated"
                    else wall
                ),
            )
        )
    return out


def fit_cost_model(observations: list[Observation]) -> CostModel:
    """Non-negative least-squares fit of the five per-event constants.

    Needs at least five observations with linearly independent driver
    vectors; vary ``n``, ``x``, and ``ranks`` across the grid to ensure
    that.
    """
    if len(observations) < 5:
        raise ValueError(
            f"need at least 5 observations to fit 5 constants, got {len(observations)}"
        )
    A = np.vstack([obs.drivers() for obs in observations])
    y = np.array([obs.measured_time for obs in observations])
    scale = A.max(axis=0)
    scale[scale == 0] = 1.0
    coef, _residual = optimize.nnls(A / scale, y)
    coef = coef / scale
    c, w, o, beta, alpha = coef
    return CostModel(
        alpha=float(alpha),
        beta=float(beta),
        per_message=float(o),
        per_node=float(c),
        per_work_item=float(w),
    )
