"""Benchmark harness: experiment drivers and paper-style reporting.

Every figure and table of the paper's evaluation (Section 4) has a driver
here and a regenerating benchmark under ``benchmarks/``:

* :mod:`repro.bench.scaling` — strong scaling (Fig. 5), weak scaling
  (Fig. 6), and the 50-billion-edge extrapolation (Section 4.5);
* :mod:`repro.bench.harness` — run records and experiment execution;
* :mod:`repro.bench.reporting` — fixed-width tables and log-log series in
  the shape the paper reports.
"""

from repro.bench.harness import ExperimentRecord, run_generation_experiment
from repro.bench.reporting import format_series, format_table
from repro.bench.scaling import (
    ScalingPoint,
    extrapolate_large_network,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "ExperimentRecord",
    "ScalingPoint",
    "extrapolate_large_network",
    "format_series",
    "format_table",
    "run_generation_experiment",
    "strong_scaling",
    "weak_scaling",
]
