"""Plain-text reporting in the shape of the paper's figures.

The benchmarks print fixed-width tables (one per figure) so the regenerated
series can be diffed against EXPERIMENTS.md by eye.  No plotting library is
assumed; :func:`ascii_loglog` renders a coarse log–log scatter for the
degree-distribution figure directly in the terminal.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_series", "ascii_loglog"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render rows as a fixed-width table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """One labelled (x, y) series, one point per line."""
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x)}\t{_fmt(y)}")
    return "\n".join(lines)


def ascii_loglog(
    xs: np.ndarray,
    ys: np.ndarray,
    width: int = 72,
    height: int = 20,
    label: str = "",
) -> str:
    """Coarse log–log scatter plot in ASCII (for degree distributions).

    A power law shows up as a straight diagonal band of ``*`` marks —
    enough to eyeball Figure 4's shape in ``bench_output.txt``.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    keep = (xs > 0) & (ys > 0)
    xs, ys = xs[keep], ys[keep]
    if xs.size == 0:
        return "(no positive data)"
    lx, ly = np.log10(xs), np.log10(ys)
    gx = ((lx - lx.min()) / max(np.ptp(lx), 1e-12) * (width - 1)).astype(int)
    gy = ((ly - ly.min()) / max(np.ptp(ly), 1e-12) * (height - 1)).astype(int)
    grid = [[" "] * width for _ in range(height)]
    for cx, cy in zip(gx, gy):
        grid[height - 1 - cy][cx] = "*"
    lines = [label] if label else []
    top = f"10^{ly.max():.1f}"
    bottom = f"10^{ly.min():.1f}"
    lines.append(top)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(
        bottom + " " + "-" * (width - len(bottom))
    )
    lines.append(f"x: 10^{lx.min():.1f} .. 10^{lx.max():.1f}")
    return "\n".join(lines)
