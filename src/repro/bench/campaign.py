"""Experiment campaigns: run a configuration grid, persist CSV, summarise.

The paper's evaluation is a handful of parameter sweeps (n, x, P, scheme).
:func:`run_campaign` executes such a grid through the standard harness and
writes one CSV row per run — the artefact a reproduction reviewer actually
wants to diff.  :func:`summarize_campaign` aggregates by any key.

Used by ``repro-pa campaign`` and the benchmark suite's regression file.
"""

from __future__ import annotations

import csv
import itertools
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.bench.harness import ExperimentRecord, run_generation_experiment

__all__ = ["expand_grid", "run_campaign", "write_csv", "read_csv", "summarize_campaign"]

_CSV_FIELDS = [
    "experiment",
    "n",
    "x",
    "ranks",
    "scheme",
    "seed",
    "wall_time",
    "simulated_time",
    "supersteps",
    "num_edges",
    "total_messages",
    "imbalance",
    "requests_total",
]


def expand_grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes into config dicts.

    Examples
    --------
    >>> expand_grid(n=[10, 20], scheme=["ucp", "rrp"])[2]
    {'n': 20, 'scheme': 'ucp'}
    """
    names = list(axes)
    out = []
    for values in itertools.product(*(axes[k] for k in names)):
        out.append(dict(zip(names, values)))
    return out


def run_campaign(
    name: str,
    configs: Iterable[dict[str, Any]],
    seed: int = 0,
    progress: bool = False,
) -> list[ExperimentRecord]:
    """Run every config (each a dict of n/x/ranks/scheme [+ seed])."""
    records = []
    for i, cfg in enumerate(configs):
        cfg = dict(cfg)
        cfg.setdefault("seed", seed)
        record, _ = run_generation_experiment(
            name,
            n=cfg.pop("n"),
            x=cfg.pop("x", 1),
            ranks=cfg.pop("ranks", 1),
            scheme=cfg.pop("scheme", "rrp"),
            seed=cfg.pop("seed"),
            **cfg,
        )
        records.append(record)
        if progress:  # pragma: no cover - cosmetic
            print(f"  [{i + 1}] {record.to_dict()}")
    return records


def write_csv(path: str | Path, records: Sequence[ExperimentRecord]) -> Path:
    """Persist records as CSV (one row per run, stable column order)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow(record.to_dict())
    return path


def read_csv(path: str | Path) -> list[dict[str, Any]]:
    """Load a campaign CSV back into typed dicts."""
    rows = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            typed: dict[str, Any] = dict(row)
            for key in ("n", "x", "ranks", "seed", "supersteps", "num_edges",
                        "total_messages", "requests_total"):
                if typed.get(key, "") != "":
                    typed[key] = int(float(typed[key]))
            for key in ("wall_time", "simulated_time", "imbalance"):
                if typed.get(key, "") != "":
                    typed[key] = float(typed[key])
            rows.append(typed)
    return rows


def summarize_campaign(
    records: Sequence[ExperimentRecord], by: str = "scheme"
) -> dict[Any, dict[str, float]]:
    """Group records by one field and average the headline metrics."""
    groups: dict[Any, list[ExperimentRecord]] = {}
    for record in records:
        groups.setdefault(getattr(record, by), []).append(record)
    out = {}
    for key, recs in sorted(groups.items(), key=lambda kv: str(kv[0])):
        out[key] = {
            "runs": float(len(recs)),
            "mean_simulated_time": sum(r.simulated_time for r in recs) / len(recs),
            "mean_imbalance": sum(r.imbalance for r in recs) / len(recs),
            "mean_supersteps": sum(r.supersteps for r in recs) / len(recs),
        }
    return out
