"""Strong/weak scaling drivers and the large-network extrapolation.

The paper's scaling experiments (Figures 5 and 6) measure wall-clock time on
a real cluster.  Our substitute measures the *simulated* parallel time: the
algorithms run in full (every message, every queue, every retry) and the
cost model converts the per-rank work and traffic into virtual seconds (see
``DESIGN.md``, substitution table).  Speedup shape — near-linear growth, UCP
trailing LCP and RRP — emerges from the measured load imbalance, exactly as
on hardware.

``T_s`` (the sequential baseline of Figure 5) is the virtual time of the
sequential copy model: pure per-node compute with zero communication,
which mirrors the paper's use of their C++ sequential implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import generate
from repro.mpsim.costmodel import CostModel

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling", "extrapolate_large_network"]


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve."""

    scheme: str
    ranks: int
    n: int
    x: int
    simulated_time: float
    speedup: float
    supersteps: int
    imbalance: float


def sequential_time(n: int, x: int, cost_model: CostModel | None = None) -> float:
    """Virtual ``T_s``: the sequential copy model's compute-only runtime."""
    cost = cost_model or CostModel()
    m = x * (x - 1) // 2 + (n - x) * x if x > 1 else max(n - 1, 0)
    return cost.compute_time(n, work_items=m)


def strong_scaling(
    n: int,
    x: int,
    ranks_list: list[int],
    schemes: tuple[str, ...] = ("ucp", "lcp", "rrp"),
    seed: int = 0,
    cost_model: CostModel | None = None,
) -> dict[str, list[ScalingPoint]]:
    """Figure 5: fixed problem size, growing rank count.

    Returns per-scheme curves of simulated time and speedup ``T_s / T_p``.
    """
    cost = cost_model or CostModel()
    t_s = sequential_time(n, x, cost)
    curves: dict[str, list[ScalingPoint]] = {s: [] for s in schemes}
    for scheme in schemes:
        for ranks in ranks_list:
            res = generate(
                n=n, x=x, ranks=ranks, scheme=scheme, seed=seed, cost_model=cost
            )
            curves[scheme].append(
                ScalingPoint(
                    scheme=scheme,
                    ranks=ranks,
                    n=n,
                    x=x,
                    simulated_time=res.simulated_time,
                    speedup=t_s / res.simulated_time if res.simulated_time > 0 else 0.0,
                    supersteps=res.supersteps,
                    imbalance=res.imbalance,
                )
            )
    return curves


def weak_scaling(
    edges_per_rank: int,
    x: int,
    ranks_list: list[int],
    schemes: tuple[str, ...] = ("ucp", "lcp", "rrp"),
    seed: int = 0,
    cost_model: CostModel | None = None,
) -> dict[str, list[ScalingPoint]]:
    """Figure 6: per-rank problem size fixed, total size grows with P.

    The paper generates ``10^7 P`` edges for ``P`` ranks; pass the
    (scaled-down) per-rank edge budget and the driver sizes ``n`` so that
    ``n x ≈ edges_per_rank · P``.
    """
    cost = cost_model or CostModel()
    curves: dict[str, list[ScalingPoint]] = {s: [] for s in schemes}
    for scheme in schemes:
        for ranks in ranks_list:
            n = max(edges_per_rank * ranks // x, x + 1, ranks)
            res = generate(
                n=n, x=x, ranks=ranks, scheme=scheme, seed=seed, cost_model=cost
            )
            curves[scheme].append(
                ScalingPoint(
                    scheme=scheme,
                    ranks=ranks,
                    n=n,
                    x=x,
                    simulated_time=res.simulated_time,
                    speedup=float("nan"),
                    supersteps=res.supersteps,
                    imbalance=res.imbalance,
                )
            )
    return curves


def extrapolate_large_network(
    n_target: int = 10**9,
    x_target: int = 5,
    ranks_target: int = 768,
    scheme: str = "rrp",
    n_sample: int = 200_000,
    seed: int = 0,
    cost_model: CostModel | None = None,
) -> dict[str, float]:
    """Section 4.5: estimate the 50-billion-edge generation time.

    Runs a scaled-down instance with the same scheme and rank count ratio,
    measures the per-edge virtual cost and the superstep count, then scales
    the compute and traffic terms to the target size (supersteps grow with
    ``log n``; per-rank work with ``n/P``).  The paper reports 123 s on 768
    ranks; the returned dict holds our model's estimate alongside the
    measured sample quantities so EXPERIMENTS.md can show both.
    """
    import numpy as np

    cost = cost_model or CostModel()
    ranks_sample = min(ranks_target, max(2, n_sample // 2_000))
    res = generate(
        n=n_sample, x=x_target, ranks=ranks_sample, scheme=scheme, seed=seed, cost_model=cost
    )
    m_sample = len(res.edges)
    t_sample = res.simulated_time

    m_target = n_target * x_target
    # Per-rank load scales with (m/P); superstep latency with log n.
    per_rank_sample = m_sample / ranks_sample
    per_rank_target = m_target / ranks_target
    compute_scale = per_rank_target / per_rank_sample
    round_scale = np.log(n_target) / np.log(n_sample)
    alpha_part = res.supersteps * cost.round_time()
    t_estimate = (t_sample - alpha_part) * compute_scale + alpha_part * round_scale
    return {
        "n_sample": float(n_sample),
        "ranks_sample": float(ranks_sample),
        "edges_sample": float(m_sample),
        "simulated_time_sample": t_sample,
        "supersteps_sample": float(res.supersteps),
        "n_target": float(n_target),
        "x_target": float(x_target),
        "ranks_target": float(ranks_target),
        "edges_target": float(m_target),
        "estimated_time_target": float(t_estimate),
        "paper_time_target": 123.0,
    }
