"""Label-aware metric primitives: Counters, Gauges, Histograms.

The paper's whole evaluation (Section 4.6, Figure 7) is counter data — nodes,
requests sent, requests received, per rank — and the repo already aggregates
those through :class:`~repro.mpsim.stats.WorldStats`.  This module is the
generalisation that every *other* subsystem can use: a
:class:`MetricsRegistry` holds named metrics, each metric holds one value per
label set, and registries built independently (one per worker process) can
be :meth:`~MetricsRegistry.merge`\\ d into a single world view exactly like
``WorldStats`` rows are.

Design constraints, in order:

1. **Snapshot/merge round-trips.**  ``registry.snapshot()`` is a plain
   picklable dict; ``merge(snapshot)`` folds it into another registry with
   type-appropriate semantics (counters and histograms add, gauges
   last-write-wins).  Cross-process aggregation ships *cumulative* snapshots
   — re-merging a newer snapshot from the same source must not double-count,
   so the collector keeps latest-per-source and merges once (see
   :mod:`repro.telemetry.collector`).
2. **Cheap on the hot path.**  ``Counter.inc`` with no labels is one dict
   add.  Labelled access hashes a tuple of the label values.
3. **No dependencies.**  Exposition formats live in
   :mod:`repro.telemetry.export`, not here.

Examples
--------
>>> reg = MetricsRegistry()
>>> c = reg.counter("records_sent_total", "records shipped to peers")
>>> c.inc(10, rank=0)
>>> c.inc(5, rank=1)
>>> h = reg.histogram("barrier_wait_s", "seconds stalled at the barrier")
>>> h.observe(0.004, rank=0)
>>> other = MetricsRegistry()
>>> other.counter("records_sent_total", "records shipped to peers").inc(7, rank=0)
>>> reg.merge(other.snapshot())
>>> int(reg.counter("records_sent_total").value(rank=0))
17
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "proc_rss_bytes",
]


def proc_rss_bytes() -> int:
    """Current resident-set size of this process, in bytes.

    Reads ``/proc/self/statm`` (Linux; one small read, no allocation worth
    naming) and falls back to ``ru_maxrss`` — the *peak*, the closest
    portable notion — elsewhere.  This is the sampler behind the
    ``proc_rss_bytes`` gauge the engines publish per superstep, which is
    how ``repro inspect`` shows a run's memory trajectory and how the
    out-of-core bench verifies its RSS budget.
    """
    try:
        import os

        with open("/proc/self/statm", "rb") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        import resource
        import sys

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS reports bytes
        return peak if sys.platform == "darwin" else peak * 1024

#: Default histogram bucket upper bounds (seconds-flavoured: from 10us to
#: ~2 minutes, roughly x4 per step) — chosen to bracket both a fast superstep
#: and a pathological barrier stall.
DEFAULT_BUCKETS = (
    1e-5, 4e-5, 1.6e-4, 6.4e-4, 2.56e-3, 1.024e-2,
    4.096e-2, 0.16384, 0.65536, 2.62144, 10.48576, 41.94304, 128.0,
)

#: The empty label set — the common fast path.
_NO_LABELS: tuple = ()


def _label_key(labels: Mapping[str, Any]) -> tuple:
    """Canonical hashable key for a label mapping (sorted by name)."""
    if not labels:
        return _NO_LABELS
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared plumbing: a name, a help string, and per-label-set storage."""

    kind = "metric"

    __slots__ = ("name", "help", "_values")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[tuple, Any] = {}

    def labelsets(self) -> list[tuple]:
        """Every label key observed so far (sorted for determinism)."""
        return sorted(self._values)

    def _dump_values(self) -> dict[tuple, Any]:
        return dict(self._values)


class Counter(_Metric):
    """A monotonically increasing sum, one cell per label set."""

    kind = "counter"
    __slots__ = ()

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels: Any) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set."""
        return float(sum(self._values.values()))

    def _merge_cell(self, key: tuple, cell: float) -> None:
        self._values[key] = self._values.get(key, 0.0) + cell


class Gauge(_Metric):
    """A point-in-time value; merge takes the most recently written cell."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, delta: float, **labels: Any) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + delta

    def value(self, **labels: Any) -> float:
        return float(self._values.get(_label_key(labels), 0.0))

    def _merge_cell(self, key: tuple, cell: float) -> None:
        self._values[key] = cell  # last write wins


class Histogram(_Metric):
    """Bucketed observations with a running sum and count per label set.

    Buckets are cumulative-style upper bounds (Prometheus semantics): an
    observation lands in the first bucket whose bound is >= the value, with
    an implicit ``+Inf`` bucket at the end.
    """

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name} needs at least one bucket")

    def _cell(self, key: tuple) -> dict:
        cell = self._values.get(key)
        if cell is None:
            cell = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
            self._values[key] = cell
        return cell

    def observe(self, value: float, **labels: Any) -> None:
        cell = self._cell(_label_key(labels))
        cell["counts"][bisect.bisect_left(self.buckets, value)] += 1
        cell["sum"] += value
        cell["count"] += 1

    def count(self, **labels: Any) -> int:
        cell = self._values.get(_label_key(labels))
        return int(cell["count"]) if cell else 0

    def sum(self, **labels: Any) -> float:
        cell = self._values.get(_label_key(labels))
        return float(cell["sum"]) if cell else 0.0

    def mean(self, **labels: Any) -> float:
        cell = self._values.get(_label_key(labels))
        if not cell or not cell["count"]:
            return 0.0
        return float(cell["sum"] / cell["count"])

    def _merge_cell(self, key: tuple, cell: dict) -> None:
        mine = self._cell(key)
        counts = cell["counts"]
        if len(counts) != len(mine["counts"]):
            raise ValueError(
                f"histogram {self.name}: bucket mismatch "
                f"({len(counts)} vs {len(mine['counts'])} cells)"
            )
        for i, c in enumerate(counts):
            mine["counts"][i] += c
        mine["sum"] += cell["sum"]
        mine["count"] += cell["count"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge aggregation.

    One registry exists per *source* — the coordinator has one, every mp
    worker has its own — and the collector folds worker snapshots into the
    coordinator's registry the same way :class:`~repro.mpsim.stats.WorldStats`
    adopts per-rank rows.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -------------------------------------------------------------- creation
    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"{name} is a {metric.kind}, not a histogram")
        return metric

    def _get_or_create(self, cls: type, name: str, help: str) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(f"{name} is a {metric.kind}, not a {cls.kind}")
        return metric

    # ------------------------------------------------------------- inventory
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # ----------------------------------------------------------- aggregation
    def snapshot(self) -> dict:
        """A plain, picklable, *cumulative* dump of every metric."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            m = self._metrics[name]
            entry: dict[str, Any] = {
                "kind": m.kind,
                "help": m.help,
                "values": m._dump_values(),
            }
            if isinstance(m, Histogram):
                entry["buckets"] = list(m.buckets)
            out[name] = entry
        return out

    def merge(self, snapshot: Mapping[str, Mapping]) -> None:
        """Fold one snapshot in: counters/histograms add, gauges overwrite."""
        for name, entry in snapshot.items():
            kind = entry["kind"]
            if kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""), entry.get("buckets", DEFAULT_BUCKETS)
                )
            else:
                metric = self._get_or_create(_KINDS[kind], name, entry.get("help", ""))
            for key, cell in entry["values"].items():
                metric._merge_cell(tuple(key), cell)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Mapping]) -> "MetricsRegistry":
        reg = cls()
        reg.merge(snapshot)
        return reg
