"""Fixed-slot shared-memory event ring: workers publish, coordinator drains.

The mp workers live in their own address spaces; their telemetry has to
cross a process boundary to reach the coordinator.  Sending it down the job
pipes would put observability on the critical path (and lose everything a
``SIGKILL``-ed worker had buffered).  :class:`EventRing` is the alternative:
a single ``multiprocessing.shared_memory`` segment holding ``slots``
fixed-size cells plus a tiny header, created by the coordinator *before*
forking and inherited by every worker.

Semantics — chosen for the hot path, in this order:

1. **A writer never blocks on a full ring.**  When ``head`` catches up to
   ``tail + slots``, the oldest unread event is overwritten (``tail``
   advances) and the shared ``dropped`` counter increments.  Telemetry
   degrades by forgetting history, never by stalling a superstep.
2. **A crashed writer loses only its unwritten events.**  Slots are written
   under a short mutex held for one memcpy; the coordinator owns the
   segment, so everything published before a death remains drainable.
3. **Bounded everything.**  Events larger than ``slot_bytes`` are counted
   dropped and skipped (no resizing, no spillover); mutex acquisition is
   bounded by ``timeout`` so a pathologically wedged peer costs a dropped
   event, not a hang.

The payload is opaque bytes; encoding lives in
:mod:`repro.telemetry.collector`.

Examples
--------
>>> ring = EventRing(slots=4, slot_bytes=64)
>>> all(ring.put(bytes([i])) for i in range(6))   # 2 oldest fall out
True
>>> [b[0] for b in ring.drain()], ring.dropped
([2, 3, 4, 5], 2)
>>> ring.close(unlink=True)
"""

from __future__ import annotations

import multiprocessing as mp
import struct
from typing import Any

from repro.mpsim.errors import MPSimError

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["EventRing"]

#: header layout: head, tail, dropped — three little-endian int64s
_HEADER = struct.Struct("<qqq")
#: per-slot prefix: payload length
_SLOT_LEN = struct.Struct("<q")


class EventRing:
    """A multi-producer single-consumer ring of fixed-size event cells.

    Create in the coordinator before forking workers; the inherited object
    is shared.  Producers call :meth:`put`, the coordinator :meth:`drain`.
    The coordinator calls :meth:`close` with ``unlink=True`` once the
    workers are gone.

    Parameters
    ----------
    slots:
        Number of event cells.
    slot_bytes:
        Capacity of one cell's payload; larger events are dropped (counted).
    timeout:
        Mutex acquisition bound in seconds.  A producer that cannot take the
        mutex within it drops the event instead of stalling the superstep.
    """

    def __init__(
        self, slots: int = 8192, slot_bytes: int = 2048, timeout: float = 0.25
    ) -> None:
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise MPSimError("EventRing requires multiprocessing.shared_memory")
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        if slot_bytes <= 0:
            raise ValueError(f"slot_bytes must be positive, got {slot_bytes}")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self.timeout = timeout
        self._cell = _SLOT_LEN.size + self.slot_bytes
        self._shm = _shared_memory.SharedMemory(
            create=True, size=_HEADER.size + self.slots * self._cell
        )
        self._shm.buf[: _HEADER.size] = _HEADER.pack(0, 0, 0)
        self._lock = mp.get_context("fork").Lock()

    # -------------------------------------------------------------- internal
    def _read_header(self) -> tuple[int, int, int]:
        return _HEADER.unpack_from(self._shm.buf, 0)

    def _write_header(self, head: int, tail: int, dropped: int) -> None:
        _HEADER.pack_into(self._shm.buf, 0, head, tail, dropped)

    def _slot_offset(self, seq: int) -> int:
        return _HEADER.size + (seq % self.slots) * self._cell

    # --------------------------------------------------------------- produce
    def put(self, payload: bytes) -> bool:
        """Publish one event; never blocks beyond the mutex ``timeout``.

        Returns False when the event was dropped (oversized payload or an
        unobtainable mutex); a full ring is *not* a drop of the new event —
        the oldest unread one is evicted instead, and the eviction is what
        increments :attr:`dropped`.
        """
        if not self._lock.acquire(timeout=self.timeout):
            return False  # pragma: no cover - only a wedged peer gets here
        try:
            head, tail, dropped = self._read_header()
            if len(payload) > self.slot_bytes:
                self._write_header(head, tail, dropped + 1)
                return False
            if head - tail >= self.slots:
                tail += 1  # drop-oldest: the reader will simply never see it
                dropped += 1
            off = self._slot_offset(head)
            _SLOT_LEN.pack_into(self._shm.buf, off, len(payload))
            start = off + _SLOT_LEN.size
            self._shm.buf[start : start + len(payload)] = payload
            self._write_header(head + 1, tail, dropped)
            return True
        finally:
            self._lock.release()

    # --------------------------------------------------------------- consume
    def drain(self, max_events: int | None = None) -> list[bytes]:
        """Remove and return up to ``max_events`` pending events, oldest first."""
        if not self._lock.acquire(timeout=self.timeout):
            return []  # pragma: no cover - only a wedged peer gets here
        try:
            head, tail, dropped = self._read_header()
            n = head - tail
            if max_events is not None:
                n = min(n, max_events)
            out: list[bytes] = []
            for i in range(n):
                off = self._slot_offset(tail + i)
                (length,) = _SLOT_LEN.unpack_from(self._shm.buf, off)
                start = off + _SLOT_LEN.size
                out.append(bytes(self._shm.buf[start : start + length]))
            self._write_header(head, tail + n, dropped)
            return out
        finally:
            self._lock.release()

    @property
    def pending(self) -> int:
        head, tail, _ = self._read_header()
        return head - tail

    @property
    def dropped(self) -> int:
        """Events lost to eviction or oversize — the visibility guarantee."""
        return self._read_header()[2]

    # --------------------------------------------------------------- cleanup
    def close(self, unlink: bool = False) -> None:
        """Detach (and with ``unlink=True``, destroy) the shared segment."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            if unlink:
                self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._shm = None

    def __reduce__(self) -> Any:  # pragma: no cover - guard, not a feature
        raise TypeError(
            "EventRing cannot be pickled; create it before forking so "
            "workers inherit the segment"
        )
