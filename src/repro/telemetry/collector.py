"""The :class:`Telemetry` facade and the cross-process collector.

One :class:`Telemetry` object represents one *observed run*: a metrics
registry, a span recorder, recovery marks, and a drop counter.  The
coordinator (or any in-process engine) writes into it directly; mp workers
get a derived instance (:meth:`Telemetry.for_worker`) whose spans and
cumulative metric snapshots are published into a shared-memory
:class:`~repro.telemetry.ringbuf.EventRing` the moment they happen, and a
:class:`RingCollector` on the coordinator side drains the ring — during the
run and after it — and folds everything back into the master object.

Crash-robustness falls out of the layering: the coordinator owns the ring,
workers publish *cumulative* metric snapshots (so latest-wins per source,
no double counting, and a lost snapshot only costs freshness), and spans are
published as they close — a ``SIGKILL``-ed worker's timeline survives up to
its last completed span.

Everything here is observation-only by construction: no RNG is touched, no
message content inspected, no scheduling decision taken.  The test-suite
asserts generation output is bit-identical with telemetry on and off on
every engine and every exchange.

Examples
--------
>>> tel = Telemetry()
>>> with tel.span("superstep", cat="superstep", step=1):
...     tel.counter("supersteps_total").inc()
>>> tel.counter("supersteps_total").total()
1.0
>>> len(tel.spans.spans)
1
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.telemetry.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.telemetry.ringbuf import EventRing
from repro.telemetry.spans import NULL_SPAN, NullSpanRecorder, Span, SpanRecorder

__all__ = ["Telemetry", "NullTelemetry", "NOOP_TELEMETRY", "RingCollector"]


class Telemetry:
    """Unified observability handle for one run.

    Pass an instance to :func:`repro.generate` (``telemetry=``), an engine
    constructor, a :class:`~repro.mpsim.pool.WorkerPool`, or a
    :class:`~repro.mpsim.supervisor.Supervisor`; after the run it holds the
    merged spans and metrics of every participating process and can export
    them (:meth:`to_chrome_trace`, :meth:`to_prometheus`, :meth:`to_jsonl`).
    """

    enabled = True

    def __init__(self, source: str = "coordinator") -> None:
        self.source = source
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(source=source)
        #: recovery / lifecycle annotations: ``(superstep, label)`` pairs
        self.marks: list[tuple[int, str]] = []
        #: events lost in the cross-process ring (overflow/oversize)
        self.dropped_events = 0
        #: free-form run metadata stamped into exports
        self.meta: dict[str, Any] = {}
        self._ring: EventRing | None = None

    # -------------------------------------------------------------- recording
    def span(self, name: str, cat: str = "run", tid: int = 0, **args: Any):
        return self.spans.span(name, cat=cat, tid=tid, **args)

    def instant(self, name: str, tid: int = 0, **args: Any) -> None:
        self.spans.instant(name, tid=tid, **args)
        if self._ring is not None:
            self._publish(("instant", self.spans.instants[-1]))

    def mark(self, label: str, superstep: int = 0) -> None:
        """Annotate the run timeline (recoveries, respawns, phase changes)."""
        self.marks.append((int(superstep), str(label)))
        self.instant(label, superstep=int(superstep), mark=True)

    def counter(self, name: str, help: str = ""):
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = ""):
        return self.registry.gauge(name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        return self.registry.histogram(name, help, buckets)

    # ------------------------------------------------------- worker publishing
    @classmethod
    def for_worker(cls, ring: EventRing, rank: int) -> "Telemetry":
        """A worker-process instance publishing into ``ring``.

        Spans are shipped as they close (and not retained locally, so a
        long job cannot grow worker memory); metrics stay in the worker's
        registry and travel as cumulative snapshots on :meth:`flush`.
        """
        tel = cls(source=f"rank{rank}")
        tel._ring = ring
        tel.spans = SpanRecorder(
            source=tel.source,
            sink=lambda span: tel._publish(("span", span)),
            keep=False,
        )
        return tel

    def _publish(self, event: tuple) -> None:
        if self._ring is None:
            return
        try:
            self._ring.put(pickle.dumps(event, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:  # pragma: no cover - ring torn down under us
            pass

    def flush(self) -> None:
        """Publish this process's cumulative metric snapshot (workers only)."""
        if self._ring is not None:
            self._publish(("metrics", self.source, self.registry.snapshot()))

    # ------------------------------------------------------------- reporting
    def record(self) -> dict:
        """One merged, JSON-able run record (used by the JSONL exporter)."""
        from repro.telemetry.export import _jsonable, spans_to_events

        return {
            "schema": "repro-telemetry/v1",
            "source": self.source,
            "meta": dict(self.meta),
            "dropped_events": int(self.dropped_events),
            "marks": [[s, label] for s, label in self.marks],
            "metrics": _jsonable(self.registry.snapshot()),
            "events": spans_to_events(self.spans.spans, self.spans.instants),
        }

    def to_chrome_trace(self, path: str | None = None) -> dict:
        """Chrome ``chrome://tracing`` / Perfetto trace-event JSON."""
        from repro.telemetry.export import chrome_trace, write_chrome_trace

        trace = chrome_trace(
            self.spans.spans,
            self.spans.instants,
            metadata={
                "source": self.source,
                "dropped_events": int(self.dropped_events),
                "marks": [[s, label] for s, label in self.marks],
                **self.meta,
            },
        )
        if path is not None:
            write_chrome_trace(path, trace)
        return trace

    def to_prometheus(self, path: str | None = None) -> str:
        """Prometheus text exposition of the merged metrics."""
        from repro.telemetry.export import prometheus_text

        text = prometheus_text(self.registry.snapshot())
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text

    def to_jsonl(self, path: str) -> None:
        """Append this run's record as one JSON line."""
        from repro.telemetry.export import append_jsonl

        append_jsonl(path, self.record())


class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        return None

    def set(self, value: float, **labels: Any) -> None:
        return None

    def add(self, delta: float, **labels: Any) -> None:
        return None

    def observe(self, value: float, **labels: Any) -> None:
        return None

    def value(self, **labels: Any) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: Any) -> int:
        return 0


_NULL_METRIC = _NullMetric()


class NullTelemetry:
    """The disabled path: every operation is a no-op, nothing allocates.

    Engines store ``telemetry or NOOP_TELEMETRY`` so instrumentation sites
    need no ``if`` guards; the shared :data:`~repro.telemetry.spans.NULL_SPAN`
    context manager makes ``with tel.span(...):`` free.
    """

    enabled = False
    dropped_events = 0
    marks: list[tuple[int, str]] = []
    meta: dict[str, Any] = {}
    spans = NullSpanRecorder()
    _ring = None

    def span(self, name: str, cat: str = "run", tid: int = 0, **args: Any):
        return NULL_SPAN

    def instant(self, name: str, tid: int = 0, **args: Any) -> None:
        return None

    def mark(self, label: str, superstep: int = 0) -> None:
        return None

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> _NullMetric:
        return _NULL_METRIC

    def flush(self) -> None:
        return None


#: Shared disabled instance — the default for every ``telemetry=`` parameter.
NOOP_TELEMETRY = NullTelemetry()


def resolve(telemetry: Any) -> Any:
    """Normalise a ``telemetry=`` argument: ``None`` means disabled."""
    return NOOP_TELEMETRY if telemetry is None else telemetry


class RingCollector:
    """Coordinator-side drain: fold ring events into a master Telemetry.

    Create one per :class:`~repro.telemetry.ringbuf.EventRing`; call
    :meth:`drain` opportunistically while the run progresses (the mp
    coordinator does so from its liveness-poll loop) and
    :meth:`merge_into` once the run — or the attempt, for supervised
    crash-recovery runs — is over.  Surviving a worker crash needs no
    special handling: whatever the victim published is already in the ring
    or in this collector.
    """

    def __init__(self, ring: EventRing) -> None:
        self.ring = ring
        self._spans: list[Span] = []
        self._instants: list[tuple[float, int, str, dict]] = []
        #: latest cumulative metrics snapshot per source (rank), so re-merges
        #: cannot double-count
        self._metrics: dict[str, dict] = {}
        self._undecodable = 0
        self._dropped_seen = 0

    def drain(self) -> int:
        """Pull every pending ring event; returns how many were consumed."""
        blobs = self.ring.drain()
        for blob in blobs:
            try:
                kind, *rest = pickle.loads(blob)
                if kind == "span":
                    self._spans.append(rest[0])
                elif kind == "metrics":
                    self._metrics[rest[0]] = rest[1]
                elif kind == "instant":
                    self._instants.append(rest[0])
                else:
                    self._undecodable += 1
            except Exception:
                # a torn or half-written cell (writer died mid-publish);
                # telemetry must never take the run down with it
                self._undecodable += 1
        return len(blobs)

    def merge_into(self, telemetry: Telemetry) -> None:
        """Drain once more, then fold everything into ``telemetry``."""
        self.drain()
        if not getattr(telemetry, "enabled", False):
            return
        for span in self._spans:
            telemetry.spans.add(span)
        telemetry.spans.instants.extend(self._instants)
        self._spans = []
        self._instants = []
        for snapshot in self._metrics.values():
            telemetry.registry.merge(snapshot)
        self._metrics.clear()
        dropped = self.ring.dropped
        new_drops = (dropped - self._dropped_seen) + self._undecodable
        self._dropped_seen = dropped
        self._undecodable = 0
        if new_drops:
            telemetry.dropped_events += new_drops
            telemetry.counter(
                "telemetry_dropped_events_total",
                "ring events lost to overflow, oversize, or torn writes",
            ).inc(new_drops)
