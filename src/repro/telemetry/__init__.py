"""repro.telemetry — cross-process metrics, spans, and trace export.

The repo's unified observability subsystem.  The paper's evaluation is
built on per-rank load and message accounting (Section 4.6, Figure 7);
related generators report that communication *imbalance*, not compute, is
what kills scaling — so this package makes every engine's time visible:

* :mod:`~repro.telemetry.metrics` — label-aware Counters / Gauges /
  Histograms in a :class:`MetricsRegistry` that snapshots and merges like
  :class:`~repro.mpsim.stats.WorldStats`;
* :mod:`~repro.telemetry.spans` — nestable wall-clock spans with a
  zero-overhead no-op path when telemetry is disabled;
* :mod:`~repro.telemetry.ringbuf` — a fixed-slot shared-memory event ring
  with drop-oldest-and-count semantics, so mp workers publish without ever
  blocking the hot path;
* :mod:`~repro.telemetry.collector` — the :class:`Telemetry` facade and
  the coordinator-side drain that merges worker data into one run record,
  surviving worker crashes mid-run;
* :mod:`~repro.telemetry.export` — Chrome trace-event JSON, Prometheus
  text exposition, JSONL run records, and the ``repro inspect`` summary.

Quick start::

    from repro import Telemetry, generate

    tel = Telemetry()
    result = generate(n=100_000, ranks=8, seed=42, engine="mp", telemetry=tel)
    tel.to_chrome_trace("run.trace.json")     # open in chrome://tracing
    print(tel.to_prometheus())                # scrapeable metrics

or from the CLI::

    repro-pa generate -n 100000 -P 8 --engine mp --trace-out run.trace.json
    repro-pa inspect run.trace.json

See ``docs/observability.md`` for the subsystem design.
"""

from repro.telemetry.collector import (
    NOOP_TELEMETRY,
    NullTelemetry,
    RingCollector,
    Telemetry,
)
from repro.telemetry.export import (
    append_jsonl,
    chrome_trace,
    inspect_summary,
    load_chrome_trace,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.ringbuf import EventRing
from repro.telemetry.spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "EventRing",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TELEMETRY",
    "NullTelemetry",
    "RingCollector",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "append_jsonl",
    "chrome_trace",
    "inspect_summary",
    "load_chrome_trace",
    "prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
]
