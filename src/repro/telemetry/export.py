"""Trace and metrics exporters: Chrome trace-event JSON, Prometheus, JSONL.

Three formats, three audiences:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — open in
  ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_ for an
  interactive per-rank timeline.  Both the real engines' wall-clock spans
  and the simulated engine's virtual-time
  :meth:`~repro.mpsim.trace.Tracer.to_chrome_trace` emit this same schema,
  so simulated and real runs open in the same viewer.
* **Prometheus text exposition** (:func:`prometheus_text`) — scrapeable
  counters/gauges/histograms for a service deployment.
* **JSONL run records** (:func:`append_jsonl`) — one line per run, for
  longitudinal analysis across a campaign.

:func:`inspect_summary` renders the per-rank utilisation / barrier-wait
table behind the ``repro inspect <trace>`` CLI subcommand, and
:func:`validate_chrome_trace` is the schema check the CI telemetry smoke
job runs on freshly generated traces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.telemetry.spans import Span

__all__ = [
    "spans_to_events",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
    "append_jsonl",
    "inspect_summary",
]

#: categories the inspector buckets a rank's time into
_BUSY_CATS = ("compute",)
_WAIT_CATS = ("barrier",)
_COMM_CATS = ("exchange",)


def spans_to_events(
    spans: Sequence[Span],
    instants: Sequence[tuple[float, int, str, dict]] = (),
    t0: float | None = None,
) -> list[dict]:
    """Convert spans + instant events to trace-event dicts (ts in us).

    Timestamps are rebased to the earliest event so traces start near zero
    regardless of machine uptime (spans use the monotonic clock).
    """
    if t0 is None:
        starts = [s.ts for s in spans] + [ts for ts, *_ in instants]
        t0 = min(starts) if starts else 0.0
    events = [s.to_event(t0=t0) for s in spans]
    for ts, tid, name, args in instants:
        events.append(
            {
                "name": name,
                "cat": "mark",
                "ph": "i",
                "ts": (ts - t0) * 1e6,
                "pid": 0,
                "tid": tid,
                "s": "g",  # global-scope instant: draws a full-height line
                "args": dict(args),
            }
        )
    events.sort(key=lambda e: e["ts"])
    return events


def chrome_trace(
    spans: Sequence[Span] = (),
    instants: Sequence[tuple[float, int, str, dict]] = (),
    events: Iterable[Mapping] | None = None,
    metadata: Mapping[str, Any] | None = None,
) -> dict:
    """Assemble the trace-event JSON object.

    Either pass :class:`Span` objects (``spans``/``instants``) or pre-built
    event dicts (``events`` — the virtual-time ``Tracer`` path); both may be
    combined.
    """
    all_events = spans_to_events(spans, instants)
    if events is not None:
        all_events.extend(dict(e) for e in events)
        all_events.sort(key=lambda e: e.get("ts", 0.0))
    return {
        "traceEvents": all_events,
        "displayTimeUnit": "ms",
        "metadata": dict(metadata or {}),
    }


def write_chrome_trace(path: str | Path, trace: Mapping[str, Any]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, default=_json_default) + "\n")
    return path


def _json_default(obj: Any) -> Any:
    """Last-resort JSON coercion for numpy scalars and exotic args."""
    for attr in ("item",):  # numpy scalars
        if hasattr(obj, attr):
            return getattr(obj, attr)()
    return str(obj)


def load_chrome_trace(path: str | Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def validate_chrome_trace(trace: Mapping[str, Any]) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    if not events:
        errors.append("traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                errors.append(f"event {i} ({ev.get('name', '?')}): missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i", "B", "E", "C", "M"):
            errors.append(f"event {i}: unknown phase {ph!r}")
        if ph == "X" and "dur" not in ev:
            errors.append(f"event {i} ({ev.get('name', '?')}): X event without dur")
        ts = ev.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            errors.append(f"event {i}: non-numeric ts {ts!r}")
    return errors


# ------------------------------------------------------------------ prometheus
def _fmt_labels(key: Sequence[tuple], extra: Sequence[tuple] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + inner + "}"


def prometheus_text(snapshot: Mapping[str, Mapping]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(entry["values"]):
            cell = entry["values"][key]
            key = tuple(key)
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(entry["buckets"], cell["counts"]):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket{_fmt_labels(key, [('le', repr(float(bound)))])}"
                        f" {cumulative}"
                    )
                cumulative += cell["counts"][-1]
                lines.append(
                    f"{name}_bucket{_fmt_labels(key, [('le', '+Inf')])} {cumulative}"
                )
                lines.append(f"{name}_sum{_fmt_labels(key)} {cell['sum']:.9g}")
                lines.append(f"{name}_count{_fmt_labels(key)} {cell['count']}")
            else:
                lines.append(f"{name}{_fmt_labels(key)} {float(cell):.9g}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------- jsonl
def append_jsonl(path: str | Path, record: Mapping[str, Any]) -> Path:
    """Append one run record as a single JSON line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(_jsonable(record), default=_json_default) + "\n")
    return path


def _jsonable(obj: Any) -> Any:
    """Recursively coerce tuple-keyed metric dicts into JSON-safe shapes."""
    if isinstance(obj, Mapping):
        return {
            (k if isinstance(k, str) else json.dumps(_jsonable(k))): _jsonable(v)
            for k, v in obj.items()
        }
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


# --------------------------------------------------------------------- inspect
def inspect_summary(trace: Mapping[str, Any]) -> str:
    """Per-rank utilisation / barrier-wait summary of a trace-event file.

    Works on any trace following this package's conventions (``tid`` = rank,
    categories ``compute`` / ``exchange`` / ``barrier``), which covers the
    mp engine's wall-clock traces *and* the simulated engine's virtual-time
    traces — the units differ (wall vs virtual seconds), the shape doesn't.
    """
    events = trace.get("traceEvents", [])
    xs = [e for e in events if e.get("ph") == "X"]
    marks = [e for e in events if e.get("ph") == "i"]
    if not xs:
        return "(no duration events in trace)"

    lanes: dict[int, dict[str, float]] = {}
    t_min, t_max = float("inf"), float("-inf")
    for ev in xs:
        tid = int(ev.get("tid", 0))
        cat = ev.get("cat", "other")
        lane = lanes.setdefault(tid, {})
        lane[cat] = lane.get(cat, 0.0) + float(ev.get("dur", 0.0))
        t_min = min(t_min, float(ev["ts"]))
        t_max = max(t_max, float(ev["ts"]) + float(ev.get("dur", 0.0)))
    window_s = max((t_max - t_min) / 1e6, 1e-12)

    def bucket(lane: dict[str, float], cats: Sequence[str]) -> float:
        return sum(lane.get(c, 0.0) for c in cats) / 1e6

    header = (
        f"{'lane':>6} {'busy_s':>10} {'exchange_s':>11} {'barrier_s':>10} "
        f"{'other_s':>9} {'util%':>6}"
    )
    lines = [
        f"trace: {len(xs)} spans across {len(lanes)} lanes, "
        f"window {window_s:.3f}s (lane = rank; tid -1 = coordinator)",
        header,
        "-" * len(header),
    ]
    tracked = set(_BUSY_CATS) | set(_WAIT_CATS) | set(_COMM_CATS)
    total_busy = total_wait = 0.0
    for tid in sorted(lanes):
        lane = lanes[tid]
        busy = bucket(lane, _BUSY_CATS)
        comm = bucket(lane, _COMM_CATS)
        wait = bucket(lane, _WAIT_CATS)
        other = bucket(lane, [c for c in lane if c not in tracked])
        util = 100.0 * busy / window_s
        total_busy += busy
        total_wait += wait
        lines.append(
            f"{tid:>6} {busy:>10.4f} {comm:>11.4f} {wait:>10.4f} "
            f"{other:>9.4f} {util:>5.1f}%"
        )
    if total_busy + total_wait > 0:
        lines.append(
            f"barrier wait is {100.0 * total_wait / (total_busy + total_wait):.1f}% "
            "of busy+wait time (imbalance cost)"
        )
    # memory trajectory: spans annotated with rss_bytes (one sample per
    # superstep from every engine process — see telemetry.metrics.proc_rss_bytes)
    rss_by_lane: dict[int, tuple[float, float]] = {}
    for ev in xs:
        rss = ev.get("args", {}).get("rss_bytes")
        if rss is None:
            continue
        tid = int(ev.get("tid", 0))
        first, peak = rss_by_lane.get(tid, (float(rss), 0.0))
        rss_by_lane[tid] = (first, max(peak, float(rss)))
    if rss_by_lane:
        parts = [
            f"{tid}: {first / 1e6:.0f}->{peak / 1e6:.0f} MB"
            for tid, (first, peak) in sorted(rss_by_lane.items())
        ]
        lines.append("rss per lane (first->peak): " + ", ".join(parts))
    meta = trace.get("metadata", {})
    dropped = meta.get("dropped_events", 0)
    if dropped:
        lines.append(f"warning: {dropped} telemetry events dropped (ring overflow)")
    for mk in marks:
        args = mk.get("args", {})
        at = ""
        if "superstep" in args:
            at = f" @ superstep {args['superstep']}"
        lines.append(f"mark{at}: {mk.get('name', '?')}")
    return "\n".join(lines)
