"""Nestable wall-clock spans with a zero-overhead disabled path.

A *span* is one timed region of execution — a superstep, a barrier wait, a
checkpoint write — with a name, a category (used by the exporters and the
``repro inspect`` summariser to bucket time), a thread lane (``tid``, by
convention the BSP rank), and free-form args.  Spans nest; the recorder does
not track parentage explicitly because Chrome's trace viewer reconstructs
nesting from containment on the same ``(pid, tid)`` lane.

Timestamps are ``time.monotonic()`` — on Linux a single system-wide clock,
so spans recorded in different worker processes line up on one timeline
without cross-process clock agreement.

The disabled path matters more than the enabled one: telemetry defaults to
*off* everywhere, and the instrumentation sits inside superstep loops.  The
no-op recorder hands out one shared reusable context manager whose
``__enter__``/``__exit__`` do nothing — no allocation, no clock read, no
branch in user code — so a disabled run is indistinguishable from an
uninstrumented one (gated by ``benchmarks/bench_hotpaths.py``).

Examples
--------
>>> rec = SpanRecorder(source="demo")
>>> with rec.span("outer", cat="run"):
...     with rec.span("inner", cat="compute", tid=3, step=1):
...         pass
>>> [s.name for s in rec.spans]   # completion order: inner closes first
['inner', 'outer']
>>> rec.spans[0].tid, rec.spans[0].args["step"]
(3, 1)
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Span", "SpanRecorder", "NullSpanRecorder", "NULL_SPAN"]


@dataclass
class Span:
    """One completed timed region."""

    name: str
    cat: str
    ts: float  # monotonic start, seconds
    dur: float  # duration, seconds
    pid: int
    tid: int
    args: dict[str, Any] = field(default_factory=dict)

    def to_event(self, t0: float = 0.0, scale: float = 1e6) -> dict:
        """Chrome trace-event ``"X"`` dict (timestamps in microseconds)."""
        return {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": (self.ts - t0) * scale,
            "dur": self.dur * scale,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }


class _LiveSpan:
    """Context manager for one in-flight span (one per ``with`` statement)."""

    __slots__ = ("_rec", "_name", "_cat", "_tid", "_args", "_t0")

    def __init__(self, rec: "SpanRecorder", name: str, cat: str, tid: int, args: dict):
        self._rec = rec
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._t0 = time.monotonic()
        return self

    def note(self, **args: Any) -> None:
        """Attach args discovered while the span is open (e.g. totals)."""
        self._args.update(args)

    def __exit__(self, *exc: Any) -> None:
        t1 = time.monotonic()
        self._rec._finish(
            Span(
                name=self._name,
                cat=self._cat,
                ts=self._t0,
                dur=t1 - self._t0,
                pid=self._rec.pid,
                tid=self._tid,
                args=self._args,
            )
        )


class SpanRecorder:
    """Collect completed spans (and instant events) for one process.

    Parameters
    ----------
    source:
        Free-form origin label (``"coordinator"``, ``"rank3"``), carried in
        exported metadata.
    sink:
        Optional callable invoked with each completed :class:`Span` *instead
        of* (when ``keep=False``) or *in addition to* local retention.  The
        mp workers use a sink that publishes spans into the shared-memory
        event ring the moment they close, so a crashed worker's history
        survives it.
    keep:
        Retain spans in :attr:`spans` (the default).  Workers publishing via
        ``sink`` switch this off so their local list cannot grow unbounded.
    """

    enabled = True

    def __init__(
        self,
        source: str = "",
        sink: Callable[[Span], None] | None = None,
        keep: bool = True,
    ) -> None:
        self.source = source
        self.sink = sink
        self.keep = keep
        self.pid = os.getpid()
        self.spans: list[Span] = []
        #: instant events: ``(monotonic_ts, tid, name, args)``
        self.instants: list[tuple[float, int, str, dict]] = []

    def span(self, name: str, cat: str = "run", tid: int = 0, **args: Any):
        """Open a timed region; use as ``with rec.span(...):``."""
        return _LiveSpan(self, name, cat, tid, args)

    def instant(self, name: str, tid: int = 0, **args: Any) -> None:
        """Record a zero-duration timeline event (e.g. a recovery mark)."""
        self.instants.append((time.monotonic(), tid, name, args))

    def add(self, span: Span) -> None:
        """Adopt an externally produced span (collector drain path)."""
        self.spans.append(span)

    def _finish(self, span: Span) -> None:
        if self.keep:
            self.spans.append(span)
        if self.sink is not None:
            self.sink(span)

    # ------------------------------------------------------------- reporting
    def total(self, cat: str | None = None) -> float:
        """Sum of span durations, optionally restricted to one category."""
        return sum(s.dur for s in self.spans if cat is None or s.cat == cat)

    def by_cat(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.cat] = out.get(s.cat, 0.0) + s.dur
        return out


class _NullSpan:
    """The shared do-nothing context manager (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def note(self, **args: Any) -> None:
        return None


#: The singleton no-op span — reused by every disabled ``span()`` call.
NULL_SPAN = _NullSpan()


class NullSpanRecorder:
    """Recorder whose every operation is a no-op (the disabled path)."""

    enabled = False
    pid = 0
    source = ""
    spans: list[Span] = []  # intentionally shared & never appended to
    instants: list[tuple[float, int, str, dict]] = []

    def span(self, name: str, cat: str = "run", tid: int = 0, **args: Any) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, tid: int = 0, **args: Any) -> None:
        return None

    def add(self, span: Span) -> None:
        return None

    def total(self, cat: str | None = None) -> float:
        return 0.0

    def by_cat(self) -> dict[str, float]:
        return {}
