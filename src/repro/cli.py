"""Command-line interface: ``repro-pa`` / ``python -m repro``.

Subcommands
-----------

``generate``
    Generate a PA network and write it to disk (binary or text edge list).
``validate``
    Check the structural invariants of an edge-list file.
``stats``
    Degree-distribution summary and power-law fit of an edge-list file.
``scaling``
    Run a small strong-scaling sweep and print the Figure-5-style table.
``chains``
    Dependency-chain statistics for a given ``(n, p)`` (Theorem 3.3 check).
``inspect``
    Per-rank utilisation / barrier-wait summary of a Chrome trace written
    by ``generate --trace-out``.
``explore``
    Schedule-space fuzzing: sweep seeded message-delivery/activation
    schedules, assert the graph is schedule-invariant, shrink and dump any
    failing schedule, and ``--replay`` dumped artifacts.
``evolve``
    Generate a PA network, evolve it under a seeded churn schedule
    (arrivals, departures, deletions, rewires), seal temporal snapshots,
    and ``--inspect`` a snapshot directory's epoch manifest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pa",
        description="Distributed-memory parallel preferential-attachment generator (SC'13 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a PA network")
    g.add_argument("-n", "--nodes", type=int, required=True, help="number of nodes")
    g.add_argument("-x", "--edges-per-node", type=int, default=1)
    g.add_argument("-p", "--prob", type=float, default=0.5, help="direct-attachment probability")
    g.add_argument("-P", "--ranks", type=int, default=1, help="simulated processor count")
    g.add_argument("--scheme", choices=["ucp", "lcp", "rrp", "ecp"], default="rrp")
    g.add_argument("--engine", choices=["bsp", "event", "sequential", "mp"], default="bsp")
    g.add_argument("--generator", choices=["copy", "commfree"], default="copy",
                   help="'copy' (default): the paper's message-resolving "
                        "copy-model pipeline; 'commfree': the communication-"
                        "free family — every draw is recomputable from "
                        "(seed, slot), so parallel ranks never exchange "
                        "messages (engines: sequential, bsp, mp)")
    g.add_argument("--exchange", choices=["shm", "pickle", "p2p"], default="shm",
                   help="superstep transport for --engine mp: coordinator-"
                        "routed shared memory (shm), pickled pipes (pickle), "
                        "or the peer-to-peer mailbox fabric (p2p)")
    g.add_argument("--pool", action="store_true",
                   help="run --engine mp through a persistent WorkerPool "
                        "(forks once; the shape embedding services use to "
                        "amortize startup across repeated generations)")
    g.add_argument("--seed", type=int, default=None)
    g.add_argument("-o", "--output", type=Path, default=None, help="output edge file")
    g.add_argument("--text", action="store_true", help="write text instead of binary")
    g.add_argument("--validate", action="store_true", help="validate before writing")
    g.add_argument("--checkpoint", type=Path, default=None,
                   help="snapshot engine state here every --checkpoint-every "
                        "supersteps (--engine bsp or mp)")
    g.add_argument("--checkpoint-every", type=int, default=1)
    g.add_argument("--checkpoint-dir", type=Path, default=None,
                   help="rotate checkpoints under this directory and run "
                        "supervised: crashes are recovered automatically "
                        "(--engine bsp or mp; on mp, killed worker "
                        "processes are respawned and resumed)")
    g.add_argument("--checkpoint-keep", type=int, default=3,
                   help="checkpoint generations to retain in --checkpoint-dir")
    g.add_argument("--inject-faults", type=int, default=None, metavar="SEED",
                   help="inject a deterministic chaos fault plan seeded here "
                        "(combine with --checkpoint-dir to recover from it)")
    g.add_argument("--max-retries", type=int, default=3,
                   help="supervised recovery attempts before giving up")
    g.add_argument("--barrier-timeout", type=float, default=120.0,
                   help="wall-clock bound (s) on the --exchange p2p barrier; "
                        "dead ranks are detected much faster via sentinels, "
                        "this only catches wedged-but-alive ones")
    g.add_argument("--liveness-poll", type=float, default=0.25,
                   help="--engine mp: how often (s) the coordinator re-arms "
                        "its wait on worker pipes to check for silent deaths")
    g.add_argument("--out-of-core", type=Path, default=None, metavar="DIR",
                   help="spill edges to sha256-sealed shards under DIR "
                        "instead of accumulating them in RAM; peak RSS of "
                        "the edge-storage layer is bounded by "
                        "--spill-budget-mb and the output is bit-identical "
                        "to the in-RAM path (see docs/performance.md)")
    g.add_argument("--spill-budget-mb", type=float, default=64.0,
                   help="out-of-core write-buffer budget in MiB "
                        "(default: 64)")
    g.add_argument("--trace-out", type=Path, default=None,
                   help="record telemetry and write a Chrome trace-event "
                        "JSON here (open in chrome://tracing / Perfetto, "
                        "or summarize with 'repro-pa inspect')")
    g.add_argument("--metrics-out", type=Path, default=None,
                   help="record telemetry and write Prometheus text-format "
                        "metrics here")

    o = sub.add_parser("other", help="generate non-PA models on the same substrate")
    o.add_argument("--model", choices=["er", "rmat", "chung-lu"], required=True)
    o.add_argument("-n", "--nodes", type=int, default=None,
                   help="nodes (er/chung-lu); rmat uses --scale")
    o.add_argument("-p", "--prob", type=float, default=0.01, help="er edge probability")
    o.add_argument("--scale", type=int, default=16, help="rmat: log2 of node count")
    o.add_argument("-m", "--edges", type=int, default=None, help="rmat edge count")
    o.add_argument("--mean-degree", type=float, default=8.0, help="chung-lu mean weight")
    o.add_argument("-P", "--ranks", type=int, default=4)
    o.add_argument("--seed", type=int, default=None)
    o.add_argument("-o", "--output", type=Path, default=None)
    o.add_argument("--text", action="store_true")

    d = sub.add_parser("degree-dist", help="log-binned degree distribution of a file")
    d.add_argument("path", type=Path)
    d.add_argument("--text", action="store_true")
    d.add_argument("--plot", action="store_true", help="render an ASCII log-log plot")

    a = sub.add_parser("analyze", help="distributed analysis of an edge-list file")
    a.add_argument("path", type=Path)
    a.add_argument("-n", "--nodes", type=int, required=True)
    a.add_argument("-P", "--ranks", type=int, default=8)
    a.add_argument("--scheme", choices=["ucp", "lcp", "rrp", "ecp"], default="rrp")
    a.add_argument("--text", action="store_true")
    a.add_argument("--bfs-source", type=int, default=0)
    a.add_argument("--pagerank-iters", type=int, default=30)

    v = sub.add_parser("validate", help="validate an edge-list file")
    v.add_argument("path", type=Path)
    v.add_argument("-n", "--nodes", type=int, required=True)
    v.add_argument("-x", "--edges-per-node", type=int, required=True)
    v.add_argument("--text", action="store_true")

    s = sub.add_parser("stats", help="degree statistics of an edge-list file")
    s.add_argument("path", type=Path)
    s.add_argument("--text", action="store_true")
    s.add_argument("--k-min", type=int, default=None, help="power-law tail cutoff")

    sc = sub.add_parser("scaling", help="strong-scaling sweep (Figure 5 style)")
    sc.add_argument("-n", "--nodes", type=int, default=50_000)
    sc.add_argument("-x", "--edges-per-node", type=int, default=6)
    sc.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    sc.add_argument("--schemes", nargs="+", default=["ucp", "lcp", "rrp"])
    sc.add_argument("--seed", type=int, default=0)

    cp = sub.add_parser("campaign", help="run a parameter-grid campaign to CSV")
    cp.add_argument("-n", "--nodes", type=int, nargs="+", default=[10_000])
    cp.add_argument("-x", "--edges-per-node", type=int, nargs="+", default=[4])
    cp.add_argument("-P", "--ranks", type=int, nargs="+", default=[4, 16])
    cp.add_argument("--schemes", nargs="+", default=["ucp", "lcp", "rrp"])
    cp.add_argument("--seed", type=int, default=0)
    cp.add_argument("-o", "--output", type=Path, required=True, help="CSV path")

    c = sub.add_parser("chains", help="dependency-chain statistics (Theorem 3.3)")
    c.add_argument("-n", "--nodes", type=int, default=1_000_000)
    c.add_argument("-p", "--prob", type=float, default=0.5)
    c.add_argument("--seed", type=int, default=0)

    i = sub.add_parser("inspect", help="summarize a Chrome trace from --trace-out")
    i.add_argument("path", type=Path, help="trace JSON written by generate --trace-out")

    e = sub.add_parser(
        "explore",
        help="fuzz message-delivery schedules and assert the graph is invariant",
    )
    e.add_argument("-n", "--nodes", type=int, default=300)
    e.add_argument("-x", "--edges-per-node", type=int, default=1)
    e.add_argument("-p", "--prob", type=float, default=0.5)
    e.add_argument("-P", "--ranks", type=int, default=4)
    e.add_argument("--scheme", choices=["ucp", "lcp", "rrp", "ecp"], default="ecp")
    e.add_argument("--engine", choices=["bsp", "event"], default="bsp",
                   help="in-process engine whose choice points are permuted")
    e.add_argument("--seed", type=int, default=0, help="generator seed under test")
    e.add_argument("--policy", choices=["random", "priority", "straggler", "dpor"],
                   default="random", help="schedule policy driving the sweep")
    e.add_argument("--schedules", type=int, default=64,
                   help="schedules to explore (unique classes under --policy dpor)")
    e.add_argument("--policy-seed", type=int, default=0,
                   help="root seed the per-trial policy seeds derive from")
    e.add_argument("--crash-rank", type=int, default=None,
                   help="compose a FaultPlan crash of this rank into the sweep")
    e.add_argument("--crash-superstep", type=int, default=None,
                   help="crash superstep (--engine bsp)")
    e.add_argument("--crash-time", type=float, default=None,
                   help="crash virtual time in seconds (--engine event)")
    e.add_argument("--watchdog-factor", type=int, default=10,
                   help="no-progress budget = max(1000, factor x baseline ticks)")
    e.add_argument("--artifact-dir", type=Path, default=None,
                   help="dump shrunk failing-schedule artifacts here")
    e.add_argument("--replay", type=Path, default=None,
                   help="re-run a dumped failing-schedule artifact instead of "
                        "sweeping (all other options are read from the file)")

    ev = sub.add_parser(
        "evolve",
        help="generate a PA network and evolve it under a churn schedule",
    )
    ev.add_argument("--inspect", type=Path, default=None, metavar="DIR",
                    help="print the epoch summary of a snapshot directory "
                         "written by --snapshot-dir and exit (all other "
                         "options are ignored)")
    ev.add_argument("-n", "--nodes", type=int, default=1_000)
    ev.add_argument("-x", "--edges-per-node", type=int, default=2)
    ev.add_argument("-p", "--prob", type=float, default=0.5)
    ev.add_argument("-P", "--ranks", type=int, default=1)
    ev.add_argument("--scheme", choices=["ucp", "lcp", "rrp", "ecp"], default="rrp")
    ev.add_argument("--engine", choices=["sequential", "bsp", "mp"],
                    default="sequential",
                    help="engine for both generation and evolution")
    ev.add_argument("--exchange", choices=["shm", "pickle", "p2p"], default="p2p",
                    help="superstep transport for --engine mp")
    ev.add_argument("--seed", type=int, default=0, help="generation seed")
    ev.add_argument("--churn-seed", type=int, default=None,
                    help="churn-schedule seed (default: --seed)")
    ev.add_argument("--epochs", type=int, default=10)
    ev.add_argument("--arrival-rate", type=float, default=8.0,
                    help="mean Poisson node arrivals per epoch")
    ev.add_argument("--attach", type=int, default=2,
                    help="edges each arriving node attaches preferentially")
    ev.add_argument("--departure-prob", type=float, default=0.02,
                    help="per-node, per-epoch departure probability")
    ev.add_argument("--deletion-rate", type=float, default=2.0,
                    help="mean Poisson edge deletions per epoch")
    ev.add_argument("--rewire-rate", type=float, default=2.0,
                    help="mean Poisson degree-proportional rewires per epoch")
    ev.add_argument("--snapshot-dir", type=Path, default=None,
                    help="seal a temporal snapshot of the evolving graph "
                         "here (sha256-sealed, epoch manifest; inspect "
                         "with 'repro-pa evolve --inspect DIR')")
    ev.add_argument("--snapshot-every", type=int, default=1,
                    help="epochs between snapshots (default: every epoch)")
    ev.add_argument("--checkpoint-dir", type=Path, default=None,
                    help="rotate per-epoch checkpoints here and run the "
                         "evolution supervised (--engine bsp or mp)")
    ev.add_argument("--checkpoint-keep", type=int, default=3)
    ev.add_argument("--max-retries", type=int, default=3)
    ev.add_argument("--departure-faults", action="store_true",
                    help="express each epoch's departures through a "
                         "deterministic rank-crash fault plan recovered by "
                         "the supervisor (needs --checkpoint-dir and -P >= 2)")
    ev.add_argument("-o", "--output", type=Path, default=None,
                    help="write the final evolved edge list here")
    ev.add_argument("--text", action="store_true", help="write text instead of binary")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.core.generator import generate
    from repro.graph import io as gio

    if args.pool and args.engine != "mp":
        print("--pool requires --engine mp", file=sys.stderr)
        return 2
    if args.pool and (args.checkpoint or args.checkpoint_dir):
        print("--pool cannot checkpoint (pooled workers outlive any single "
              "job's recovery lifecycle); drop --pool to snapshot and resume",
              file=sys.stderr)
        return 2
    if args.generator == "commfree":
        if args.inject_faults is not None:
            print("--generator commfree has no distributed state to crash "
                  "(every slice is recomputable from the seed); drop "
                  "--inject-faults", file=sys.stderr)
            return 2
        if args.checkpoint or args.checkpoint_dir:
            print("--generator commfree has nothing to snapshot (rerunning "
                  "a pure slice is the recovery); drop --checkpoint/"
                  "--checkpoint-dir", file=sys.stderr)
            return 2
        if args.pool:
            print("--pool runs copy-model rank programs; --generator "
                  "commfree forks its own slice workers — drop --pool",
                  file=sys.stderr)
            return 2
        if args.engine == "event":
            print("--generator commfree sends no messages, so the event-"
                  "driven simulator has nothing to simulate; use --engine "
                  "sequential, bsp, or mp", file=sys.stderr)
            return 2
    if args.out_of_core is not None:
        if args.engine == "event":
            print("--out-of-core bounds edge-storage memory; the event-"
                  "driven simulator is a small-n demonstrator — use "
                  "--engine bsp or mp", file=sys.stderr)
            return 2
        if args.pool:
            print("--out-of-core redirects worker results into a per-run "
                  "spill directory; pooled workers outlive the run — drop "
                  "--pool", file=sys.stderr)
            return 2
        if args.checkpoint or args.checkpoint_dir:
            print("--out-of-core spills edges, checkpointing spills program "
                  "state; the two shard lifecycles cannot combine yet — "
                  "drop --checkpoint/--checkpoint-dir", file=sys.stderr)
            return 2
    tel = None
    if args.trace_out is not None or args.metrics_out is not None:
        from repro.telemetry import Telemetry

        tel = Telemetry()
    pool = None
    if args.pool:
        from repro.mpsim.pool import WorkerPool

        pool = WorkerPool(args.ranks, exchange=args.exchange,
                          barrier_timeout=args.barrier_timeout, telemetry=tel,
                          liveness_poll=args.liveness_poll)
    t0 = time.perf_counter()
    try:
        result = generate(
            n=args.nodes,
            x=args.edges_per_node,
            p=args.prob,
            ranks=args.ranks,
            scheme=args.scheme,
            engine=args.engine,
            exchange=args.exchange,
            pool=pool,
            seed=args.seed,
            checkpoint_path=str(args.checkpoint) if args.checkpoint else None,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=str(args.checkpoint_dir) if args.checkpoint_dir else None,
            checkpoint_keep=args.checkpoint_keep,
            fault_seed=args.inject_faults,
            max_retries=args.max_retries,
            barrier_timeout=args.barrier_timeout,
            liveness_poll=args.liveness_poll,
            # a pooled run attaches telemetry to the pool at fork time
            # (generate() refuses telemetry= alongside pool=)
            telemetry=None if pool is not None else tel,
            generator=args.generator,
            out_of_core=str(args.out_of_core) if args.out_of_core else None,
            spill_budget_bytes=int(args.spill_budget_mb * (1 << 20)),
        )
    finally:
        if pool is not None:
            pool.close()
    wall = time.perf_counter() - t0
    print(
        f"generated n={args.nodes} x={args.edges_per_node} "
        f"m={len(result.edges)} on P={args.ranks} ({result.scheme}/{args.engine}) "
        f"in {wall:.2f}s wall / {result.simulated_time:.4f}s simulated, "
        f"{result.supersteps} supersteps, imbalance {result.imbalance:.3f}"
    )
    if result.fault_plan is not None:
        print(f"fault plan: {result.fault_plan.counts() or 'no faults fired'}")
    for ev in result.recoveries:
        origin = ev.checkpoint if ev.checkpoint else "scratch"
        print(f"recovery #{ev.attempt}: superstep {ev.superstep} from {origin} "
              f"(+{ev.backoff:g}s simulated backoff) after {ev.error}")
    if args.validate:
        report = result.validate()
        if not report.ok:
            print("VALIDATION FAILED:", *report.errors, sep="\n  ", file=sys.stderr)
            return 1
        print("validation: ok")
    if args.output is not None:
        if args.text:
            gio.write_edges_text(args.output, result.edges)
        else:
            gio.write_edges_binary(args.output, result.edges)
        print(f"wrote {args.output}")
    if tel is not None:
        if args.trace_out is not None:
            from repro.telemetry.export import write_chrome_trace

            trace = tel.to_chrome_trace()
            write_chrome_trace(args.trace_out, trace)
            dropped = trace.get("metadata", {}).get("dropped_events", 0)
            note = f" ({dropped} events dropped)" if dropped else ""
            print(f"wrote trace {args.trace_out}: "
                  f"{len(trace['traceEvents'])} events{note}")
        if args.metrics_out is not None:
            args.metrics_out.write_text(tel.to_prometheus())
            print(f"wrote metrics {args.metrics_out}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.telemetry.export import inspect_summary, load_chrome_trace

    try:
        trace = load_chrome_trace(args.path)
    except FileNotFoundError:
        print(f"inspect: no such trace file: {args.path}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"inspect: {args.path} is not valid trace JSON: {exc}", file=sys.stderr)
        return 1
    print(inspect_summary(trace))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.schedsim import explore, replay

    if args.replay is not None:
        try:
            res = replay(str(args.replay))
        except FileNotFoundError:
            print(f"explore: no such artifact: {args.replay}", file=sys.stderr)
            return 1
        except (json.JSONDecodeError, ValueError) as exc:
            print(f"explore: cannot replay {args.replay}: {exc}", file=sys.stderr)
            return 1
        out = res.outcome
        print(f"replayed {args.replay}: "
              f"digest={out.digest[:12] if out.digest else None} error={out.error}")
        if res.reproduced:
            print("reproduced: the replay matches the artifact's recorded outcome"
                  + (" (still diverges from baseline)" if res.diverges else ""))
            return 0
        print("NOT reproduced: replay outcome differs from the artifact's "
              f"(expected digest={str(res.expected.get('digest'))[:12]} "
              f"error={res.expected.get('error')})", file=sys.stderr)
        return 1

    config = {
        "n": args.nodes,
        "x": args.edges_per_node,
        "p": args.prob,
        "ranks": args.ranks,
        "scheme": args.scheme,
        "seed": args.seed,
        "engine": args.engine,
    }
    if args.crash_rank is not None:
        crash = {"rank": args.crash_rank}
        if args.crash_superstep is not None:
            crash["at_superstep"] = args.crash_superstep
        if args.crash_time is not None:
            crash["at_time"] = args.crash_time
        if len(crash) == 1:
            print("--crash-rank needs --crash-superstep or --crash-time",
                  file=sys.stderr)
            return 2
        config["fault"] = {"crashes": [crash]}

    t0 = time.perf_counter()
    report = explore(
        config,
        policy=args.policy,
        schedules=args.schedules,
        policy_seed=args.policy_seed,
        watchdog_factor=args.watchdog_factor,
        artifact_dir=str(args.artifact_dir) if args.artifact_dir else None,
    )
    wall = time.perf_counter() - t0
    base = report.baseline
    base_desc = base.error or f"digest {base.digest[:12]}"
    dedup = (f", {report.unique_classes} unique classes "
             f"({report.deduped} deduped)" if report.unique_classes is not None else "")
    print(f"explored {report.explored} {args.policy} schedules of "
          f"{args.engine}/x={args.edges_per_node} in {wall:.2f}s "
          f"(baseline: {base_desc}, watchdog budget {report.watchdog}{dedup})")
    if report.ok:
        print("all schedules agree with the baseline outcome")
        return 0
    for div in report.divergences:
        out = div.outcome
        what = out.error or f"digest {out.digest[:12]}"
        where = f" -> {div.artifact}" if div.artifact else ""
        print(f"DIVERGENT trial {div.trial} (policy seed {div.policy_seed}): "
              f"{what}; {len(div.deviations)} deviations shrunk to "
              f"{len(div.minimal)}{where}", file=sys.stderr)
    print(f"{len(report.divergences)} divergent schedule(s) found", file=sys.stderr)
    return 1


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.graph import io as gio
    from repro.graph.validation import validate_pa_graph

    edges = gio.read_edges_text(args.path) if args.text else gio.read_edges_binary(args.path)
    report = validate_pa_graph(edges, args.nodes, args.edges_per_node)
    if report.ok:
        print(f"ok: {report.num_edges} edges, all invariants hold")
        return 0
    print("FAILED:", *report.errors, sep="\n  ", file=sys.stderr)
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graph import io as gio
    from repro.graph.degree import degrees_from_edges
    from repro.graph.powerlaw import fit_powerlaw

    edges = gio.read_edges_text(args.path) if args.text else gio.read_edges_binary(args.path)
    deg = degrees_from_edges(edges)
    print(f"nodes: {edges.num_nodes}  edges: {len(edges)}")
    print(f"degree: min={deg.min()} mean={deg.mean():.2f} max={deg.max()}")
    fit = fit_powerlaw(deg, k_min=args.k_min)
    print(f"power-law fit: {fit}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.bench.scaling import strong_scaling

    curves = strong_scaling(
        n=args.nodes,
        x=args.edges_per_node,
        ranks_list=args.ranks,
        schemes=tuple(args.schemes),
        seed=args.seed,
    )
    rows = []
    for scheme, points in curves.items():
        for pt in points:
            rows.append(
                (scheme, pt.ranks, pt.simulated_time, pt.speedup, pt.supersteps, pt.imbalance)
            )
    print(
        format_table(
            ["scheme", "P", "T_p (sim s)", "speedup", "supersteps", "imbalance"],
            rows,
            title=f"strong scaling, n={args.nodes}, x={args.edges_per_node}",
        )
    )
    return 0


def _cmd_other(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.graph import io as gio

    if args.model == "er":
        from repro.core.parallel_er import run_parallel_er

        n = args.nodes or 10_000
        edges, engine, _ = run_parallel_er(n, args.prob, args.ranks, seed=args.seed)
        label = f"G(n={n}, p={args.prob})"
    elif args.model == "rmat":
        from repro.core.parallel_rmat import run_parallel_rmat

        m = args.edges or 16 * (1 << args.scale)
        edges, engine, _ = run_parallel_rmat(
            args.scale, m, args.ranks, seed=args.seed
        )
        label = f"R-MAT(scale={args.scale}, m={m})"
    else:
        from repro.core.parallel_er import run_parallel_chung_lu

        n = args.nodes or 10_000
        weights = np.full(n, args.mean_degree)
        edges, engine, _ = run_parallel_chung_lu(weights, args.ranks, seed=args.seed)
        label = f"Chung-Lu(n={n}, mean weight {args.mean_degree})"

    print(f"generated {label}: {len(edges)} edges on P={args.ranks} "
          f"({engine.stats.total_messages} protocol messages)")
    if args.output is not None:
        if args.text:
            gio.write_edges_text(args.output, edges)
        else:
            gio.write_edges_binary(args.output, edges)
        print(f"wrote {args.output}")
    return 0


def _cmd_degree_dist(args: argparse.Namespace) -> int:
    from repro.bench.reporting import ascii_loglog, format_series
    from repro.graph import io as gio
    from repro.graph.degree import degrees_from_edges, log_binned_distribution

    edges = gio.read_edges_text(args.path) if args.text else gio.read_edges_binary(args.path)
    deg = degrees_from_edges(edges)
    centers, density = log_binned_distribution(deg)
    print(format_series("log-binned degree distribution", centers.round(1), density))
    if args.plot:
        print(ascii_loglog(centers, density, label="P(k) vs k (log-log)"))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.bench.campaign import (
        expand_grid,
        run_campaign,
        summarize_campaign,
        write_csv,
    )
    from repro.bench.reporting import format_table

    configs = expand_grid(
        n=args.nodes, x=args.edges_per_node, ranks=args.ranks, scheme=args.schemes
    )
    print(f"running {len(configs)} configurations ...")
    records = run_campaign("cli-campaign", configs, seed=args.seed)
    path = write_csv(args.output, records)
    print(f"wrote {len(records)} rows to {path}")
    summary = summarize_campaign(records, by="scheme")
    rows = [
        (key, int(v["runs"]), v["mean_simulated_time"], v["mean_imbalance"])
        for key, v in summary.items()
    ]
    print(format_table(
        ["scheme", "runs", "mean T_p (sim s)", "mean imbalance"], rows
    ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.partitioning import make_partition
    from repro.distgraph import (
        DistributedGraph,
        distributed_bfs,
        distributed_components,
        distributed_pagerank,
    )
    from repro.graph import io as gio

    edges = gio.read_edges_text(args.path) if args.text else gio.read_edges_binary(args.path)
    part = make_partition(args.scheme, args.nodes, args.ranks)
    graph = DistributedGraph.from_edgelist(edges, part)
    print(f"loaded {graph!r}")

    dist, eng = distributed_bfs(graph, args.bfs_source)
    reached = int((dist >= 0).sum())
    print(f"BFS from {args.bfs_source}: reached {reached}/{args.nodes} nodes, "
          f"eccentricity {int(dist.max())}, {eng.supersteps} supersteps")

    labels, eng = distributed_components(graph)
    print(f"components: {len(np.unique(labels))} ({eng.supersteps} supersteps)")

    pr, eng = distributed_pagerank(graph, iterations=args.pagerank_iters)
    top = np.argsort(pr)[-3:][::-1]
    print("top PageRank nodes: "
          + ", ".join(f"{int(t)} ({pr[t]:.2e})" for t in top))
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.dyngraph import ChurnSchedule, SnapshotStore
    from repro.dyngraph.evolve import evolve

    if args.inspect is not None:
        store = SnapshotStore(args.inspect)
        if not store.manifest_path.exists():
            print(f"evolve: no snapshot manifest under {args.inspect}",
                  file=sys.stderr)
            return 1
        for line in store.summary_lines():
            print(line)
        return 0

    if args.engine == "sequential" and args.ranks != 1:
        print("--engine sequential evolves on one rank; use --engine bsp "
              "or mp for -P > 1", file=sys.stderr)
        return 2
    if args.departure_faults and args.checkpoint_dir is None:
        print("--departure-faults crashes ranks on purpose; recovery needs "
              "--checkpoint-dir", file=sys.stderr)
        return 2
    if args.departure_faults and args.ranks < 2:
        print("--departure-faults needs -P >= 2 (a surviving rank must "
              "witness the crash)", file=sys.stderr)
        return 2

    from repro.core.generator import generate
    from repro.graph import io as gio

    schedule = ChurnSchedule(
        seed=args.seed if args.churn_seed is None else args.churn_seed,
        epochs=args.epochs,
        arrival_rate=args.arrival_rate,
        attach_x=args.attach,
        departure_prob=args.departure_prob,
        deletion_rate=args.deletion_rate,
        rewire_rate=args.rewire_rate,
    )
    t0 = time.perf_counter()
    base = generate(
        n=args.nodes,
        x=args.edges_per_node,
        p=args.prob,
        ranks=args.ranks,
        scheme=args.scheme,
        engine=args.engine,
        exchange=args.exchange,
        seed=args.seed,
    )
    res = evolve(
        base.edges,
        base.n,
        schedule,
        engine=args.engine,
        ranks=args.ranks,
        exchange=args.exchange,
        snapshot_dir=str(args.snapshot_dir) if args.snapshot_dir else None,
        snapshot_every=args.snapshot_every,
        checkpoint_dir=str(args.checkpoint_dir) if args.checkpoint_dir else None,
        checkpoint_keep=args.checkpoint_keep,
        max_retries=args.max_retries,
        departure_faults=args.departure_faults,
    )
    wall = time.perf_counter() - t0
    for delta in res.deltas:
        s = delta.summary()
        print(f"epoch {s['epoch']:3d}: +{s['born']} born -{s['departed']} departed "
              f"+{s['edges_added']}/-{s['edges_removed']} edges "
              f"{s['rewires']} rewired")
    st = res.state
    print(f"evolved n={args.nodes} -> {st.n} ids ({st.num_alive} alive), "
          f"m={base.edges.num_edges} -> {st.num_edges} over {res.epochs} epochs "
          f"on P={res.ranks} ({res.engine}) in {wall:.2f}s; "
          f"digest {st.digest()[:12]}")
    if res.recoveries:
        print(f"recoveries: {len(res.recoveries)}")
    if args.snapshot_dir is not None:
        print(f"wrote {len(res.snapshots.epochs())} snapshots to "
              f"{args.snapshot_dir}")
    if args.output is not None:
        edges = res.edges
        if args.text:
            gio.write_edges_text(args.output, edges)
        else:
            gio.write_edges_binary(args.output, edges)
        print(f"wrote {args.output}")
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    from repro.core.chains import chain_statistics

    st = chain_statistics(args.nodes, p=args.prob, seed=args.seed)
    print(
        f"n={st.n} p={st.p}: mean chain {st.mean:.3f} "
        f"(bounds: 1/p={st.mean_bound_constant:.1f}, ln n={st.mean_bound:.1f}), "
        f"max chain {st.max} (bound 5 ln n = {st.max_bound:.1f})"
    )
    ok = st.mean_within_bounds and st.max_within_bounds
    print("within Theorem 3.3 bounds:", ok)
    return 0 if ok else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "validate": _cmd_validate,
    "stats": _cmd_stats,
    "scaling": _cmd_scaling,
    "chains": _cmd_chains,
    "other": _cmd_other,
    "degree-dist": _cmd_degree_dist,
    "analyze": _cmd_analyze,
    "campaign": _cmd_campaign,
    "inspect": _cmd_inspect,
    "explore": _cmd_explore,
    "evolve": _cmd_evolve,
}


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
