"""Streaming (on-the-fly) generation and analysis.

Section 3.2 of the paper notes that "some network analysts may prefer to
generate networks on the fly and analyze it without performing disk I/O".
This module supports that workflow for the ``x = 1`` copy model:

* :func:`stream_copy_model_x1` yields the network as fixed-size edge
  *blocks*.  Only the attachment table ``F`` (8 bytes/node) is retained;
  the edges themselves — the dominant memory cost for ``x >= 1`` or when
  materialised as Python/NumPy pairs — never accumulate.  Each block is
  resolved with the same vectorised pointer jumping as the batch generator,
  with chains ending in earlier blocks read straight out of ``F``.
* :class:`StreamingDegreeAccumulator` consumes blocks and maintains the
  degree array / histogram incrementally, so degree-distribution analysis
  (Figure 4) runs in one pass without ever holding the edge list.

The stream is distribution-identical to :func:`repro.seq.copy_model.copy_model_x1`
(and bit-identical to it for equal seeds: both consume two uniforms per node
in node order — property-tested in ``tests/core/test_streaming.py``).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.seq.copy_model import resolve_pointers

__all__ = ["stream_copy_model_x1", "StreamingDegreeAccumulator"]


def stream_copy_model_x1(
    n: int,
    p: float = 0.5,
    block_size: int = 65_536,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(t, F_t)`` edge blocks of an ``x = 1`` PA network.

    Parameters
    ----------
    n:
        Number of nodes; ``n - 1`` edges are streamed in total.
    p:
        Direct-attachment probability.
    block_size:
        Nodes resolved (and edges yielded) per block.

    Yields
    ------
    ``(u, v)`` array pairs; concatenated they equal the batch generator's
    edge list for the same seed.

    Examples
    --------
    >>> total = sum(len(u) for u, v in stream_copy_model_x1(10_000, seed=0))
    >>> total
    9999
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    rng = rng or np.random.default_rng(seed)

    F = np.full(n, -1, dtype=np.int64)
    if n >= 2:
        F[1] = 0

    lo = 2
    first = True
    while lo < n or first:
        if first:
            first = False
            if n < 2:
                return
            # block 0 starts at node 1 whose edge is deterministic
            if lo >= n:
                yield np.array([1], dtype=np.int64), np.array([0], dtype=np.int64)
                return
        hi = min(lo + block_size, n)
        ts = np.arange(lo, hi, dtype=np.int64)
        u = rng.random(2 * len(ts))
        k = 1 + (u[0::2] * (ts - 1)).astype(np.int64)
        direct = u[1::2] < p

        # Per-slot immediate value where known; pointers where chained.
        value = np.full(len(ts), -1, dtype=np.int64)
        ptr = np.arange(len(ts), dtype=np.int64)

        value[direct] = k[direct]
        copy = ~direct
        ext = copy & (k < lo)  # chain ends in an earlier (resolved) block
        value[ext] = F[k[ext]]
        internal = copy & (k >= lo)
        ptr[internal] = k[internal] - lo

        anchors = resolve_pointers(ptr)
        F[ts] = value[anchors]

        if lo == 2:
            # prepend node 1's deterministic edge to the first block
            yield (
                np.concatenate([[1], ts]),
                np.concatenate([[0], F[ts]]),
            )
        else:
            yield ts, F[ts]
        lo = hi


class StreamingDegreeAccumulator:
    """One-pass degree statistics over streamed edge blocks.

    Maintains the full degree array (needed anyway for exact statistics)
    plus running totals; never stores edges.

    Examples
    --------
    >>> acc = StreamingDegreeAccumulator(1000)
    >>> for u, v in stream_copy_model_x1(1000, seed=1):
    ...     acc.update(u, v)
    >>> acc.num_edges
    999
    >>> int(acc.degrees.sum())
    1998
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self.num_nodes = num_nodes
        self.degrees = np.zeros(num_nodes, dtype=np.int64)
        self.num_edges = 0

    def update(self, u: np.ndarray, v: np.ndarray) -> None:
        """Fold one edge block into the statistics."""
        if len(u) != len(v):
            raise ValueError("block arrays must have equal length")
        np.add.at(self.degrees, u, 1)
        np.add.at(self.degrees, v, 1)
        self.num_edges += len(u)

    def consume(self, blocks) -> "StreamingDegreeAccumulator":
        """Fold an iterable of ``(u, v)`` blocks; returns ``self``.

        Composes with every block source in the library: the live stream
        emitters here, :func:`repro.core.spill.iter_edge_shards` over a
        spilled rank directory, and
        :func:`repro.core.spill.iter_edge_blocks` over any edge list — so
        degree analysis of an out-of-core run never materialises the graph.
        """
        for u, v in blocks:
            self.update(u, v)
        return self

    @property
    def max_degree(self) -> int:
        return int(self.degrees.max()) if self.num_nodes else 0

    @property
    def mean_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_nodes if self.num_nodes else 0.0

    def distribution(self) -> tuple[np.ndarray, np.ndarray]:
        """Empirical ``(k, P(k))`` over positive degrees (Figure 4's data)."""
        from repro.graph.degree import degree_distribution

        return degree_distribution(self.degrees)
