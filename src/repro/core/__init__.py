"""The paper's contribution: parallel PA generation with partitioning schemes.

* :mod:`repro.core.partitioning` — UCP, LCP, RRP node partitions
  (Section 3.5, Appendix A);
* :mod:`repro.core.load_model` — harmonic-number load analysis, Lemma 3.4,
  and the nonlinear balanced-load system Eqn 10;
* :mod:`repro.core.chains` — selection/dependency chains and their length
  statistics (Section 3.4, Theorem 3.3);
* :mod:`repro.core.buffers` — per-destination message buffering with the
  RRP flush rule (Section 3.5.2);
* :mod:`repro.core.parallel_pa` — Algorithm 3.1 (``x = 1``) on the BSP
  engine;
* :mod:`repro.core.parallel_pa_general` — Algorithm 3.2 (``x >= 1``);
* :mod:`repro.core.event_driven` — the literal per-message pseudocode on the
  event-driven engine (small n, used for cross-validation);
* :mod:`repro.core.commfree` — the communication-free generator family
  (Sanders & Schulz): counter-based randomness makes every endpoint
  recomputable locally, so parallel ranks exchange nothing;
* :mod:`repro.core.generator` — the top-level :func:`generate` facade.
"""

from repro.core.partitioning import (
    ConsecutivePartition,
    ExactPartition,
    LinearPartition,
    Partition,
    RoundRobinPartition,
    UniformPartition,
    make_partition,
)
from repro.core.generator import GenerationResult, generate
from repro.core.chains import chain_statistics, dependency_chains, selection_chain

__all__ = [
    "ConsecutivePartition",
    "ExactPartition",
    "GenerationResult",
    "LinearPartition",
    "Partition",
    "RoundRobinPartition",
    "UniformPartition",
    "chain_statistics",
    "dependency_chains",
    "generate",
    "make_partition",
    "selection_chain",
]
