"""Selection chains and dependency chains (Section 3.4).

During Algorithm 3.1 a node ``t`` whose coin says *copy* cannot resolve
``F_t`` until ``F_k`` is known; those waits concatenate into a *dependency
chain*.  The paper proves (Theorem 3.3):

* ``E[L_t] <= log n`` (harmonic sum via Lemma 3.1's ``P_t(i) = 1/i``),
* ``L_max = O(log n)`` w.h.p.,
* for constant ``p``, the average chain length is at most ``1/p``.

This module reconstructs the chains from the algorithm's random draws and
computes their length statistics with vectorised pointer doubling, so the
theory can be checked empirically at ``n`` into the millions (the
``bench_chains`` benchmark and the property-based tests do exactly that).
The number of supersteps the BSP engine needs is ``Θ(max dependency-chain
length across rank boundaries)``, so these statistics also explain the
engine's round counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "draw_attachment_variates",
    "selection_chain",
    "selection_chain_lengths",
    "dependency_chains",
    "dependency_chain_lengths",
    "chain_statistics",
    "ChainStatistics",
]


def draw_attachment_variates(
    n: int, p: float = 0.5, rng: np.random.Generator | None = None, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Draw the ``x = 1`` copy-model variates for all nodes at once.

    Returns ``(k, direct)`` where for ``t >= 2``, ``k[t]`` is uniform in
    ``[1, t-1]`` and ``direct[t]`` is True with probability ``p``.  Node 1 is
    fixed: ``k[1] = 0`` is unused, ``direct[1] = True`` (node 1 always
    attaches to node 0 and is independent).  Entries for ``t < 1`` are
    sentinel values.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    rng = rng or np.random.default_rng(seed)
    k = np.zeros(n, dtype=np.int64)
    direct = np.zeros(n, dtype=bool)
    if n >= 2:
        direct[1] = True
    if n > 2:
        ts = np.arange(2, n, dtype=np.int64)
        k[2:] = 1 + (rng.random(n - 2) * (ts - 1)).astype(np.int64)
        direct[2:] = rng.random(n - 2) < p
    return k, direct


def selection_chain(t: int, k: np.ndarray) -> list[int]:
    """The explicit selection chain ``S_t = <t, k_t, k_{k_t}, ..., 1>``."""
    if t < 1:
        raise ValueError(f"selection chains start at t >= 1, got {t}")
    chain = [t]
    while chain[-1] > 1:
        chain.append(int(k[chain[-1]]))
    return chain


def dependency_chains(t: int, k: np.ndarray, direct: np.ndarray) -> list[int]:
    """The dependency chain ``D_t``: the prefix of ``S_t`` up to the first
    independent (direct) node."""
    chain = [t]
    while not direct[chain[-1]]:
        chain.append(int(k[chain[-1]]))
    return chain


def _pointer_double_depths(ptr: np.ndarray) -> np.ndarray:
    """Distance from each index to its pointer fixed point.

    Classic parallel pointer doubling: each pass, ``dist += dist[ptr]`` and
    ``ptr = ptr[ptr]``; converges in ``O(log L_max)`` passes.
    """
    ptr = ptr.copy()
    dist = (ptr != np.arange(len(ptr))).astype(np.int64)
    while True:
        moved = ptr[ptr] != ptr
        if not moved.any():
            return dist
        dist = dist + np.where(moved, dist[ptr], 0)
        ptr = ptr[ptr]


def selection_chain_lengths(k: np.ndarray) -> np.ndarray:
    """``|S_t|`` for every ``t >= 1`` (index 0 is 0 by convention)."""
    n = len(k)
    ptr = np.arange(n, dtype=np.int64)
    if n > 2:
        ptr[2:] = k[2:]
    lengths = _pointer_double_depths(ptr) + 1
    if n > 0:
        lengths[0] = 0
    return lengths


def dependency_chain_lengths(k: np.ndarray, direct: np.ndarray) -> np.ndarray:
    """``L_t = |D_t|`` for every ``t >= 1`` (index 0 is 0 by convention)."""
    n = len(k)
    ptr = np.arange(n, dtype=np.int64)
    mask = ~direct
    mask[:2] = False  # nodes 0, 1 never point anywhere
    ptr[mask] = k[mask]
    lengths = _pointer_double_depths(ptr) + 1
    if n > 0:
        lengths[0] = 0
    return lengths


@dataclass(frozen=True)
class ChainStatistics:
    """Summary of chain lengths against the paper's bounds."""

    n: int
    p: float
    mean: float
    max: int
    #: Theorem 3.3 bounds evaluated at this n
    mean_bound: float          # log n
    mean_bound_constant: float  # 1/p
    max_bound: float           # 5 log n (the constant from the Chernoff step)

    @property
    def mean_within_bounds(self) -> bool:
        return self.mean <= min(self.mean_bound, self.mean_bound_constant) + 1.0

    @property
    def max_within_bounds(self) -> bool:
        return self.max <= self.max_bound


def chain_statistics(
    n: int, p: float = 0.5, seed: int | None = None, rng: np.random.Generator | None = None
) -> ChainStatistics:
    """Draw one instance and summarise its dependency-chain lengths.

    The paper's bounds count *waiting steps*; our ``L_t`` counts nodes in the
    chain, so the expected value for constant ``p`` is ``1/p`` (a geometric
    random variable) and the maximum is ``O(log n)``.
    """
    k, direct = draw_attachment_variates(n, p, rng=rng, seed=seed)
    lengths = dependency_chain_lengths(k, direct)[1:]
    log_n = float(np.log(max(n, 2)))
    return ChainStatistics(
        n=n,
        p=p,
        mean=float(lengths.mean()) if len(lengths) else 0.0,
        max=int(lengths.max()) if len(lengths) else 0,
        mean_bound=log_n,
        mean_bound_constant=1.0 / p,
        max_bound=5.0 * log_n,
    )
