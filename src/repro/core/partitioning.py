"""Node partitioning schemes: UCP, LCP, RRP (Section 3.5 + Appendix A).

A partition maps each node id to its owning rank (Criterion A demands this
be O(1) without communication) and enumerates each rank's node set.  All
three schemes of the paper are provided behind one interface:

* :class:`UniformPartition` (UCP) — ``ceil(n/P)`` consecutive nodes each;
  simplest, but overloads low ranks (Lemma 3.4).
* :class:`LinearPartition` (LCP) — consecutive blocks whose sizes grow as
  the arithmetic progression ``a + i d`` fitted to the Eqn-10 solution;
  low ranks get fewer nodes to offset their extra incoming messages.
* :class:`RoundRobinPartition` (RRP) — node ``u`` belongs to rank
  ``u mod P``; balances the monotone per-node load almost perfectly
  (load spread ``O(log n)`` per Appendix A.3).

``owner`` methods accept scalars or arrays (the bulk algorithms route whole
request batches with one vectorised call).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.load_model import LCPParameters, lcp_parameters

__all__ = [
    "Partition",
    "ConsecutivePartition",
    "UniformPartition",
    "LinearPartition",
    "RoundRobinPartition",
    "make_partition",
    "SCHEMES",
]


class Partition(ABC):
    """Common interface of the three schemes."""

    #: short scheme name ("ucp", "lcp", "rrp")
    scheme: str = ""

    def __init__(self, n: int, P: int) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if P < 1:
            raise ValueError(f"P must be >= 1, got {P}")
        if P > n:
            raise ValueError(f"more ranks than nodes (P={P}, n={n}) is unsupported")
        self.n = n
        self.P = P

    @abstractmethod
    def owner(self, u: np.ndarray | int) -> np.ndarray | int:
        """Rank owning node ``u`` (vectorised)."""

    @abstractmethod
    def partition_nodes(self, rank: int) -> np.ndarray:
        """Sorted node ids owned by ``rank``."""

    @abstractmethod
    def local_index(self, rank: int, u: np.ndarray | int) -> np.ndarray | int:
        """Position of node ``u`` within ``rank``'s sorted node set.

        The parallel algorithms store per-node state in dense local arrays;
        this is the O(1) global-id -> local-slot map (vectorised).  Behaviour
        is undefined when ``u`` is not owned by ``rank``.
        """

    def partition_size(self, rank: int) -> int:
        """Number of nodes owned by ``rank``."""
        return len(self.partition_nodes(rank))

    def sizes(self) -> np.ndarray:
        """All partition sizes, rank order (Figure 7a's data)."""
        return np.array([self.partition_size(r) for r in range(self.P)], dtype=np.int64)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.P:
            raise ValueError(f"rank {rank} outside [0, {self.P})")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n}, P={self.P})"


class ConsecutivePartition(Partition):
    """Base for UCP/LCP: explicit boundary array ``[0, ..., n]``."""

    def __init__(self, n: int, P: int, boundaries: np.ndarray) -> None:
        super().__init__(n, P)
        boundaries = np.asarray(boundaries, dtype=np.int64)
        if boundaries.shape != (P + 1,):
            raise ValueError(f"need {P + 1} boundaries, got {boundaries.shape}")
        if boundaries[0] != 0 or boundaries[-1] != n:
            raise ValueError("boundaries must start at 0 and end at n")
        if (np.diff(boundaries) < 0).any():
            raise ValueError("boundaries must be non-decreasing")
        self.boundaries = boundaries

    def owner(self, u: np.ndarray | int) -> np.ndarray | int:
        idx = np.searchsorted(self.boundaries, u, side="right") - 1
        idx = np.minimum(idx, self.P - 1)
        if np.ndim(u) == 0:
            return int(idx)
        return idx.astype(np.int64)

    def partition_nodes(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.arange(self.boundaries[rank], self.boundaries[rank + 1], dtype=np.int64)

    def partition_size(self, rank: int) -> int:
        self._check_rank(rank)
        return int(self.boundaries[rank + 1] - self.boundaries[rank])

    def partition_range(self, rank: int) -> tuple[int, int]:
        """Half-open node range ``[lo, hi)`` of ``rank``."""
        self._check_rank(rank)
        return int(self.boundaries[rank]), int(self.boundaries[rank + 1])

    def local_index(self, rank: int, u: np.ndarray | int) -> np.ndarray | int:
        idx = np.asarray(u) - self.boundaries[rank]
        if np.ndim(u) == 0:
            return int(idx)
        return idx.astype(np.int64)


class UniformPartition(ConsecutivePartition):
    """UCP: equal consecutive blocks of ``B = ceil(n/P)`` nodes (App. A.1)."""

    scheme = "ucp"

    def __init__(self, n: int, P: int) -> None:
        if P < 1:
            raise ValueError(f"P must be >= 1, got {P}")
        B = -(-n // P)  # ceil
        bounds = np.minimum(np.arange(P + 1, dtype=np.int64) * B, n)
        super().__init__(n, P, bounds)
        self.B = B

    def owner(self, u: np.ndarray | int) -> np.ndarray | int:
        """Closed form ``i = floor(u / B)`` — the paper's O(1) lookup."""
        owner = np.asarray(u) // self.B
        if np.ndim(u) == 0:
            return int(owner)
        return owner.astype(np.int64)


class LinearPartition(ConsecutivePartition):
    """LCP: block sizes follow the fitted arithmetic progression (App. A.2).

    Parameters
    ----------
    n, P:
        Problem size and rank count.
    b:
        The per-node constant of the load model (``b = 1 + c``).
    params:
        Pre-computed :class:`~repro.core.load_model.LCPParameters`
        (recomputed from ``(n, P, b)`` when omitted).
    """

    scheme = "lcp"

    def __init__(self, n: int, P: int, b: float = 2.0, params: LCPParameters | None = None) -> None:
        if P < 1:
            raise ValueError(f"P must be >= 1, got {P}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.params = params if params is not None else lcp_parameters(n, P, b)
        super().__init__(n, P, self.params.boundaries())

    def owner_closed_form(self, u: np.ndarray | int) -> np.ndarray | int:
        """The paper's O(1) quadratic-formula rank lookup (Inequality 11).

        Exact for the *continuous* progression; the integer partition rounds
        boundaries, so this can be off by one near a boundary — the default
        :meth:`owner` (binary search over P+1 boundaries) is exact and what
        the algorithms use.  Kept for fidelity and tested to be within ±1.
        """
        a, d = self.params.a, self.params.d
        u_arr = np.asarray(u, dtype=np.float64)
        if abs(d) < 1e-12:
            i = np.floor(u_arr / max(a, 1e-12))
        else:
            i = np.floor(
                (-(2 * a - d) + np.sqrt((2 * a - d) ** 2 + 8 * d * u_arr)) / (2 * d)
            )
        i = np.clip(i, 0, self.P - 1)
        if np.ndim(u) == 0:
            return int(i)
        return i.astype(np.int64)


class RoundRobinPartition(Partition):
    """RRP: node ``u`` belongs to rank ``u mod P`` (Appendix A.3)."""

    scheme = "rrp"

    def owner(self, u: np.ndarray | int) -> np.ndarray | int:
        owner = np.asarray(u) % self.P
        if np.ndim(u) == 0:
            return int(owner)
        return owner.astype(np.int64)

    def partition_nodes(self, rank: int) -> np.ndarray:
        self._check_rank(rank)
        return np.arange(rank, self.n, self.P, dtype=np.int64)

    def partition_size(self, rank: int) -> int:
        self._check_rank(rank)
        return (self.n - rank + self.P - 1) // self.P

    def local_index(self, rank: int, u: np.ndarray | int) -> np.ndarray | int:
        idx = (np.asarray(u) - rank) // self.P
        if np.ndim(u) == 0:
            return int(idx)
        return idx.astype(np.int64)


class ExactPartition(ConsecutivePartition):
    """ECP: consecutive blocks from the *exact* Eqn-10 solution.

    The paper rejects solving the nonlinear balanced-load system at cluster
    scale ("prohibitively large time") and approximates it linearly (LCP).
    With a modern scalar root-finder the exact solve costs ``P`` Brent
    iterations (~10 ms at P=160), so we offer it as a fourth scheme — both
    as an ablation (how much balance does LCP's approximation give up?) and
    as a practical option when consecutive ranges are required and ``P`` is
    moderate.
    """

    scheme = "ecp"

    def __init__(self, n: int, P: int, b: float = 2.0) -> None:
        if P < 1:
            raise ValueError(f"P must be >= 1, got {P}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if P == 1 or n < 2:
            bounds = np.array([0, n], dtype=np.int64)[: P + 1]
            if len(bounds) < P + 1:  # pragma: no cover - P<=n guard hits first
                bounds = np.linspace(0, n, P + 1).astype(np.int64)
        else:
            from repro.core.load_model import solve_balanced_boundaries

            real = solve_balanced_boundaries(n, P, b)
            bounds = np.rint(real).astype(np.int64)
            bounds[0], bounds[-1] = 0, n
            np.maximum.accumulate(bounds, out=bounds)
            bounds = np.minimum(bounds, n)
        super().__init__(n, P, bounds)


SCHEMES = {
    "ucp": UniformPartition,
    "lcp": LinearPartition,
    "rrp": RoundRobinPartition,
    "ecp": ExactPartition,
}


def make_partition(scheme: str, n: int, P: int, **kwargs) -> Partition:
    """Factory: ``make_partition("rrp", n, P)`` etc.

    ``scheme`` is one of ``"ucp"``, ``"lcp"``, ``"rrp"`` (case-insensitive).
    Extra keyword arguments are forwarded (LCP accepts ``b`` and ``params``).
    """
    key = scheme.lower()
    if key not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {sorted(SCHEMES)}")
    return SCHEMES[key](n, P, **kwargs)
