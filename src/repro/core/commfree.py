"""Communication-free preferential-attachment generation.

The copy-model pipeline (Algorithms 3.1/3.2) spends its parallel budget
resolving dangling attachment pointers through message exchange.  Sanders &
Schulz (arXiv:1602.07106) observe that for hash-derived randomness no
messages are needed at all: if every random variate is a pure O(1) function
of ``(seed, slot)``, any rank can *recompute* another rank's draws locally
instead of asking for them.  Each rank then produces its slice of the edge
list completely independently — zero supersteps, zero protocol messages —
and the full graph is the concatenation of the slices.

This module implements that trade (messages for recomputation) on top of
:meth:`repro.rng.StreamFactory.counter_substream`:

* :func:`commfree_x1` / :func:`commfree` — the ``x = 1`` and general
  ``x >= 1`` copy models, sequential but fully vectorised;
* :func:`commfree_edge_slice` — the edge slice owned by nodes ``[lo, hi)``,
  the unit of parallel work.  A rank resolves foreign dependencies by
  bounded iterative *chase* (x = 1: follow the copy chain, recomputing each
  hop's draws; chains are ``O(log n)`` long by Theorem 3.3) or by
  demand-driven closure (general ``x``: pull in the source rows a slice's
  copy slots reference and resolve them with the same fixpoint machinery);
* :func:`commfree_mp` — the trivially-parallel multiprocessing path: one
  forked worker per slice, the coordinator only concatenates.  No exchange,
  no barriers, no checkpoints — there is no distributed state to lose;
* :func:`stream_commfree_x1` — chunked streaming emitter speaking the same
  block protocol as :func:`repro.core.streaming.stream_copy_model_x1`, so
  :class:`~repro.core.streaming.StreamingDegreeAccumulator` folds the output
  without materialising the edge list.

Every surface consumes the identical draw protocol, so sequential, sliced,
multiprocessing, and streaming runs are **bit-identical** for equal seeds —
regardless of rank count, block size, or evaluation order.  The scalar
oracle in :mod:`repro.seq.commfree_ref` re-implements the protocol
independently and the test-suite pins the vectorised paths to it.

Draw protocol
-------------
All variates come from ``StreamFactory(seed).counter_substream(_NS, x, 0)``.

``x = 1`` (one 64-bit hash per node ``t >= 2``, split into both variates)::

    h        = hashes(t, 0)
    k_t      = 1 + ((h >> 32) * (t - 1)) >> 32     # Lemire high-word range map
    direct_t = (h & 0xFFFFFFFF) < round(p * 2^32)
    F_t      = k_t if direct_t else F_{k_t}        # F_1 = 0

General ``x`` (slot ``sid = (t - x) * x + e``, duplicate-rejection attempt
``a``, three uniforms per attempt mirroring the copy model's k/coin/l
order)::

    k    = x + floor(uniforms(sid, 3a)     * (t - x))
    dir  = uniforms(sid, 3a + 1) < p
    l    = floor(uniforms(sid, 3a + 2) * x)
    cand = k if dir else F[k, l]; accept the first cand not already in row t

Node ``x`` attaches to the whole clique deterministically, as in
Algorithm 3.2.
"""

from __future__ import annotations

import multiprocessing as mp
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.rng import CounterStream, StreamFactory

__all__ = [
    "commfree",
    "commfree_x1",
    "commfree_edge_slice",
    "commfree_mp",
    "commfree_slices",
    "stream_commfree_x1",
]

#: Namespace constant for the counter substream keys ``(_NS, x, 0)``.
_NS = 23

#: Safety bound on fixpoint rounds of the general-x resolver; legitimate
#: runs need O(chain depth + duplicate retries) rounds, so hitting this
#: means a logic error rather than bad luck (degenerate parameters trip
#: the friendlier _MAX_RETRIES error first).
_MAX_ROUNDS = 30_000

#: Duplicate-rejection retries per slot before declaring the parameters
#: degenerate (mirrors :data:`repro.seq.copy_model._MAX_RETRIES`).
_MAX_RETRIES = 10_000

#: Default node-block size: large enough to amortise per-block call
#: overhead, small enough that blocks stay cache-resident and chase
#: chains mostly land in the resolved prefix after one hop (measured
#: fastest of 2^16..2^20 at n=1e6).
_BLOCK = 1 << 16

_U32 = np.uint64(32)
_LO32 = np.uint64(0xFFFFFFFF)


def _counter(seed: int | None, x: int) -> CounterStream:
    """The one counter substream every commfree surface draws from."""
    return StreamFactory(seed).counter_substream(_NS, x, 0)


def _coin_threshold(p: float) -> np.uint64:
    """``direct`` iff the hash's low word is below this (x = 1 protocol)."""
    return np.uint64(min(round(p * 2.0 ** 32), 2 ** 32))


def _check_params(n: int, x: int, p: float) -> None:
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    if x > 1 and n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")


# --------------------------------------------------------------------- x = 1
def _draws_x1(cs: CounterStream, ts: np.ndarray, thresh: np.uint64):
    """``(k, direct)`` for node array ``ts`` (all ``>= 2``), one hash each."""
    h = cs.hashes(ts, 0)
    k = (1 + (((h >> _U32) * (ts - 1).astype(np.uint64)) >> _U32)).astype(np.int64)
    return k, (h & _LO32) < thresh


def _chase_x1(
    cs: CounterStream,
    thresh: np.uint64,
    start_k: np.ndarray,
    F: np.ndarray,
    valid_lo: int,
    valid_hi: int,
) -> np.ndarray:
    """Attachment values at the ends of the copy chains starting at ``start_k``.

    Iterative frontier walk: each pass recomputes the draws of the current
    chain nodes (O(1) each, vectorised) and retires the entries that hit a
    direct attachment, node 1, or the resolved window ``[valid_lo,
    valid_hi)`` of ``F``.  The frontier shrinks geometrically (each hop is
    direct with probability ``p``) and chains are ``O(log n)`` long w.h.p.
    (Theorem 3.3), so the walk terminates without any Python-level
    recursion.
    """
    out = np.empty(len(start_k), dtype=np.int64)
    pos = np.arange(len(start_k))
    cur = start_k
    while pos.size:
        known = (cur == 1) | ((cur >= valid_lo) & (cur < valid_hi))
        if known.any():
            kn = known.nonzero()[0]
            out[pos[kn]] = F[cur[kn]]
            live = (~known).nonzero()[0]
            pos = pos[live]
            cur = cur[live]
            if not pos.size:
                break
        k, direct = _draws_x1(cs, cur, thresh)
        if direct.any():
            dn = direct.nonzero()[0]
            out[pos[dn]] = k[dn]
            live = (~direct).nonzero()[0]
            pos = pos[live]
            cur = k[live]
        else:
            cur = k
    return out


def _fill_x1(
    cs: CounterStream,
    thresh: np.uint64,
    F: np.ndarray,
    lo: int,
    hi: int,
    block_size: int,
    valid_lo: int,
) -> None:
    """Fill ``F[t]`` for ``t in [max(lo, 2), hi)``; ``F[1]`` must be 0.

    ``[valid_lo, b)`` is the portion of ``F`` already filled when block
    ``b`` starts — 2 for sequential/streaming runs, the slice's left edge
    for a parallel worker.  Blocks keep chase chains short: most land in
    the filled prefix after one hop, and chains that descend below
    ``valid_lo`` are recomputed hop by hop instead of queried.
    """
    for b in range(max(lo, 2), hi, block_size):
        ts = np.arange(b, min(b + block_size, hi), dtype=np.int64)
        k, direct = _draws_x1(cs, ts, thresh)
        F[ts[direct]] = k[direct]
        copy = (~direct).nonzero()[0]
        if copy.size:
            F[ts[copy]] = _chase_x1(cs, thresh, k[copy], F, valid_lo, b)


def commfree_x1(
    n: int,
    p: float = 0.5,
    seed: int | None = None,
    return_attachments: bool = False,
    block_size: int = _BLOCK,
) -> EdgeList | tuple[EdgeList, np.ndarray]:
    """Communication-free ``x = 1`` PA network (sequential, vectorised).

    Drop-in alternative to :func:`repro.seq.copy_model.copy_model_x1`: same
    attachment law, same edge order (node order), same ``F`` contract —
    but every variate is a pure function of ``(seed, node)``, so the same
    graph can be produced slice-by-slice with zero communication
    (:func:`commfree_edge_slice`, :func:`commfree_mp`).

    Examples
    --------
    >>> el, F = commfree_x1(10, seed=1, return_attachments=True)
    >>> len(el), F[0]
    (9, np.int64(-1))
    >>> bool((F[1:] < np.arange(1, 10)).all())
    True
    """
    _check_params(n, 1, p)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    F = np.full(n, -1, dtype=np.int64)
    edges = EdgeList(capacity=max(n - 1, 1))
    if n >= 2:
        F[1] = 0
        _fill_x1(_counter(seed, 1), _coin_threshold(p), F, 0, n, block_size, 2)
        edges.append_arrays(np.arange(1, n, dtype=np.int64), F[1:])
    if return_attachments:
        return edges, F
    return edges


def stream_commfree_x1(
    n: int,
    p: float = 0.5,
    block_size: int = 65_536,
    seed: int | None = None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield the commfree ``x = 1`` network as ``(u, v)`` edge blocks.

    Speaks the same chunk protocol as
    :func:`repro.core.streaming.stream_copy_model_x1` (node 1's
    deterministic edge leads the first block), so
    :class:`~repro.core.streaming.StreamingDegreeAccumulator` accumulates
    degree statistics without materialising the edge list.  Concatenated,
    the blocks equal :func:`commfree_x1`'s edge list bit for bit — block
    size only changes the chunking, never the graph.

    Examples
    --------
    >>> total = sum(len(u) for u, v in stream_commfree_x1(10_000, seed=0))
    >>> total
    9999
    """
    _check_params(n, 1, p)
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    if n < 2:
        return
    cs = _counter(seed, 1)
    thresh = _coin_threshold(p)
    F = np.full(n, -1, dtype=np.int64)
    F[1] = 0
    if n == 2:
        yield np.array([1], dtype=np.int64), np.array([0], dtype=np.int64)
        return
    one = np.array([1], dtype=np.int64)
    zero = np.array([0], dtype=np.int64)
    lo = 2
    while lo < n:
        hi = min(lo + block_size, n)
        _fill_x1(cs, thresh, F, lo, hi, block_size, 2)
        ts = np.arange(lo, hi, dtype=np.int64)
        if lo == 2:
            yield np.concatenate([one, ts]), np.concatenate([zero, F[ts]])
        else:
            yield ts, F[ts]
        lo = hi


# ---------------------------------------------------------------- general x
def _resolve_general(
    cs: CounterStream,
    n: int,
    x: int,
    p: float,
    target_rows: np.ndarray,
) -> np.ndarray:
    """Resolve all slots of ``target_rows`` (node ids ``> x``) plus the rows
    they transitively depend on; returns the flat slot-value table.

    Iterative fixpoint with no Python-level recursion: each round draws the
    current duplicate-rejection attempt for every *eligible* pending slot
    (its within-row predecessor committed — the dup check needs the final
    prefix), commits the slots whose candidate value is known and fresh,
    bumps the attempt of duplicates, and enqueues the source rows of copy
    slots whose value isn't resolved yet (the demand-driven closure that
    replaces resolution messages).  Dependencies strictly decrease in node
    id, so the minimal pending row always progresses.
    """
    size = (n - x) * x
    val = np.full(size, -1, dtype=np.int64)
    val[:x] = np.arange(x)  # node x attaches to the whole clique
    attempt = np.zeros(size, dtype=np.int64)
    row_enqueued = np.zeros(n - x, dtype=bool)
    row_enqueued[0] = True

    rows = np.asarray(target_rows, dtype=np.int64) - x  # row-relative
    rows = rows[rows > 0]
    row_enqueued[rows] = True
    pending = (rows[:, None] * x + np.arange(x, dtype=np.int64)[None, :]).ravel()

    offsets = np.arange(x, dtype=np.int64)
    for _round in range(_MAX_ROUNDS):
        if pending.size == 0:
            return val
        e = pending % x
        elig = (e == 0) | (val[pending - 1] >= 0)
        idx = pending[elig]
        if idx.size:
            t = idx // x + x
            ee = e[elig]
            a3 = 3 * attempt[idx]
            u1 = cs.uniforms(idx, a3)
            u2 = cs.uniforms(idx, a3 + 1)
            # min() guards the 2^-53 float boundary where floor(u * m) == m
            k = x + np.minimum((u1 * (t - x)).astype(np.int64), t - x - 1)
            direct = u2 < p
            v = np.where(direct, k, np.int64(-1))
            copy = (~direct).nonzero()[0]
            if copy.size:
                l = np.minimum(
                    (cs.uniforms(idx[copy], a3[copy] + 2) * x).astype(np.int64), x - 1
                )
                src = (k[copy] - x) * x + l
                sv = val[src]
                ready = sv >= 0
                v[copy[ready]] = sv[ready]
                miss = src[~ready]
                if miss.size:
                    new_rows = np.unique(miss // x)
                    new_rows = new_rows[~row_enqueued[new_rows]]
                    if new_rows.size:
                        row_enqueued[new_rows] = True
                        fresh = (new_rows[:, None] * x + offsets[None, :]).ravel()
                        pending = np.concatenate([pending, fresh])
            have = v >= 0
            if have.any():
                rowbase = idx - ee
                dup = np.zeros(len(idx), dtype=bool)
                for o in range(x - 1):
                    m = have & (ee > o)
                    if m.any():
                        sel = m.nonzero()[0]
                        dup[sel] |= val[rowbase[sel] + o] == v[sel]
                commit = have & ~dup
                val[idx[commit]] = v[commit]
                retry = have & dup
                attempt[idx[retry]] += 1
                if retry.any() and attempt[idx[retry]].max() >= _MAX_RETRIES:
                    worst = idx[retry][attempt[idx[retry]].argmax()]
                    raise RuntimeError(
                        f"slot ({worst // x + x}, {worst % x}) exhausted "
                        f"{_MAX_RETRIES} duplicate-rejection retries "
                        f"(degenerate parameters, e.g. p=1 with x>1?)"
                    )
        pending = pending[val[pending] < 0]
    raise RuntimeError(  # pragma: no cover - indicates a logic error
        f"exceeded {_MAX_ROUNDS} fixpoint rounds at n={n}, x={x}"
    )


def _general_edges(
    n: int, x: int, lo: int, hi: int, val: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Edges owned by nodes ``[lo, hi)`` under the slice-stable order.

    Each edge belongs to its larger endpoint: clique node ``t < x``
    contributes ``(t, 0..t-1)``, node ``x`` its full clique row, and every
    later node its ``x`` resolved attachments.  Concatenating slices in
    rank order therefore reproduces the sequential edge order exactly.
    """
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    for t in range(max(lo, 1), min(hi, x)):
        us.append(np.full(t, t, dtype=np.int64))
        vs.append(np.arange(t, dtype=np.int64))
    if lo <= x < hi:
        us.append(np.full(x, x, dtype=np.int64))
        vs.append(np.arange(x, dtype=np.int64))
    ts = np.arange(max(lo, x + 1), hi, dtype=np.int64)
    if ts.size:
        us.append(np.repeat(ts, x))
        flat = ((ts - x)[:, None] * x + np.arange(x, dtype=np.int64)[None, :]).ravel()
        vs.append(val[flat])
    if not us:
        z = np.empty(0, dtype=np.int64)
        return z, z
    return np.concatenate(us), np.concatenate(vs)


def commfree(
    n: int,
    x: int = 1,
    p: float = 0.5,
    seed: int | None = None,
    return_attachments: bool = False,
) -> EdgeList | tuple[EdgeList, np.ndarray]:
    """Communication-free copy-model PA network with ``x`` edges per node.

    The general-``x`` analogue of :func:`commfree_x1`: same attachment law
    as :func:`repro.seq.copy_model.copy_model` (initial ``x``-clique,
    per-slot duplicate rejection), with every draw a pure function of
    ``(seed, slot, attempt)``.  Returns the edge list, plus the ``(n, x)``
    attachment table if ``return_attachments`` (clique rows are ``-1``).
    """
    if x == 1:
        return commfree_x1(n, p=p, seed=seed, return_attachments=return_attachments)
    _check_params(n, x, p)
    val = _resolve_general(
        _counter(seed, x), n, x, p, np.arange(x + 1, n, dtype=np.int64)
    )
    u, v = _general_edges(n, x, 0, n, val)
    edges = EdgeList.from_arrays(u, v)
    if return_attachments:
        F = np.full((n, x), -1, dtype=np.int64)
        F[x:, :] = val.reshape(n - x, x)
        return edges, F
    return edges


# ------------------------------------------------------- slices and parallel
def commfree_slices(n: int, ranks: int) -> list[tuple[int, int]]:
    """Balanced contiguous node ranges, one per rank.

    Contiguity is what makes rank-order concatenation equal the sequential
    edge order; the ranges differ in size by at most one node.
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    return [(n * r // ranks, n * (r + 1) // ranks) for r in range(ranks)]


def commfree_edge_slice(
    n: int,
    lo: int,
    hi: int,
    x: int = 1,
    p: float = 0.5,
    seed: int | None = None,
    block_size: int = _BLOCK,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``(u, v)`` edge arrays owned by nodes ``[lo, hi)``.

    Computed with zero knowledge of any other slice: foreign dependencies
    are recomputed from the counter substream (x = 1: chain chase; general
    x: demand-driven row closure).  For any partition of ``[0, n)`` into
    contiguous slices, concatenating the results in slice order is
    bit-identical to the sequential generator's edge list.
    """
    _check_params(n, x, p)
    if not 0 <= lo <= hi <= n:
        raise ValueError(f"need 0 <= lo <= hi <= n, got [{lo}, {hi}) of n={n}")
    if x == 1:
        F = np.full(hi, -1, dtype=np.int64)
        if hi > 1:
            F[1] = 0
            _fill_x1(
                _counter(seed, 1), _coin_threshold(p), F, lo, hi, block_size, max(lo, 2)
            )
        start = max(lo, 1)
        ts = np.arange(start, hi, dtype=np.int64)
        return ts, F[start:hi].copy()
    rows = np.arange(max(lo, x + 1), hi, dtype=np.int64)
    val = _resolve_general(_counter(seed, x), n, x, p, rows)
    return _general_edges(n, x, lo, hi, val)


def _slice_worker(args):
    """One rank's job: compute a slice, and (out-of-core) spill it sealed.

    Jobs are 7-tuples ``(n, x, p, seed, lo, hi, block_size)``; out-of-core
    jobs append ``(shard_dir, chunk_edges)``.  A spilling worker returns the
    slice's sealed manifest (a small dict) instead of the edge arrays —
    the coordinator assembles manifests, never ships arrays over the pipe.
    """
    n, x, p, seed, lo, hi, block_size = args[:7]
    u, v = commfree_edge_slice(n, lo, hi, x=x, p=p, seed=seed, block_size=block_size)
    if len(args) == 7:
        return u, v
    shard_dir, chunk_edges = args[7:]
    from repro.core.spill import EdgeShardWriter

    writer = EdgeShardWriter(shard_dir, chunk_edges=chunk_edges)
    writer.append_arrays(u, v)
    return writer.seal()


def commfree_mp(
    n: int,
    x: int = 1,
    p: float = 0.5,
    ranks: int = 2,
    seed: int | None = None,
    block_size: int = _BLOCK,
    spill_dir: str | None = None,
    budget_bytes: int | None = None,
) -> EdgeList:
    """Trivially-parallel commfree generation on real OS processes.

    Forks ``ranks`` workers, each computing one contiguous edge slice with
    no inter-worker traffic of any kind; the coordinator concatenates the
    slices in rank order.  There is no exchange, no barrier, and no
    checkpoint surface — a crashed worker simply means rerunning its pure,
    stateless slice.  Output is bit-identical to :func:`commfree` /
    :func:`commfree_x1` for any ``ranks``.

    With ``spill_dir`` set the run goes out-of-core: each worker writes its
    slice as sha256-sealed shards under ``<spill_dir>/shards/rank<r>`` and
    returns only the manifest; the coordinator streams the shards, in rank
    order, into a :class:`repro.core.spill.SpillEdgeList` whose in-RAM
    write buffer is bounded by ``budget_bytes``.  Bit-identical to the
    in-RAM path at every rank count.
    """
    _check_params(n, x, p)
    slices = commfree_slices(n, ranks)
    spilling = spill_dir is not None
    if spilling:
        from repro.core import spill as _spill

        budget = budget_bytes or _spill.DEFAULT_BUDGET_BYTES
        chunk_edges = max(budget // 32, 1024)
        jobs = [
            (n, x, p, seed, lo, hi, block_size,
             str(_spill.rank_shard_dir(Path(spill_dir) / "shards", r, ranks)),
             chunk_edges)
            for r, (lo, hi) in enumerate(slices)
        ]
    else:
        jobs = [(n, x, p, seed, lo, hi, block_size) for lo, hi in slices]
    if ranks == 1:
        parts = [_slice_worker(jobs[0])]
    else:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        with ctx.Pool(processes=ranks) as pool:
            parts = pool.map(_slice_worker, jobs)
    if spilling:
        edges = _spill.SpillEdgeList(Path(spill_dir) / "edges", budget_bytes=budget)
        _spill.assemble_shards(Path(spill_dir) / "shards", ranks, edges)
        expected = sum(m["edges"] for m in parts)
        if len(edges) != expected:
            raise RuntimeError(
                f"assembled {len(edges)} edges, manifests promised {expected}"
            )
        return edges
    m = x * (x - 1) // 2 + (n - x) * x if x > 1 else n - 1
    edges = EdgeList(capacity=max(m, 1))
    for u, v in parts:
        edges.append_arrays(u, v)
    return edges
