"""Destination routing shared by the PA rank programs.

Both Algorithm 3.1 and 3.2 end each phase by scattering a batch of protocol
records to their destination ranks.  The grouping is a single stable argsort
plus one split — ``O(m log m)`` on the batch, no per-record Python work —
and lived as an identical private method in both rank programs until it was
hoisted here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["route_by_dest"]


def route_by_dest(out: dict, records: np.ndarray, dests: np.ndarray) -> None:
    """Group ``records`` by destination rank and append chunks to ``out``.

    Parameters
    ----------
    out:
        Outbox mapping ``dest -> list of record arrays`` (typically a
        ``defaultdict(list)``); each destination's chunk is appended.
    records:
        The record batch (any dtype, typically structured).
    dests:
        Destination rank per record, same length as ``records``.

    The stable sort preserves batch order within each destination, which the
    deterministic cross-engine guarantees rely on.
    """
    dests = np.asarray(dests)
    if len(records) == 0:
        return
    order = np.argsort(dests, kind="stable")
    records, dests = records[order], dests[order]
    cut = np.flatnonzero(np.diff(dests)) + 1
    for dest, chunk in zip(
        np.concatenate([dests[:1], dests[cut]]).tolist(),
        np.split(records, cut),
    ):
        out[int(dest)].append(chunk)
