"""Parallel R-MAT generation (Chakrabarti–Zhan–Faloutsos, cited as [7]).

The paper's introduction lists R-MAT among the random-graph models used for
massive synthetic networks; like Erdős–Rényi it is embarrassingly parallel
(edges are i.i.d. draws from the recursive-quadrant distribution), making it
a natural second citizen of this library's substrate: each rank samples its
share of the ``m`` edges independently and no messages are needed.

The sampler is fully vectorised: for a ``2^scale``-node graph, every edge
needs ``scale`` quadrant choices; we draw them as a ``(batch, scale)``
uniform matrix and build both endpoint ids with bit arithmetic in one pass.

Self-loops are rejected and, optionally, duplicate edges are removed
globally (R-MAT as usually deployed, e.g. in Graph500, keeps duplicates;
``dedup=True`` gives a simple graph at the cost of a slightly smaller m).
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel
from repro.rng import StreamFactory

__all__ = ["RMATRankProgram", "run_parallel_rmat", "rmat_edges"]


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` R-MAT edge endpoints on ``2^scale`` nodes.

    ``(a, b, c, d)`` are the quadrant probabilities with ``d = 1-a-b-c``;
    the defaults are the Graph500 parameters.  Self-loops are redrawn.

    Examples
    --------
    >>> u, v = rmat_edges(6, 100, seed=0)
    >>> bool((u != v).all()) and int(max(u.max(), v.max())) < 64
    True
    """
    if scale < 1 or scale > 62:
        raise ValueError(f"scale must be in [1, 62], got {scale}")
    if num_edges < 0:
        raise ValueError(f"num_edges must be >= 0, got {num_edges}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise ValueError(f"quadrant probabilities invalid: a={a} b={b} c={c} d={d}")
    rng = rng or np.random.default_rng(seed)

    us = np.empty(0, dtype=np.int64)
    vs = np.empty(0, dtype=np.int64)
    need = num_edges
    while need > 0:
        r = rng.random((need, scale))
        # quadrant per level: 0 -> a (0,0), 1 -> b (0,1), 2 -> c (1,0), 3 -> d
        q = np.full((need, scale), 3, dtype=np.int8)
        q[r < a + b + c] = 2
        q[r < a + b] = 1
        q[r < a] = 0
        row_bits = (q >> 1).astype(np.int64)   # 1 for quadrants c, d
        col_bits = (q & 1).astype(np.int64)    # 1 for quadrants b, d
        weights = (1 << np.arange(scale - 1, -1, -1, dtype=np.int64))
        u = row_bits @ weights
        v = col_bits @ weights
        ok = u != v
        us = np.concatenate([us, u[ok]])
        vs = np.concatenate([vs, v[ok]])
        need = num_edges - len(us)
    return us[:num_edges], vs[:num_edges]


class RMATRankProgram:
    """One rank of the parallel R-MAT generator: sample ``m/P`` edges locally."""

    def __init__(
        self,
        rank: int,
        size: int,
        scale: int,
        num_edges: int,
        abc: tuple[float, float, float],
        rng: np.random.Generator,
    ) -> None:
        self.rank = rank
        self.scale = scale
        self.quota = (rank + 1) * num_edges // size - rank * num_edges // size
        self.abc = abc
        self.rng = rng
        self._done = False
        self.edges = EdgeList()

    @property
    def done(self) -> bool:
        return self._done

    def local_edges(self) -> EdgeList:
        return self.edges

    def step(self, ctx: BSPRankContext, inbox) -> None:
        if self._done:
            return None
        self._done = True
        a, b, c = self.abc
        u, v = rmat_edges(self.scale, self.quota, a, b, c, rng=self.rng)
        self.edges.append_arrays(u, v)
        ctx.charge(work_items=self.quota * self.scale)
        return None


def run_parallel_rmat(
    scale: int,
    num_edges: int,
    ranks: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    dedup: bool = False,
    seed: int | None = None,
    cost_model: CostModel | None = None,
) -> tuple[EdgeList, BSPEngine, list[RMATRankProgram]]:
    """Generate an R-MAT graph on ``2^scale`` nodes across ``ranks``.

    ``dedup=True`` canonicalises and removes duplicate undirected edges
    after the parallel phase (R-MAT draws i.i.d., so collisions are expected
    on skewed parameterisations).

    Examples
    --------
    >>> edges, engine, _ = run_parallel_rmat(8, 1000, ranks=4, seed=0)
    >>> engine.stats.total_messages   # embarrassingly parallel
    0
    >>> len(edges)
    1000
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    factory = StreamFactory(seed)
    programs = [
        RMATRankProgram(r, ranks, scale, num_edges, (a, b, c), factory.stream(r))
        for r in range(ranks)
    ]
    engine = BSPEngine(ranks, cost_model=cost_model)
    engine.run(programs)
    edges = EdgeList(capacity=max(num_edges, 1))
    for prog in programs:
        edges.extend(prog.edges)
    if dedup and len(edges):
        canon = edges.canonical()
        keep = np.ones(len(canon), dtype=bool)
        keep[1:] = (np.diff(canon, axis=0) != 0).any(axis=1)
        edges = EdgeList.from_arrays(canon[keep, 0], canon[keep, 1])
    return edges, engine, programs
