"""Literal per-message execution of Algorithms 3.1 and 3.2.

The bulk (BSP) implementations in :mod:`repro.core.parallel_pa` and
:mod:`repro.core.parallel_pa_general` are the production path; this module
runs the pseudocode *as written* — one ``<request, ...>`` or
``<resolved, ...>`` per message — on the event-driven
:class:`~repro.mpsim.runtime.Simulator`.  It exists to

* cross-validate the bulk engines (for ``x = 1`` both consume the identical
  per-node uniforms, so the generated graphs are **bit-identical**);
* demonstrate the paper's message-buffering rules (Section 3.5), including
  the round-robin deadlock: with buffering enabled, resolved messages held
  until their buffer fills (instead of the paper's flush-after-every-group
  rule) can produce circular waiting, which surfaces here as a
  :class:`~repro.mpsim.errors.DeadlockError`.

Buffering knobs:

``buffer_capacity=None``
    unbuffered — every record is its own message (the literal pseudocode);
``buffer_capacity=C`` with ``flush_on_idle=True``
    buffers flush when full *and* whenever the rank is about to block with
    no deliverable message — the safe policy (subsumes the paper's
    every-group rule for RRP);
``buffer_capacity=C`` with ``flush_on_idle=False``
    the hazardous hold-until-full policy; under RRP this deadlocks with
    non-negligible probability, which the test-suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.core.buffers import MessageBuffers
from repro.core.partitioning import Partition
from repro.graph.edgelist import EdgeList
from repro.mpsim.comm import Comm
from repro.mpsim.costmodel import CostModel
from repro.mpsim.datatypes import TAG_DEFAULT
from repro.mpsim.errors import DeadlockError
from repro.mpsim.runtime import Simulator
from repro.rng import StreamFactory

__all__ = ["run_event_driven_pa_x1", "run_event_driven_pa"]

_REQUEST = 0
_RESOLVED = 1

#: substream namespace for the confluent program's per-slot retry draws
_RETRY_NS = 101


class _Mailer:
    """Optional per-destination buffering in front of ``comm.send``."""

    def __init__(self, comm: Comm, capacity: int | None, flush_on_idle: bool) -> None:
        self.comm = comm
        self.flush_on_idle = flush_on_idle
        self.buffers = (
            MessageBuffers(comm.size, capacity) if capacity is not None else None
        )

    def post(self, dest: int, record: tuple) -> None:
        if dest == self.comm.rank:
            raise AssertionError("local records must not be mailed")
        if self.buffers is None:
            self.comm.send(dest, [record], tag=TAG_DEFAULT)
            return
        batch = self.buffers.add(dest, record)
        if batch is not None:
            self.comm.send(dest, batch, tag=TAG_DEFAULT)

    def flush_all(self) -> None:
        if self.buffers is None:
            return
        for dest, batch in self.buffers.flush_all():
            self.comm.send(dest, batch, tag=TAG_DEFAULT)

    def on_idle(self) -> None:
        if self.flush_on_idle:
            self.flush_all()

    @property
    def pending(self) -> int:
        return self.buffers.pending() if self.buffers else 0


def _pa_x1_program(
    comm: Comm,
    partition: Partition,
    p: float,
    factory: StreamFactory,
    results: list,
    buffer_capacity: int | None,
    flush_on_idle: bool,
):
    """Rank program: Algorithm 3.1 verbatim.

    Messages are tuples ``(_REQUEST, t, k)`` / ``(_RESOLVED, t, v)`` (lists
    of them when buffered).
    """
    rank = comm.rank
    rng = factory.stream(rank)
    nodes = partition.partition_nodes(rank)
    F = np.full(len(nodes), -1, dtype=np.int64)
    queues: dict[int, list[int]] = {}
    mail = _Mailer(comm, buffer_capacity, flush_on_idle)

    def lidx(u: int) -> int:
        return int(partition.local_index(rank, u))

    def cascade(start_idx: int) -> None:
        """F at start_idx just resolved: answer/resolve everything waiting."""
        stack = [start_idx]
        while stack:
            ki = stack.pop()
            v = int(F[ki])
            for t in queues.pop(ki, []):
                if int(partition.owner(t)) == rank:
                    ti = lidx(t)
                    F[ti] = v
                    stack.append(ti)
                else:
                    mail.post(int(partition.owner(t)), (_RESOLVED, t, v))

    # ---- Lines 2-9: the local generation phase --------------------------
    for t in nodes.tolist():
        comm.charge(nodes=1)
        if t == 0:
            continue
        if t == 1:
            F[lidx(1)] = 0
            cascade(lidx(1))
            continue
        u1, u2 = rng.random(2)
        k = 1 + int(u1 * (t - 1))
        if u2 < p:
            F[lidx(t)] = k
            cascade(lidx(t))
        else:
            owner_k = int(partition.owner(k))
            if owner_k == rank:
                ki = lidx(k)
                if F[ki] >= 0:
                    F[lidx(t)] = F[ki]
                    cascade(lidx(t))
                else:
                    queues.setdefault(ki, []).append(t)
            else:
                mail.post(owner_k, (_REQUEST, t, k))
    mail.flush_all()  # end of generation: outstanding requests must go out

    # ---- Lines 10-19: the message-serving phase --------------------------
    while True:
        if not comm.iprobe():
            mail.on_idle()
        msg = yield comm.recv_or_quiesce()
        if msg is None:
            break
        for record in msg.payload:
            comm.charge(work_items=1)
            kind, t, a = record
            if kind == _REQUEST:
                ki = lidx(a)
                if F[ki] >= 0:
                    mail.post(int(partition.owner(t)), (_RESOLVED, t, int(F[ki])))
                else:
                    queues.setdefault(ki, []).append(t)
            else:
                ti = lidx(t)
                F[ti] = a
                cascade(ti)

    if (F[nodes >= 1] < 0).any() or mail.pending:
        unresolved = int((F[nodes >= 1] < 0).sum())
        raise DeadlockError(
            f"rank {rank} quiesced with {unresolved} unresolved nodes and "
            f"{mail.pending} records stuck in outgoing buffers "
            "(hold-until-full buffering hazard, Section 3.5.2)",
            blocked_ranks=(rank,),
        )
    mask = nodes >= 1
    results[rank] = (nodes[mask], F[mask].copy())


def run_event_driven_pa_x1(
    n: int,
    partition: Partition,
    p: float = 0.5,
    seed: int | None = None,
    cost_model: CostModel | None = None,
    buffer_capacity: int | None = None,
    flush_on_idle: bool = True,
    fault_injector=None,
    schedule=None,
) -> tuple[EdgeList, Simulator]:
    """Run Algorithm 3.1 one-message-at-a-time; return (edges, simulator).

    Uses the same per-node uniform-consumption protocol as
    :func:`repro.core.parallel_pa.run_parallel_pa_x1`, so for equal
    ``(seed, partition, p)`` the two produce identical edge lists.
    ``schedule`` (a :class:`repro.schedsim.Schedule`) permutes the
    simulator's delivery choices; the x=1 protocol is order-invariant, so
    any schedule yields the identical edge list.
    """
    if partition.n != n:
        raise ValueError(f"partition covers n={partition.n}, requested n={n}")
    factory = StreamFactory(seed)
    results: list = [None] * partition.P
    sim = Simulator(
        partition.P,
        cost_model=cost_model,
        fault_injector=fault_injector,
        schedule=schedule,
    )
    sim.run(
        _pa_x1_program,
        partition,
        p,
        factory,
        results,
        buffer_capacity,
        flush_on_idle,
    )
    edges = EdgeList(capacity=max(n - 1, 1))
    for t_arr, f_arr in results:
        edges.append_arrays(t_arr, f_arr)
    return edges, sim


def _pa_general_program(
    comm: Comm,
    partition: Partition,
    x: int,
    p: float,
    factory: StreamFactory,
    results: list,
    buffer_capacity: int | None,
    flush_on_idle: bool,
):
    """Rank program: Algorithm 3.2 verbatim (one record per message).

    Messages: ``(_REQUEST, t, e, k, l)`` and ``(_RESOLVED, t, e, v)``.
    """
    rank = comm.rank
    rng = factory.stream(rank)
    nodes = partition.partition_nodes(rank)
    F = np.full((len(nodes), x), -1, dtype=np.int64)
    queues: dict[tuple[int, int], list[tuple[int, int]]] = {}
    mail = _Mailer(comm, buffer_capacity, flush_on_idle)

    def lidx(u: int) -> int:
        return int(partition.local_index(rank, u))

    def row_has(ti: int, v: int) -> bool:
        return bool((F[ti] == v).any())

    def dispatch_copy(t: int, e: int) -> None:
        """Lines 27-29 (and the copy arm of Lines 4-14): draw (k, l), route."""
        k = x + int(rng.random() * (t - x))
        l = int(rng.random() * x)
        owner_k = int(partition.owner(k))
        if owner_k != rank:
            mail.post(owner_k, (_REQUEST, t, e, k, l))
            return
        ki = lidx(k)
        if F[ki, l] >= 0:
            settle(t, e, int(F[ki, l]))
        else:
            queues.setdefault((ki, l), []).append((t, e))

    def settle(t: int, e: int, v: int) -> None:
        """Lines 22-29: install v into F_t(e), or retry on duplicate."""
        ti = lidx(t)
        if row_has(ti, v):
            comm.charge(work_items=1)
            dispatch_copy(t, e)
            return
        F[ti, e] = v
        cascade(ti, e)

    def cascade(ti: int, e: int) -> None:
        v = int(F[ti, e])
        for (t2, e2) in queues.pop((ti, e), []):
            if int(partition.owner(t2)) == rank:
                settle(t2, e2, v)
            else:
                mail.post(int(partition.owner(t2)), (_RESOLVED, t2, e2, v))

    def generate_slot(t: int, e: int) -> None:
        """Lines 4-14 with the duplicate-redraw loop of Lines 6-10."""
        ti = lidx(t)
        while True:
            comm.charge(work_items=1)
            k = x + int(rng.random() * (t - x))
            if rng.random() < p:
                if not row_has(ti, k):
                    F[ti, e] = k
                    cascade(ti, e)
                    return
                continue  # "go to line 4"
            l = int(rng.random() * x)
            owner_k = int(partition.owner(k))
            if owner_k != rank:
                mail.post(owner_k, (_REQUEST, t, e, k, l))
                return
            ki = lidx(k)
            if F[ki, l] >= 0:
                v = int(F[ki, l])
                if row_has(ti, v):
                    continue  # duplicate found locally: full redraw
                F[ti, e] = v
                cascade(ti, e)
                return
            queues.setdefault((ki, l), []).append((t, e))
            return

    # ---- local generation phase ------------------------------------------
    for t in nodes.tolist():
        comm.charge(nodes=1)
        if t < x:
            continue
        if t == x:
            ti = lidx(t)
            F[ti, :] = np.arange(x)
            for e in range(x):
                cascade(ti, e)
            continue
        for e in range(x):
            generate_slot(t, e)
    mail.flush_all()

    # ---- message-serving phase --------------------------------------------
    while True:
        if not comm.iprobe():
            mail.on_idle()
        msg = yield comm.recv_or_quiesce()
        if msg is None:
            break
        for record in msg.payload:
            comm.charge(work_items=1)
            if record[0] == _REQUEST:
                _, t, e, k, l = record
                ki = lidx(k)
                if F[ki, l] >= 0:
                    mail.post(int(partition.owner(t)), (_RESOLVED, t, e, int(F[ki, l])))
                else:
                    queues.setdefault((ki, l), []).append((t, e))
            else:
                _, t, e, v = record
                settle(t, e, v)

    growing = nodes >= x
    if (F[growing] < 0).any() or mail.pending:
        unresolved = int((F[growing] < 0).sum())
        raise DeadlockError(
            f"rank {rank} quiesced with {unresolved} unresolved slots and "
            f"{mail.pending} buffered records",
            blocked_ranks=(rank,),
        )

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    clique = nodes[(nodes >= 1) & (nodes < x)]
    for j in clique.tolist():
        us.append(np.full(j, j, dtype=np.int64))
        vs.append(np.arange(j, dtype=np.int64))
    t_grow = nodes[growing]
    if len(t_grow):
        us.append(np.repeat(t_grow, x))
        vs.append(F[growing].reshape(-1))
    results[rank] = (
        np.concatenate(us) if us else np.empty(0, dtype=np.int64),
        np.concatenate(vs) if vs else np.empty(0, dtype=np.int64),
    )


def _pa_general_confluent_program(
    comm: Comm,
    partition: Partition,
    x: int,
    p: float,
    factory: StreamFactory,
    results: list,
    buffer_capacity: int | None,
    flush_on_idle: bool,
):
    """Rank program: Algorithm 3.2, rewritten to be delivery-order invariant.

    The verbatim program (:func:`_pa_general_program`) resolves duplicates
    first-come-first-served and draws retries from the rank's main stream, so
    its output is a function of message arrival order.  This variant makes
    every source of order-dependence a pure function of the *slot*:

    * **retry draws** for slot ``(t, e)`` at attempt ``a`` come from
      ``factory.substream(_RETRY_NS, t, e, a)`` — the redraw sequence no
      longer consumes the shared main stream in arrival order;
    * **duplicate arbitration** is min-slot-wins with stealing: when a
      proposed value already sits in the row at a higher slot, the lower slot
      *steals* it and the higher slot retries its next attempt, so the final
      (slot, value) assignment is the unique fixpoint of the per-slot
      proposal sequences, independent of proposal arrival order;
    * **serving is gated on complete rows**: a request for ``F_k(l)`` is
      answered only once row ``k`` is fully resolved (steals can rewrite a
      filled slot of an incomplete row, but a complete row has no outstanding
      proposals, so completeness — and every answer — is stable).  Row
      dependencies point to strictly smaller node ids, so the gate cannot
      deadlock.

    Messages are the same ``(_REQUEST, t, e, k, l)`` / ``(_RESOLVED, t, e, v)``
    tuples as the verbatim program.
    """
    rank = comm.rank
    rng = factory.stream(rank)
    nodes = partition.partition_nodes(rank)
    nloc = len(nodes)
    F = np.full((nloc, x), -1, dtype=np.int64)
    filled = np.zeros(nloc, dtype=np.int64)
    row_done = np.zeros(nloc, dtype=bool)
    # requesters parked until local row `ki` completes: ki -> [(t, e, l)]
    row_wait: dict[int, list[tuple[int, int, int]]] = {}
    attempts: dict[tuple[int, int], int] = {}
    completed: list[int] = []  # rows finished since the last drain
    mail = _Mailer(comm, buffer_capacity, flush_on_idle)

    def lidx(u: int) -> int:
        return int(partition.local_index(rank, u))

    def install(ti: int, e: int, v: int) -> None:
        F[ti, e] = v
        filled[ti] += 1
        if filled[ti] == x:
            row_done[ti] = True
            completed.append(ti)

    def retry(t: int, e: int) -> None:
        """Redraw slot ``(t, e)`` from its own per-attempt substream."""
        a = attempts.get((t, e), 0) + 1
        attempts[(t, e)] = a
        comm.charge(work_items=1)
        u1, u2 = factory.substream(_RETRY_NS, t, e, a).random(2)
        k = x + int(u1 * (t - x))
        l = int(u2 * x)
        route_copy(t, e, k, l)

    def route_copy(t: int, e: int, k: int, l: int) -> None:
        owner_k = int(partition.owner(k))
        if owner_k != rank:
            mail.post(owner_k, (_REQUEST, t, e, k, l))
            return
        ki = lidx(k)
        if row_done[ki]:
            propose(t, e, int(F[ki, l]))
        else:
            row_wait.setdefault(ki, []).append((t, e, l))

    def propose(t: int, e: int, v: int) -> None:
        """Offer value ``v`` to slot ``(t, e)`` under min-slot-wins."""
        ti = lidx(t)
        if F[ti, e] >= 0:
            return  # stale duplicate delivery; the slot already settled
        holders = np.flatnonzero(F[ti] == v)
        if len(holders):
            j = int(holders[0])
            if e < j:
                # steal: the lower slot keeps v, the higher slot redraws.
                # One slot fills and one empties, so `filled` is unchanged
                # and an incomplete row stays incomplete.
                F[ti, e] = v
                F[ti, j] = -1
                retry(t, j)
            else:
                retry(t, e)
            return
        install(ti, e, v)

    def drain_completed() -> None:
        """Answer everything parked on rows that completed (worklist —
        answering may complete further local rows)."""
        while completed:
            ki = completed.pop()
            for (t, e, l) in row_wait.pop(ki, []):
                v = int(F[ki, l])
                comm.charge(work_items=1)
                if int(partition.owner(t)) == rank:
                    propose(t, e, v)
                else:
                    mail.post(int(partition.owner(t)), (_RESOLVED, t, e, v))

    def generate_slot(t: int, e: int) -> None:
        """Initial draw (Lines 4-14); direct duplicates redraw inline."""
        ti = lidx(t)
        while True:
            comm.charge(work_items=1)
            k = x + int(rng.random() * (t - x))
            if rng.random() < p:
                if not (F[ti] == k).any():
                    install(ti, e, k)
                    return
                continue  # "go to line 4"
            l = int(rng.random() * x)
            route_copy(t, e, k, l)
            return

    # ---- local generation phase ------------------------------------------
    for t in nodes.tolist():
        comm.charge(nodes=1)
        if t < x:
            continue
        ti = lidx(t)
        if t == x:
            F[ti, :] = np.arange(x)
            filled[ti] = x
            row_done[ti] = True
            completed.append(ti)
        else:
            for e in range(x):
                generate_slot(t, e)
        drain_completed()
    mail.flush_all()

    # ---- message-serving phase --------------------------------------------
    while True:
        if not comm.iprobe():
            mail.on_idle()
        msg = yield comm.recv_or_quiesce()
        if msg is None:
            break
        for record in msg.payload:
            comm.charge(work_items=1)
            if record[0] == _REQUEST:
                _, t, e, k, l = record
                ki = lidx(k)
                if row_done[ki]:
                    mail.post(int(partition.owner(t)), (_RESOLVED, t, e, int(F[ki, l])))
                else:
                    row_wait.setdefault(ki, []).append((t, e, l))
            else:
                _, t, e, v = record
                propose(t, e, v)
            drain_completed()

    growing = nodes >= x
    if (F[growing] < 0).any() or mail.pending:
        unresolved = int((F[growing] < 0).sum())
        raise DeadlockError(
            f"rank {rank} quiesced with {unresolved} unresolved slots and "
            f"{mail.pending} buffered records",
            blocked_ranks=(rank,),
        )

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    clique = nodes[(nodes >= 1) & (nodes < x)]
    for j in clique.tolist():
        us.append(np.full(j, j, dtype=np.int64))
        vs.append(np.arange(j, dtype=np.int64))
    t_grow = nodes[growing]
    if len(t_grow):
        us.append(np.repeat(t_grow, x))
        vs.append(F[growing].reshape(-1))
    results[rank] = (
        np.concatenate(us) if us else np.empty(0, dtype=np.int64),
        np.concatenate(vs) if vs else np.empty(0, dtype=np.int64),
    )


def run_event_driven_pa(
    n: int,
    x: int,
    partition: Partition,
    p: float = 0.5,
    seed: int | None = None,
    cost_model: CostModel | None = None,
    buffer_capacity: int | None = None,
    flush_on_idle: bool = True,
    fault_injector=None,
    schedule=None,
    confluent: bool = True,
) -> tuple[EdgeList, Simulator]:
    """Run Algorithm 3.2 one-message-at-a-time; return (edges, simulator).

    ``confluent=True`` (the default) runs the delivery-order-invariant
    variant (:func:`_pa_general_confluent_program`): the generated graph is
    the same under *any* message delivery order, which the schedule fuzzer
    (:func:`repro.schedsim.explore`) asserts.  ``confluent=False`` runs the
    verbatim first-come-first-served pseudocode, whose output depends on
    arrival order — the knob the fuzzer's injected-bug tests flip.
    ``schedule`` (a :class:`repro.schedsim.Schedule`) permutes the
    simulator's delivery choices.
    """
    if partition.n != n:
        raise ValueError(f"partition covers n={partition.n}, requested n={n}")
    if x == 1:
        return run_event_driven_pa_x1(
            n,
            partition,
            p=p,
            seed=seed,
            cost_model=cost_model,
            buffer_capacity=buffer_capacity,
            flush_on_idle=flush_on_idle,
            fault_injector=fault_injector,
            schedule=schedule,
        )
    factory = StreamFactory(seed)
    results: list = [None] * partition.P
    sim = Simulator(
        partition.P,
        cost_model=cost_model,
        fault_injector=fault_injector,
        schedule=schedule,
    )
    sim.run(
        _pa_general_confluent_program if confluent else _pa_general_program,
        partition,
        x,
        p,
        factory,
        results,
        buffer_capacity,
        flush_on_idle,
    )
    edges = EdgeList(capacity=max(n * x, 1))
    for u_arr, v_arr in results:
        edges.append_arrays(u_arr, v_arr)
    return edges, sim
