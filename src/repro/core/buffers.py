"""Per-destination message buffering (Section 3.5 "Message Buffering").

Sending every request/resolved record as its own MPI message would flood the
network; the paper instead keeps ``P - 1`` per-destination buffers on every
rank and ships a buffer with one send when it fills.  Two flush policies
matter:

* **when-full** — the default for request messages under any scheme and for
  resolved messages under consecutive partitioning (UCP/LCP), where rank
  ``i`` only ever waits on ranks ``j < i`` so no waiting cycle can form;
* **every-group** — required for *resolved* messages under round-robin
  partitioning: after processing each received group, partially filled
  resolved buffers must be flushed anyway, otherwise two ranks can each hold
  the resolved record the other needs — circular waiting, i.e. deadlock
  (Section 3.5.2).

The event-driven Algorithm 3.1/3.2 implementation uses this class directly;
``tests/core/test_deadlock.py`` demonstrates that disabling the every-group
flush under RRP reproduces the deadlock the paper warns about.
"""

from __future__ import annotations

from typing import Any, Iterator

__all__ = ["MessageBuffers", "FLUSH_WHEN_FULL", "FLUSH_EVERY_GROUP"]

FLUSH_WHEN_FULL = "when-full"
FLUSH_EVERY_GROUP = "every-group"


class MessageBuffers:
    """``P``-way output buffering for one rank.

    Parameters
    ----------
    size:
        Number of ranks (buffers are kept for every destination but the
        owner may simply never address itself).
    capacity:
        Records per buffer before :meth:`add` reports it full.
    policy:
        :data:`FLUSH_WHEN_FULL` or :data:`FLUSH_EVERY_GROUP`; the policy is
        advisory metadata consumed by :meth:`needs_group_flush`.
    """

    def __init__(self, size: int, capacity: int = 64, policy: str = FLUSH_WHEN_FULL) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in (FLUSH_WHEN_FULL, FLUSH_EVERY_GROUP):
            raise ValueError(f"unknown policy {policy!r}")
        self.size = size
        self.capacity = capacity
        self.policy = policy
        self._buffers: list[list[Any]] = [[] for _ in range(size)]
        #: how many flushes (bulk sends) this buffer set has produced
        self.flush_count = 0
        #: total records that passed through
        self.record_count = 0

    def add(self, dest: int, record: Any) -> list[Any] | None:
        """Buffer ``record`` for ``dest``; return the batch if now full."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} outside [0, {self.size})")
        buf = self._buffers[dest]
        buf.append(record)
        self.record_count += 1
        if len(buf) >= self.capacity:
            return self.flush(dest)
        return None

    def flush(self, dest: int) -> list[Any]:
        """Drain and return ``dest``'s buffer (possibly empty)."""
        batch, self._buffers[dest] = self._buffers[dest], []
        if batch:
            self.flush_count += 1
        return batch

    def flush_all(self) -> Iterator[tuple[int, list[Any]]]:
        """Drain every non-empty buffer, yielding ``(dest, batch)`` pairs."""
        for dest in range(self.size):
            if self._buffers[dest]:
                yield dest, self.flush(dest)

    def pending(self, dest: int | None = None) -> int:
        """Records currently buffered (for one destination or in total)."""
        if dest is None:
            return sum(len(b) for b in self._buffers)
        return len(self._buffers[dest])

    def needs_group_flush(self) -> bool:
        """True when the policy demands a flush after each received group."""
        return self.policy == FLUSH_EVERY_GROUP

    def __repr__(self) -> str:
        return (
            f"MessageBuffers(size={self.size}, capacity={self.capacity}, "
            f"policy={self.policy!r}, pending={self.pending()})"
        )
