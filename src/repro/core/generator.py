"""Top-level generation facade — the one-call public API.

:func:`generate` wraps partition construction, RNG stream management, engine
selection, and result packaging:

.. code-block:: python

    from repro import generate

    result = generate(n=100_000, x=4, ranks=16, scheme="rrp", seed=42)
    result.validate().raise_if_failed()
    print(result.edges, result.simulated_time, result.imbalance)

Engines:

``"bsp"`` (default)
    the production bulk-synchronous implementation (Algorithms 3.1/3.2 with
    the paper's message buffering taken to its superstep conclusion);
``"event"``
    the literal per-message pseudocode on the event-driven simulator (small
    ``n`` — used for demonstrations and cross-validation);
``"sequential"``
    the sequential copy model (``ranks`` must be 1), the ``T_s`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.parallel_pa import run_parallel_pa_x1
from repro.core.parallel_pa_general import run_parallel_pa
from repro.core.partitioning import Partition, make_partition
from repro.graph.degree import degrees_from_edges
from repro.graph.edgelist import EdgeList
from repro.graph.validation import ValidationReport, validate_pa_graph
from repro.mpsim.costmodel import CostModel

__all__ = ["GenerationResult", "generate"]


@dataclass
class GenerationResult:
    """Everything a run produced: the graph plus execution telemetry."""

    edges: EdgeList
    n: int
    x: int
    p: float
    scheme: str
    ranks: int
    engine: str
    seed: int | None
    #: simulated parallel runtime (seconds under the cost model); equals the
    #: sequential compute estimate when ``ranks == 1``/sequential engine
    simulated_time: float
    #: BSP supersteps (0 for sequential)
    supersteps: int
    #: per-rank outgoing request-message counts (Figure 7b)
    requests_sent: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: per-rank incoming request-message counts (Figure 7c)
    requests_received: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: per-rank node counts (Figure 7a)
    nodes_per_rank: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: engine statistics object, when a parallel engine ran
    world_stats: Any = None

    @property
    def total_load_per_rank(self) -> np.ndarray:
        """The paper's total-load metric per rank (Figure 7d)."""
        return self.nodes_per_rank + self.requests_sent + self.requests_received

    @property
    def imbalance(self) -> float:
        """max/mean of the total load (1.0 = perfect balance)."""
        loads = self.total_load_per_rank
        if loads.size == 0 or loads.mean() == 0:
            return 1.0
        return float(loads.max() / loads.mean())

    def degrees(self) -> np.ndarray:
        return degrees_from_edges(self.edges, self.n)

    def validate(self) -> ValidationReport:
        return validate_pa_graph(self.edges, self.n, self.x)


def generate(
    n: int,
    x: int = 1,
    p: float = 0.5,
    ranks: int = 1,
    scheme: str = "rrp",
    seed: int | None = None,
    engine: str = "bsp",
    partition: Partition | None = None,
    cost_model: CostModel | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 1,
) -> GenerationResult:
    """Generate a preferential-attachment network.

    Parameters
    ----------
    n:
        Number of nodes.
    x:
        Edges contributed by each new node.
    p:
        Copy-model direct-attachment probability (``0.5`` = exact BA).
    ranks:
        Number of simulated processors.
    scheme:
        Partitioning scheme: ``"ucp"``, ``"lcp"``, or ``"rrp"``.
    seed:
        Root seed; identical inputs reproduce the identical graph.
    engine:
        ``"bsp"``, ``"event"``, or ``"sequential"`` (see module docstring).
    partition:
        Pre-built partition (overrides ``ranks``/``scheme``).
    cost_model:
        Virtual-time charges for the simulated cluster.
    checkpoint_path, checkpoint_every:
        When ``checkpoint_path`` is set (BSP engine only), the run snapshots
        its complete state there every ``checkpoint_every`` supersteps;
        crash recovery via :func:`repro.mpsim.checkpoint.resume` is
        bit-exact.

    Examples
    --------
    >>> r = generate(2000, x=3, ranks=8, seed=1)
    >>> r.validate().ok
    True
    >>> len(r.edges)
    5994
    """
    if engine == "sequential":
        if ranks != 1:
            raise ValueError("sequential engine requires ranks=1")
        from repro.seq.copy_model import copy_model

        edges = copy_model(n, x=x, p=p, seed=seed)
        cost = cost_model or CostModel()
        return GenerationResult(
            edges=edges,
            n=n,
            x=x,
            p=p,
            scheme="none",
            ranks=1,
            engine=engine,
            seed=seed,
            simulated_time=cost.compute_time(n, work_items=len(edges)),
            supersteps=0,
            nodes_per_rank=np.array([n], dtype=np.int64),
            requests_sent=np.zeros(1, np.int64),
            requests_received=np.zeros(1, np.int64),
        )

    part = partition if partition is not None else make_partition(scheme, n, ranks)
    if part.n != n:
        raise ValueError(f"partition covers n={part.n}, requested n={n}")

    if engine == "event":
        from repro.core.event_driven import run_event_driven_pa

        edges, sim = run_event_driven_pa(
            n, x, part, p=p, seed=seed, cost_model=cost_model
        )
        return GenerationResult(
            edges=edges,
            n=n,
            x=x,
            p=p,
            scheme=part.scheme,
            ranks=part.P,
            engine=engine,
            seed=seed,
            simulated_time=sim.makespan,
            supersteps=0,
            nodes_per_rank=part.sizes(),
            requests_sent=np.zeros(part.P, np.int64),
            requests_received=np.zeros(part.P, np.int64),
            world_stats=sim.stats,
        )

    if engine != "bsp":
        raise ValueError(f"unknown engine {engine!r}; choose bsp, event, or sequential")

    checkpointer = None
    if checkpoint_path is not None:
        from repro.mpsim.checkpoint import Checkpointer

        checkpointer = Checkpointer(checkpoint_path, every=checkpoint_every)

    if x == 1:
        edges, eng, programs = run_parallel_pa_x1(
            n, part, p=p, seed=seed, cost_model=cost_model, checkpointer=checkpointer
        )
    else:
        edges, eng, programs = run_parallel_pa(
            n, x, part, p=p, seed=seed, cost_model=cost_model, checkpointer=checkpointer
        )
    return GenerationResult(
        edges=edges,
        n=n,
        x=x,
        p=p,
        scheme=part.scheme,
        ranks=part.P,
        engine=engine,
        seed=seed,
        simulated_time=eng.simulated_time,
        supersteps=eng.supersteps,
        requests_sent=np.array([pr.requests_sent for pr in programs], dtype=np.int64),
        requests_received=np.array(
            [pr.requests_received for pr in programs], dtype=np.int64
        ),
        nodes_per_rank=part.sizes(),
        world_stats=eng.stats,
    )
