"""Top-level generation facade — the one-call public API.

:func:`generate` wraps partition construction, RNG stream management, engine
selection, and result packaging:

.. code-block:: python

    from repro import generate

    result = generate(n=100_000, x=4, ranks=16, scheme="rrp", seed=42)
    result.validate().raise_if_failed()
    print(result.edges, result.simulated_time, result.imbalance)

Engines:

``"bsp"`` (default)
    the production bulk-synchronous implementation (Algorithms 3.1/3.2 with
    the paper's message buffering taken to its superstep conclusion);
``"event"``
    the literal per-message pseudocode on the event-driven simulator (small
    ``n`` — used for demonstrations and cross-validation);
``"sequential"``
    the sequential copy model (``ranks`` must be 1), the ``T_s`` baseline;
``"mp"``
    the same rank programs in real OS processes
    (:class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine`); pick the
    superstep transport with ``exchange`` (``"shm"``, ``"pickle"``, or the
    peer-to-peer ``"p2p"``) and pass a live
    :class:`~repro.mpsim.pool.WorkerPool` as ``pool`` to reuse forked
    workers across repeated calls.

Orthogonally to the engine, ``generator="commfree"`` swaps the copy-model
message pipeline for the communication-free family
(:mod:`repro.core.commfree`): ranks recompute foreign endpoints from
counter-based randomness instead of requesting them, so the ``mp`` surface
degenerates to embarrassingly-parallel slice workers with no exchange at
all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.parallel_pa import run_parallel_pa_x1
from repro.core.parallel_pa_general import run_parallel_pa
from repro.core.partitioning import Partition, make_partition
from repro.graph.degree import degrees_from_edges
from repro.graph.edgelist import EdgeList
from repro.graph.validation import ValidationReport, validate_pa_graph
from repro.mpsim.costmodel import CostModel
from repro.telemetry.collector import resolve

__all__ = ["GenerationResult", "generate"]


@dataclass
class GenerationResult:
    """Everything a run produced: the graph plus execution telemetry."""

    edges: EdgeList
    n: int
    x: int
    p: float
    scheme: str
    ranks: int
    engine: str
    seed: int | None
    #: simulated parallel runtime (seconds under the cost model); equals the
    #: sequential compute estimate when ``ranks == 1``/sequential engine
    simulated_time: float
    #: BSP supersteps (0 for sequential)
    supersteps: int
    #: per-rank outgoing request-message counts (Figure 7b)
    requests_sent: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: per-rank incoming request-message counts (Figure 7c)
    requests_received: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: per-rank node counts (Figure 7a)
    nodes_per_rank: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: engine statistics object, when a parallel engine ran
    world_stats: Any = None
    #: supervised crash-recovery events
    #: (:class:`repro.mpsim.supervisor.RecoveryEvent`) applied during the
    #: run — empty unless faults were injected or a recovery happened
    recoveries: list = field(default_factory=list)
    #: the :class:`repro.mpsim.faults.FaultPlan` the run executed under
    #: (``None`` for fault-free runs); its ``log`` lists every applied fault
    fault_plan: Any = None
    #: the :class:`repro.dyngraph.evolve.EvolutionResult` when the run was
    #: asked to churn the generated graph (``generate(..., evolve=schedule)``)
    evolution: Any = None

    @property
    def total_load_per_rank(self) -> np.ndarray:
        """The paper's total-load metric per rank (Figure 7d)."""
        return self.nodes_per_rank + self.requests_sent + self.requests_received

    @property
    def imbalance(self) -> float:
        """max/mean of the total load (1.0 = perfect balance)."""
        loads = self.total_load_per_rank
        if loads.size == 0 or loads.mean() == 0:
            return 1.0
        return float(loads.max() / loads.mean())

    def degrees(self) -> np.ndarray:
        return degrees_from_edges(self.edges, self.n)

    def validate(self) -> ValidationReport:
        return validate_pa_graph(self.edges, self.n, self.x)


def generate(
    n: int,
    x: int = 1,
    p: float = 0.5,
    ranks: int = 1,
    scheme: str = "rrp",
    seed: int | None = None,
    engine: str = "bsp",
    exchange: str = "shm",
    pool: Any = None,
    partition: Partition | None = None,
    cost_model: CostModel | None = None,
    checkpoint_path: str | None = None,
    checkpoint_every: int = 1,
    checkpoint_dir: str | None = None,
    checkpoint_keep: int = 3,
    fault_plan: Any = None,
    fault_seed: int | None = None,
    max_retries: int = 3,
    barrier_timeout: float = 120.0,
    liveness_poll: float = 0.25,
    telemetry: Any = None,
    schedule: Any = None,
    generator: str = "copy",
    out_of_core: str | None = None,
    spill_budget_bytes: int = 64 << 20,
    evolve: Any = None,
) -> GenerationResult:
    """Generate a preferential-attachment network.

    Parameters
    ----------
    n:
        Number of nodes.
    x:
        Edges contributed by each new node.
    p:
        Copy-model direct-attachment probability (``0.5`` = exact BA).
    ranks:
        Number of simulated processors.
    scheme:
        Partitioning scheme: ``"ucp"``, ``"lcp"``, or ``"rrp"``.
    generator:
        ``"copy"`` (default) — the paper's copy-model pipeline, in which
        ranks resolve dangling attachments through message exchange;
        ``"commfree"`` — the communication-free family
        (:mod:`repro.core.commfree`): every draw is a pure function of
        ``(seed, slot)``, ranks recompute foreign endpoints locally, and
        no messages exist to exchange.  Supports ``engine`` ``"sequential"``,
        ``"bsp"`` (in-process slices), and ``"mp"`` (one forked worker per
        slice); fault injection, checkpointing, schedules, pools, and
        explicit partitions are meaningless without distributed state and
        are rejected.  Same attachment statistics as the copy model, but a
        *different* graph at equal seeds (different draw protocol).
    seed:
        Root seed; identical inputs reproduce the identical graph.
    engine:
        ``"bsp"``, ``"event"``, ``"sequential"``, or ``"mp"`` (see module
        docstring).
    exchange:
        Superstep transport for ``engine="mp"``: ``"shm"`` (default),
        ``"pickle"``, or ``"p2p"``.  Ignored by the other engines.
    pool:
        Optional live :class:`~repro.mpsim.pool.WorkerPool` to run an
        ``engine="mp"`` generation on (its workers are reused instead of
        forking a fresh fleet); the pool's ``size`` must match the
        partition's rank count.
    partition:
        Pre-built partition (overrides ``ranks``/``scheme``).
    cost_model:
        Virtual-time charges for the simulated cluster.
    checkpoint_path, checkpoint_every:
        When ``checkpoint_path`` is set (``bsp`` and ``mp`` engines), the
        run snapshots its complete state there every ``checkpoint_every``
        supersteps; crash recovery via
        :func:`repro.mpsim.checkpoint.resume` is bit-exact.  On ``mp``,
        workers write per-rank shards and the coordinator commits each
        complete cut as an ordinary manifest, so the snapshot is loadable by
        either engine.  Not supported with ``pool=`` (pooled workers
        outlive any single job's recovery lifecycle) or ``engine="event"``.
    checkpoint_dir, checkpoint_keep:
        When ``checkpoint_dir`` is set (``bsp`` and ``mp`` engines),
        snapshots rotate through ``checkpoint_keep`` generations under that
        directory and the run executes under a
        :class:`repro.mpsim.supervisor.Supervisor`: rank crashes and
        deadlocks — on ``mp``, real ``SIGKILL``-ed worker processes — are
        recovered automatically (up to ``max_retries`` times) and recorded
        in the result's ``recoveries``.
    fault_plan, fault_seed:
        Inject faults: either an explicit
        :class:`repro.mpsim.faults.FaultPlan`, or a seed from which a
        default chaos plan (one scheduled rank crash) is derived.  With a
        supervised run (``checkpoint_dir``) the output is still
        bit-identical to the fault-free graph; without supervision failures
        propagate to the caller.
    max_retries:
        Recovery budget for supervised runs.
    barrier_timeout:
        Last-resort wall-clock bound (seconds) on the ``engine="mp"``
        ``exchange="p2p"`` barrier.  Worker deaths are detected by the
        coordinator within one liveness poll and abort the barrier, so this
        only matters for organically wedged (not dead) ranks.
    liveness_poll:
        ``engine="mp"`` only: how often (seconds) the coordinator wakes from
        waiting on worker pipes to check for silent worker deaths.  Lower
        values detect ``SIGKILL``-ed workers faster at the cost of more
        wakeups; the default (0.25 s) matches prior releases.
    schedule:
        Optional :class:`repro.schedsim.Schedule` permuting message delivery
        and rank activation order (in-process ``bsp``/``event`` engines
        only — the real-process backend's interleavings are the OS's to
        make).  Used by ``repro-pa explore``; see
        ``docs/schedule_exploration.md``.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; the run's spans and
        metrics (across every engine, including mp worker processes) land on
        it for export — ``telemetry.to_chrome_trace("run.trace.json")``,
        ``telemetry.to_prometheus()`` — see ``docs/observability.md``.
        Observation-only: the generated graph is bit-identical with
        telemetry on or off.  Not supported together with ``pool=`` —
        construct the :class:`~repro.mpsim.pool.WorkerPool` with
        ``telemetry=`` instead (the ring must exist before its workers
        fork).
    out_of_core, spill_budget_bytes:
        When ``out_of_core`` names a directory, the run spills its edges to
        disk instead of accumulating them in RAM: workers/ranks emit
        sha256-sealed shards under per-rank directories, the coordinator
        assembles manifests (never arrays), and ``result.edges`` is a
        :class:`repro.core.spill.SpillEdgeList` whose in-RAM write buffer
        is bounded by ``spill_budget_bytes`` (default 64 MiB).  Supported on
        the ``sequential`` (``x=1`` streaming emitters), ``bsp``, and
        ``mp`` engines for both generators; output is **bit-identical** to
        the in-RAM path at every rank count.  See ``docs/performance.md``
        (out-of-core section) for the format and the RSS budget semantics.
    evolve:
        Optional :class:`repro.dyngraph.ChurnSchedule`: after generation
        the graph churns under it (on the same engine and rank count) and
        the :class:`repro.dyngraph.evolve.EvolutionResult` lands on the
        result's ``evolution`` attribute; ``result.edges`` stays the
        static base graph.  Supported on the ``sequential``, ``bsp``, and
        ``mp`` engines; incompatible with ``out_of_core`` (the evolving
        edge arrays live in RAM).  See ``docs/dynamic_networks.md``.

    Examples
    --------
    >>> r = generate(2000, x=3, ranks=8, seed=1)
    >>> r.validate().ok
    True
    >>> len(r.edges)
    5994
    """
    plan = fault_plan
    if plan is None and fault_seed is not None:
        from repro.mpsim.faults import FaultPlan

        plan = FaultPlan.chaos(fault_seed, ranks, crashes=1)

    if generator not in ("copy", "commfree"):
        raise ValueError(
            f"unknown generator {generator!r}; choose 'copy' or 'commfree'"
        )
    if evolve is not None:
        if engine not in ("sequential", "bsp", "mp"):
            raise ValueError(
                "evolve= churns the generated graph on the sequential, bsp, "
                f"or mp engine; engine={engine!r} cannot run the evolution"
            )
        if out_of_core is not None:
            raise ValueError(
                "evolve= materialises the evolving edge arrays in RAM; "
                "drop out_of_core= (or evolve the spilled graph separately "
                "via repro.dyngraph.evolve)"
            )
    if out_of_core is not None:
        if spill_budget_bytes < 1:
            raise ValueError(
                f"spill_budget_bytes must be >= 1, got {spill_budget_bytes}"
            )
        if engine == "event":
            raise ValueError(
                "out_of_core= bounds edge-storage memory; the event-driven "
                "simulator is a small-n demonstrator whose edges trivially "
                "fit in RAM — use engine='bsp' or 'mp'"
            )
        if pool is not None:
            raise ValueError(
                "out_of_core= redirects worker results into a per-run spill "
                "directory; pooled workers outlive the run and its "
                "directory — drop pool="
            )
        if checkpoint_path is not None or checkpoint_dir is not None:
            raise ValueError(
                "out_of_core= spills edges, checkpointing spills program "
                "state; combining the two shard lifecycles is not supported "
                "yet — drop checkpoint_path/checkpoint_dir"
            )
    if generator == "commfree":
        if plan is not None:
            raise ValueError(
                "fault injection needs distributed state to damage; a "
                "commfree slice is a pure function of (seed, range) and "
                "rerunning it *is* the recovery — drop fault_plan/fault_seed"
            )
        if checkpoint_path is not None or checkpoint_dir is not None:
            raise ValueError(
                "checkpointing needs superstep state to snapshot; commfree "
                "has none (any slice is recomputable from the seed alone) — "
                "drop checkpoint_path/checkpoint_dir"
            )
        if schedule is not None:
            raise ValueError(
                "schedule= permutes message delivery order; commfree "
                "exchanges no messages — drop schedule="
            )
        if pool is not None:
            raise ValueError(
                "pool= runs copy-model rank programs on pooled workers; "
                "commfree forks its own trivially-parallel slice workers — "
                "drop pool="
            )
        if partition is not None:
            raise ValueError(
                "commfree always owns contiguous node slices (that is what "
                "makes rank-order concatenation reproduce the sequential "
                "edge order) — drop partition="
            )
        return _attach_evolution(
            _generate_commfree(
                n, x, p, ranks, seed, engine, cost_model, telemetry,
                out_of_core=out_of_core, spill_budget_bytes=spill_budget_bytes,
            ),
            evolve, engine, ranks, exchange, cost_model, telemetry,
        )

    if schedule is not None:
        if engine not in ("bsp", "event"):
            raise ValueError(
                "schedule= permutes the in-process engines' choice points; "
                f"engine={engine!r} does not expose them (use 'bsp' or 'event')"
            )
        if checkpoint_dir is not None:
            raise ValueError(
                "schedule= cannot compose with supervised recovery: a "
                "Schedule is single-use and a recovered re-run would replay "
                "a half-consumed decision stream"
            )

    tel = resolve(telemetry)
    if tel.enabled:
        if pool is not None:
            raise ValueError(
                "telemetry= cannot attach to a running WorkerPool: the "
                "telemetry ring must exist before the workers fork; build "
                "the pool with WorkerPool(..., telemetry=tel) instead"
            )
        tel.meta.update(
            engine=engine, n=n, x=x, p=p, scheme=scheme, ranks=ranks, seed=seed
        )

    if engine == "sequential":
        if ranks != 1:
            raise ValueError("sequential engine requires ranks=1")
        if plan is not None:
            raise ValueError("fault injection requires a parallel engine")
        if checkpoint_path is not None or checkpoint_dir is not None:
            raise ValueError(
                "checkpointing requires a superstep engine (engine='bsp' or "
                "'mp'); the sequential model runs in one shot"
            )
        from repro.seq.copy_model import copy_model

        if out_of_core is not None:
            if x != 1:
                raise ValueError(
                    "sequential out-of-core needs a streaming emitter and "
                    "only the x=1 copy stream has one — use engine='bsp' or "
                    "'mp' (whose rank programs spill their results), or x=1"
                )
            from repro.core.streaming import stream_copy_model_x1

            with tel.span("copy_stream.spill", cat="compute", tid=0, n=n):
                edges = _spill_stream(
                    out_of_core, spill_budget_bytes,
                    stream_copy_model_x1(n, p=p, seed=seed),
                )
        else:
            with tel.span("copy_model", cat="compute", tid=0, n=n, x=x):
                edges = copy_model(n, x=x, p=p, seed=seed)
        cost = cost_model or CostModel()
        return _attach_evolution(
            GenerationResult(
                edges=edges,
                n=n,
                x=x,
                p=p,
                scheme="none",
                ranks=1,
                engine=engine,
                seed=seed,
                simulated_time=cost.compute_time(n, work_items=len(edges)),
                supersteps=0,
                nodes_per_rank=np.array([n], dtype=np.int64),
                requests_sent=np.zeros(1, np.int64),
                requests_received=np.zeros(1, np.int64),
            ),
            evolve, engine, 1, exchange, cost_model, telemetry,
        )

    part = partition if partition is not None else make_partition(scheme, n, ranks)
    if part.n != n:
        raise ValueError(f"partition covers n={part.n}, requested n={n}")

    if engine == "event":
        if checkpoint_path is not None or checkpoint_dir is not None:
            raise ValueError(
                "checkpointing requires engine='bsp' or engine='mp'; the "
                "event-driven simulator has no superstep boundaries to "
                "snapshot at"
            )
        from repro.core.event_driven import run_event_driven_pa

        with tel.span("event.run", cat="run", tid=-1, n=n, x=x) as sp:
            edges, sim = run_event_driven_pa(
                n, x, part, p=p, seed=seed, cost_model=cost_model,
                fault_injector=plan, schedule=schedule,
            )
            sp.note(virtual_total_s=sim.makespan)
        return GenerationResult(
            edges=edges,
            n=n,
            x=x,
            p=p,
            scheme=part.scheme,
            ranks=part.P,
            engine=engine,
            seed=seed,
            simulated_time=sim.makespan,
            supersteps=0,
            nodes_per_rank=part.sizes(),
            requests_sent=np.zeros(part.P, np.int64),
            requests_received=np.zeros(part.P, np.int64),
            world_stats=sim.stats,
            fault_plan=plan,
        )

    if engine == "mp":
        return _attach_evolution(
            _generate_mp(
                n, x, p, part, seed, cost_model, exchange, pool, plan,
                checkpoint_path, checkpoint_every, checkpoint_dir,
                checkpoint_keep, max_retries, barrier_timeout, telemetry,
                liveness_poll, out_of_core, spill_budget_bytes,
            ),
            evolve, engine, part.P, exchange, cost_model, telemetry,
        )

    if engine != "bsp":
        raise ValueError(
            f"unknown engine {engine!r}; choose bsp, event, sequential, or mp"
        )

    checkpointer = None
    if checkpoint_dir is not None:
        from pathlib import Path

        from repro.mpsim.checkpoint import Checkpointer

        checkpointer = Checkpointer(
            Path(checkpoint_dir) / "run.ckpt", every=checkpoint_every,
            keep=checkpoint_keep, telemetry=telemetry,
        )
    elif checkpoint_path is not None:
        from repro.mpsim.checkpoint import Checkpointer

        checkpointer = Checkpointer(
            checkpoint_path, every=checkpoint_every, telemetry=telemetry
        )

    recoveries: list = []
    if checkpoint_dir is not None:
        # rotated checkpoints => run under the supervisor: crashes and
        # deadlocks are recovered (bit-identically) instead of propagating
        eng, programs = _run_supervised(
            n, x, p, part, seed, cost_model, checkpointer, plan, max_retries,
            telemetry,
        )
        edges = EdgeList(capacity=max(n * max(x, 1) - 1, 1))
        for prog in programs:
            u, v = prog.result()
            edges.append_arrays(u, v)
        recoveries = list(eng.stats.recoveries)
    elif out_of_core is not None:
        edges, eng, programs = _run_bsp_oocore(
            n, x, p, part, seed, cost_model, plan, telemetry, schedule,
            out_of_core, spill_budget_bytes,
        )
    elif x == 1:
        edges, eng, programs = run_parallel_pa_x1(
            n, part, p=p, seed=seed, cost_model=cost_model,
            checkpointer=checkpointer, fault_plan=plan, telemetry=telemetry,
            schedule=schedule,
        )
    else:
        edges, eng, programs = run_parallel_pa(
            n, x, part, p=p, seed=seed, cost_model=cost_model,
            checkpointer=checkpointer, fault_plan=plan, telemetry=telemetry,
            schedule=schedule,
        )
    return _attach_evolution(
        GenerationResult(
            edges=edges,
            n=n,
            x=x,
            p=p,
            scheme=part.scheme,
            ranks=part.P,
            engine=engine,
            seed=seed,
            simulated_time=eng.simulated_time,
            supersteps=eng.supersteps,
            requests_sent=np.array(
                [pr.requests_sent for pr in programs], dtype=np.int64
            ),
            requests_received=np.array(
                [pr.requests_received for pr in programs], dtype=np.int64
            ),
            nodes_per_rank=part.sizes(),
            world_stats=eng.stats,
            recoveries=recoveries,
            fault_plan=plan,
        ),
        evolve, engine, part.P, exchange, cost_model, telemetry,
    )


def _attach_evolution(
    result: GenerationResult, schedule, engine, ranks, exchange, cost_model,
    telemetry,
) -> GenerationResult:
    """Churn the generated graph when ``generate(..., evolve=)`` asked for it.

    The evolution runs on the same engine and rank count as the generation
    (the commfree mp surface exchanges nothing, but its evolution uses the
    regular mp backend).  ``result.edges`` keeps the static base graph; the
    evolved state and per-epoch deltas land on ``result.evolution``.
    """
    if schedule is None:
        return result
    from repro.dyngraph.evolve import evolve as _evolve

    result.evolution = _evolve(
        result.edges, result.n, schedule, engine=engine, ranks=ranks,
        exchange=exchange, cost_model=cost_model, telemetry=telemetry,
    )
    return result


def _spill_chunk_edges(budget_bytes: int) -> int:
    """Sealed-shard chunk size honouring the write-buffer budget.

    A shard transits RAM twice while being sealed (the pending batches plus
    their concatenation), so chunks are budget/32 edges — two copies of a
    chunk stay within ``budget_bytes``.
    """
    return max(int(budget_bytes) // 32, 1024)


def _spill_stream(out_dir, budget_bytes, blocks):
    """Drain a streaming emitter into sealed shards; return the spilled list."""
    from pathlib import Path

    from repro.core import spill

    shards = Path(out_dir) / "shards"
    spill.write_edge_shards(
        spill.rank_shard_dir(shards, 0, 1), blocks,
        chunk_edges=_spill_chunk_edges(budget_bytes),
    )
    edges = spill.SpillEdgeList(Path(out_dir) / "edges", budget_bytes=budget_bytes)
    return spill.assemble_shards(shards, 1, edges)


def _run_bsp_oocore(
    n, x, p, part, seed, cost_model, plan, telemetry, schedule, out_dir,
    budget_bytes,
):
    """The BSP generation with spilled wait queues and spilled results.

    Runs the same rank programs as :func:`run_parallel_pa_x1` /
    :func:`run_parallel_pa` (so the graph is bit-identical), but their
    park/pend queues are memmap-backed and each rank's result is chunked
    into sealed shards instead of concatenated in RAM.
    """
    from pathlib import Path

    from repro.core import spill
    from repro.core.parallel_pa import PAx1RankProgram
    from repro.core.parallel_pa_general import PAGeneralRankProgram
    from repro.mpsim.bsp import BSPEngine
    from repro.rng import StreamFactory

    if x > 1 and n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    out_dir = Path(out_dir)
    qf = spill.SpillQueueFactory(out_dir / "queues")
    factory = StreamFactory(seed)
    if x == 1:
        programs = [
            PAx1RankProgram(r, part, p, factory.stream(r), queue_factory=qf)
            for r in range(part.P)
        ]
    else:
        programs = [
            PAGeneralRankProgram(
                r, part, x, p, factory.stream(r), queue_factory=qf
            )
            for r in range(part.P)
        ]
    engine = BSPEngine(
        part.P, cost_model=cost_model, telemetry=telemetry
    )
    engine.run(programs, fault_plan=plan, schedule=schedule)
    chunk = _spill_chunk_edges(budget_bytes)
    shards = out_dir / "shards"
    for r, prog in enumerate(programs):
        u, v = prog.result()
        spill.write_edge_shards(
            spill.rank_shard_dir(shards, r, part.P), [(u, v)], chunk_edges=chunk
        )
    edges = spill.SpillEdgeList(out_dir / "edges", budget_bytes=budget_bytes)
    spill.assemble_shards(shards, part.P, edges)
    return edges, engine, programs


def _generate_mp(
    n, x, p, part, seed, cost_model, exchange, pool, plan,
    checkpoint_path=None, checkpoint_every=1, checkpoint_dir=None,
    checkpoint_keep=3, max_retries=3, barrier_timeout=120.0, telemetry=None,
    liveness_poll=0.25, out_of_core=None, spill_budget_bytes=64 << 20,
):
    """Run the generation on the real-process backend (or a live pool).

    Mirrors the BSP branch's checkpoint ladder: ``checkpoint_dir`` runs the
    one-shot engine under a :class:`~repro.mpsim.supervisor.Supervisor`
    (killed workers are respawned and resumed from the newest valid
    snapshot, bit-identically), ``checkpoint_path`` snapshots without
    supervision, and a :class:`~repro.mpsim.pool.WorkerPool` supports
    neither — pooled workers outlive any single job's recovery lifecycle.
    """
    from repro.core.parallel_pa import PAx1RankProgram
    from repro.core.parallel_pa_general import PAGeneralRankProgram
    from repro.mpsim.mp_backend import MultiprocessingBSPEngine
    from repro.rng import StreamFactory

    if x > 1 and n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")

    spill_dir = None
    if out_of_core is not None:
        from pathlib import Path

        spill_dir = Path(out_of_core)

    def program_factory():
        factory = StreamFactory(seed)
        qf = None
        if spill_dir is not None:
            from repro.core.spill import SpillQueueFactory

            qf = SpillQueueFactory(spill_dir / "queues")
        if x == 1:
            progs = [
                PAx1RankProgram(r, part, p, factory.stream(r), queue_factory=qf)
                for r in range(part.P)
            ]
        else:
            progs = [
                PAGeneralRankProgram(
                    r, part, x, p, factory.stream(r), queue_factory=qf
                )
                for r in range(part.P)
            ]
        if spill_dir is not None:
            # each worker seals its own rank's shards at result() time; the
            # coordinator then collects a small manifest over the pipe
            # instead of the rank's edge arrays
            from repro.core.spill import SpillResultProgram, rank_shard_dir

            chunk = _spill_chunk_edges(spill_budget_bytes)
            progs = [
                SpillResultProgram(
                    prog, rank_shard_dir(spill_dir / "shards", r, part.P),
                    chunk_edges=chunk,
                )
                for r, prog in enumerate(progs)
            ]
        return progs

    if pool is not None and (
        checkpoint_path is not None or checkpoint_dir is not None
    ):
        raise ValueError(
            "checkpointing is not supported on a WorkerPool: pooled workers "
            "outlive any single job's recovery lifecycle; drop pool= so "
            "engine='mp' forks one-shot workers that can snapshot and resume"
        )

    recoveries: list = []
    if checkpoint_dir is not None:
        from pathlib import Path

        from repro.mpsim.checkpoint import Checkpointer
        from repro.mpsim.supervisor import Supervisor

        checkpointer = Checkpointer(
            Path(checkpoint_dir) / "run.ckpt",
            every=checkpoint_every,
            keep=checkpoint_keep,
            telemetry=telemetry,
        )
        supervisor = Supervisor(
            lambda: MultiprocessingBSPEngine(
                part.P, exchange=exchange, cost_model=cost_model,
                barrier_timeout=barrier_timeout, telemetry=telemetry,
                liveness_poll=liveness_poll,
            ),
            program_factory,
            checkpointer,
            max_retries=max_retries,
            telemetry=telemetry,
        )
        eng, _ = supervisor.run(fault_plan=plan)
        recoveries = list(eng.stats.recoveries)
    elif pool is not None:
        if pool.size != part.P:
            raise ValueError(
                f"pool has {pool.size} workers, partition needs {part.P}"
            )
        eng = pool
        eng.run(program_factory(), fault_plan=plan)
    else:
        checkpointer = None
        if checkpoint_path is not None:
            from repro.mpsim.checkpoint import Checkpointer

            checkpointer = Checkpointer(
                checkpoint_path, every=checkpoint_every, telemetry=telemetry
            )
        eng = MultiprocessingBSPEngine(
            part.P, exchange=exchange, cost_model=cost_model,
            barrier_timeout=barrier_timeout, telemetry=telemetry,
            liveness_poll=liveness_poll,
        )
        eng.run(program_factory(), fault_plan=plan, checkpointer=checkpointer)

    if spill_dir is not None:
        from repro.core.spill import SpillEdgeList, assemble_shards

        edges = SpillEdgeList(
            spill_dir / "edges", budget_bytes=spill_budget_bytes
        )
        assemble_shards(spill_dir / "shards", part.P, edges)
    else:
        edges = EdgeList(capacity=max(n * max(x, 1) - 1, 1))
        for pair in eng.results:
            edges.append_arrays(pair[0], pair[1])
    return GenerationResult(
        edges=edges,
        n=n,
        x=x,
        p=p,
        scheme=part.scheme,
        ranks=part.P,
        engine="mp",
        seed=seed,
        simulated_time=eng.simulated_time,
        supersteps=eng.supersteps,
        requests_sent=np.array(
            [t.get("requests_sent", 0) for t in eng.telemetry], dtype=np.int64
        ),
        requests_received=np.array(
            [t.get("requests_received", 0) for t in eng.telemetry], dtype=np.int64
        ),
        nodes_per_rank=part.sizes(),
        world_stats=eng.stats,
        recoveries=recoveries,
        fault_plan=plan,
    )


def _generate_commfree(
    n, x, p, ranks, seed, engine, cost_model, telemetry,
    out_of_core=None, spill_budget_bytes=64 << 20,
):
    """Run the communication-free generator on the requested surface.

    All three surfaces produce bit-identical edge lists (the point of
    counter-based randomness); they differ only in where the slices are
    computed.  The simulated time charges pure compute divided by the rank
    count — perfect scaling, because there is literally no communication
    term to add.  With ``out_of_core`` every surface emits sealed shards
    and assembles a :class:`repro.core.spill.SpillEdgeList` — still bit for
    bit the in-RAM graph.
    """
    from repro.core.commfree import (
        commfree,
        commfree_edge_slice,
        commfree_mp,
        commfree_slices,
    )

    tel = resolve(telemetry)
    if tel.enabled:
        tel.meta.update(
            engine=engine, generator="commfree", n=n, x=x, p=p, ranks=ranks,
            seed=seed,
        )
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    slices = commfree_slices(n, ranks)
    sizes = np.array([hi - lo for lo, hi in slices], dtype=np.int64)

    if engine == "sequential":
        if ranks != 1:
            raise ValueError("sequential engine requires ranks=1")
        if out_of_core is not None:
            if x != 1:
                raise ValueError(
                    "sequential out-of-core needs a streaming emitter and "
                    "only the x=1 commfree stream has one — use "
                    "engine='bsp' or 'mp' (slices spill shard by shard), "
                    "or x=1"
                )
            from repro.core.commfree import stream_commfree_x1

            with tel.span("commfree.stream.spill", cat="compute", tid=0, n=n):
                edges = _spill_stream(
                    out_of_core, spill_budget_bytes,
                    stream_commfree_x1(n, p=p, seed=seed),
                )
        else:
            with tel.span("commfree", cat="compute", tid=0, n=n, x=x):
                edges = commfree(n, x=x, p=p, seed=seed)
    elif engine == "bsp":
        # in-process slice-at-a-time evaluation: same work the mp workers
        # would do, on one core — supersteps do not exist here
        if out_of_core is not None:
            from pathlib import Path

            from repro.core import spill

            out_dir = Path(out_of_core)
            chunk = _spill_chunk_edges(spill_budget_bytes)
            with tel.span("commfree.slices", cat="compute", tid=0, n=n, x=x):
                for r, (lo, hi) in enumerate(slices):
                    with tel.span("commfree.slice", cat="compute", tid=r,
                                  lo=lo, hi=hi):
                        u, v = commfree_edge_slice(
                            n, lo, hi, x=x, p=p, seed=seed
                        )
                        spill.write_edge_shards(
                            spill.rank_shard_dir(
                                out_dir / "shards", r, ranks
                            ),
                            [(u, v)], chunk_edges=chunk,
                        )
            edges = spill.SpillEdgeList(
                out_dir / "edges", budget_bytes=spill_budget_bytes
            )
            spill.assemble_shards(out_dir / "shards", ranks, edges)
        else:
            m = x * (x - 1) // 2 + (n - x) * x if x > 1 else max(n - 1, 0)
            edges = EdgeList(capacity=max(m, 1))
            with tel.span("commfree.slices", cat="compute", tid=0, n=n, x=x):
                for r, (lo, hi) in enumerate(slices):
                    with tel.span("commfree.slice", cat="compute", tid=r,
                                  lo=lo, hi=hi):
                        u, v = commfree_edge_slice(
                            n, lo, hi, x=x, p=p, seed=seed
                        )
                        edges.append_arrays(u, v)
    elif engine == "mp":
        with tel.span("commfree.mp", cat="run", tid=-1, n=n, x=x, P=ranks):
            edges = commfree_mp(
                n, x=x, p=p, ranks=ranks, seed=seed,
                spill_dir=out_of_core, budget_bytes=spill_budget_bytes,
            )
    else:
        raise ValueError(
            f"generator='commfree' supports engines 'sequential', 'bsp', "
            f"and 'mp'; engine={engine!r} has nothing to contribute to a "
            f"zero-message algorithm"
        )

    cost = cost_model or CostModel()
    total = cost.compute_time(n, work_items=len(edges))
    return GenerationResult(
        edges=edges,
        n=n,
        x=x,
        p=p,
        scheme="contig",
        ranks=ranks,
        engine=engine,
        seed=seed,
        simulated_time=total / ranks,
        supersteps=0,
        requests_sent=np.zeros(ranks, np.int64),
        requests_received=np.zeros(ranks, np.int64),
        nodes_per_rank=sizes,
    )


def _run_supervised(
    n, x, p, part, seed, cost_model, checkpointer, plan, max_retries,
    telemetry=None,
):
    """Run the BSP generation under a crash-recovering Supervisor."""
    from repro.core.parallel_pa import PAx1RankProgram
    from repro.core.parallel_pa_general import PAGeneralRankProgram
    from repro.mpsim.bsp import BSPEngine
    from repro.mpsim.supervisor import Supervisor
    from repro.rng import StreamFactory

    if x > 1 and n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")

    def engine_factory() -> BSPEngine:
        return BSPEngine(part.P, cost_model=cost_model, telemetry=telemetry)

    def program_factory():
        factory = StreamFactory(seed)
        if x == 1:
            return [PAx1RankProgram(r, part, p, factory.stream(r)) for r in range(part.P)]
        return [
            PAGeneralRankProgram(r, part, x, p, factory.stream(r))
            for r in range(part.P)
        ]

    supervisor = Supervisor(
        engine_factory, program_factory, checkpointer, max_retries=max_retries,
        telemetry=telemetry,
    )
    return supervisor.run(fault_plan=plan)
