"""Out-of-core (spill-to-disk) storage for massive generations.

The paper generates 50-billion-edge networks; at 16 bytes per edge that is
~0.8 TB of edge storage — far beyond main memory, and the reason every
container in this repository being pure in-RAM NumPy capped practical ``n``
around 10^7.  This module moves the *edge storage* layer out of core while
keeping every hot loop vectorised:

* :class:`SpillEdgeList` — a drop-in :class:`~repro.graph.edgelist.EdgeList`
  replacement backed by two append-only ``int64`` segment files.  Appends
  land in a bounded in-RAM write buffer that is flushed to disk at a
  configurable watermark, so peak heap usage is ``O(budget)`` regardless of
  how many edges accumulate; reads come back as read-only ``np.memmap``
  views (the OS pages them in on demand and may evict them under pressure —
  they are file cache, not heap).
* :class:`SpillArena` / :func:`spill_record_queue` — memmap-backed variants
  of the :mod:`repro.core.arena` park/pend queues, so the PA rank programs'
  wait queues can grow past RAM too.
* :class:`EdgeShardWriter` / :func:`iter_edge_shards` — chunked
  shard-at-a-time edge emission in the *same sha256-sealed envelope* as the
  mp checkpoint shards (:func:`repro.mpsim.checkpoint.save_sealed`): a
  worker killed mid-write can never leave a torn shard, and a bit-flipped
  shard raises :class:`~repro.mpsim.errors.CorruptCheckpointError` instead
  of silently corrupting the graph.  Each rank writes its shards to its own
  directory and seals a manifest; the coordinator assembles manifests, not
  arrays.
* :func:`assemble_shards` / :func:`edges_digest` — streaming assembly and
  chunked content digests, so even the bit-identity *check* against an
  in-RAM run never materialises the whole graph.

Everything here is bit-transparent: a spilled run produces exactly the
bytes an in-RAM run produces, at every rank count — asserted by
``tests/core/test_spill.py`` and gated in CI.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Iterator

import numpy as np

from repro.core.arena import ArrayArena, RecordQueue
from repro.graph.edgelist import EdgeList
from repro.mpsim.checkpoint import load_sealed, save_sealed
from repro.mpsim.errors import CorruptCheckpointError

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "EDGE_SHARD_MAGIC",
    "EdgeShardWriter",
    "SpillArena",
    "SpillEdgeList",
    "SpillQueueFactory",
    "SpillResultProgram",
    "assemble_shards",
    "edges_digest",
    "iter_edge_blocks",
    "iter_edge_shards",
    "load_edge_manifest",
    "rank_shard_dir",
    "spill_record_queue",
    "write_edge_shards",
]

#: default bound on the in-RAM write buffer of a :class:`SpillEdgeList`
DEFAULT_BUDGET_BYTES = 64 << 20

#: sealed-envelope magic for edge shards — distinct from checkpoint shards
#: so a checkpoint loader can never mistake edge data for program state
EDGE_SHARD_MAGIC = "repro-edge-shard"
_MANIFEST_NAME = "MANIFEST"


class SpillEdgeList:
    """An :class:`EdgeList` whose storage lives in two on-disk segment files.

    Honors the EdgeList API — ``append`` / ``append_arrays`` / ``extend``,
    ``sources`` / ``targets``, ``num_nodes``, ``as_array``, ``canonical``,
    iteration, equality — with one memory contract change: appended edges
    accumulate in a bounded in-RAM buffer (the *write watermark*, derived
    from ``budget_bytes``) and are flushed to ``<dir>/u.i64`` and
    ``<dir>/v.i64`` when it fills.  Reads flush first, then return read-only
    ``np.memmap`` views of the segment files.

    Parameters
    ----------
    directory:
        Spill directory (created if missing).  The two segment files are
        plain little-endian ``int64`` streams; sealing/corruption detection
        is the shard layer's job (:class:`EdgeShardWriter`), not this one's
        — this is the *assembled* form, analogous to the in-RAM array.
    budget_bytes:
        Bound on the write buffer.  Both columns share it, so the buffer
        holds ``budget_bytes // 16`` edges before a flush.

    Examples
    --------
    >>> import tempfile
    >>> d = tempfile.mkdtemp()
    >>> el = SpillEdgeList(d, budget_bytes=1 << 12)
    >>> el.append_arrays(np.array([1, 2, 3]), np.array([0, 0, 1]))
    >>> len(el), el.num_nodes
    (3, 4)
    """

    def __init__(
        self, directory: str | Path, budget_bytes: int = DEFAULT_BUDGET_BYTES
    ) -> None:
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.budget_bytes = int(budget_bytes)
        # 16 bytes per buffered edge (one int64 per column)
        self._watermark = max(int(budget_bytes) // 16, 1)
        self._buf_u = np.empty(self._watermark, dtype=np.int64)
        self._buf_v = np.empty(self._watermark, dtype=np.int64)
        self._buffered = 0
        self._flushed = 0  # edges already on disk
        self._max_node = -1
        self._path_u = self.directory / "u.i64"
        self._path_v = self.directory / "v.i64"
        # truncate: a SpillEdgeList owns its directory's segment files
        self._fh_u = open(self._path_u, "wb")
        self._fh_v = open(self._path_v, "wb")
        self._closed = False

    # ------------------------------------------------------------- building
    def append(self, u: int, v: int) -> None:
        """Append one edge (scalar path; prefer :meth:`append_arrays`)."""
        if self._buffered == self._watermark:
            self.flush()
        self._buf_u[self._buffered] = u
        self._buf_v[self._buffered] = v
        self._buffered += 1
        if u > self._max_node:
            self._max_node = int(u)
        if v > self._max_node:
            self._max_node = int(v)

    def append_arrays(self, u: np.ndarray, v: np.ndarray) -> None:
        """Append a batch of edges, flushing whenever the buffer fills."""
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError("batch arrays must be equal-length and 1-D")
        if len(u):
            self._max_node = max(self._max_node, int(max(u.max(), v.max())))
        off = 0
        while off < len(u):
            take = min(len(u) - off, self._watermark - self._buffered)
            self._buf_u[self._buffered : self._buffered + take] = u[off : off + take]
            self._buf_v[self._buffered : self._buffered + take] = v[off : off + take]
            self._buffered += take
            off += take
            if self._buffered == self._watermark:
                self.flush()

    def extend(self, other: Any) -> None:
        """Append all edges of another edge list (chunked, RSS-bounded)."""
        for u, v in iter_edge_blocks(other, self._watermark):
            self.append_arrays(u, v)

    def flush(self) -> None:
        """Write the buffered tail to the segment files (keeps the handles)."""
        if self._buffered:
            self._fh_u.write(
                np.ascontiguousarray(self._buf_u[: self._buffered], dtype="<i8")
                .tobytes()
            )
            self._fh_v.write(
                np.ascontiguousarray(self._buf_v[: self._buffered], dtype="<i8")
                .tobytes()
            )
            self._flushed += self._buffered
            self._buffered = 0
        self._fh_u.flush()
        self._fh_v.flush()

    def close(self) -> None:
        """Flush and close the segment files (reads still work afterwards)."""
        if self._closed:
            return
        self.flush()
        self._fh_u.close()
        self._fh_v.close()
        self._closed = True

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            if not self._closed:
                self.close()
        except Exception:
            pass

    # -------------------------------------------------------------- viewing
    def _column(self, path: Path, fh) -> np.ndarray:
        if self._closed:
            pass
        elif self._buffered:
            self.flush()
        else:
            fh.flush()
        size = self._flushed + self._buffered
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return np.memmap(path, dtype="<i8", mode="r", shape=(size,))

    @property
    def sources(self) -> np.ndarray:
        """The ``u`` endpoints as a read-only ``np.memmap`` view."""
        return self._column(self._path_u, self._fh_u)

    @property
    def targets(self) -> np.ndarray:
        """The ``v`` endpoints as a read-only ``np.memmap`` view."""
        return self._column(self._path_v, self._fh_v)

    def __len__(self) -> int:
        return self._flushed + self._buffered

    @property
    def num_edges(self) -> int:
        return len(self)

    @property
    def num_nodes(self) -> int:
        """1 + max node id (0 when empty); maintained incrementally."""
        if len(self) == 0:
            return 0
        return self._max_node + 1

    @property
    def spilled_bytes(self) -> int:
        """Bytes currently resident in the segment files (both columns)."""
        return 16 * self._flushed

    def __iter__(self) -> Iterator[tuple[int, int]]:
        for u, v in iter_edge_blocks(self, self._watermark):
            for i in range(len(u)):
                yield int(u[i]), int(v[i])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (EdgeList, SpillEdgeList)):
            return NotImplemented
        return (
            len(self) == len(other)
            and bool(np.array_equal(self.sources, other.sources))
            and bool(np.array_equal(self.targets, other.targets))
        )

    def __hash__(self) -> int:  # pragma: no cover - containers are unhashable
        raise TypeError("SpillEdgeList is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"SpillEdgeList(num_edges={len(self)}, num_nodes={self.num_nodes}, "
            f"dir={str(self.directory)!r})"
        )

    # ---------------------------------------------------------- conversions
    def as_array(self) -> np.ndarray:
        """``(m, 2)`` in-RAM array of edges (materialises; use in tests)."""
        return np.column_stack([np.asarray(self.sources), np.asarray(self.targets)])

    def canonical(self) -> np.ndarray:
        """Row-sorted ``(min, max)`` pairs (materialises; O(m) RAM)."""
        return self.to_edgelist().canonical()

    def has_duplicates(self) -> bool:
        return self.to_edgelist().has_duplicates()

    def has_self_loops(self) -> bool:
        out = False
        for u, v in iter_edge_blocks(self, self._watermark):
            if bool((u == v).any()):
                out = True
                break
        return out

    def to_edgelist(self) -> EdgeList:
        """Materialise into an in-RAM :class:`EdgeList` (O(m) RAM)."""
        return EdgeList.from_arrays(self.sources, self.targets)

    def copy(self) -> EdgeList:
        return self.to_edgelist()


def iter_edge_blocks(
    edges: Any, block_edges: int = 1 << 20
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(u, v)`` blocks of at most ``block_edges`` from any edge list.

    Works on :class:`EdgeList` and :class:`SpillEdgeList` alike; for the
    spilled kind the blocks are slices of the memmap views, so only
    ``block_edges`` worth of pages is ever touched at once.
    """
    if block_edges < 1:
        raise ValueError(f"block_edges must be >= 1, got {block_edges}")
    srcs, tgts = edges.sources, edges.targets
    for lo in range(0, len(srcs), block_edges):
        hi = min(lo + block_edges, len(srcs))
        yield np.asarray(srcs[lo:hi]), np.asarray(tgts[lo:hi])


def edges_digest(edges: Any, block_edges: int = 1 << 20) -> str:
    """SHA-256 of the edge stream, computed in bounded-RSS chunks.

    Hashes the full ``u`` column, then the full ``v`` column, so the digest
    is a pure function of the edge *content* — independent of
    ``block_edges`` and of where the edges live.  Two edge lists are
    bit-identical iff their digests match, so the out-of-core bench/CI can
    compare a 10^8-edge spilled run against an in-RAM reference without
    holding either as one array.
    """
    h = hashlib.sha256()
    for u, _ in iter_edge_blocks(edges, block_edges):
        h.update(np.ascontiguousarray(u, dtype="<i8").tobytes())
    for _, v in iter_edge_blocks(edges, block_edges):
        h.update(np.ascontiguousarray(v, dtype="<i8").tobytes())
    return h.hexdigest()


# --------------------------------------------------------------------------
# sealed edge shards — the on-disk emission format of out-of-core runs
# --------------------------------------------------------------------------


def rank_shard_dir(directory: str | Path, rank: int, size: int) -> Path:
    """Canonical per-rank shard directory within an out-of-core run dir."""
    width = max(len(str(size - 1)), 1)
    return Path(directory) / f"rank{rank:0{width}d}.of{size}"


class EdgeShardWriter:
    """Chunked writer of sha256-sealed edge shards for one rank.

    Buffers appended edges and seals a shard file (``part-NNNNNN.edges``)
    every ``chunk_edges``; :meth:`seal` flushes the remainder and writes the
    ``MANIFEST`` — also sealed — recording the shard names, edge count, and
    running max node id.  Until the manifest exists the directory is not a
    valid rank output, so a worker killed mid-emission is indistinguishable
    from one that never ran (the same all-or-nothing discipline as mp
    checkpoint cuts, whose envelope format this reuses).
    """

    def __init__(self, directory: str | Path, chunk_edges: int = 1 << 20) -> None:
        if chunk_edges < 1:
            raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.chunk_edges = int(chunk_edges)
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        self._pending_len = 0
        self._shards: list[str] = []
        self._edges = 0
        self._max_node = -1
        self._sealed = False

    def append_arrays(self, u: np.ndarray, v: np.ndarray) -> None:
        """Append a batch; full chunks are sealed to disk immediately."""
        if self._sealed:
            raise ValueError(f"{self.directory}: writer already sealed")
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.shape != v.shape or u.ndim != 1:
            raise ValueError("batch arrays must be equal-length and 1-D")
        if len(u):
            self._max_node = max(self._max_node, int(max(u.max(), v.max())))
        off = 0
        while off < len(u):
            take = min(len(u) - off, self.chunk_edges - self._pending_len)
            self._pending.append((u[off : off + take], v[off : off + take]))
            self._pending_len += take
            off += take
            if self._pending_len == self.chunk_edges:
                self._write_shard()

    def _write_shard(self) -> None:
        if not self._pending_len:
            return
        u = np.concatenate([b[0] for b in self._pending])
        v = np.concatenate([b[1] for b in self._pending])
        name = f"part-{len(self._shards):06d}.edges"
        save_sealed(
            self.directory / name,
            EDGE_SHARD_MAGIC,
            {"index": len(self._shards), "u": u, "v": v},
        )
        self._shards.append(name)
        self._edges += self._pending_len
        self._pending = []
        self._pending_len = 0

    def seal(self) -> dict:
        """Flush the tail shard and write the sealed manifest; returns it."""
        if self._sealed:
            return self.manifest
        self._write_shard()
        self.manifest = {
            "schema": "repro-edge-shards-v1",
            "shards": list(self._shards),
            "edges": self._edges,
            "max_node": self._max_node,
        }
        save_sealed(self.directory / _MANIFEST_NAME, EDGE_SHARD_MAGIC, self.manifest)
        self._sealed = True
        return self.manifest


def load_edge_manifest(directory: str | Path) -> dict:
    """Load and validate one rank's sealed shard manifest."""
    path = Path(directory) / _MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(
            f"{directory}: no sealed MANIFEST — the rank's emission never "
            f"completed (worker died before seal()) or this is not a shard "
            f"directory"
        )
    manifest = load_sealed(path, EDGE_SHARD_MAGIC, "edge-shard manifest")
    if not isinstance(manifest, dict) or "shards" not in manifest:
        raise CorruptCheckpointError(f"{path}: payload is not a shard manifest")
    return manifest


def iter_edge_shards(
    directory: str | Path,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield one ``(u, v)`` block per sealed shard, in emission order.

    Validates every shard's checksum and its recorded position; a missing
    or corrupt shard raises :class:`CorruptCheckpointError` rather than
    yielding a silently truncated graph.
    """
    directory = Path(directory)
    manifest = load_edge_manifest(directory)
    for i, name in enumerate(manifest["shards"]):
        path = directory / name
        if not path.exists():
            raise CorruptCheckpointError(
                f"{path}: shard listed in the manifest is missing"
            )
        shard = load_sealed(path, EDGE_SHARD_MAGIC, "edge shard")
        if not isinstance(shard, dict) or shard.get("index") != i:
            raise CorruptCheckpointError(
                f"{path}: shard is out of place (expected index {i})"
            )
        yield shard["u"], shard["v"]


def assemble_shards(directory: str | Path, size: int, into: Any) -> Any:
    """Stream every rank's shards, in rank order, into ``into``.

    ``into`` is any EdgeList-flavoured container; with a
    :class:`SpillEdgeList` the assembly is manifest-to-segment streaming —
    at no point does more than one shard chunk live in RAM.
    """
    for rank in range(size):
        for u, v in iter_edge_shards(rank_shard_dir(directory, rank, size)):
            into.append_arrays(u, v)
    return into


def write_edge_shards(
    directory: str | Path,
    blocks: Iterator[tuple[np.ndarray, np.ndarray]],
    chunk_edges: int = 1 << 20,
) -> dict:
    """Drain ``blocks`` into sealed shards under ``directory``; returns the
    manifest.  The convenience wrapper the slice workers and streaming
    emitters use."""
    writer = EdgeShardWriter(directory, chunk_edges=chunk_edges)
    for u, v in blocks:
        writer.append_arrays(u, v)
    return writer.seal()


# --------------------------------------------------------------------------
# spill-capable arenas — the rank programs' wait queues, past RAM
# --------------------------------------------------------------------------


class SpillArena(ArrayArena):
    """An :class:`ArrayArena` whose backing column is a memmapped file.

    Same amortised-doubling discipline; growth truncates the file to the
    new capacity and remaps, so the data never transits the heap.  Pickling
    (checkpoint shards) degrades gracefully to an in-RAM arena holding the
    live prefix — a restored queue is small by construction (only survivors
    are serialised) and need not stay spilled.
    """

    __slots__ = ("_path",)

    def __init__(self, path: str | Path, capacity: int = 64) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        capacity = max(int(capacity), 1)
        self._buf = np.memmap(self._path, dtype=np.int64, mode="w+", shape=(capacity,))
        self._size = 0

    def _grow_to(self, needed: int) -> None:
        if self._path is None:  # unpickled fallback: plain in-RAM doubling
            super()._grow_to(needed)
            return
        cap = len(self._buf)
        if needed <= cap:
            return
        new_cap = max(needed, cap * 2)
        # flush, grow the file, remap — the live prefix is already on disk
        self._buf.flush()
        del self._buf
        with open(self._path, "r+b") as fh:
            fh.truncate(8 * new_cap)
        self._buf = np.memmap(self._path, dtype=np.int64, mode="r+", shape=(new_cap,))

    def __getstate__(self) -> dict:
        return {"data": np.asarray(self._buf[: self._size]).copy()}

    def __setstate__(self, state: dict) -> None:
        self._path = None
        data = state["data"]
        self._buf = np.empty(max(len(data), 1), dtype=np.int64)
        self._buf[: len(data)] = data
        self._size = len(data)

    def __repr__(self) -> str:
        where = "ram" if self._path is None else str(self._path)
        return f"SpillArena(size={self._size}, capacity={len(self._buf)}, file={where!r})"


def spill_record_queue(
    ncols: int, directory: str | Path, prefix: str, capacity: int = 64
) -> RecordQueue:
    """A :class:`RecordQueue` whose columns are :class:`SpillArena` files.

    Column ``i`` lives at ``<directory>/<prefix>.col<i>.i64``.  Drop-in for
    the rank programs' park/pend queues when a generation runs out-of-core.
    """
    directory = Path(directory)
    return RecordQueue(
        ncols,
        arenas=tuple(
            SpillArena(directory / f"{prefix}.col{i}.i64", capacity=capacity)
            for i in range(ncols)
        ),
    )


class SpillResultProgram:
    """Wrap a rank program so its ``result()`` spills instead of returning.

    The mp backend collects each rank's result over the worker pipe; for an
    out-of-core run that payload must not be the rank's edge arrays.  This
    proxy delegates the whole program protocol (``step``, ``done``, the
    Figure-7 counters) to the wrapped program and intercepts only
    ``result()``: the edges are sealed into the rank's shard directory
    *inside the worker process* and a small manifest dict travels the pipe.
    The coordinator then assembles manifests with :func:`assemble_shards`.
    """

    def __init__(
        self, program: Any, shard_dir: str | Path, chunk_edges: int = 1 << 20
    ) -> None:
        self._prog = program
        self._shard_dir = Path(shard_dir)
        self._chunk_edges = int(chunk_edges)

    def result(self) -> dict:
        u, v = self._prog.result()
        return write_edge_shards(
            self._shard_dir, [(u, v)], chunk_edges=self._chunk_edges
        )

    def __getattr__(self, name: str):
        if name.startswith("__") or name in ("_prog", "_shard_dir", "_chunk_edges"):
            raise AttributeError(name)
        return getattr(self._prog, name)

    def __repr__(self) -> str:
        return f"SpillResultProgram({self._prog!r}, dir={str(self._shard_dir)!r})"


class SpillQueueFactory:
    """Picklable factory handing each rank program spill-backed queues.

    Rank programs call it like ``RecordQueue``: ``factory(ncols)``.  Each
    call gets fresh files (a per-factory counter disambiguates), and the
    factory survives ``fork`` into mp workers — the files are only ever
    written by the rank that owns the program.
    """

    def __init__(self, directory: str | Path, tag: str = "q") -> None:
        self.directory = Path(directory)
        self.tag = tag
        self._count = 0

    def __call__(self, ncols: int, capacity: int = 64) -> RecordQueue:
        self._count += 1
        return spill_record_queue(
            ncols,
            self.directory,
            f"{self.tag}.pid{os.getpid()}.{self._count}",
            capacity=capacity,
        )
