"""Parallel Erdős–Rényi and Chung–Lu generation on the same substrate.

The paper closes with: "It will be interesting to develop scalable parallel
algorithms for other classes of random networks in the future."  These two
generators are that extension, built on the identical rank/partition
machinery so they compose with the rest of the library:

* :func:`run_parallel_er` — G(n, p) via per-rank Batagelj–Brandes geometric
  skipping over a *block of the pair space*.  Edge existence is independent,
  so the parallelisation is exact and communication-free: each rank owns a
  contiguous range of flattened pair indices and samples its realised edges
  locally (the approach of Nobari et al.'s PER/PPreZER, which the paper
  cites as [24]).
* :func:`run_parallel_chung_lu` — expected-degree (Chung–Lu) graphs: each
  rank owns a slice of the *sorted-weight* node sequence and runs the
  Miller–Hagberg skipping row-by-row for its rows.  Also exact and
  communication-free given replicated weights.

Both return the familiar ``(EdgeList, BSPEngine, programs)`` triple so the
scaling harness can benchmark them alongside the PA generators.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel
from repro.rng import StreamFactory
from repro.seq.erdos_renyi import _unrank_pairs

__all__ = ["ERRankProgram", "run_parallel_er", "run_parallel_chung_lu"]


class ERRankProgram:
    """One rank of the parallel G(n, p) generator.

    Rank ``r`` of ``P`` owns the flat pair-index range
    ``[r * T / P, (r+1) * T / P)`` with ``T = n(n-1)/2`` and samples its
    realised edges with geometric skips — independent of every other rank.
    """

    def __init__(self, rank: int, size: int, n: int, p: float, rng: np.random.Generator) -> None:
        self.rank = rank
        self.n = n
        self.p = p
        self.rng = rng
        total = n * (n - 1) // 2
        self.lo = rank * total // size
        self.hi = (rank + 1) * total // size
        self._done = False
        self.edges = EdgeList()

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        return self.edges.sources, self.edges.targets

    def local_edges(self) -> EdgeList:
        return self.edges

    def step(self, ctx: BSPRankContext, inbox) -> None:
        if self._done:
            return None
        self._done = True
        span = self.hi - self.lo
        if span == 0 or self.p <= 0.0:
            return None
        if self.p >= 1.0:
            idx = np.arange(self.lo, self.hi, dtype=np.int64)
        else:
            log_q = np.log1p(-self.p)
            picks: list[np.ndarray] = []
            pos = self.lo - 1
            block = max(1024, int(span * self.p * 1.2))
            while pos < self.hi:
                r = self.rng.random(block)
                with np.errstate(over="ignore"):
                    skips_f = np.minimum(np.floor(np.log(r) / log_q), float(span))
                positions = pos + np.cumsum(1 + skips_f.astype(np.int64))
                picks.append(positions[positions < self.hi])
                if positions[-1] >= self.hi:
                    break
                pos = int(positions[-1])
            idx = np.concatenate(picks) if picks else np.empty(0, dtype=np.int64)
        u, v = _unrank_pairs(idx)
        self.edges.append_arrays(u, v)
        ctx.charge(nodes=0, work_items=len(idx))
        return None


def run_parallel_er(
    n: int,
    p: float,
    ranks: int,
    seed: int | None = None,
    cost_model: CostModel | None = None,
) -> tuple[EdgeList, BSPEngine, list[ERRankProgram]]:
    """Generate G(n, p) across ``ranks`` simulated processors.

    Exact: the union of rank samples is distributed exactly as a sequential
    G(n, p) sample, because the pair space is partitioned disjointly and
    each pair is realised independently.

    Examples
    --------
    >>> edges, engine, _ = run_parallel_er(300, 0.05, ranks=4, seed=0)
    >>> engine.stats.total_messages     # communication-free
    0
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    factory = StreamFactory(seed)
    programs = [ERRankProgram(r, ranks, n, p, factory.stream(r)) for r in range(ranks)]
    engine = BSPEngine(ranks, cost_model=cost_model)
    engine.run(programs)
    edges = EdgeList()
    for prog in programs:
        edges.extend(prog.edges)
    return edges, engine, programs


class _ChungLuRankProgram:
    """One rank of the parallel Chung–Lu generator (row-partitioned)."""

    def __init__(
        self,
        rank: int,
        size: int,
        weights_sorted: np.ndarray,
        order: np.ndarray,
        total_weight: float,
        rng: np.random.Generator,
    ) -> None:
        self.rank = rank
        n = len(weights_sorted)
        self.row_lo = rank * n // size
        self.row_hi = (rank + 1) * n // size
        self.ws = weights_sorted
        self.order = order
        self.S = total_weight
        self.rng = rng
        self._done = False
        self.edges = EdgeList()

    @property
    def done(self) -> bool:
        return self._done

    def local_edges(self) -> EdgeList:
        return self.edges

    def step(self, ctx: BSPRankContext, inbox) -> None:
        if self._done:
            return None
        self._done = True
        ws, S, rng = self.ws, self.S, self.rng
        n = len(ws)
        us: list[int] = []
        vs: list[int] = []
        work = 0
        for i in range(self.row_lo, min(self.row_hi, n - 1)):
            if ws[i] <= 0:
                break
            j = i + 1
            p = min(1.0, ws[i] * ws[j] / S)
            while j < n and p > 0:
                if p < 1.0:
                    r = rng.random()
                    j += int(np.floor(np.log(r) / np.log1p(-p)))
                if j < n:
                    q = min(1.0, ws[i] * ws[j] / S)
                    if rng.random() < q / p:
                        us.append(i)
                        vs.append(j)
                    p = q
                    j += 1
                work += 1
        if us:
            self.edges.append_arrays(self.order[np.array(us)], self.order[np.array(vs)])
        ctx.charge(work_items=work)
        return None


def run_parallel_chung_lu(
    weights: np.ndarray,
    ranks: int,
    seed: int | None = None,
    cost_model: CostModel | None = None,
) -> tuple[EdgeList, BSPEngine, list]:
    """Generate a Chung–Lu graph across ``ranks`` simulated processors.

    Each rank owns a contiguous slice of the descending-sorted weight rows;
    row samples are independent, so the result is exact and
    communication-free (weights are replicated, as degree sequences usually
    are in practice).
    """
    if ranks < 1:
        raise ValueError(f"ranks must be >= 1, got {ranks}")
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be 1-D")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    order = np.argsort(-w, kind="stable")
    ws = w[order]
    S = float(w.sum())
    factory = StreamFactory(seed)
    programs = [
        _ChungLuRankProgram(r, ranks, ws, order, S, factory.stream(r))
        for r in range(ranks)
    ]
    engine = BSPEngine(ranks, cost_model=cost_model)
    if S > 0 and len(w) >= 2:
        engine.run(programs)
    edges = EdgeList()
    for prog in programs:
        edges.extend(prog.edges)
    return edges, engine, programs
