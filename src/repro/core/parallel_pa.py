"""Algorithm 3.1 — parallel preferential attachment with ``x = 1``.

Each rank owns the nodes of its partition and computes ``F_t`` for them.
Per node ``t`` the rank draws ``k`` uniform in ``[1, t-1]`` and a coin: with
probability ``p`` it sets ``F_t = k`` immediately (Line 5-6); otherwise
``F_t = F_k`` (Line 8), which is

* resolved by *local chain sweeping* when ``k`` is owned by the same rank
  (the paper's intra-processor case — no message needed), or
* turned into a ``<request, t, k>`` message to ``k``'s owner (Line 9).

An owner receiving a request replies ``<resolved, t, F_k>`` if ``F_k`` is
known and otherwise parks the requester in the wait queue ``Q_k``
(Lines 11-15); when ``F_k`` later resolves, queued requesters are answered
(Lines 16-19).

Execution model: the rank program below runs on the
:class:`~repro.mpsim.bsp.BSPEngine`, whose exchange step *is* the paper's
message buffering — all records destined to one rank in one superstep travel
as a single message.  Theorem 3.3 bounds dependency chains by ``O(log n)``,
so the run quiesces in ``O(log n)`` supersteps.

Randomness protocol: node ``t`` consumes exactly two uniforms from its
owner's stream, in node order — first for ``k``, then for the coin.  The
event-driven implementation follows the identical protocol, which is why the
two engines produce bit-identical graphs (see
``tests/core/test_cross_engine.py``).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.arena import RecordQueue
from repro.core.partitioning import Partition
from repro.core.routing import route_by_dest
from repro.graph.edgelist import EdgeList
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel
from repro.rng import StreamFactory

__all__ = ["RECORD_DTYPE", "REQ", "RES", "PAx1RankProgram", "run_parallel_pa_x1"]

#: Wire format of one protocol record: ``kind`` is :data:`REQ` or
#: :data:`RES`; for requests ``a`` is ``k``, for resolved ``a`` is ``v``.
RECORD_DTYPE = np.dtype([("kind", "i8"), ("t", "i8"), ("a", "i8")])
REQ = 0
RES = 1


def _records(kind: int, t: np.ndarray, a: np.ndarray) -> np.ndarray:
    rec = np.empty(len(t), dtype=RECORD_DTYPE)
    rec["kind"] = kind
    rec["t"] = t
    rec["a"] = a
    return rec


class PAx1RankProgram:
    """One rank's state machine for Algorithm 3.1.

    Parameters
    ----------
    rank:
        This rank's id.
    partition:
        The node partition (any scheme from
        :mod:`repro.core.partitioning`).
    p:
        Direct-attachment probability.
    rng:
        This rank's private stream (node draws follow the two-uniforms-per-
        node protocol documented in the module docstring).
    """

    def __init__(
        self,
        rank: int,
        partition: Partition,
        p: float,
        rng: np.random.Generator,
        queue_factory=None,
    ) -> None:
        self.rank = rank
        self.part = partition
        self.p = p
        self.rng = rng
        self.nodes = partition.partition_nodes(rank)
        self.F = np.full(len(self.nodes), -1, dtype=np.int64)
        self._started = False
        # ``queue_factory(ncols) -> RecordQueue`` swaps the queues' backing;
        # out-of-core runs pass repro.core.spill.SpillQueueFactory so the
        # wait queues live in memmapped files instead of the heap
        make = queue_factory or RecordQueue
        # local copy-chain waits: t (local idx) waiting on k (local idx)
        self._pend = make(2)  # columns: (t local idx, k local idx)
        # remote requesters parked on an unknown local F_k (the wait queues
        # Q_k of Lines 14-15, kept in an amortised-doubling arena so each
        # superstep's append costs the batch, not the queue)
        self._park = make(2)  # columns: (k local idx awaited, t)
        # resolution progress (node 0 owns no attachment)
        self._unresolved = int((self.nodes >= 1).sum())
        # paper's Figure 7 counters
        self.requests_sent = 0
        self.requests_received = 0

    # ------------------------------------------------------------ interface
    @property
    def done(self) -> bool:
        return self._started and self._unresolved == 0

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """Local edges ``(t, F_t)`` for owned ``t >= 1`` (mp-backend hook)."""
        mask = self.nodes >= 1
        return self.nodes[mask], self.F[mask]

    def local_edges(self) -> EdgeList:
        t, f = self.result()
        return EdgeList.from_arrays(t, f)

    def step(self, ctx: BSPRankContext, inbox) -> dict[int, list[np.ndarray]]:
        out: dict[int, list[np.ndarray]] = defaultdict(list)
        newly: list[np.ndarray] = []

        if not self._started:
            self._started = True
            self._setup(ctx, out, newly)

        for _src, arr in inbox:
            res = arr[arr["kind"] == RES]
            if len(res):
                self._apply_resolved(res, newly, ctx)

        self._local_sweep(newly, ctx)

        for _src, arr in inbox:
            req = arr[arr["kind"] == REQ]
            if len(req):
                self._park_requests(req, ctx)

        self._drain_parked(out, ctx)
        return {d: [np.concatenate(batches)] for d, batches in out.items() if batches}

    # ------------------------------------------------------------- phases
    def _setup(self, ctx: BSPRankContext, out, newly) -> None:
        """Lines 2-9: per-node draws and immediate/deferred attachment."""
        nodes = self.nodes
        ctx.charge(nodes=len(nodes))

        one = np.flatnonzero(nodes == 1)
        if len(one):
            self.F[one[0]] = 0
            self._unresolved -= 1
            newly.append(one.astype(np.int64))

        mask = nodes >= 2
        t = nodes[mask]
        tidx = np.flatnonzero(mask)
        if len(t) == 0:
            return
        u = self.rng.random(2 * len(t))
        k = 1 + (u[0::2] * (t - 1)).astype(np.int64)
        direct = u[1::2] < self.p

        d_idx = tidx[direct]
        self.F[d_idx] = k[direct]
        self._unresolved -= len(d_idx)
        if len(d_idx):
            newly.append(d_idx)

        ct, ck, cidx = t[~direct], k[~direct], tidx[~direct]
        owners = self.part.owner(ck)
        local = owners == self.rank
        if local.any():
            self._pend.push(
                cidx[local],
                np.asarray(self.part.local_index(self.rank, ck[local]), dtype=np.int64),
            )
        remote = ~local
        if remote.any():
            self._route(out, _records(REQ, ct[remote], ck[remote]), owners[remote])
            self.requests_sent += int(remote.sum())

    def _apply_resolved(self, res: np.ndarray, newly, ctx: BSPRankContext) -> None:
        """Lines 16-17: install ``F_t <- v`` for every resolved record."""
        tidx = np.asarray(self.part.local_index(self.rank, res["t"]), dtype=np.int64)
        self.F[tidx] = res["a"]
        self._unresolved -= len(tidx)
        newly.append(tidx)
        ctx.charge(work_items=len(tidx))

    def _local_sweep(self, newly, ctx: BSPRankContext) -> None:
        """Resolve local copy chains: one pass per chain level."""
        while len(self._pend):
            pend_t, pend_k = self._pend.columns()
            vals = self.F[pend_k]
            ready = vals >= 0
            if not ready.any():
                return
            done_t = pend_t[ready]
            self.F[done_t] = vals[ready]
            self._unresolved -= len(done_t)
            newly.append(done_t)
            ctx.charge(work_items=len(done_t))
            self._pend.keep(~ready)

    def _park_requests(self, req: np.ndarray, ctx: BSPRankContext) -> None:
        """Lines 11-15: park arriving requests on their target node.

        Requests whose ``F_k`` is already known are answered by
        :meth:`_drain_parked` at the end of the same step — identical
        messages, one vectorised code path.
        """
        self.requests_received += len(req)
        ctx.charge(work_items=len(req))
        kidx = np.asarray(self.part.local_index(self.rank, req["a"]), dtype=np.int64)
        self._park.push(kidx, req["t"])

    def _drain_parked(self, out, ctx: BSPRankContext) -> None:
        """Lines 12-13 and 18-19 in bulk: answer every parked request whose
        awaited ``F_k`` has resolved."""
        if not len(self._park):
            return
        park_k, park_t = self._park.columns()
        vals = self.F[park_k]
        ready = vals >= 0
        if not ready.any():
            return
        t_out = park_t[ready]
        v_out = vals[ready]
        self._park.keep(~ready)
        ctx.charge(work_items=len(t_out))
        self._route(out, _records(RES, t_out, v_out), self.part.owner(t_out))

    def _route(self, out, records: np.ndarray, dests: np.ndarray) -> None:
        """Group ``records`` by destination rank and append to the outbox."""
        route_by_dest(out, records, dests)


def run_parallel_pa_x1(
    n: int,
    partition: Partition,
    p: float = 0.5,
    seed: int | None = None,
    cost_model: CostModel | None = None,
    max_supersteps: int = 10_000,
    checkpointer=None,
    fault_plan=None,
    telemetry=None,
    schedule=None,
) -> tuple[EdgeList, BSPEngine, list[PAx1RankProgram]]:
    """Generate an ``x = 1`` PA network on the BSP engine.

    Returns the merged edge list (rank order), the engine (for its traffic
    statistics and simulated time), and the rank programs (for per-rank
    request counters — Figure 7's data).  ``fault_plan`` injects faults
    without recovery (failures propagate); use
    :class:`repro.mpsim.supervisor.Supervisor` for supervised runs.
    ``schedule`` (a :class:`repro.schedsim.Schedule`) permutes the engine's
    activation and inbox-assembly order; the x=1 program is order-invariant,
    so any schedule yields the identical edge list.
    """
    if partition.n != n:
        raise ValueError(f"partition covers n={partition.n}, requested n={n}")
    factory = StreamFactory(seed)
    programs = [
        PAx1RankProgram(r, partition, p, factory.stream(r)) for r in range(partition.P)
    ]
    engine = BSPEngine(
        partition.P,
        cost_model=cost_model,
        max_supersteps=max_supersteps,
        telemetry=telemetry,
    )
    engine.run(
        programs, checkpointer=checkpointer, fault_plan=fault_plan, schedule=schedule
    )
    edges = EdgeList(capacity=max(n - 1, 1))
    for prog in programs:
        t, f = prog.result()
        edges.append_arrays(t, f)
    return edges, engine, programs
