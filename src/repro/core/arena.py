"""Amortised-doubling array arenas for the rank programs' wait queues.

The park/pend queues of the PA rank programs used to grow with
``np.concatenate([old, batch])`` on every superstep, making each round cost
``O(queue_size)`` in reallocation alone — ``O(rounds * queue_size)`` over a
run.  :class:`ArrayArena` is a single growable ``int64`` column with the same
doubling discipline as :meth:`repro.graph.edgelist.EdgeList._grow_to`, and
:class:`RecordQueue` bundles several such columns that share one logical
length — exactly the shape of the queues (``Q_k`` holds parallel ``(k, t)``
or ``(key, t, e)`` arrays).

Appends write into preallocated tail space (amortised O(1) per record);
:meth:`RecordQueue.keep` compacts in place so a drain pass costs the number
of *surviving* records, never the buffer capacity.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayArena", "RecordQueue"]


class ArrayArena:
    """One growable ``int64`` column with amortised-doubling append.

    Examples
    --------
    >>> a = ArrayArena(capacity=2)
    >>> a.push(np.array([1, 2, 3]))
    >>> a.push(np.array([4]))
    >>> a.view().tolist()
    [1, 2, 3, 4]
    >>> a.keep(a.view() % 2 == 0)
    >>> a.view().tolist()
    [2, 4]
    """

    __slots__ = ("_buf", "_size")

    def __init__(self, capacity: int = 64) -> None:
        self._buf = np.empty(max(int(capacity), 1), dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, needed: int) -> None:
        cap = len(self._buf)
        if needed <= cap:
            return
        new = np.empty(max(needed, cap * 2), dtype=np.int64)
        new[: self._size] = self._buf[: self._size]
        self._buf = new

    def push(self, values: np.ndarray) -> None:
        """Append a batch of values (scalar-free; always an array)."""
        values = np.asarray(values, dtype=np.int64)
        self._grow_to(self._size + len(values))
        self._buf[self._size : self._size + len(values)] = values
        self._size += len(values)

    def view(self) -> np.ndarray:
        """The live prefix (a view; invalidated by ``push``/``keep``)."""
        return self._buf[: self._size]

    def keep(self, mask: np.ndarray) -> None:
        """Compact in place, keeping rows where ``mask`` is True."""
        kept = self._buf[: self._size][mask]
        self._buf[: len(kept)] = kept
        self._size = len(kept)

    def clear(self) -> None:
        self._size = 0

    # queues live inside checkpointed rank programs, so they must pickle;
    # only the live prefix is serialised (checkpoints stay compact).
    def __getstate__(self) -> dict:
        return {"data": self._buf[: self._size].copy()}

    def __setstate__(self, state: dict) -> None:
        data = state["data"]
        self._buf = np.empty(max(len(data), 1), dtype=np.int64)
        self._buf[: len(data)] = data
        self._size = len(data)

    def __repr__(self) -> str:
        return f"ArrayArena(size={self._size}, capacity={len(self._buf)})"


class RecordQueue:
    """``ncols`` parallel :class:`ArrayArena` columns sharing one length.

    The wait queues of the PA rank programs are structs-of-arrays: a record
    is one row across every column.  ``push`` appends a batch of rows,
    ``columns`` exposes the live views, and ``keep`` compacts all columns
    with one mask — the drain idiom::

        t, k = queue.columns()
        ready = F[k] >= 0
        done_t = t[ready]          # fancy indexing copies, safe after keep
        queue.keep(~ready)

    Examples
    --------
    >>> q = RecordQueue(2, capacity=2)
    >>> q.push(np.array([1, 2]), np.array([10, 20]))
    >>> len(q)
    2
    >>> [c.tolist() for c in q.columns()]
    [[1, 2], [10, 20]]
    """

    __slots__ = ("_cols",)

    def __init__(
        self,
        ncols: int,
        capacity: int = 64,
        arenas: tuple[ArrayArena, ...] | None = None,
    ) -> None:
        if ncols < 1:
            raise ValueError(f"ncols must be >= 1, got {ncols}")
        if arenas is not None:
            # injection point for alternative backings (e.g. the memmapped
            # :class:`repro.core.spill.SpillArena` of out-of-core runs)
            if len(arenas) != ncols:
                raise ValueError(f"expected {ncols} arenas, got {len(arenas)}")
            self._cols = tuple(arenas)
        else:
            self._cols = tuple(ArrayArena(capacity) for _ in range(ncols))

    def __len__(self) -> int:
        return len(self._cols[0])

    @property
    def ncols(self) -> int:
        return len(self._cols)

    def push(self, *batches: np.ndarray) -> None:
        """Append one batch of rows (one equal-length array per column)."""
        if len(batches) != len(self._cols):
            raise ValueError(
                f"expected {len(self._cols)} column batches, got {len(batches)}"
            )
        lengths = {len(b) for b in batches}
        if len(lengths) > 1:
            raise ValueError(f"column batches must have equal length, got {lengths}")
        for col, batch in zip(self._cols, batches):
            col.push(batch)

    def column(self, i: int) -> np.ndarray:
        """Live view of column ``i`` (invalidated by ``push``/``keep``)."""
        return self._cols[i].view()

    def columns(self) -> tuple[np.ndarray, ...]:
        """Live views of every column (invalidated by ``push``/``keep``)."""
        return tuple(c.view() for c in self._cols)

    def keep(self, mask: np.ndarray) -> None:
        """Compact every column in place, keeping rows where ``mask``."""
        for col in self._cols:
            col.keep(mask)

    def clear(self) -> None:
        for col in self._cols:
            col.clear()

    def __getstate__(self) -> dict:
        return {"cols": self._cols}

    def __setstate__(self, state: dict) -> None:
        self._cols = tuple(state["cols"])

    def __repr__(self) -> str:
        return f"RecordQueue(ncols={len(self._cols)}, size={len(self)})"
