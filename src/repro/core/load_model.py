"""Analytic load model: harmonic numbers, Lemma 3.4, and Eqn 10.

Section 3.5.1 of the paper derives how much work a consecutive partition
``[n_i, n_{i+1})`` incurs:

* types A and B (local processing + outgoing requests) are proportional to
  the partition size;
* type C (incoming requests) follows Lemma 3.4 — node ``k`` expects
  ``(1 - p)(H_{n-1} - H_k)`` request messages — summing to
  ``(n_{i+1} - n_i)(H_{n-1} + 1) - (n_{i+1} H_{n_{i+1}} - n_i H_{n_i})``.

Setting every partition's load to the uniform share yields the nonlinear
system (Eqn 10) whose exact solution Figure 3 plots against the linear
approximation that defines the LCP scheme.  :func:`solve_balanced_boundaries`
computes that exact solution by marching a scalar root-finder across the
partitions, and :func:`lcp_parameters` extracts the paper's ``(a, d)``
arithmetic-progression parameters (Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, special

__all__ = [
    "harmonic",
    "expected_incoming_messages",
    "consecutive_partition_load",
    "total_load",
    "solve_balanced_boundaries",
    "lcp_parameters",
    "LCPParameters",
]

_EULER_GAMMA = float(np.euler_gamma)


def harmonic(k: np.ndarray | float) -> np.ndarray | float:
    """Harmonic number ``H_k = Σ_{j=1..k} 1/j``, continuously extended.

    Uses ``H_k = ψ(k + 1) + γ`` (digamma), exact to double precision for all
    ``k >= 0`` and valid for fractional ``k``, which the root-finder in
    :func:`solve_balanced_boundaries` relies on.

    Examples
    --------
    >>> round(float(harmonic(1)), 12)
    1.0
    >>> round(float(harmonic(4)), 12)   # 1 + 1/2 + 1/3 + 1/4
    2.083333333333
    """
    k = np.asarray(k, dtype=np.float64)
    out = special.digamma(k + 1.0) + _EULER_GAMMA
    return out if out.ndim else float(out)


def expected_incoming_messages(
    k: np.ndarray | int, n: int, p: float = 0.5
) -> np.ndarray | float:
    """Lemma 3.4: expected request messages received for node ``k``.

    ``E[M_k] = (1 - p)(H_{n-1} - H_k)``; monotonically decreasing in ``k``,
    which is why consecutive partitions overload low ranks.
    """
    return (1.0 - p) * (harmonic(n - 1) - harmonic(k))


def consecutive_partition_load(
    lo: np.ndarray | float, hi: np.ndarray | float, n: int, b: float = 2.0
) -> np.ndarray | float:
    """Load of the consecutive partition ``[lo, hi)`` per Section 3.5.1.

    ``(hi - lo)(H_{n-1} + b) - (hi * H_hi - lo * H_lo)`` with ``b = 1 + c``
    absorbing the per-node constant work.  Continuous in ``lo, hi`` so it can
    be root-found.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    h_n1 = harmonic(n - 1)
    out = (hi - lo) * (h_n1 + b) - (hi * harmonic(hi) - lo * harmonic(lo))
    return out if out.ndim else float(out)


def total_load(n: int, b: float = 2.0) -> float:
    """Total load across all partitions; telescopes to ``b (n - 1)``."""
    return consecutive_partition_load(0.0, float(n - 1), n, b)


def solve_balanced_boundaries(n: int, P: int, b: float = 2.0) -> np.ndarray:
    """Exact solution of Eqn 10: boundaries equalising per-partition load.

    Returns a float array ``[n_0 = 0, n_1, ..., n_P = n - 1]`` such that
    every consecutive partition carries ``total_load / P``.  This is the
    "actual solutions of Equation 10" curve in Figure 3; the paper deems
    solving it at scale "prohibitively large" in time, which motivates LCP —
    here it costs ``P`` scalar Brent solves and is used for analysis only.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    share = total_load(n, b) / P
    bounds = np.empty(P + 1, dtype=np.float64)
    bounds[0] = 0.0
    bounds[P] = float(n - 1)
    lo = 0.0
    for i in range(1, P):
        # load(lo, z) is increasing in z; bracket and root-find.
        f = lambda z: consecutive_partition_load(lo, z, n, b) - share  # noqa: E731
        hi = float(n - 1)
        if f(hi) < 0:  # numerical safety: put everything remaining here
            bounds[i:P] = np.linspace(lo, n - 1, P - i + 1)[1:]  # pragma: no cover
            break
        z = optimize.brentq(f, lo, hi, xtol=1e-9, rtol=1e-12)
        bounds[i] = z
        lo = z
    return bounds


@dataclass(frozen=True)
class LCPParameters:
    """The linear consecutive partitioning parameters of Appendix A.2.

    Partition ``i`` receives ``a + i d`` nodes (continuous model); the
    integer partition rounds the cumulative boundaries.
    """

    a: float
    d: float
    n: int
    P: int

    def partition_sizes(self) -> np.ndarray:
        """Continuous sizes ``a + i d`` for ``i = 0 .. P-1``."""
        return self.a + self.d * np.arange(self.P)

    def boundaries(self) -> np.ndarray:
        """Integer cumulative boundaries ``[0, ..., n]`` (length P + 1)."""
        cum = np.concatenate([[0.0], np.cumsum(self.partition_sizes())])
        bounds = np.rint(cum * (self.n / cum[-1])).astype(np.int64)
        bounds[0], bounds[-1] = 0, self.n
        # enforce monotonicity after rounding
        np.maximum.accumulate(bounds, out=bounds)
        return bounds


def lcp_parameters(n: int, P: int, b: float = 2.0) -> LCPParameters:
    """Fit the paper's linear approximation to the Eqn-10 solution.

    Appendix A.2: solve Eqn 10 at ``i = 0`` and ``i = P - 1`` only, giving
    the first and last partition sizes ``n_1`` and ``n - 1 - n_{P-1}``; the
    slope is ``d = (n - 1 - n_{P-1} - n_1) / P`` and the intercept follows
    from ``Σ (a + j d) = n``.
    """
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    if P == 1:
        return LCPParameters(a=float(n), d=0.0, n=n, P=1)
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    share = total_load(n, b) / P

    # First partition: load(0, n_1) = share.
    f_first = lambda z: consecutive_partition_load(0.0, z, n, b) - share  # noqa: E731
    n_1 = optimize.brentq(f_first, 0.0, float(n - 1), xtol=1e-9)

    # Last partition: load(n_{P-1}, n-1) = share.
    f_last = lambda z: consecutive_partition_load(z, float(n - 1), n, b) - share  # noqa: E731
    n_Pm1 = optimize.brentq(f_last, 0.0, float(n - 1), xtol=1e-9)

    first_size = n_1
    last_size = (n - 1) - n_Pm1
    d = (last_size - first_size) / P
    a = n / P - (P - 1) * d / 2.0
    return LCPParameters(a=a, d=d, n=n, P=P)
