"""Algorithm 3.2 — parallel preferential attachment with ``x >= 1`` edges/node.

Extends :mod:`repro.core.parallel_pa` to the general case: the network starts
from a clique on nodes ``0 .. x-1``; every node ``t >= x`` contributes ``x``
distinct edges.  Per edge slot ``(t, e)`` the owner draws ``k`` uniform in
``[x, t-1]`` and a coin:

* **direct** (probability ``p``): attach to ``k`` unless ``k`` already sits
  in ``F_t`` — then redraw ``k`` *and* the coin (Lines 6-10, "go to line 4");
* **copy** (probability ``1 - p``): attach to ``F_k(l)``, ``l`` uniform in
  ``[0, x)``; remote ``k`` becomes a ``<request, t, e, k, l>`` message
  (Lines 11-14).

Duplicates that surface only when a ``<resolved, t, e, v>`` arrives (two
slots copying different chains that happen to end at the same ``v``) are
handled per Lines 26-29: draw a fresh ``(k, l)`` and re-send a request —
note the paper's retry is always copy-flavoured, a deliberate asymmetry this
implementation preserves.

Node ``x`` is the boundary case the pseudocode leaves implicit: its draw
range ``[x, t-1]`` is empty, and its ``x`` distinct targets must come from
the ``x`` existing nodes — so ``F_x = {0, .., x-1}`` deterministically.

The bulk implementation vectorises every phase; the only per-record Python
loops are queue parking/draining, which touch the (rare) unresolved tail.
Intra-batch duplicate arbitration keeps the first record per ``(t, v)`` pair
in batch order — the bulk analogue of the sequential first-come-first-served
adjacency check.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.arena import RecordQueue
from repro.core.partitioning import Partition
from repro.core.routing import route_by_dest
from repro.graph.edgelist import EdgeList
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel
from repro.rng import StreamFactory

__all__ = ["GRECORD_DTYPE", "GREQ", "GRES", "PAGeneralRankProgram", "run_parallel_pa"]

#: Wire format: for requests ``a = k`` and ``l`` is the slot of ``F_k``;
#: for resolved records ``a = v`` and ``l`` is unused (-1).
GRECORD_DTYPE = np.dtype(
    [("kind", "i8"), ("t", "i8"), ("e", "i8"), ("a", "i8"), ("l", "i8")]
)
GREQ = 0
GRES = 1


def _grecords(kind: int, t: np.ndarray, e: np.ndarray, a: np.ndarray, l: np.ndarray) -> np.ndarray:
    rec = np.empty(len(t), dtype=GRECORD_DTYPE)
    rec["kind"] = kind
    rec["t"] = t
    rec["e"] = e
    rec["a"] = a
    rec["l"] = l
    return rec


class PAGeneralRankProgram:
    """One rank's state machine for Algorithm 3.2 (see module docstring)."""

    def __init__(
        self,
        rank: int,
        partition: Partition,
        x: int,
        p: float,
        rng: np.random.Generator,
        canonical_inbox: bool = True,
        queue_factory=None,
    ) -> None:
        if x < 1:
            raise ValueError(f"x must be >= 1, got {x}")
        self.rank = rank
        self.part = partition
        self.x = x
        self.p = p
        self.rng = rng
        # Sort each superstep's inbox by source rank before processing.  The
        # program's intra-batch arbitration and retry draws depend on record
        # order, so without this the result is a function of the exchange's
        # delivery order; the stable sort restores a canonical order no matter
        # how the transport interleaved senders.  ``False`` exposes the raw
        # order — the injected bug the schedule fuzzer must catch.
        self.canonical_inbox = canonical_inbox
        self.nodes = partition.partition_nodes(rank)
        self.F = np.full((len(self.nodes), x), -1, dtype=np.int64)
        self._started = False
        # ``queue_factory(ncols) -> RecordQueue`` swaps the queues' backing
        # (out-of-core runs pass repro.core.spill.SpillQueueFactory)
        make = queue_factory or RecordQueue
        # pending local copies: slot (t local idx, e) awaiting F[k local idx, l]
        self._pend = make(4)  # columns: (t idx, e, k idx, l)
        # remote requesters parked on unknown local slots (the wait queues
        # Q_{k,l} of Lines 19-20, kept in an amortised-doubling arena so
        # each superstep's append costs the batch, not the queue):
        # waiting slot (t, e) needs the value of local flat slot `key`.
        self._park = make(3)  # columns: (key = kidx * x + l, t, e)
        self._unresolved = int((self.nodes >= x).sum()) * x
        self.requests_sent = 0
        self.requests_received = 0
        self.retries = 0

    # ------------------------------------------------------------ interface
    @property
    def done(self) -> bool:
        return self._started and self._unresolved == 0

    def result(self) -> tuple[np.ndarray, np.ndarray]:
        """Local edges as ``(u, v)`` arrays: clique edges of owned clique
        nodes plus ``(t, F_t(e))`` for owned ``t >= x``."""
        us: list[np.ndarray] = []
        vs: list[np.ndarray] = []
        clique = self.nodes[(self.nodes >= 1) & (self.nodes < self.x)]
        for j in clique.tolist():
            us.append(np.full(j, j, dtype=np.int64))
            vs.append(np.arange(j, dtype=np.int64))
        mask = self.nodes >= self.x
        t = self.nodes[mask]
        if len(t):
            us.append(np.repeat(t, self.x))
            vs.append(self.F[mask].reshape(-1))
        if not us:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(us), np.concatenate(vs)

    def local_edges(self) -> EdgeList:
        u, v = self.result()
        return EdgeList.from_arrays(u, v)

    def step(self, ctx: BSPRankContext, inbox) -> dict[int, list[np.ndarray]]:
        if self.canonical_inbox and len(inbox) > 1:
            inbox = sorted(inbox, key=lambda item: item[0])
        out: dict[int, list[np.ndarray]] = defaultdict(list)
        newly: list[np.ndarray] = []  # flat slot keys (tidx * x + e) assigned

        if not self._started:
            self._started = True
            self._setup(ctx, out, newly)

        for _src, arr in inbox:
            res = arr[arr["kind"] == GRES]
            if len(res):
                self._apply_resolved(res, out, newly, ctx)

        self._local_sweep(out, newly, ctx)

        for _src, arr in inbox:
            req = arr[arr["kind"] == GREQ]
            if len(req):
                self._park_requests(req, ctx)

        self._drain_parked(out, ctx)
        return {d: [np.concatenate(b)] for d, b in out.items() if b}

    # --------------------------------------------------------------- setup
    def _setup(self, ctx: BSPRankContext, out, newly) -> None:
        ctx.charge(nodes=len(self.nodes))

        # Node x: deterministic attachment to the whole clique.
        idx_x = np.flatnonzero(self.nodes == self.x)
        if len(idx_x):
            ti = int(idx_x[0])
            self.F[ti, :] = np.arange(self.x)
            self._unresolved -= self.x
            newly.append(ti * self.x + np.arange(self.x, dtype=np.int64))

        mask = self.nodes > self.x
        t = self.nodes[mask]
        if len(t) == 0:
            return
        tidx = np.flatnonzero(mask).astype(np.int64)
        T = np.repeat(t, self.x)
        Tidx = np.repeat(tidx, self.x)
        E = np.tile(np.arange(self.x, dtype=np.int64), len(t))
        self._draw_and_dispatch(Tidx, T, E, out, newly, ctx, redraw_coin=True)

    # ------------------------------------------------------ draw machinery
    def _draw_and_dispatch(
        self,
        Tidx: np.ndarray,
        T: np.ndarray,
        E: np.ndarray,
        out,
        newly,
        ctx: BSPRankContext,
        redraw_coin: bool,
    ) -> None:
        """Draw ``(k, coin[, l])`` for the given slots and route them.

        Direct slots attempt assignment immediately (redrawing on duplicates,
        per Lines 6-10); copy slots become local pendings or remote requests.
        ``redraw_coin=False`` implements the resolve-time retry of
        Lines 27-29, which is always copy-flavoured.
        """
        todo_idx, todo_t, todo_e = Tidx, T, E
        while len(todo_t):
            ctx.charge(work_items=len(todo_t))
            k = self.x + (self.rng.random(len(todo_t)) * (todo_t - self.x)).astype(np.int64)
            if redraw_coin:
                direct = self.rng.random(len(todo_t)) < self.p
            else:
                direct = np.zeros(len(todo_t), dtype=bool)

            # --- direct slots: try to assign v = k now -------------------
            d_sel = np.flatnonzero(direct)
            retry_direct = np.empty(0, dtype=np.int64)
            if len(d_sel):
                win = self._try_assign(todo_idx[d_sel], todo_e[d_sel], k[d_sel], newly)
                retry_direct = d_sel[~win]
                self.retries += len(retry_direct)

            # --- copy slots: need F_k(l) ---------------------------------
            c_sel = np.flatnonzero(~direct)
            if len(c_sel):
                l = (self.rng.random(len(c_sel)) * self.x).astype(np.int64)
                ck, ct, ce, cidx = k[c_sel], todo_t[c_sel], todo_e[c_sel], todo_idx[c_sel]
                owners = self.part.owner(ck)
                local = owners == self.rank
                if local.any():
                    kloc = np.asarray(
                        self.part.local_index(self.rank, ck[local]), dtype=np.int64
                    )
                    self._pend.push(cidx[local], ce[local], kloc, l[local])
                remote = ~local
                if remote.any():
                    self._route(
                        out,
                        _grecords(GREQ, ct[remote], ce[remote], ck[remote], l[remote]),
                        owners[remote],
                    )
                    self.requests_sent += int(remote.sum())

            todo_idx = todo_idx[retry_direct]
            todo_t = todo_t[retry_direct]
            todo_e = todo_e[retry_direct]
            redraw_coin = True  # any further retry re-flips the coin

    def _try_assign(
        self, tidx: np.ndarray, e: np.ndarray, v: np.ndarray, newly
    ) -> np.ndarray:
        """Assign ``F[tidx, e] = v`` where legal; return the winner mask.

        A slot loses when ``v`` already sits in its row or an earlier record
        of the same batch claims the same ``(row, v)`` pair.
        """
        dup_row = (self.F[tidx] == v[:, None]).any(axis=1)
        # intra-batch first-wins per (row, value), preserving batch order
        order = np.lexsort((np.arange(len(tidx)), v, tidx))
        key_t, key_v = tidx[order], v[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = (key_t[1:] != key_t[:-1]) | (key_v[1:] != key_v[:-1])
        keep = np.zeros(len(tidx), dtype=bool)
        keep[order[first]] = True
        win = keep & ~dup_row
        if win.any():
            wt, we, wv = tidx[win], e[win], v[win]
            self.F[wt, we] = wv
            self._unresolved -= len(wt)
            newly.append(wt * self.x + we)
        return win

    # ------------------------------------------------------------ messages
    def _apply_resolved(self, res: np.ndarray, out, newly, ctx: BSPRankContext) -> None:
        """Lines 21-29: install resolved values, retrying duplicates."""
        tidx = np.asarray(self.part.local_index(self.rank, res["t"]), dtype=np.int64)
        ctx.charge(work_items=len(tidx))
        win = self._try_assign(tidx, res["e"], res["a"], newly)
        lose = ~win
        if lose.any():
            self.retries += int(lose.sum())
            self._draw_and_dispatch(
                tidx[lose], res["t"][lose], res["e"][lose], out, newly, ctx, redraw_coin=False
            )

    def _local_sweep(self, out, newly, ctx: BSPRankContext) -> None:
        """Resolve local copy slots whose source slot is now known."""
        while len(self._pend):
            pend_t, pend_e, pend_k, pend_l = self._pend.columns()
            vals = self.F[pend_k, pend_l]
            ready = vals >= 0
            if not ready.any():
                return
            rt, re_, rv = pend_t[ready], pend_e[ready], vals[ready]
            self._pend.keep(~ready)
            ctx.charge(work_items=len(rt))
            win = self._try_assign(rt, re_, rv, newly)
            lose = ~win
            if lose.any():
                self.retries += int(lose.sum())
                self._draw_and_dispatch(
                    rt[lose], self.nodes[rt[lose]], re_[lose], out, newly, ctx, redraw_coin=False
                )

    def _park_requests(self, req: np.ndarray, ctx: BSPRankContext) -> None:
        """Lines 16-20: park arriving requests on their target slot.

        Known slots are answered in :meth:`_drain_parked` at the end of the
        same step — identical messages, one vectorised code path.
        """
        self.requests_received += len(req)
        ctx.charge(work_items=len(req))
        kidx = np.asarray(self.part.local_index(self.rank, req["a"]), dtype=np.int64)
        self._park.push(kidx * self.x + req["l"], req["t"], req["e"])

    def _drain_parked(self, out, ctx: BSPRankContext) -> None:
        """Answer every parked request whose slot has resolved (Lines 17-18
        and 24-25, executed in bulk)."""
        if not len(self._park):
            return
        park_key, park_t, park_e = self._park.columns()
        vals = self.F.reshape(-1)[park_key]
        ready = vals >= 0
        if not ready.any():
            return
        t_out = park_t[ready]
        e_out = park_e[ready]
        v_out = vals[ready]
        self._park.keep(~ready)
        ctx.charge(work_items=len(t_out))
        self._route(
            out,
            _grecords(GRES, t_out, e_out, v_out, np.full(len(t_out), -1, dtype=np.int64)),
            self.part.owner(t_out),
        )

    def _route(self, out, records: np.ndarray, dests: np.ndarray) -> None:
        route_by_dest(out, records, dests)


def run_parallel_pa(
    n: int,
    x: int,
    partition: Partition,
    p: float = 0.5,
    seed: int | None = None,
    cost_model: CostModel | None = None,
    max_supersteps: int = 10_000,
    checkpointer=None,
    fault_plan=None,
    telemetry=None,
    schedule=None,
    canonical_inbox: bool = True,
) -> tuple[EdgeList, BSPEngine, list[PAGeneralRankProgram]]:
    """Generate a PA network with ``x`` edges per node on the BSP engine.

    Returns the merged edge list, the engine, and the rank programs (whose
    ``requests_sent`` / ``requests_received`` counters feed Figure 7).
    ``fault_plan`` injects faults without recovery (failures propagate); use
    :class:`repro.mpsim.supervisor.Supervisor` for supervised runs.
    ``schedule`` (a :class:`repro.schedsim.Schedule`) permutes activation and
    inbox order; ``canonical_inbox=False`` disables the programs' defensive
    inbox sort, exposing delivery order to the algorithm (fuzzer test knob).
    """
    if partition.n != n:
        raise ValueError(f"partition covers n={partition.n}, requested n={n}")
    if x > 1 and n <= x:
        raise ValueError(f"need n > x, got n={n}, x={x}")
    factory = StreamFactory(seed)
    programs = [
        PAGeneralRankProgram(
            r, partition, x, p, factory.stream(r), canonical_inbox=canonical_inbox
        )
        for r in range(partition.P)
    ]
    engine = BSPEngine(
        partition.P,
        cost_model=cost_model,
        max_supersteps=max_supersteps,
        telemetry=telemetry,
    )
    engine.run(
        programs, checkpointer=checkpointer, fault_plan=fault_plan, schedule=schedule
    )
    edges = EdgeList(capacity=max(n * x, 1))
    for prog in programs:
        u, v = prog.result()
        edges.append_arrays(u, v)
    return edges, engine, programs
