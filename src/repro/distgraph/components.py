"""Distributed connected components by hash-min label propagation.

Every node starts labelled with its own id; each round, nodes push their
current label to their neighbours and adopt the minimum label they see.
Labels converge to the minimum node id of each component in at most
``diameter`` rounds — a handful for the small-world graphs this library
generates.  An early-exit optimisation propagates only *changed* labels, so
traffic shrinks geometrically after the first rounds.
"""

from __future__ import annotations

import numpy as np

from repro.distgraph.storage import DistributedGraph
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel

__all__ = ["distributed_components"]


class _CCProgram:
    def __init__(
        self,
        rank: int,
        graph: DistributedGraph,
        labels0: np.ndarray | None = None,
    ) -> None:
        self.rank = rank
        self.g = graph
        self.part = graph.partition
        self.nodes = self.part.partition_nodes(rank)
        if labels0 is None:
            self.labels = self.nodes.copy()
        else:
            self.labels = np.asarray(labels0, dtype=np.int64)[self.nodes].copy()
        # all nodes are "changed" initially so the first round pushes everything
        self.changed = np.arange(len(self.nodes), dtype=np.int64)

    @property
    def done(self) -> bool:
        return len(self.changed) == 0

    def step(self, ctx: BSPRankContext, inbox):
        # 1. apply incoming label proposals: (node, label) pairs
        for _src, arr in inbox:
            lidx = np.asarray(self.part.local_index(self.rank, arr[:, 0]), dtype=np.int64)
            proposal = arr[:, 1]
            ctx.charge(work_items=len(arr))
            # scatter-min: sort by (lidx, label) and keep the first per lidx
            order = np.lexsort((proposal, lidx))
            li, pr = lidx[order], proposal[order]
            first = np.ones(len(li), dtype=bool)
            first[1:] = li[1:] != li[:-1]
            li, pr = li[first], pr[first]
            better = pr < self.labels[li]
            if better.any():
                self.labels[li[better]] = pr[better]
                self.changed = np.unique(
                    np.concatenate([self.changed, li[better]])
                )

        if len(self.changed) == 0:
            return None

        # 2. push the changed labels to all neighbours
        indptr = self.g.indptr[self.rank]
        nbrs = self.g.neighbors[self.rank]
        spans = []
        labels_out = []
        for i in self.changed.tolist():
            span = nbrs[indptr[i]:indptr[i + 1]]
            spans.append(span)
            labels_out.append(np.full(len(span), self.labels[i], dtype=np.int64))
        self.changed = np.empty(0, dtype=np.int64)
        if not spans:
            return None
        targets = np.concatenate(spans)
        labels_arr = np.concatenate(labels_out)
        ctx.charge(work_items=len(targets))
        owners = np.asarray(self.part.owner(targets))

        # local proposals applied immediately
        local = owners == self.rank
        if local.any():
            lidx = np.asarray(
                self.part.local_index(self.rank, targets[local]), dtype=np.int64
            )
            pr = labels_arr[local]
            order = np.lexsort((pr, lidx))
            li, prs = lidx[order], pr[order]
            first = np.ones(len(li), dtype=bool)
            first[1:] = li[1:] != li[:-1]
            li, prs = li[first], prs[first]
            better = prs < self.labels[li]
            if better.any():
                self.labels[li[better]] = prs[better]
                self.changed = li[better]

        out: dict[int, list[np.ndarray]] = {}
        remote = ~local
        if remote.any():
            r_t, r_l, r_o = targets[remote], labels_arr[remote], owners[remote]
            order = np.argsort(r_o, kind="stable")
            r_t, r_l, r_o = r_t[order], r_l[order], r_o[order]
            cut = np.flatnonzero(np.diff(r_o)) + 1
            dests = np.concatenate([r_o[:1], r_o[cut]])
            for dest, t_chunk, l_chunk in zip(
                dests.tolist(), np.split(r_t, cut), np.split(r_l, cut)
            ):
                out[int(dest)] = [np.column_stack([t_chunk, l_chunk])]
        return out or None


def distributed_components(
    graph: DistributedGraph,
    cost_model: CostModel | None = None,
    labels0: np.ndarray | None = None,
) -> tuple[np.ndarray, BSPEngine]:
    """Component label (minimum member id) for every node.

    ``labels0`` warm-starts the propagation: entry ``i`` seeds node ``i``'s
    label.  The result is exact as long as every seed is the id of a node
    in the same component (the default all-self seeding trivially
    qualifies; :func:`repro.dyngraph.incremental.warm_start_labels` derives
    such seeds from an epoch delta) — hash-min then converges to the same
    minimum-member labels as a cold run, typically in far fewer rounds.

    Examples
    --------
    >>> from repro.core.partitioning import make_partition
    >>> from repro.graph.edgelist import EdgeList
    >>> part = make_partition("rrp", 5, 2)
    >>> g = DistributedGraph.from_edgelist(
    ...     EdgeList.from_arrays([1, 4], [0, 3]), part)
    >>> labels, _ = distributed_components(g)
    >>> labels.tolist()
    [0, 0, 2, 3, 3]
    """
    part = graph.partition
    if labels0 is not None and len(labels0) != graph.num_nodes:
        raise ValueError(
            f"labels0 has {len(labels0)} entries, graph has "
            f"{graph.num_nodes} nodes"
        )
    programs = [_CCProgram(r, graph, labels0) for r in range(part.P)]
    engine = BSPEngine(part.P, cost_model=cost_model)
    engine.run(programs)
    labels = np.empty(graph.num_nodes, dtype=np.int64)
    for r, prog in enumerate(programs):
        labels[part.partition_nodes(r)] = prog.labels
    return labels, engine
