"""Distributed degree statistics (reduction to rank 0).

Degrees are local to each rank (every owned node's full neighbour list is
stored locally), so the only communication is the reduction that assembles
the global histogram: each rank bins its owned degrees and sends one partial
histogram array to rank 0 — the distributed analogue of the measurement
behind Figure 4.
"""

from __future__ import annotations

import numpy as np

from repro.distgraph.storage import DistributedGraph
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel

__all__ = ["distributed_degrees", "distributed_degree_histogram"]


def distributed_degrees(graph: DistributedGraph) -> np.ndarray:
    """Global degree array, assembled from per-rank local degrees.

    Communication-free: the vertex partition stores each node's full
    adjacency at its owner.
    """
    deg = np.empty(graph.num_nodes, dtype=np.int64)
    for r in range(graph.num_ranks):
        deg[graph.partition.partition_nodes(r)] = graph.local_degrees(r)
    return deg


class _HistogramProgram:
    def __init__(self, rank: int, graph: DistributedGraph, max_degree: int) -> None:
        self.rank = rank
        self.g = graph
        self.max_degree = max_degree
        self._sent = False
        self.histogram: np.ndarray | None = None
        self._partials: list[np.ndarray] = []

    @property
    def done(self) -> bool:
        return self._sent and (self.rank != 0 or self.histogram is not None)

    def step(self, ctx: BSPRankContext, inbox):
        for _src, arr in inbox:
            self._partials.append(arr)
        if not self._sent:
            self._sent = True
            local = np.bincount(
                np.minimum(self.g.local_degrees(self.rank), self.max_degree),
                minlength=self.max_degree + 1,
            )
            ctx.charge(work_items=int(local.sum()))
            if self.rank == 0:
                self._partials.append(local)
                if self.g.num_ranks == 1:
                    self.histogram = local
                return None
            return {0: [local]}
        if self.rank == 0 and self.histogram is None:
            if len(self._partials) == self.g.num_ranks:
                self.histogram = np.sum(self._partials, axis=0)
                ctx.charge(work_items=len(self.histogram))
        return None


def distributed_degree_histogram(
    graph: DistributedGraph,
    max_degree: int | None = None,
    cost_model: CostModel | None = None,
) -> tuple[np.ndarray, BSPEngine]:
    """Global degree histogram computed by a rank-0 reduction.

    Returns ``counts`` where ``counts[k]`` is the number of nodes of degree
    ``k`` (the last bin pools degrees ``>= max_degree``), plus the engine.

    Examples
    --------
    >>> from repro.core.partitioning import make_partition
    >>> from repro.graph.edgelist import EdgeList
    >>> part = make_partition("rrp", 3, 2)
    >>> g = DistributedGraph.from_edgelist(
    ...     EdgeList.from_arrays([1, 2], [0, 0]), part)
    >>> counts, _ = distributed_degree_histogram(g)
    >>> counts[1], counts[2]
    (np.int64(2), np.int64(1))
    """
    if max_degree is None:
        max_degree = max(
            (int(graph.local_degrees(r).max()) if len(graph.local_degrees(r)) else 0)
            for r in range(graph.num_ranks)
        )
    programs = [
        _HistogramProgram(r, graph, max_degree) for r in range(graph.num_ranks)
    ]
    engine = BSPEngine(graph.num_ranks, cost_model=cost_model)
    engine.run(programs)
    hist = programs[0].histogram
    assert hist is not None
    return hist, engine
