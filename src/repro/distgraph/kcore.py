"""Distributed k-core membership by iterative pruning.

The k-core is the maximal subgraph with all degrees >= k; it is obtained by
repeatedly deleting nodes of residual degree < k.  The deletion rounds
parallelise naturally: each round every rank prunes its own sub-threshold
nodes and notifies the owners of their neighbours, whose residual degrees
drop — possibly cascading next round.  Rounds = pruning depth (small for
heavy-tailed graphs).

:func:`distributed_kcore` returns the membership mask for a fixed ``k``;
:func:`distributed_core_numbers` sweeps ``k`` upward to recover the full
core decomposition (each sweep reuses the previous survivor set, so total
work is proportional to the decomposition size, not ``k_max * m``).
Validated against the exact Matula–Beck implementation in
:mod:`repro.graph.analysis`.
"""

from __future__ import annotations

import numpy as np

from repro.distgraph.storage import DistributedGraph
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel

__all__ = ["distributed_kcore", "distributed_core_numbers"]


class _KCoreProgram:
    def __init__(
        self, rank: int, graph: DistributedGraph, k: int, alive: np.ndarray
    ) -> None:
        self.rank = rank
        self.g = graph
        self.part = graph.partition
        self.k = k
        self.alive = alive.copy()  # local membership mask
        self.residual = graph.local_degrees(rank).astype(np.int64)
        # degrees must discount neighbours that are already dead on entry
        self._initial_sync_done = False

    @property
    def done(self) -> bool:
        # done when no local node is alive-but-under-threshold
        return self._initial_sync_done and not (
            self.alive & (self.residual < self.k)
        ).any()

    def step(self, ctx: BSPRankContext, inbox):
        # fold decrements from neighbours pruned elsewhere
        for _src, arr in inbox:
            lidx = np.asarray(self.part.local_index(self.rank, arr), dtype=np.int64)
            np.subtract.at(self.residual, lidx, 1)
            ctx.charge(work_items=len(arr))

        # the runner pre-computed alive-only residuals before the first step
        self._initial_sync_done = True

        # prune all local sub-threshold nodes this round
        victims = np.flatnonzero(self.alive & (self.residual < self.k))
        if not len(victims):
            return None
        self.alive[victims] = False
        ctx.charge(work_items=len(victims))

        indptr = self.g.indptr[self.rank]
        nbrs = self.g.neighbors[self.rank]
        spans = [nbrs[indptr[i]:indptr[i + 1]] for i in victims.tolist()]
        targets = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
        owners = np.asarray(self.part.owner(targets))

        local = owners == self.rank
        if local.any():
            lidx = np.asarray(
                self.part.local_index(self.rank, targets[local]), dtype=np.int64
            )
            np.subtract.at(self.residual, lidx, 1)

        out: dict[int, list[np.ndarray]] = {}
        remote = ~local
        if remote.any():
            r_t, r_o = targets[remote], owners[remote]
            order = np.argsort(r_o, kind="stable")
            r_t, r_o = r_t[order], r_o[order]
            cut = np.flatnonzero(np.diff(r_o)) + 1
            dests = np.concatenate([r_o[:1], r_o[cut]])
            for dest, chunk in zip(dests.tolist(), np.split(r_t, cut)):
                out[int(dest)] = [chunk]
        return out or None


def distributed_kcore(
    graph: DistributedGraph,
    k: int,
    alive: np.ndarray | None = None,
    cost_model: CostModel | None = None,
) -> tuple[np.ndarray, BSPEngine]:
    """Membership mask of the k-core (global node order).

    ``alive`` restricts the computation to a survivor subset (used by the
    decomposition sweep); by default all nodes start alive.

    Examples
    --------
    >>> from repro.core.partitioning import make_partition
    >>> from repro.graph.edgelist import EdgeList
    >>> part = make_partition("rrp", 5, 2)
    >>> el = EdgeList.from_arrays([1, 2, 2, 3], [0, 0, 1, 2])  # triangle + tail
    >>> g = DistributedGraph.from_edgelist(el, part)
    >>> mask, _ = distributed_kcore(g, 2)
    >>> mask.tolist()
    [True, True, True, False, False]
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    part = graph.partition
    if alive is None:
        alive = np.ones(graph.num_nodes, dtype=bool)
    if len(alive) != graph.num_nodes:
        raise ValueError("alive mask must cover every node")

    programs = []
    for r in range(part.P):
        local_alive = alive[part.partition_nodes(r)]
        prog = _KCoreProgram(r, graph, k, local_alive)
        # residuals must count only alive neighbours: prefix-sum the alive
        # indicator over the CSR neighbour array and difference at row ends
        indptr = graph.indptr[r]
        nbrs = graph.neighbors[r]
        cs = np.concatenate([[0], np.cumsum(alive[nbrs].astype(np.int64))])
        prog.residual = cs[indptr[1:]] - cs[indptr[:-1]]
        programs.append(prog)

    engine = BSPEngine(part.P, cost_model=cost_model)
    engine.run(programs)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    for r, prog in enumerate(programs):
        mask[part.partition_nodes(r)] = prog.alive
    return mask, engine


def distributed_core_numbers(
    graph: DistributedGraph,
    cost_model: CostModel | None = None,
) -> np.ndarray:
    """Full core decomposition by sweeping k upward over survivor sets."""
    n = graph.num_nodes
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    k = 1
    while alive.any():
        mask, _ = distributed_kcore(graph, k, alive=alive, cost_model=cost_model)
        if not mask.any():
            break
        core[mask] = k
        alive = mask
        k += 1
    return core
