"""Distributed graph storage and analysis on the simulated substrate.

Section 3.2 of the paper motivates its partitioning flexibility with the
downstream consumer: "Many network analysis algorithms require partitioning
the graph into equal number of edges per processor.  Some algorithms require
the consecutive nodes to be stored in the same processor."  This subpackage
is that consumer: it keeps the generated network *distributed* — each rank
holds the adjacency of its partition's nodes — and runs classic analyses as
BSP rank programs over the same engine and partitions the generator used,
so a graph can be generated and analysed end-to-end without ever being
gathered to one address space.

* :mod:`repro.distgraph.storage` — :class:`DistributedGraph`: per-rank CSR
  adjacency built by a one-superstep edge scatter;
* :mod:`repro.distgraph.bfs` — breadth-first search with frontier exchange;
* :mod:`repro.distgraph.components` — connected components by hash-min
  label propagation;
* :mod:`repro.distgraph.pagerank` — power-iteration PageRank with
  contribution exchange;
* :mod:`repro.distgraph.degree` — distributed degree statistics/histograms
  via a reduction to rank 0.

Every algorithm is validated against a sequential reference (NetworkX or
the in-repo exact implementation) in ``tests/distgraph/``.
"""

from repro.distgraph.storage import DistributedGraph
from repro.distgraph.bfs import distributed_bfs
from repro.distgraph.components import distributed_components
from repro.distgraph.degree import distributed_degree_histogram, distributed_degrees
from repro.distgraph.pagerank import distributed_pagerank
from repro.distgraph.repartition import DegreeBalancedPartition, repartition
from repro.distgraph.kcore import distributed_core_numbers, distributed_kcore
from repro.distgraph.triangles import distributed_triangles

__all__ = [
    "DegreeBalancedPartition",
    "DistributedGraph",
    "distributed_bfs",
    "distributed_components",
    "distributed_core_numbers",
    "distributed_degree_histogram",
    "distributed_degrees",
    "distributed_kcore",
    "distributed_pagerank",
    "distributed_triangles",
    "repartition",
]
