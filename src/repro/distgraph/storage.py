"""Distributed (vertex-partitioned) graph storage.

A :class:`DistributedGraph` holds, per rank, the CSR adjacency of the nodes
that rank owns under a :class:`~repro.core.partitioning.Partition`.  Each
undirected edge ``(u, v)`` therefore appears twice — once at ``owner(u)``
and once at ``owner(v)`` — which is the standard 1-D vertex partitioning
used by distributed BFS/PageRank codes.

Construction is itself a BSP program (:class:`_ScatterProgram`): every rank
starts from an arbitrary slice of the edge list (e.g. the edges it
generated) and routes each endpoint's adjacency record to that endpoint's
owner in a single exchange — the same "buffered message" machinery the
generator uses.  The test-suite cross-checks the distributed adjacency
against :func:`repro.graph.metrics.adjacency_from_edges`.
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioning import Partition
from repro.graph.edgelist import EdgeList
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel

__all__ = ["DistributedGraph"]


class _ScatterProgram:
    """One rank of the edge-scatter: route adjacency records to owners."""

    def __init__(self, rank: int, partition: Partition, u: np.ndarray, v: np.ndarray) -> None:
        self.rank = rank
        self.part = partition
        self._initial_u = u
        self._initial_v = v
        self._sent = False
        # accumulated local adjacency records: (owned node, neighbour)
        self._recs_node: list[np.ndarray] = []
        self._recs_nbr: list[np.ndarray] = []

    @property
    def done(self) -> bool:
        return self._sent

    def step(self, ctx: BSPRankContext, inbox):
        for _src, arr in inbox:
            self._recs_node.append(arr[:, 0])
            self._recs_nbr.append(arr[:, 1])
        if self._sent:
            return None
        self._sent = True
        u, v = self._initial_u, self._initial_v
        # both orientations: record (u, v) goes to owner(u), (v, u) to owner(v)
        nodes = np.concatenate([u, v])
        nbrs = np.concatenate([v, u])
        owners = np.asarray(self.part.owner(nodes))
        ctx.charge(work_items=len(nodes))
        local = owners == self.rank
        if local.any():
            self._recs_node.append(nodes[local])
            self._recs_nbr.append(nbrs[local])
        out: dict[int, list[np.ndarray]] = {}
        remote = ~local
        if remote.any():
            r_nodes, r_nbrs, r_owner = nodes[remote], nbrs[remote], owners[remote]
            order = np.argsort(r_owner, kind="stable")
            r_nodes, r_nbrs, r_owner = r_nodes[order], r_nbrs[order], r_owner[order]
            cut = np.flatnonzero(np.diff(r_owner)) + 1
            dests = np.concatenate([r_owner[:1], r_owner[cut]])
            for dest, node_chunk, nbr_chunk in zip(
                dests.tolist(), np.split(r_nodes, cut), np.split(r_nbrs, cut)
            ):
                out[int(dest)] = [np.column_stack([node_chunk, nbr_chunk])]
        return out or None

    def build_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Local CSR over this rank's owned nodes (local indices)."""
        count = self.part.partition_size(self.rank)
        if not self._recs_node:
            return np.zeros(count + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
        nodes = np.concatenate(self._recs_node)
        nbrs = np.concatenate(self._recs_nbr)
        lidx = np.asarray(self.part.local_index(self.rank, nodes), dtype=np.int64)
        order = np.argsort(lidx, kind="stable")
        lidx, nbrs = lidx[order], nbrs[order]
        indptr = np.zeros(count + 1, dtype=np.int64)
        np.add.at(indptr, lidx + 1, 1)
        np.cumsum(indptr, out=indptr)
        return indptr, nbrs


class DistributedGraph:
    """Vertex-partitioned adjacency across simulated ranks.

    Parameters are normally supplied through :meth:`from_edgelist` (scatter
    a global edge list) or :meth:`from_rank_edges` (adopt the per-rank edges
    a generator produced — zero-copy of the generation's distribution).

    Attributes
    ----------
    partition:
        The node partition (shared with the analysis programs).
    indptr, neighbors:
        Per-rank CSR arrays: ``neighbors[r][indptr[r][i]:indptr[r][i+1]]``
        lists the neighbours of the ``i``-th node owned by rank ``r``.
    """

    def __init__(
        self,
        partition: Partition,
        indptr: list[np.ndarray],
        neighbors: list[np.ndarray],
    ) -> None:
        if len(indptr) != partition.P or len(neighbors) != partition.P:
            raise ValueError("need one CSR pair per rank")
        self.partition = partition
        self.indptr = indptr
        self.neighbors = neighbors

    # ------------------------------------------------------------ builders
    @classmethod
    def from_edgelist(
        cls,
        edges: EdgeList,
        partition: Partition,
        cost_model: CostModel | None = None,
    ) -> "DistributedGraph":
        """Scatter a global edge list into per-rank adjacency (one exchange).

        The initial slicing assigns contiguous edge ranges to ranks, as if
        each rank had read its stripe of a shared edge file (the paper's
        shared-file-system model).
        """
        P = partition.P
        bounds = np.linspace(0, len(edges), P + 1).astype(np.int64)
        programs = [
            _ScatterProgram(
                r,
                partition,
                edges.sources[bounds[r]:bounds[r + 1]],
                edges.targets[bounds[r]:bounds[r + 1]],
            )
            for r in range(P)
        ]
        engine = BSPEngine(P, cost_model=cost_model)
        engine.run(programs)
        indptr, neighbors = zip(*(prog.build_csr() for prog in programs))
        return cls(partition, list(indptr), list(neighbors))

    @classmethod
    def from_rank_edges(
        cls,
        rank_edges: list[EdgeList],
        partition: Partition,
        cost_model: CostModel | None = None,
    ) -> "DistributedGraph":
        """Adopt per-rank edge lists (e.g. generator output) directly."""
        if len(rank_edges) != partition.P:
            raise ValueError("need one edge list per rank")
        programs = [
            _ScatterProgram(r, partition, el.sources, el.targets)
            for r, el in enumerate(rank_edges)
        ]
        engine = BSPEngine(partition.P, cost_model=cost_model)
        engine.run(programs)
        indptr, neighbors = zip(*(prog.build_csr() for prog in programs))
        return cls(partition, list(indptr), list(neighbors))

    # ------------------------------------------------------------ accessors
    @property
    def num_nodes(self) -> int:
        return self.partition.n

    @property
    def num_ranks(self) -> int:
        return self.partition.P

    @property
    def num_edges(self) -> int:
        """Global undirected edge count (each edge stored twice)."""
        return sum(len(nb) for nb in self.neighbors) // 2

    def local_degrees(self, rank: int) -> np.ndarray:
        """Degrees of the nodes owned by ``rank`` (local order)."""
        return np.diff(self.indptr[rank])

    def neighbors_of(self, node: int) -> np.ndarray:
        """Global convenience accessor (test/debug; analysis code must not
        reach across ranks like this)."""
        rank = int(self.partition.owner(node))
        i = int(self.partition.local_index(rank, node))
        ptr = self.indptr[rank]
        return self.neighbors[rank][ptr[i]:ptr[i + 1]]

    def __repr__(self) -> str:
        return (
            f"DistributedGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"P={self.num_ranks}, scheme={self.partition.scheme!r})"
        )
