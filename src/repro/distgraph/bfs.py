"""Distributed breadth-first search (frontier exchange).

Level-synchronous BFS, the canonical distributed-graph kernel: each
superstep every rank expands its local frontier, routes newly reached node
ids to their owners, and owners admit first-time visitors into the next
frontier.  Supersteps = eccentricity of the source (+1 drain round), which
for the generated scale-free networks is ~log n — the "ultra-small world"
property measured directly on the distributed graph.
"""

from __future__ import annotations

import numpy as np

from repro.distgraph.storage import DistributedGraph
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel

__all__ = ["distributed_bfs"]


class _BFSProgram:
    """Level-synchronous BFS rank program.

    Distance bookkeeping relies on every rank stepping in every superstep
    (the BSP engine guarantees this): a node admitted from the inbox at
    superstep ``r`` was discovered by a round-``r-1`` expansion, so its
    distance is ``r - 1``; a node admitted locally during superstep ``r``'s
    own expansion has distance ``r``.
    """

    def __init__(self, rank: int, graph: DistributedGraph, source: int) -> None:
        self.rank = rank
        self.g = graph
        self.part = graph.partition
        count = self.part.partition_size(rank)
        self.dist = np.full(count, -1, dtype=np.int64)
        self.round = 0
        self.frontier = np.empty(0, dtype=np.int64)  # local indices
        if int(self.part.owner(source)) == rank:
            src_idx = int(self.part.local_index(rank, source))
            self.dist[src_idx] = 0
            self.frontier = np.array([src_idx], dtype=np.int64)

    @property
    def done(self) -> bool:
        return len(self.frontier) == 0

    def step(self, ctx: BSPRankContext, inbox):
        self.round += 1

        # Admit arrivals from the previous superstep's expansions.
        arrivals: list[np.ndarray] = [arr for _src, arr in inbox]
        if arrivals:
            cand = np.unique(np.concatenate(arrivals))
            lidx = np.asarray(self.part.local_index(self.rank, cand), dtype=np.int64)
            fresh = lidx[self.dist[lidx] < 0]
            self.dist[fresh] = self.round - 1
            self.frontier = np.concatenate([self.frontier, fresh])
            ctx.charge(work_items=len(cand))

        if len(self.frontier) == 0:
            return None

        # Expand: collect all neighbours of the frontier.
        indptr = self.g.indptr[self.rank]
        nbrs = self.g.neighbors[self.rank]
        spans = [nbrs[indptr[i]:indptr[i + 1]] for i in self.frontier.tolist()]
        self.frontier = np.empty(0, dtype=np.int64)
        if not spans:
            return None
        targets = np.unique(np.concatenate(spans))
        ctx.charge(work_items=len(targets))
        owners = np.asarray(self.part.owner(targets))

        # Local admissions happen immediately (same superstep).
        local = owners == self.rank
        if local.any():
            lidx = np.asarray(
                self.part.local_index(self.rank, targets[local]), dtype=np.int64
            )
            fresh = lidx[self.dist[lidx] < 0]
            self.dist[fresh] = self.round
            self.frontier = fresh

        out: dict[int, list[np.ndarray]] = {}
        remote = ~local
        if remote.any():
            r_t, r_o = targets[remote], owners[remote]
            order = np.argsort(r_o, kind="stable")
            r_t, r_o = r_t[order], r_o[order]
            cut = np.flatnonzero(np.diff(r_o)) + 1
            dests = np.concatenate([r_o[:1], r_o[cut]])
            for dest, chunk in zip(dests.tolist(), np.split(r_t, cut)):
                out[int(dest)] = [chunk]
        return out or None


def distributed_bfs(
    graph: DistributedGraph,
    source: int,
    cost_model: CostModel | None = None,
) -> tuple[np.ndarray, BSPEngine]:
    """BFS distances from ``source`` over a distributed graph.

    Returns the global distance array (-1 = unreachable) and the engine
    (for superstep/traffic telemetry).

    Examples
    --------
    >>> from repro.core.partitioning import make_partition
    >>> from repro.graph.edgelist import EdgeList
    >>> part = make_partition("rrp", 4, 2)
    >>> g = DistributedGraph.from_edgelist(
    ...     EdgeList.from_arrays([1, 2, 3], [0, 1, 2]), part)
    >>> dist, _ = distributed_bfs(g, 0)
    >>> dist.tolist()
    [0, 1, 2, 3]
    """
    if not 0 <= source < graph.num_nodes:
        raise ValueError(f"source {source} outside [0, {graph.num_nodes})")
    part = graph.partition
    programs = [_BFSProgram(r, graph, source) for r in range(part.P)]
    engine = BSPEngine(part.P, cost_model=cost_model)
    engine.run(programs)
    dist = np.full(graph.num_nodes, -1, dtype=np.int64)
    for r, prog in enumerate(programs):
        dist[part.partition_nodes(r)] = prog.dist
    return dist, engine
