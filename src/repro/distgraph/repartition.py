"""Degree-balanced (edge-balanced) repartitioning for analysis workloads.

Section 3.2: "Many network analysis algorithms require partitioning the
graph into equal number of edges per processor."  The generation-time
schemes balance *generation* load; analysis kernels (BFS, PageRank) are
instead bound by adjacency volume — the sum of degrees per rank.  This
module rebalances a generated graph for analysis:

* :func:`degree_balanced_boundaries` — consecutive node boundaries that
  equalise degree mass per rank (prefix-sum split);
* :class:`DegreeBalancedPartition` — the corresponding
  :class:`~repro.core.partitioning.ConsecutivePartition`;
* :func:`repartition` — re-scatter a :class:`DistributedGraph` onto a new
  partition (one exchange, same machinery as the original scatter).

For PA graphs under consecutive partitioning this matters a lot: early
nodes are hubs, so UCP gives rank 0 several times the adjacency volume of
the last rank; the degree-balanced split restores parity (tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.partitioning import ConsecutivePartition, Partition
from repro.distgraph.storage import DistributedGraph
from repro.graph.edgelist import EdgeList
from repro.mpsim.costmodel import CostModel

__all__ = ["degree_balanced_boundaries", "DegreeBalancedPartition", "repartition"]


def degree_balanced_boundaries(degrees: np.ndarray, P: int) -> np.ndarray:
    """Consecutive boundaries splitting the degree mass into ``P`` even parts.

    Boundary ``i`` is the smallest node index whose prefix degree sum
    reaches ``i/P`` of the total; empty ranks are possible only when ``P``
    exceeds the number of positive-degree nodes.

    Examples
    --------
    >>> degree_balanced_boundaries(np.array([6, 1, 1, 1, 1, 1, 1]), 2).tolist()
    [0, 1, 7]
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    n = len(degrees)
    if P < 1:
        raise ValueError(f"P must be >= 1, got {P}")
    if P > n:
        raise ValueError(f"more ranks than nodes (P={P}, n={n}) is unsupported")
    prefix = np.concatenate([[0], np.cumsum(degrees)])
    total = prefix[-1]
    targets = total * np.arange(1, P, dtype=np.float64) / P
    inner = np.searchsorted(prefix[1:], targets, side="left") + 1
    bounds = np.concatenate([[0], inner, [n]]).astype(np.int64)
    np.maximum.accumulate(bounds, out=bounds)
    return np.minimum(bounds, n)


class DegreeBalancedPartition(ConsecutivePartition):
    """Consecutive partition equalising per-rank degree mass."""

    scheme = "dbp"

    def __init__(self, degrees: np.ndarray, P: int) -> None:
        degrees = np.asarray(degrees, dtype=np.int64)
        super().__init__(len(degrees), P, degree_balanced_boundaries(degrees, P))
        self._degrees = degrees

    def degree_mass(self, rank: int) -> int:
        """Total degree owned by ``rank`` (the balanced quantity)."""
        lo, hi = self.partition_range(rank)
        return int(self._degrees[lo:hi].sum())


def repartition(
    graph: DistributedGraph,
    partition: Partition,
    cost_model: CostModel | None = None,
) -> DistributedGraph:
    """Re-scatter a distributed graph onto a new partition of the same nodes.

    Each rank re-emits its locally stored adjacency records (one direction
    each, to avoid doubling) and the standard scatter routes them — no
    global gather.  The new partition's rank count may differ from the
    graph's (gathering to one analysis rank, or spreading to more).
    """
    if partition.n != graph.num_nodes:
        raise ValueError(
            f"new partition covers n={partition.n}, graph has {graph.num_nodes}"
        )
    old = graph.partition
    rank_edges: list[EdgeList] = []
    for r in range(old.P):
        nodes = old.partition_nodes(r)
        indptr = graph.indptr[r]
        nbrs = graph.neighbors[r]
        u = np.repeat(nodes, np.diff(indptr))
        v = nbrs
        # keep one orientation per undirected edge: owner of the smaller id
        # emits it (ties impossible; self-loops were never stored)
        keep = u < v
        rank_edges.append(EdgeList.from_arrays(u[keep], v[keep]))
    # the new partition may have a different rank count: pad with empty
    # emitters (shrinking would drop edges, so fold the tail instead)
    if len(rank_edges) < partition.P:
        empty = EdgeList.from_arrays(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        rank_edges.extend([empty] * (partition.P - len(rank_edges)))
    elif len(rank_edges) > partition.P:
        tail = rank_edges[partition.P - 1:]
        rank_edges = rank_edges[: partition.P - 1] + [
            EdgeList.from_arrays(
                np.concatenate([el.sources for el in tail]),
                np.concatenate([el.targets for el in tail]),
            )
        ]
    return DistributedGraph.from_rank_edges(rank_edges, partition, cost_model=cost_model)
