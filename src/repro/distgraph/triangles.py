"""Distributed triangle counting (wedge-check protocol).

The classic degree-ordered algorithm: orient each edge from its lower- to
its higher-ranked endpoint (rank = (degree, id)); every triangle then has
exactly one *apex* node whose two out-edges cover it, so counting reduces to
checking, for each wedge ``u -> v, u -> w`` (v before w in rank order),
whether the closing edge ``v -> w`` exists.

Distribution: each rank owns the out-adjacency of its partition's nodes.
Wedge checks whose closing edge belongs to another rank become query
messages — the same request/response pattern as the paper's Algorithm 3.1,
here with a one-round reply (edge existence is static).  Queries are
deduplicated per (v, w) pair locally before sending, and answers return
*counts*, keeping traffic proportional to distinct closing pairs.

Validated against the exact sequential counter in
:mod:`repro.graph.analysis`.
"""

from __future__ import annotations

import numpy as np

from repro.distgraph.storage import DistributedGraph
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel

__all__ = ["distributed_triangles"]


class _TriangleProgram:
    def __init__(
        self,
        rank: int,
        graph: DistributedGraph,
        rank_of: np.ndarray,
    ) -> None:
        self.rank = rank
        self.g = graph
        self.part = graph.partition
        self.rank_of = rank_of  # global total order on nodes
        self.nodes = self.part.partition_nodes(rank)
        self.count = 0
        self._phase = "build"
        # out-adjacency of owned nodes as sorted arrays + a set for queries
        self._out: dict[int, np.ndarray] = {}
        self._out_sets: dict[int, set[int]] = {}

    @property
    def done(self) -> bool:
        return self._phase == "serve"

    # -------------------------------------------------------------- phases
    def _build(self, ctx: BSPRankContext):
        indptr = self.g.indptr[self.rank]
        nbrs = self.g.neighbors[self.rank]
        ro = self.rank_of
        for i, v in enumerate(self.nodes.tolist()):
            span = nbrs[indptr[i]:indptr[i + 1]]
            outs = span[ro[span] > ro[v]]
            # keep out-lists sorted by the global rank order: for a wedge
            # (outs[a], outs[b]) with a < b, the closing edge — if present —
            # is then guaranteed to be oriented outs[a] -> outs[b] and
            # therefore stored at owner(outs[a])
            outs = outs[np.argsort(ro[outs], kind="stable")]
            self._out[v] = outs
            self._out_sets[v] = set(outs.tolist())
        ctx.charge(nodes=len(self.nodes), work_items=len(nbrs))

    def _emit_wedges(self, ctx: BSPRankContext, out) -> None:
        """Count local closures; batch remote closing-edge queries."""
        pending: dict[int, dict[tuple[int, int], int]] = {}
        wedges = 0
        for u in self.nodes.tolist():
            outs = self._out[u]
            d = len(outs)
            if d < 2:
                continue
            for a in range(d - 1):
                v = int(outs[a])
                owner_v = int(self.part.owner(v))
                for b in range(a + 1, d):
                    w = int(outs[b])
                    wedges += 1
                    if owner_v == self.rank:
                        if w in self._out_sets.get(v, ()):
                            self.count += 1
                    else:
                        key = (v, w)
                        bucket = pending.setdefault(owner_v, {})
                        bucket[key] = bucket.get(key, 0) + 1
        ctx.charge(work_items=wedges)
        for dest, bucket in pending.items():
            pairs = np.array(
                [(v, w, mult) for (v, w), mult in bucket.items()], dtype=np.int64
            )
            out[dest] = [pairs]

    def step(self, ctx: BSPRankContext, inbox):
        out: dict[int, list[np.ndarray]] = {}
        # serve queries / fold answers
        for src, arr in inbox:
            if arr.shape[1] == 3:  # query rows: (v, w, multiplicity)
                hits = 0
                for v, w, mult in arr.tolist():
                    if w in self._out_sets.get(v, ()):
                        hits += mult
                ctx.charge(work_items=len(arr))
                if hits:
                    out.setdefault(src, []).append(
                        np.array([[hits]], dtype=np.int64)
                    )
            else:  # answer rows: (hits,)
                self.count += int(arr.sum())
                ctx.charge(work_items=len(arr))

        if self._phase == "build":
            self._build(ctx)
            self._emit_wedges(ctx, out)
            self._phase = "serve"
        return out or None


def distributed_triangles(
    graph: DistributedGraph,
    cost_model: CostModel | None = None,
) -> tuple[int, BSPEngine]:
    """Exact global triangle count of a distributed graph.

    Examples
    --------
    >>> from repro.core.partitioning import make_partition
    >>> from repro.graph.edgelist import EdgeList
    >>> part = make_partition("rrp", 4, 2)
    >>> el = EdgeList.from_arrays([1, 2, 2, 3, 3], [0, 0, 1, 1, 2])
    >>> g = DistributedGraph.from_edgelist(el, part)
    >>> distributed_triangles(g)[0]
    2
    """
    part = graph.partition
    # global (degree, id) order, derived from local degrees (cheap gather —
    # a real deployment would allgather the degree vector the same way)
    deg = np.empty(graph.num_nodes, dtype=np.int64)
    for r in range(part.P):
        deg[part.partition_nodes(r)] = graph.local_degrees(r)
    order = np.lexsort((np.arange(graph.num_nodes), deg))
    rank_of = np.empty(graph.num_nodes, dtype=np.int64)
    rank_of[order] = np.arange(graph.num_nodes)

    programs = [_TriangleProgram(r, graph, rank_of) for r in range(part.P)]
    engine = BSPEngine(part.P, cost_model=cost_model)
    engine.run(programs)
    return sum(p.count for p in programs), engine
