"""Distributed PageRank (power iteration with contribution exchange).

Each power iteration takes three supersteps, keeping every rank in lockstep
with no convergence collective:

1. **push** — every rank divides its owned nodes' mass by their degrees and
   routes per-neighbour contributions to the neighbours' owners; it also
   sends its local dangling-node (degree-0) mass to rank 0.
2. **collect** — ranks fold arriving contributions; rank 0 totals the
   dangling mass and broadcasts the scalar.
3. **apply** — ranks fold the dangling scalar and apply the damping update
   ``pr = (1-d)/n + d (in + dangling/n)``.

The implementation is strictly shared-nothing (all cross-rank data moves
through the exchange) and is validated against ``networkx.pagerank`` to
~1e-6 in the test-suite.
"""

from __future__ import annotations

import numpy as np

from repro.distgraph.storage import DistributedGraph
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.costmodel import CostModel

__all__ = ["distributed_pagerank"]

#: row tags in the exchanged float matrices: (kind, node, value)
_CONTRIB = 0.0
_DANGLE = 1.0
_DELTA = 2.0  #: previous iteration's local L1 step, reduced on rank 0
_HALT = 3.0  #: rank 0's broadcast verdict: the tolerance was reached


class _PageRankProgram:
    def __init__(
        self,
        rank: int,
        graph: DistributedGraph,
        damping: float,
        iterations: int,
        x0: np.ndarray | None = None,
        tol: float | None = None,
    ) -> None:
        self.rank = rank
        self.g = graph
        self.part = graph.partition
        self.n = graph.num_nodes
        self.damping = damping
        self.iterations = iterations
        self.tol = tol
        count = self.part.partition_size(rank)
        if x0 is None:
            self.pr = np.full(count, 1.0 / self.n, dtype=np.float64)
        else:
            nodes = self.part.partition_nodes(rank)
            self.pr = np.asarray(x0, dtype=np.float64)[nodes].copy()
        self.degrees = np.diff(self.g.indptr[rank])
        self.iter = 0
        self._phase = "push"
        self._incoming = np.zeros(count, dtype=np.float64)
        self._dangling = 0.0
        self._local_delta = np.inf  # L1 step of the last apply
        self._delta_in = 0.0  # rank 0: previous iteration's global step
        self._halt = False
        self._halt_verdict = False  # rank 0: verdict pending for this apply

    @property
    def done(self) -> bool:
        return self._halt or self.iter >= self.iterations

    def step(self, ctx: BSPRankContext, inbox):
        if self._phase == "push":
            if self.done:
                return None
            return self._push(ctx)
        if self._phase == "collect":
            return self._collect(ctx, inbox)
        return self._apply(ctx, inbox)

    def _push(self, ctx: BSPRankContext):
        nbrs = self.g.neighbors[self.rank]
        has_deg = self.degrees > 0
        share = np.zeros_like(self.pr)
        share[has_deg] = self.pr[has_deg] / self.degrees[has_deg]
        local_dangling = float(self.pr[~has_deg].sum())

        targets = nbrs
        values = np.repeat(share, self.degrees)
        ctx.charge(work_items=len(targets) + len(self.pr))
        owners = np.asarray(self.part.owner(targets))

        self._incoming = np.zeros_like(self.pr)
        local = owners == self.rank
        if local.any():
            lidx = np.asarray(
                self.part.local_index(self.rank, targets[local]), dtype=np.int64
            )
            np.add.at(self._incoming, lidx, values[local])

        out: dict[int, list[np.ndarray]] = {}
        remote = ~local
        if remote.any():
            r_t = targets[remote].astype(np.float64)
            r_v = values[remote]
            r_o = owners[remote]
            order = np.argsort(r_o, kind="stable")
            r_t, r_v, r_o = r_t[order], r_v[order], r_o[order]
            cut = np.flatnonzero(np.diff(r_o)) + 1
            dests = np.concatenate([r_o[:1], r_o[cut]])
            for dest, t_chunk, v_chunk in zip(
                dests.tolist(), np.split(r_t, cut), np.split(r_v, cut)
            ):
                rows = np.column_stack(
                    [np.full(len(t_chunk), _CONTRIB), t_chunk, v_chunk]
                )
                out.setdefault(int(dest), []).append(rows)

        if self.rank == 0:
            self._dangling = local_dangling
        else:
            out.setdefault(0, []).append(np.array([[_DANGLE, 0.0, local_dangling]]))
        if self.tol is not None and self.iter > 0:
            # piggyback the previous iteration's local L1 step to rank 0
            if self.rank == 0:
                self._delta_in = self._local_delta
            else:
                out.setdefault(0, []).append(
                    np.array([[_DELTA, 0.0, self._local_delta]])
                )
        self._phase = "collect"
        return out or None

    def _collect(self, ctx: BSPRankContext, inbox):
        for _src, arr in inbox:
            kinds = arr[:, 0]
            contrib = arr[kinds == _CONTRIB]
            if len(contrib):
                lidx = np.asarray(
                    self.part.local_index(self.rank, contrib[:, 1].astype(np.int64)),
                    dtype=np.int64,
                )
                np.add.at(self._incoming, lidx, contrib[:, 2])
                ctx.charge(work_items=len(contrib))
            if self.rank == 0:
                self._dangling += float(arr[kinds == _DANGLE][:, 2].sum())
                self._delta_in += float(arr[kinds == _DELTA][:, 2].sum())

        self._phase = "apply"
        converged = (
            self.tol is not None and self.iter > 0 and self._delta_in < self.tol
        )
        if self.rank == 0:
            self._halt_verdict = converged
            self._delta_in = 0.0
            if self.part.P > 1:
                # broadcast the global dangling mass (and, under a tol run,
                # the convergence verdict); arrives for the apply phase
                rows = [np.array([[_DANGLE, 0.0, self._dangling]])]
                if converged:
                    rows.append(np.array([[_HALT, 0.0, 1.0]]))
                return {dest: rows for dest in range(1, self.part.P)}
        return None

    def _apply(self, ctx: BSPRankContext, inbox):
        halt = getattr(self, "_halt_verdict", False) if self.rank == 0 else False
        if self.rank != 0:
            for _src, arr in inbox:
                self._dangling += float(arr[arr[:, 0] == _DANGLE][:, 2].sum())
                if (arr[:, 0] == _HALT).any():
                    halt = True
        ctx.charge(work_items=len(self.pr))
        base = (1.0 - self.damping) / self.n
        new_pr = base + self.damping * (self._incoming + self._dangling / self.n)
        if self.tol is not None:
            self._local_delta = float(np.abs(new_pr - self.pr).sum())
        self.pr = new_pr
        self.iter += 1
        self._dangling = 0.0
        self._phase = "push"
        if halt:
            self._halt = True
        return None


def distributed_pagerank(
    graph: DistributedGraph,
    damping: float = 0.85,
    iterations: int = 50,
    cost_model: CostModel | None = None,
    x0: np.ndarray | None = None,
    tol: float | None = None,
) -> tuple[np.ndarray, BSPEngine]:
    """PageRank vector of a distributed graph (global node order).

    ``x0`` seeds the iteration (global node order, should sum to 1;
    default uniform ``1/n``) and ``tol`` adds convergence detection: ranks
    piggyback their local L1 step onto the existing rank-0 reduction, and
    rank 0 folds the stop verdict into the dangling-mass broadcast — no
    extra supersteps, no convergence collective.  The run halts once the
    global L1 step drops below ``tol`` (``iterations`` stays the hard
    cap).  Power iteration contracts with factor ``damping``, so any run
    stopped at step ``< tol`` lies within ``damping/(1-damping) * tol`` of
    the unique fixed point — which is why a warm-started run
    (:mod:`repro.dyngraph.incremental`) agrees with a cold one to that
    ball while doing far fewer iterations.  With ``tol=None`` behaviour
    (messages included) is bit-identical to prior releases.

    Examples
    --------
    >>> from repro.core.partitioning import make_partition
    >>> from repro.graph.edgelist import EdgeList
    >>> part = make_partition("rrp", 3, 2)
    >>> g = DistributedGraph.from_edgelist(
    ...     EdgeList.from_arrays([1, 2], [0, 0]), part)   # star around 0
    >>> pr, _ = distributed_pagerank(g, iterations=60)
    >>> bool(pr[0] > pr[1] and abs(pr.sum() - 1) < 1e-9)
    True
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if tol is not None and tol <= 0:
        raise ValueError(f"tol must be positive, got {tol}")
    if x0 is not None and len(x0) != graph.num_nodes:
        raise ValueError(
            f"x0 has {len(x0)} entries, graph has {graph.num_nodes} nodes"
        )
    part = graph.partition
    programs = [
        _PageRankProgram(r, graph, damping, iterations, x0=x0, tol=tol)
        for r in range(part.P)
    ]
    engine = BSPEngine(part.P, cost_model=cost_model, max_supersteps=3 * iterations + 10)
    engine.run(programs)
    pr = np.empty(graph.num_nodes, dtype=np.float64)
    for r, prog in enumerate(programs):
        pr[part.partition_nodes(r)] = prog.pr
    return pr, engine
