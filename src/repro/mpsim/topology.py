"""Interconnect topology models for the simulated cluster.

The default cost model charges every byte the same regardless of which
ranks exchange it — a flat (full-bisection) network, which QDR InfiniBand
with a non-blocking fat-tree approximates.  Real interconnects are not
always flat; a :class:`Topology` gives each (src, dst) pair a *hop count*,
and the BSP engine multiplies the per-byte transfer charge by
``1 + hop_penalty * (hops - 1)``.

This enables a locality ablation the paper's flat testbed could not run:
consecutive partitions (UCP/LCP) send most traffic to *lower* ranks —
long-range on a ring — while round-robin traffic is all-to-all either way.

Provided topologies:

* :class:`FlatTopology` — every pair 1 hop (the default behaviour);
* :class:`RingTopology` — ranks on a ring, hops = circular distance;
* :class:`Torus2D` — ranks folded into a 2-D torus, Manhattan hops;
* :class:`FatTreeTopology` — two-level tree: 1 hop within a leaf block of
  ``radix`` ranks, 3 hops across blocks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Topology",
    "FlatTopology",
    "RingTopology",
    "Torus2D",
    "FatTreeTopology",
]


class Topology(ABC):
    """Hop counts between ranks; factors into per-byte transfer charges."""

    def __init__(self, size: int, hop_penalty: float = 0.5) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if hop_penalty < 0:
            raise ValueError(f"hop_penalty must be >= 0, got {hop_penalty}")
        self.size = size
        self.hop_penalty = hop_penalty

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Network hops between two ranks (>= 1 for distinct ranks)."""

    def multiplier(self, src: int, dst: int) -> float:
        """Per-byte charge factor: ``1 + hop_penalty * (hops - 1)``."""
        if src == dst:
            return 0.0
        return 1.0 + self.hop_penalty * (self.hops(src, dst) - 1)

    def multiplier_matrix(self) -> np.ndarray:
        """Dense ``(P, P)`` multiplier table (the engine precomputes this)."""
        m = np.zeros((self.size, self.size))
        for a in range(self.size):
            for b in range(self.size):
                m[a, b] = self.multiplier(a, b)
        return m

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.size and 0 <= dst < self.size):
            raise ValueError(f"ranks ({src}, {dst}) outside [0, {self.size})")


class FlatTopology(Topology):
    """Full-bisection network: every distinct pair is one hop."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1


class RingTopology(Topology):
    """Ranks on a bidirectional ring; hops = circular distance."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.size - d)


class Torus2D(Topology):
    """Ranks folded row-major into a ``rows x cols`` torus (Manhattan hops)."""

    def __init__(self, rows: int, cols: int, hop_penalty: float = 0.5) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"rows and cols must be >= 1, got {rows}x{cols}")
        super().__init__(rows * cols, hop_penalty)
        self.rows = rows
        self.cols = cols

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        r1, c1 = divmod(src, self.cols)
        r2, c2 = divmod(dst, self.cols)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        return min(dr, self.rows - dr) + min(dc, self.cols - dc)


class FatTreeTopology(Topology):
    """Two-level tree: leaf blocks of ``radix`` ranks share a switch."""

    def __init__(self, size: int, radix: int = 16, hop_penalty: float = 0.5) -> None:
        if radix < 1:
            raise ValueError(f"radix must be >= 1, got {radix}")
        super().__init__(size, hop_penalty)
        self.radix = radix

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        if src == dst:
            return 0
        return 1 if src // self.radix == dst // self.radix else 3
