"""Supervised execution of BSP jobs with crash recovery.

The paper's algorithms run for hours on hundreds of ranks; at that scale a
rank crash or a poisoned exchange must not cost the whole run.
:class:`Supervisor` wraps an engine's ``run`` in a restart loop.  It is
engine-agnostic: any object satisfying the BSP engine protocol works —
``size``/``stats``/``supersteps``/``simulated_time`` attributes plus
``run(programs, checkpointer=..., initial_inboxes=..., tracer=...,
fault_plan=...)`` — which covers both the simulated
:class:`~repro.mpsim.bsp.BSPEngine` and the real-process
:class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine` (whose failures
are real ``SIGKILL``-ed workers, detected by sentinel/heartbeat and
resumed from cross-process checkpoint shards).  The loop:

1. run the job under a :class:`~repro.mpsim.checkpoint.Checkpointer`;
2. on :class:`~repro.mpsim.errors.RankFailure` (or
   :class:`~repro.mpsim.errors.DeadlockError`), reload the newest *valid*
   snapshot — skipping corrupted generations, and skipping snapshots that a
   previous retry already failed from (they may capture the fault itself,
   e.g. a duplicated message sitting in a checkpointed inbox);
3. rebuild a fresh engine from the snapshot, charge a simulated-time
   restart backoff (exponential per attempt), and continue;
4. if no usable snapshot remains, restart from scratch via the program
   factory — determinism makes even a full replay bit-identical;
5. after ``max_retries`` failed recoveries, raise
   :class:`~repro.mpsim.errors.UnrecoverableError`.

During a retry the checkpointer is told not to overwrite snapshots for
ground the replay has already covered (``min_superstep``), so a failing
retry can never rotate away the older snapshots it might still need.

Every recovery is recorded as a :class:`RecoveryEvent` — appended to the
final run's :attr:`~repro.mpsim.stats.WorldStats.recoveries` and, when a
tracer is attached, marked on the timeline — so recoveries are observable,
not silent.

Because rank programs carry their RNG positions in checkpointed state and
both engines are deterministic, a supervised run that crashed and recovered
produces a **bit-identical** edge list to a fault-free run; the test-suite
asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mpsim.checkpoint import CheckpointData, Checkpointer, load_checkpoint
from repro.mpsim.errors import (
    DeadlockError,
    MPSimError,
    RankFailure,
    UnrecoverableError,
)
from repro.mpsim.stats import WorldStats
from repro.telemetry.collector import resolve

__all__ = ["Supervisor", "RecoveryEvent"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery the supervisor performed."""

    attempt: int  # 1-based recovery attempt number
    superstep: int  # superstep resumed from (0 = scratch restart)
    backoff: float  # simulated seconds charged for the restart
    error: str  # the failure that triggered recovery (repr)
    checkpoint: str | None  # snapshot file used, None = scratch restart


class Supervisor:
    """Run a BSP job to completion despite injected or organic failures.

    Parameters
    ----------
    engine_factory:
        Zero-argument callable returning a fresh, configured engine —
        :class:`BSPEngine` or
        :class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine` (called
        once per attempt; checkpoint counters are restored onto it when
        resuming).  Real-process engines respawn their whole worker fleet
        per attempt, so a killed worker comes back as a fresh fork resumed
        from the snapshot.
    program_factory:
        Zero-argument callable returning fresh rank programs with their
        initial RNG state — used for the first attempt and for
        restart-from-scratch fallback.
    checkpointer:
        The :class:`Checkpointer` snapshots are written to and recovered
        from.  Use ``keep > 1`` so a corrupted newest snapshot still leaves
        older generations to fall back to.
    max_retries:
        Recovery attempts allowed before giving up with
        :class:`UnrecoverableError`.
    backoff, backoff_factor:
        Simulated-time restart cost: attempt ``k`` charges
        ``backoff * backoff_factor**(k-1)`` seconds to the resumed run's
        virtual clock (modelling failure detection + rank replacement).
    recover_on:
        Exception types that trigger recovery; anything else propagates
        immediately.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`.  Each attempt gets an
        ``attempt`` span, each recovery a timeline mark (with the superstep
        resumed from) and a ``supervisor_recoveries_total`` increment, and
        checkpoint reloads a ``checkpoint.load`` span — so a crashed-and-
        recovered run renders as one continuous annotated trace.

    Examples
    --------
    >>> from repro.mpsim.bsp import BSPEngine
    >>> from repro.core.parallel_pa import PAx1RankProgram
    >>> from repro.core.partitioning import make_partition
    >>> from repro.mpsim.faults import FaultPlan
    >>> from repro.rng import StreamFactory
    >>> import tempfile, pathlib
    >>> part = make_partition("rrp", 600, 4)
    >>> def programs():
    ...     f = StreamFactory(3)
    ...     return [PAx1RankProgram(r, part, 0.5, f.stream(r)) for r in range(4)]
    >>> tmp = pathlib.Path(tempfile.mkdtemp())
    >>> sup = Supervisor(lambda: BSPEngine(4), programs,
    ...                  Checkpointer(tmp / "run.ckpt", keep=3))
    >>> engine, progs = sup.run(fault_plan=FaultPlan(0).crash(1, at_superstep=2))
    >>> len(sup.recoveries)
    1
    """

    def __init__(
        self,
        engine_factory: Callable[[], Any],
        program_factory: Callable[[], Sequence[Any]],
        checkpointer: Checkpointer,
        max_retries: int = 3,
        backoff: float = 1.0,
        backoff_factor: float = 2.0,
        recover_on: tuple[type[BaseException], ...] = (RankFailure, DeadlockError),
        telemetry: Any = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.engine_factory = engine_factory
        self.program_factory = program_factory
        self.checkpointer = checkpointer
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.recover_on = recover_on
        self.tel = resolve(telemetry)
        #: RecoveryEvents of the most recent :meth:`run`
        self.recoveries: list[RecoveryEvent] = []
        #: checkpoint files skipped as corrupt during the most recent run
        self.skipped_checkpoints: list[str] = []

    # ------------------------------------------------------------------ run
    def run(
        self, fault_plan: Any = None, tracer: Any = None
    ) -> tuple[Any, list[Any]]:
        """Execute to completion; returns the final engine and programs.

        The returned engine's stats carry the cumulative counters of the
        surviving lineage plus every :class:`RecoveryEvent` applied.  For
        real-process engines the programs returned are the parent-side
        copies (final state lives in the workers) — read results off
        ``engine.results`` instead.
        """
        self.recoveries = []
        self.skipped_checkpoints = []
        tried_supersteps: set[int] = set()
        engine = self.engine_factory()
        programs = list(self.program_factory())
        inboxes: list[list[tuple[int, Any]]] | None = None
        attempt = 0

        while True:
            try:
                with self.tel.span("attempt", cat="run", tid=-1, attempt=attempt + 1):
                    stats = engine.run(
                        programs,
                        checkpointer=self.checkpointer,
                        initial_inboxes=inboxes,
                        tracer=tracer,
                        fault_plan=fault_plan,
                    )
            except self.recover_on as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise UnrecoverableError(
                        f"giving up after {self.max_retries} recovery "
                        f"attempt(s); last failure: {exc}",
                        attempts=self.max_retries,
                        last_error=exc,
                    ) from exc
                delay = self.backoff * self.backoff_factor ** (attempt - 1)
                with self.tel.span("checkpoint.load", cat="checkpoint", tid=-1):
                    data, used = self._pick_checkpoint(tried_supersteps)
                if data is None:
                    # nothing usable on disk: replay from the beginning
                    engine = self.engine_factory()
                    programs = list(self.program_factory())
                    inboxes = None
                    engine.simulated_time += delay
                    self.checkpointer.min_superstep = 0
                    event = RecoveryEvent(attempt, 0, delay, repr(exc), None)
                else:
                    tried_supersteps.add(data.supersteps)
                    engine = self._engine_from(data)
                    engine.simulated_time += delay
                    programs = list(data.programs)
                    inboxes = data.inboxes
                    # don't let the replay rotate away snapshots we may
                    # still need: suppress saves for covered ground
                    newest = self._newest_superstep()
                    self.checkpointer.min_superstep = max(
                        self.checkpointer.min_superstep, newest
                    )
                    event = RecoveryEvent(
                        attempt, data.supersteps, delay, repr(exc), str(used)
                    )
                self.recoveries.append(event)
                label = (
                    f"recovery #{attempt} from "
                    + ("scratch" if event.checkpoint is None else event.checkpoint)
                    + f" (+{delay:g}s backoff)"
                )
                if tracer is not None and hasattr(tracer, "mark"):
                    tracer.mark(event.superstep, label)
                if self.tel.enabled:
                    self.tel.mark(label, superstep=event.superstep)
                    self.tel.counter(
                        "supervisor_recoveries_total",
                        "recovery attempts the supervisor performed",
                    ).inc(scratch=event.checkpoint is None)
                continue
            break

        if isinstance(stats, WorldStats):
            for event in self.recoveries:
                stats.record_recovery(event)
        return engine, programs

    # -------------------------------------------------------------- internal
    def _pick_checkpoint(
        self, tried: set[int]
    ) -> tuple[CheckpointData | None, Any]:
        """Newest valid snapshot not already failed-from, or ``(None, None)``."""
        for path in self.checkpointer.history():
            try:
                data = load_checkpoint(path)
            except MPSimError:
                self.skipped_checkpoints.append(str(path))
                continue
            if data.supersteps in tried:
                continue
            return data, path
        return None, None

    def _newest_superstep(self) -> int:
        for path in self.checkpointer.history():
            try:
                return load_checkpoint(path).supersteps
            except MPSimError:
                continue
        return 0

    def _engine_from(self, data: CheckpointData) -> Any:
        engine = self.engine_factory()
        if engine.size != data.size:
            raise MPSimError(
                f"engine factory produced {engine.size} ranks but the "
                f"checkpoint captured {data.size}"
            )
        engine.stats = data.stats
        engine.simulated_time = data.simulated_time
        engine.supersteps = data.supersteps
        return engine
