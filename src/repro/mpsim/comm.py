"""Rank-side communicator handle for the event-driven engine.

:class:`Comm` is the object a rank program receives; it exposes an
mpi4py-flavoured API.  Sends are immediate method calls; receives and
barriers are *operation objects* the program must ``yield`` (blocking calls
cannot be expressed inside a generator any other way):

.. code-block:: python

    def program(comm):
        comm.send(dest=(comm.rank + 1) % comm.size, payload="token")
        msg = yield comm.recv()
        yield comm.barrier()
        total = yield from comm.allreduce(comm.rank)

Collectives are generator helpers used via ``yield from`` — they are built
from point-to-point messages exactly the way an MPI library layers them, so
their traffic shows up in the per-rank statistics.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpsim import collectives as _coll
from repro.mpsim.datatypes import ANY_SOURCE, ANY_TAG, TAG_DEFAULT
from repro.mpsim.runtime import (
    Barrier,
    Message,
    Recv,
    RecvOrQuiesce,
    RecvRequest,
    SendRequest,
)

__all__ = ["Comm"]


class Comm:
    """Communicator bound to one rank of a :class:`~repro.mpsim.runtime.Simulator`."""

    def __init__(self, simulator: Any, rank: int) -> None:
        self._sim = simulator
        self.rank = rank
        self.size = simulator.size

    # -- mpi4py-style accessors -------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point to point ----------------------------------------------------
    def send(self, dest: int, payload: Any, tag: int = TAG_DEFAULT) -> None:
        """Eager buffered send (returns immediately, like ``MPI_Bsend``)."""
        self._sim.post_send(self.rank, dest, payload, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Recv:
        """Blocking-receive operation; use as ``msg = yield comm.recv()``."""
        return Recv(source, tag)

    def recv_or_quiesce(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvOrQuiesce:
        """Receive that returns ``None`` at global quiescence (termination)."""
        return RecvOrQuiesce(source, tag)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking test for a deliverable matching message."""
        return self._sim.iprobe(self.rank, source, tag)

    # -- non-blocking (mpi4py isend/irecv style) ----------------------------
    def isend(self, dest: int, payload: Any, tag: int = TAG_DEFAULT) -> SendRequest:
        """Non-blocking send; returns an immediately-complete request.

        Use as ``req = comm.isend(...); yield req.wait()``.
        """
        self._sim.post_send(self.rank, dest, payload, tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Post a non-blocking receive.

        ``req.test()`` probes; ``msg = yield req.wait()`` blocks until the
        matching message arrives.
        """
        return RecvRequest(self, source, tag)

    def barrier(self) -> Barrier:
        """Barrier operation; use as ``yield comm.barrier()``."""
        return Barrier()

    # -- cost accounting ----------------------------------------------------
    def charge(self, nodes: int = 0, work_items: int = 0) -> None:
        """Charge local computation to this rank's virtual clock."""
        self._sim.charge(self.rank, nodes, work_items)

    @property
    def clock(self) -> float:
        """This rank's current virtual time."""
        return self._sim._ranks[self.rank].clock

    # -- collectives (yield from) -------------------------------------------
    def bcast(self, value: Any, root: int = 0) -> Generator[Any, Message, Any]:
        return _coll.bcast(self, value, root)

    def gather(self, value: Any, root: int = 0) -> Generator[Any, Message, list[Any] | None]:
        return _coll.gather(self, value, root)

    def scatter(self, values: list[Any] | None, root: int = 0) -> Generator[Any, Message, Any]:
        return _coll.scatter(self, values, root)

    def allgather(self, value: Any) -> Generator[Any, Message, list[Any]]:
        return _coll.allgather(self, value)

    def reduce(self, value: Any, op: Any = None, root: int = 0) -> Generator[Any, Message, Any]:
        return _coll.reduce(self, value, op, root)

    def allreduce(self, value: Any, op: Any = None) -> Generator[Any, Message, Any]:
        return _coll.allreduce(self, value, op)

    def alltoall(self, values: list[Any]) -> Generator[Any, Message, list[Any]]:
        return _coll.alltoall(self, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Comm(rank={self.rank}, size={self.size})"
