"""Exception hierarchy for the simulated message-passing substrate."""

from __future__ import annotations

__all__ = [
    "MPSimError",
    "DeadlockError",
    "LivelockError",
    "RankFailure",
    "InjectedFault",
    "InvalidRankError",
    "TruncationError",
    "CollectiveMismatchError",
    "CorruptCheckpointError",
    "UnrecoverableError",
]


class MPSimError(Exception):
    """Base class for all simulator errors."""


class DeadlockError(MPSimError):
    """Raised when no rank can make progress but unreceived work remains.

    The paper discusses exactly this hazard for round-robin partitioning with
    buffered resolved messages (Section 3.5.2): holding resolved messages in a
    partially-filled buffer can create circular waiting.  The event-driven
    engine detects the resulting quiescent-but-unfinished state and raises.
    """

    def __init__(self, message: str, blocked_ranks: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.blocked_ranks = blocked_ranks


class LivelockError(MPSimError):
    """The schedule-exploration watchdog saw no progress for too long.

    Raised by :class:`repro.schedsim.Schedule` when the engine keeps making
    scheduling decisions (deliveries, supersteps) without any rank finishing
    or any slot resolving for more than the configured budget of scheduler
    steps — the bounded-progress definition of livelock.  True deadlocks
    (nothing runnable at all) surface as :class:`DeadlockError` instead; this
    error catches the complementary failure mode where the system spins.
    """

    def __init__(self, message: str, ticks: int = 0, budget: int = 0) -> None:
        super().__init__(message)
        self.ticks = ticks
        self.budget = budget


class RankFailure(MPSimError):
    """A rank failed; wraps the original exception with the rank id.

    Raised for program exceptions on any engine, and — on the real-process
    backend — for worker deaths (a killed or crashed OS process).  When the
    failure superstep is known (e.g. from the dead worker's last heartbeat),
    it is carried in :attr:`superstep` so recovery and operators can see
    *where* in the run the rank was lost, not just which rank.
    """

    def __init__(
        self, rank: int, original: BaseException, superstep: int | None = None
    ) -> None:
        at = f" at superstep {superstep}" if superstep is not None else ""
        super().__init__(f"rank {rank} failed{at}: {original!r}")
        self.rank = rank
        self.original = original
        self.superstep = superstep


class InjectedFault(MPSimError):
    """A deliberate failure scheduled by a :class:`~repro.mpsim.faults.FaultPlan`.

    Raised inside the victim rank (wrapped in :class:`RankFailure` by the
    engines) so that recovery machinery sees injected crashes exactly as it
    would see organic ones.
    """


class CorruptCheckpointError(MPSimError):
    """A checkpoint file failed validation (truncated, garbage, or a
    checksum mismatch).  Loaders raise this instead of letting raw
    ``pickle``/``EOFError`` tracebacks escape, so supervisors can fall back
    to an older snapshot."""


class UnrecoverableError(MPSimError):
    """A supervised run exhausted its recovery budget.

    Carries the number of recovery attempts made and the failure that ended
    the run, so callers can distinguish "retried and gave up" from a
    first-strike error.
    """

    def __init__(
        self, message: str, attempts: int = 0, last_error: BaseException | None = None
    ) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class InvalidRankError(MPSimError, ValueError):
    """A rank id outside ``[0, size)`` was used as a source or destination."""


class TruncationError(MPSimError):
    """A receive buffer was too small for the matched message."""


class CollectiveMismatchError(MPSimError):
    """Ranks disagreed about a collective's parameters (e.g. root or shape)."""
