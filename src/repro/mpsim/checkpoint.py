"""Checkpoint/restart for BSP runs.

Generating very large networks takes long enough that production runs need
crash recovery.  The BSP execution model makes this cheap and exact: at a
superstep boundary, the *entire* distributed computation is captured by

1. each rank program's state (its attachment tables, pendings, queues, and
   — critically — its RNG generator's position),
2. the in-flight inboxes of the upcoming superstep,
3. the engine's counters (supersteps, simulated time, traffic stats).

:class:`Checkpointer` snapshots that triple every ``every`` supersteps with
an fsync'd atomic write-then-rename and keep-last-``keep`` rotation, and
:func:`resume` reconstructs an engine that continues the run.  Because
execution is deterministic, a resumed run produces a **bit-identical** graph
to an uninterrupted one — which the test-suite asserts by killing a run
mid-flight.

Recovery has to be able to *trust* what it loads, so every snapshot embeds a
SHA-256 checksum of its payload.  Truncated, garbage, or bit-flipped files
raise :class:`~repro.mpsim.errors.CorruptCheckpointError` (never a raw
``pickle`` traceback), and :func:`load_latest_valid` walks the rotation
chain newest-first to find a snapshot that still validates — the fallback
path :class:`~repro.mpsim.supervisor.Supervisor` relies on.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.mpsim.bsp import BSPEngine
from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import CorruptCheckpointError, MPSimError
from repro.telemetry.collector import resolve

__all__ = [
    "Checkpointer",
    "CheckpointData",
    "ShardData",
    "checkpoint_chain",
    "load_checkpoint",
    "load_latest_valid",
    "load_sealed",
    "load_shard",
    "save_sealed",
    "save_shard",
    "resume",
]

_MAGIC = "repro-bsp-checkpoint"
_SHARD_MAGIC = "repro-bsp-shard"
_VERSION = 2


@dataclass
class CheckpointData:
    """Everything needed to continue a BSP run."""

    size: int
    cost: CostModel
    max_supersteps: int
    supersteps: int
    simulated_time: float
    stats: Any
    programs: list[Any]
    inboxes: list[list[tuple[int, Any]]]


@dataclass
class ShardData:
    """One rank's share of a distributed (multi-process) checkpoint cut.

    The real-process backend cannot hand the whole world to one
    :meth:`Checkpointer.maybe_save` call — each rank's program lives in its
    own address space.  Instead every worker serialises its own shard
    (program state, the inbox it is about to consume, and its statistics
    row) with the same checksum/atomic-rename discipline as a full
    checkpoint, and the coordinator assembles the ``size`` shards of a cut
    into one ordinary :class:`CheckpointData` manifest.  A committed
    manifest is indistinguishable from an in-process snapshot — either
    engine can resume from it.
    """

    rank: int
    superstep: int
    simulated_time: float
    program: Any
    inbox: list[tuple[int, Any]]
    rank_stats: Any


class Checkpointer:
    """Snapshot hook handed to :meth:`BSPEngine.run`.

    Parameters
    ----------
    path:
        Newest checkpoint file.  With ``keep > 1``, older snapshots are
        rotated to ``<path>.1`` (previous), ``<path>.2``, ... up to
        ``<path>.<keep-1>`` — the fallback chain corrupted-newest recovery
        walks.
    every:
        Snapshot period in supersteps.
    keep:
        How many generations of snapshots to retain (``1`` = just ``path``,
        the pre-rotation behaviour).
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; committed snapshots get
        ``checkpoint.save`` spans and a ``checkpoint_snapshots_total``
        counter, so checkpoint cost shows up on the run timeline.
    """

    def __init__(
        self,
        path: str | Path,
        every: int = 1,
        keep: int = 1,
        telemetry: Any = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.path = Path(path)
        self.every = every
        self.keep = keep
        self.tel = resolve(telemetry)
        self.snapshots = 0
        #: saves are suppressed while ``engine.supersteps <= min_superstep``;
        #: the Supervisor raises this during a retry so a replay of
        #: already-checkpointed ground cannot rotate away the snapshots it
        #: may still need to fall back to.
        self.min_superstep = 0

    def chain(self) -> list[Path]:
        """All candidate snapshot paths, newest first (existing or not)."""
        return [self.path] + [
            self.path.with_name(f"{self.path.name}.{i}") for i in range(1, self.keep)
        ]

    def history(self) -> list[Path]:
        """Snapshot paths currently on disk, newest first."""
        return [p for p in self.chain() if p.exists()]

    def maybe_save(
        self,
        engine: BSPEngine,
        programs: Sequence[Any],
        inboxes: list[list[tuple[int, Any]]],
    ) -> bool:
        """Called by the engine after each superstep; returns True if saved."""
        data = CheckpointData(
            size=engine.size,
            cost=engine.cost,
            max_supersteps=engine.max_supersteps,
            supersteps=engine.supersteps,
            simulated_time=engine.simulated_time,
            stats=engine.stats,
            programs=list(programs),
            inboxes=inboxes,
        )
        return self.commit(data)

    def commit(self, data: CheckpointData) -> bool:
        """Write ``data`` as the newest snapshot if the schedule allows.

        This is the engine-agnostic half of :meth:`maybe_save`: the
        multiprocessing coordinator calls it directly with a
        :class:`CheckpointData` it assembled from worker-written shards.
        Applies the ``every`` cadence and the supervisor's ``min_superstep``
        replay suppression, then performs the fsync'd write-then-rename and
        keep-last-``keep`` rotation.  Returns True if a snapshot was
        written.
        """
        if data.supersteps % self.every != 0:
            return False
        if data.supersteps <= self.min_superstep:
            return False
        with self.tel.span(
            "checkpoint.save", cat="checkpoint", tid=-1, superstep=data.supersteps
        ):
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp_name = _atomic_dump(_MAGIC, data, self.path)
            chain = self.chain()
            for i in range(len(chain) - 1, 0, -1):
                if chain[i - 1].exists():
                    chain[i - 1].replace(chain[i])
            Path(tmp_name).replace(self.path)
        self.snapshots += 1
        if self.tel.enabled:
            self.tel.counter(
                "checkpoint_snapshots_total", "checkpoint manifests committed"
            ).inc()
        return True


def _atomic_dump(magic: str, data: Any, path: Path) -> str:
    """Write ``(magic, version, sha256, blob)`` to a fsync'd temp file.

    Returns the temp file's name; the caller renames it into place (the
    rename is what makes the write atomic — readers either see the old
    complete file or the new complete file, never a torn one).
    """
    blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    payload = (magic, _VERSION, hashlib.sha256(blob).hexdigest(), blob)
    with tempfile.NamedTemporaryFile(
        dir=path.parent, prefix=path.name, suffix=".tmp", delete=False
    ) as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        fh.flush()
        os.fsync(fh.fileno())
        return fh.name


def _load_envelope(path: str | Path, magic: str, what: str) -> Any:
    """Read and validate one ``(magic, version, sha256, blob)`` file."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise CorruptCheckpointError(f"{path}: unreadable {what} ({exc!r})") from exc
    if not (isinstance(payload, tuple) and len(payload) == 4 and payload[0] == magic):
        raise CorruptCheckpointError(f"{path}: not a BSP {what} file")
    _magic, version, digest, blob = payload
    if version != _VERSION:
        raise MPSimError(f"{path}: unsupported {what} version {version}")
    if hashlib.sha256(blob).hexdigest() != digest:
        raise CorruptCheckpointError(f"{path}: checksum mismatch (corrupted {what})")
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise CorruptCheckpointError(f"{path}: undecodable payload ({exc!r})") from exc


def save_sealed(path: str | Path, magic: str, payload: Any) -> None:
    """Atomically write ``payload`` in the sealed checkpoint envelope.

    The envelope is ``(magic, version, sha256, blob)`` with an fsync'd
    write-then-rename, so a process killed mid-write can never leave a torn
    file that a reader would trust.  This is the public face of the shard
    discipline — the out-of-core edge spill
    (:mod:`repro.core.spill`) reuses it with its own ``magic`` so edge
    shards and checkpoint shards share one corruption story.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_name = _atomic_dump(magic, payload, path)
    Path(tmp_name).replace(path)


def load_sealed(path: str | Path, magic: str, what: str = "shard") -> Any:
    """Read and validate one sealed file written by :func:`save_sealed`.

    Raises :class:`CorruptCheckpointError` on truncation, garbage, a wrong
    magic, or a checksum mismatch (``what`` names the artifact in the
    message).
    """
    return _load_envelope(path, magic, what)


def save_shard(path: str | Path, shard: ShardData) -> None:
    """Atomically write one rank's checkpoint shard.

    Called *inside* a worker process; uses the same checksum envelope and
    write-then-rename discipline as full checkpoints so a worker killed
    mid-write can never leave a torn shard that the coordinator would trust.
    """
    save_sealed(path, _SHARD_MAGIC, shard)


def load_shard(path: str | Path) -> ShardData:
    """Read and validate one checkpoint shard.

    Raises :class:`CorruptCheckpointError` on truncation, garbage, or a
    checksum mismatch — the coordinator treats any invalid shard as "this
    cut never completed" and falls back to an older manifest.
    """
    data = _load_envelope(path, _SHARD_MAGIC, "checkpoint shard")
    if not isinstance(data, ShardData):
        raise CorruptCheckpointError(f"{path}: payload is not ShardData")
    return data


def checkpoint_chain(path: str | Path) -> list[Path]:
    """Existing snapshot files for ``path``, newest first.

    Discovers rotated generations (``<path>.1``, ``<path>.2``, ...) without
    needing to know the writer's ``keep`` setting.
    """
    path = Path(path)
    out = [path] if path.exists() else []
    i = 1
    while True:
        p = path.with_name(f"{path.name}.{i}")
        if not p.exists():
            break
        out.append(p)
        i += 1
    return out


def load_checkpoint(path: str | Path) -> CheckpointData:
    """Read and validate one checkpoint file.

    Raises
    ------
    CorruptCheckpointError
        The file is truncated, garbage, fails its embedded SHA-256
        checksum, or does not decode to :class:`CheckpointData`.
    MPSimError
        The file is a checkpoint of an unsupported format version.
    FileNotFoundError
        The file does not exist.
    """
    data = _load_envelope(path, _MAGIC, "checkpoint")
    if not isinstance(data, CheckpointData):
        raise CorruptCheckpointError(f"{path}: payload is not CheckpointData")
    return data


def load_latest_valid(path: str | Path) -> tuple[CheckpointData, Path]:
    """Load the newest snapshot in ``path``'s rotation chain that validates.

    Returns the data and the file it came from.  Corrupt generations are
    skipped; if *no* generation validates, the newest failure is re-raised
    as :class:`CorruptCheckpointError`.
    """
    chain = checkpoint_chain(path)
    if not chain:
        raise FileNotFoundError(f"no checkpoint found at {path}")
    failures: list[str] = []
    for p in chain:
        try:
            return load_checkpoint(p), p
        except MPSimError as exc:
            failures.append(str(exc))
    raise CorruptCheckpointError(
        f"no valid checkpoint in chain of {len(chain)} at {path}: "
        + "; ".join(failures)
    )


def resume(
    path: str | Path,
    checkpointer: Checkpointer | None = None,
    max_supersteps: int | None = None,
) -> tuple[BSPEngine, list[Any]]:
    """Continue a checkpointed run to completion.

    Loads the newest *valid* snapshot in ``path``'s rotation chain (falling
    back past corrupted generations).  Returns the reconstructed engine
    (with cumulative counters) and the finished rank programs; read results
    off the programs exactly as after a normal :meth:`BSPEngine.run`.
    ``max_supersteps`` defaults to the checkpoint's own recorded bound —
    pass a larger value explicitly if the crashed run died by *exhausting*
    that bound.
    """
    data, _ = load_latest_valid(path)
    engine = BSPEngine(
        data.size,
        cost_model=data.cost,
        max_supersteps=max_supersteps if max_supersteps is not None else data.max_supersteps,
    )
    engine.stats = data.stats
    engine.simulated_time = data.simulated_time
    engine.supersteps = data.supersteps
    engine.run(data.programs, checkpointer=checkpointer, initial_inboxes=data.inboxes)
    return engine, data.programs
