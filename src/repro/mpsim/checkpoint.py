"""Checkpoint/restart for BSP runs.

Generating very large networks takes long enough that production runs need
crash recovery.  The BSP execution model makes this cheap and exact: at a
superstep boundary, the *entire* distributed computation is captured by

1. each rank program's state (its attachment tables, pendings, queues, and
   — critically — its RNG generator's position),
2. the in-flight inboxes of the upcoming superstep,
3. the engine's counters (supersteps, simulated time, traffic stats).

:class:`Checkpointer` snapshots that triple every ``every`` supersteps with
an atomic write-then-rename, and :func:`resume` reconstructs an engine that
continues the run.  Because execution is deterministic, a resumed run
produces a **bit-identical** graph to an uninterrupted one — which the
test-suite asserts by killing a run mid-flight.
"""

from __future__ import annotations

import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.mpsim.bsp import BSPEngine
from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import MPSimError

__all__ = ["Checkpointer", "CheckpointData", "load_checkpoint", "resume"]

_MAGIC = "repro-bsp-checkpoint"
_VERSION = 1


@dataclass
class CheckpointData:
    """Everything needed to continue a BSP run."""

    size: int
    cost: CostModel
    max_supersteps: int
    supersteps: int
    simulated_time: float
    stats: Any
    programs: list[Any]
    inboxes: list[list[tuple[int, Any]]]


class Checkpointer:
    """Snapshot hook handed to :meth:`BSPEngine.run`.

    Parameters
    ----------
    path:
        Checkpoint file (overwritten atomically at each snapshot).
    every:
        Snapshot period in supersteps.
    """

    def __init__(self, path: str | Path, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = Path(path)
        self.every = every
        self.snapshots = 0

    def maybe_save(
        self,
        engine: BSPEngine,
        programs: Sequence[Any],
        inboxes: list[list[tuple[int, Any]]],
    ) -> bool:
        """Called by the engine after each superstep; returns True if saved."""
        if engine.supersteps % self.every != 0:
            return False
        data = CheckpointData(
            size=engine.size,
            cost=engine.cost,
            max_supersteps=engine.max_supersteps,
            supersteps=engine.supersteps,
            simulated_time=engine.simulated_time,
            stats=engine.stats,
            programs=list(programs),
            inboxes=inboxes,
        )
        payload = (_MAGIC, _VERSION, data)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp", delete=False
        ) as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp_name = fh.name
        Path(tmp_name).replace(self.path)
        self.snapshots += 1
        return True


def load_checkpoint(path: str | Path) -> CheckpointData:
    """Read and validate a checkpoint file."""
    with open(path, "rb") as fh:
        payload = pickle.load(fh)
    if not (isinstance(payload, tuple) and len(payload) == 3 and payload[0] == _MAGIC):
        raise MPSimError(f"{path}: not a BSP checkpoint file")
    magic, version, data = payload
    if version != _VERSION:
        raise MPSimError(f"{path}: unsupported checkpoint version {version}")
    return data


def resume(
    path: str | Path,
    checkpointer: Checkpointer | None = None,
    max_supersteps: int | None = None,
) -> tuple[BSPEngine, list[Any]]:
    """Continue a checkpointed run to completion.

    Returns the reconstructed engine (with cumulative counters) and the
    finished rank programs; read results off the programs exactly as after a
    normal :meth:`BSPEngine.run`.  ``max_supersteps`` defaults to a fresh
    engine's bound rather than the crashed run's (which may have been the
    very limit that stopped it).
    """
    data = load_checkpoint(path)
    engine = BSPEngine(
        data.size,
        cost_model=data.cost,
        max_supersteps=max_supersteps if max_supersteps is not None else 10_000,
    )
    engine.stats = data.stats
    engine.simulated_time = data.simulated_time
    engine.supersteps = data.supersteps
    engine.run(data.programs, checkpointer=checkpointer, initial_inboxes=data.inboxes)
    return engine, data.programs
