"""``repro.mpsim`` — a simulated distributed-memory message-passing substrate.

The SC'13 paper runs its algorithms on a 768-rank MPICH2/InfiniBand cluster.
This package substitutes that substrate with a deterministic simulator that
executes the *same* rank-local programs and the *same* message protocol:

* :mod:`repro.mpsim.runtime` — an event-driven engine.  Each rank is a Python
  coroutine (generator) with an mpi4py-flavoured :class:`~repro.mpsim.comm.Comm`
  handle; a virtual clock orders message deliveries and meters per-rank busy
  time through a :class:`~repro.mpsim.costmodel.CostModel`.
* :mod:`repro.mpsim.bsp` — a bulk-synchronous superstep engine whose exchange
  primitive is an ``alltoallv`` over NumPy arrays.  This is the production
  path: it matches the paper's buffered-message implementation (Section 3.5,
  "Message Buffering") and scales to millions of nodes in pure Python.
* :mod:`repro.mpsim.mp_backend` — an optional backend that runs the same BSP
  rank-step functions in real OS processes, proving the rank code is
  genuinely shared-nothing.  Superstep traffic travels over one of three
  exchange topologies: coordinator-routed pickle pipes, coordinator-routed
  zero-copy shared memory, or the peer-to-peer mailbox fabric of
  :mod:`repro.mpsim.p2p` (shared-memory descriptor slots, a shared barrier,
  and distributed termination detection — no parent on the data path).
* :mod:`repro.mpsim.pool` — a persistent :class:`~repro.mpsim.pool.WorkerPool`
  that forks the backend's workers once and reuses them (pipes, payload
  segments, p2p fabric) across many jobs.
* :mod:`repro.mpsim.collectives` — barrier / bcast / scatter / gather /
  allgather / reduce / allreduce / alltoall(v) implemented on top of
  point-to-point sends, as an MPI library would.
* :mod:`repro.mpsim.faults` + :mod:`repro.mpsim.supervisor` — seeded fault
  injection (rank crashes, message drops/duplications, stragglers) for both
  engines, and a checkpoint-based supervisor that recovers crashed BSP runs
  bit-identically.

All engines account traffic in :class:`~repro.mpsim.stats.RankStats`, which is
exactly the data the paper's load-balance evaluation (Figure 7) plots.
"""

from repro.mpsim.costmodel import CostModel, MachinePreset
from repro.mpsim.errors import (
    CorruptCheckpointError,
    DeadlockError,
    InjectedFault,
    MPSimError,
    RankFailure,
    UnrecoverableError,
)
from repro.mpsim.stats import RankStats, WorldStats
from repro.mpsim.runtime import Simulator
from repro.mpsim.bsp import BSPEngine, BSPRankContext
from repro.mpsim.faults import FaultPlan, FaultRecord
from repro.mpsim.checkpoint import Checkpointer, load_checkpoint, load_latest_valid, resume
from repro.mpsim.mp_backend import MultiprocessingBSPEngine
from repro.mpsim.pool import WorkerPool
from repro.mpsim.supervisor import RecoveryEvent, Supervisor

__all__ = [
    "BSPEngine",
    "BSPRankContext",
    "Checkpointer",
    "CorruptCheckpointError",
    "CostModel",
    "DeadlockError",
    "FaultPlan",
    "FaultRecord",
    "InjectedFault",
    "MachinePreset",
    "MPSimError",
    "MultiprocessingBSPEngine",
    "RankFailure",
    "RankStats",
    "RecoveryEvent",
    "Simulator",
    "Supervisor",
    "UnrecoverableError",
    "WorkerPool",
    "WorldStats",
    "load_checkpoint",
    "load_latest_valid",
    "resume",
]
