"""Event-driven simulated message-passing runtime.

Each rank runs a Python *coroutine* (a generator function) against a
:class:`~repro.mpsim.comm.Comm` handle.  Sends are eager and buffered, as in
the paper's MPI implementation; receives block by yielding an operation
object to the scheduler:

.. code-block:: python

    def program(comm):
        if comm.rank == 0:
            comm.send(1, ("hello", 42))
        else:
            msg = yield Recv()          # blocks until a message arrives
            ...

The scheduler is a conservative discrete-event simulation:

* every rank owns a virtual clock, advanced by the
  :class:`~repro.mpsim.costmodel.CostModel` charges of the work it does;
* a send at sender-time ``s`` is deliverable at ``s + alpha + beta*nbytes``;
* a blocked receiver resumes at ``max(receiver clock, delivery time)``;
* among runnable events the scheduler always picks the globally smallest
  timestamp (ties broken by send order), so runs are fully deterministic.

Two termination-related behaviours matter for the paper's algorithms:

* :class:`Recv` with no matching message and no possibility of one is a
  *deadlock*; the runtime detects global quiescence with unsatisfied plain
  receives and raises :class:`~repro.mpsim.errors.DeadlockError`.  This is
  how the test-suite demonstrates the RRP buffering hazard of Section 3.5.2.
* :class:`RecvOrQuiesce` returns ``None`` instead when *all* ranks are
  blocked in :class:`RecvOrQuiesce` and no messages are in flight — a
  built-in termination detector, standing in for the termination protocol a
  real MPI implementation of Algorithm 3.1 would run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

from repro.mpsim.costmodel import CostModel
from repro.mpsim.datatypes import ANY_SOURCE, ANY_TAG, Envelope, payload_nbytes
from repro.mpsim.errors import (
    DeadlockError,
    InjectedFault,
    InvalidRankError,
    MPSimError,
    RankFailure,
)
from repro.mpsim.stats import WorldStats

__all__ = ["Recv", "RecvOrQuiesce", "Barrier", "Simulator", "Message"]


@dataclass(frozen=True)
class Message:
    """What a receive operation returns to the rank program."""

    source: int
    tag: int
    payload: Any


@dataclass(frozen=True)
class Recv:
    """Blocking receive for ``(source, tag)``; wildcards allowed."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass(frozen=True)
class RecvOrQuiesce:
    """Receive like :class:`Recv`, but yield ``None`` on global quiescence."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG


@dataclass(frozen=True)
class Barrier:
    """Synchronise all ranks; every rank resumes at the max clock."""


@dataclass(frozen=True)
class Noop:
    """Yieldable that resumes immediately (completed-request waits)."""


@dataclass(frozen=True)
class SendRequest:
    """Handle for a non-blocking send.

    Sends in the simulator are eager and buffered (as mpi4py's ``isend`` is
    for small payloads), so the request is born complete; ``wait`` exists
    for API symmetry.
    """

    def test(self) -> bool:
        return True

    def wait(self) -> Noop:
        return Noop()


@dataclass(frozen=True)
class RecvRequest:
    """Handle for a non-blocking receive posted with ``Comm.irecv``.

    ``yield req.wait()`` blocks until the matching message arrives and
    evaluates to it; ``req.test()`` probes without blocking.
    """

    comm: Any
    source: int
    tag: int

    def test(self) -> bool:
        return self.comm.iprobe(self.source, self.tag)

    def wait(self) -> Recv:
        return Recv(self.source, self.tag)


_RankProgram = Callable[..., Generator[Any, Any, Any]]


class _RankState:
    """Scheduler bookkeeping for one rank."""

    __slots__ = ("rank", "gen", "clock", "mailbox", "blocked_on", "finished", "comm")

    def __init__(self, rank: int, gen: Generator[Any, Any, Any], comm: Any) -> None:
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.mailbox: list[Envelope] = []
        self.blocked_on: Recv | RecvOrQuiesce | Barrier | None = None
        self.finished = False
        self.comm = comm

    def find_match(self, source: int, tag: int) -> int | None:
        """Index of the earliest-deliverable matching envelope, or ``None``."""
        best = None
        best_key = None
        for idx, env in enumerate(self.mailbox):
            if env.matches(source, tag):
                key = (env.deliver_at, env.seq)
                if best_key is None or key < best_key:
                    best, best_key = idx, key
        return best


class Simulator:
    """Run ``size`` rank coroutines to completion under a virtual clock.

    Parameters
    ----------
    size:
        Number of simulated ranks.
    cost_model:
        Charges for compute and communication; defaults to the paper-testbed
        preset.

    Examples
    --------
    >>> from repro.mpsim.runtime import Simulator, Recv
    >>> def program(comm):
    ...     if comm.rank == 0:
    ...         comm.send(1, 99)
    ...     else:
    ...         msg = yield Recv()
    ...         assert msg.payload == 99
    >>> Simulator(2).run(program)  # doctest: +ELLIPSIS
    WorldStats(...)
    """

    def __init__(
        self,
        size: int,
        cost_model: CostModel | None = None,
        fault_injector: Callable[[Envelope], bool] | None = None,
        schedule: Any = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self.cost = cost_model or CostModel()
        #: Optional :class:`repro.schedsim.Schedule`.  When set, every
        #: delivery pick (which blocked rank resumes, which matching
        #: envelope it consumes), the initial rank kick order, and the
        #: quiescence release order become explicit choice points — index 0
        #: always being the canonical earliest-timestamp choice, so a
        #: baseline schedule reproduces the unscheduled run bit-exactly.
        self.schedule = schedule
        #: Optional failure-injection hook.  Two forms are accepted:
        #:
        #: * a plain callable receiving every :class:`Envelope` at send time;
        #:   returning False silently *drops* the message (models a lossy
        #:   transport / crashed NIC);
        #: * a :class:`~repro.mpsim.faults.FaultPlan` (anything with a
        #:   ``message_fate`` method), which additionally supports message
        #:   duplication, straggler latency inflation, and scheduled rank
        #:   crashes (fired at the rank's next send or compute charge past
        #:   the crash's virtual time, surfacing as :class:`RankFailure`).
        #:
        #: Protocol code is expected to hang on loss — which the
        #: deadlock/quiescence machinery then surfaces — so this is a
        #: failure-behaviour hook, not a retry layer.
        self.fault_injector = fault_injector
        self._fault_plan = (
            fault_injector if hasattr(fault_injector, "message_fate") else None
        )
        self.dropped_messages = 0
        self.stats = WorldStats.for_size(size)
        self._seq = 0
        self._in_flight = 0
        self._ranks: list[_RankState] = []
        self._barrier_waiters: list[_RankState] = []

    # ------------------------------------------------------------------ send
    def post_send(self, source: int, dest: int, payload: Any, tag: int) -> None:
        """Called by :class:`~repro.mpsim.comm.Comm` to enqueue a message."""
        if not 0 <= dest < self.size:
            raise InvalidRankError(f"destination rank {dest} outside [0, {self.size})")
        sender = self._ranks[source]
        self._maybe_crash(source)
        nbytes = payload_nbytes(payload)
        sender.clock += self.cost.message_time(1, nbytes)
        self.stats[source].record_send(1, nbytes)
        self.stats[source].busy_time = sender.clock
        latency = self.cost.alpha + self.cost.beta * nbytes
        if self._fault_plan is not None:
            # a straggler's NIC/link is slow: inflate its outgoing latency
            latency *= self._fault_plan.straggle_multiplier(source)
        self._seq += 1
        env = Envelope(
            deliver_at=sender.clock + latency,
            seq=self._seq,
            source=source,
            dest=dest,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
        )
        if self._fault_plan is not None:
            copies = self._fault_plan.message_fate(source, dest)
        elif self.fault_injector is not None:
            copies = 1 if self.fault_injector(env) else 0
        else:
            copies = 1
        if copies == 0:
            self.dropped_messages += 1
            return
        self._ranks[dest].mailbox.append(env)
        self._in_flight += 1
        for _ in range(copies - 1):
            self._seq += 1
            dup = Envelope(
                deliver_at=env.deliver_at,
                seq=self._seq,
                source=source,
                dest=dest,
                tag=tag,
                payload=payload,
                nbytes=nbytes,
            )
            self._ranks[dest].mailbox.append(dup)
            self._in_flight += 1

    def _maybe_crash(self, rank: int) -> None:
        """Fire a scheduled crash once the rank's clock passes its deadline."""
        if self._fault_plan is not None and self._fault_plan.should_crash(
            rank, time=self._ranks[rank].clock
        ):
            raise RankFailure(
                rank,
                InjectedFault(
                    f"injected crash of rank {rank} at virtual time "
                    f"{self._ranks[rank].clock:.6f}"
                ),
            )

    def iprobe(self, rank: int, source: int, tag: int) -> bool:
        """Non-blocking probe: is a matching message already deliverable?"""
        st = self._ranks[rank]
        idx = st.find_match(source, tag)
        return idx is not None and st.mailbox[idx].deliver_at <= st.clock

    def charge(self, rank: int, nodes: int = 0, work_items: int = 0) -> None:
        """Advance a rank's clock by a compute charge (called via Comm)."""
        st = self._ranks[rank]
        self._maybe_crash(rank)
        t = self.cost.compute_time(nodes, work_items)
        if self._fault_plan is not None:
            t *= self._fault_plan.straggle_multiplier(rank)
        st.clock += t
        self.stats[rank].nodes += nodes
        self.stats[rank].work_items += work_items
        self.stats[rank].busy_time = st.clock

    # ------------------------------------------------------------------- run
    def run(self, program: _RankProgram, *args: Any, **kwargs: Any) -> WorldStats:
        """Instantiate ``program`` on every rank and simulate to completion.

        ``program(comm, *args, **kwargs)`` must be a generator function (it
        may also be a plain function returning ``None`` for send-only ranks).
        Returns the aggregated :class:`~repro.mpsim.stats.WorldStats`.
        """
        from repro.mpsim.comm import Comm  # local import to avoid a cycle

        self._ranks = []
        for rank in range(self.size):
            comm = Comm(self, rank)
            gen = program(comm, *args, **kwargs)
            if gen is not None and not hasattr(gen, "send"):
                raise MPSimError(
                    f"program must be a generator function; rank {rank} returned {type(gen)!r}"
                )
            self._ranks.append(_RankState(rank, gen, comm))

        # Kick every rank to its first yield point (or completion).
        kick = self._ranks
        if self.schedule is not None:
            order = self.schedule.permute("kick", [st.rank for st in kick])
            kick = [kick[i] for i in order]
        for st in kick:
            self._advance(st, first=True)

        while True:
            progressed = self._deliver_one()
            if progressed:
                continue
            if all(st.finished for st in self._ranks):
                break
            # No deliverable message, nobody finished everything: decide
            # between quiescence-termination and deadlock.
            blocked_plain = [
                st.rank
                for st in self._ranks
                if not st.finished and isinstance(st.blocked_on, Recv)
            ]
            blocked_quiesce = [
                st
                for st in self._ranks
                if not st.finished and isinstance(st.blocked_on, RecvOrQuiesce)
            ]
            in_barrier = [st for st in self._ranks if isinstance(st.blocked_on, Barrier)]
            if in_barrier and len(in_barrier) + sum(st.finished for st in self._ranks) == self.size:
                self._release_barrier(in_barrier)
                continue
            if blocked_plain or in_barrier:
                raise DeadlockError(
                    "global quiescence with unsatisfied blocking receives "
                    f"(ranks {sorted(blocked_plain)}, barrier {sorted(st.rank for st in in_barrier)})",
                    blocked_ranks=tuple(sorted(blocked_plain)),
                )
            # All remaining ranks sit in RecvOrQuiesce: terminate them.
            t_max = max(st.clock for st in self._ranks)
            if self.schedule is not None and len(blocked_quiesce) > 1:
                order = self.schedule.permute(
                    "quiesce", [st.rank for st in blocked_quiesce]
                )
                blocked_quiesce = [blocked_quiesce[i] for i in order]
            for st in blocked_quiesce:
                st.clock = max(st.clock, t_max)
                st.blocked_on = None
                self._advance(st, value=None)

        for st in self._ranks:
            self.stats[st.rank].busy_time = st.clock
        return self.stats

    # -------------------------------------------------------------- internal
    def _receive_env(self, st: _RankState, idx: int) -> Message:
        """Consume mailbox entry ``idx``: clock, stats, and the Message."""
        env = st.mailbox.pop(idx)
        self._in_flight -= 1
        st.clock = max(st.clock, env.deliver_at)
        st.clock += self.cost.message_time(1, env.nbytes)
        self.stats[st.rank].record_receive(1, env.nbytes)
        self.stats[st.rank].busy_time = st.clock
        return Message(env.source, env.tag, env.payload)

    def _deliver_one(self) -> bool:
        """Resume the blocked rank with the earliest matching delivery."""
        if self.schedule is not None:
            return self._deliver_one_scheduled()
        best: tuple[float, int] | None = None
        best_st: _RankState | None = None
        best_idx: int | None = None
        for st in self._ranks:
            if st.finished or not isinstance(st.blocked_on, (Recv, RecvOrQuiesce)):
                continue
            idx = st.find_match(st.blocked_on.source, st.blocked_on.tag)
            if idx is None:
                continue
            env = st.mailbox[idx]
            key = (max(env.deliver_at, st.clock), env.seq)
            if best is None or key < best:
                best, best_st, best_idx = key, st, idx
        if best_st is None:
            return False
        msg = self._receive_env(best_st, best_idx)  # type: ignore[arg-type]
        best_st.blocked_on = None
        self._advance(best_st, value=msg)
        return True

    def _deliver_one_scheduled(self) -> bool:
        """Schedule-driven delivery pick over *every* matching envelope.

        Candidates are presented in canonical ``(ready time, seq)`` order so
        index 0 is exactly the choice :meth:`_deliver_one` would make — a
        baseline schedule reproduces the unscheduled run bit-exactly, while
        any other index models one message arriving (or one receiver being
        serviced) out of order.
        """
        cands: list[tuple[tuple[float, int], _RankState, int]] = []
        for st in self._ranks:
            if st.finished or not isinstance(st.blocked_on, (Recv, RecvOrQuiesce)):
                continue
            for idx, env in enumerate(st.mailbox):
                if env.matches(st.blocked_on.source, st.blocked_on.tag):
                    cands.append(((max(env.deliver_at, st.clock), env.seq), st, idx))
        if not cands:
            return False
        cands.sort(key=lambda c: c[0])
        pick = self.schedule.choose(
            "deliver", [(st.rank, st.mailbox[idx].source) for _, st, idx in cands]
        )
        _, st, idx = cands[pick]
        msg = self._receive_env(st, idx)
        st.blocked_on = None
        self._advance(st, value=msg)
        return True

    def _pick_match(self, st: _RankState, op: Recv | RecvOrQuiesce) -> int:
        """Schedule-driven pick among a rank's matching envelopes."""
        matches = [
            i for i, env in enumerate(st.mailbox) if env.matches(op.source, op.tag)
        ]
        matches.sort(key=lambda i: (st.mailbox[i].deliver_at, st.mailbox[i].seq))
        pick = self.schedule.choose(
            "deliver", [(st.rank, st.mailbox[i].source) for i in matches]
        )
        return matches[pick]

    def _release_barrier(self, waiters: list[_RankState]) -> None:
        t = max(st.clock for st in waiters) + self.cost.round_time()
        for st in waiters:
            st.clock = t
            st.blocked_on = None
            self.stats[st.rank].rounds += 1
        for st in waiters:
            self._advance(st, value=None)

    def _advance(self, st: _RankState, value: Any = None, first: bool = False) -> None:
        """Run one rank until it blocks or finishes."""
        if st.gen is None:
            st.finished = True
            return
        try:
            while True:
                op = st.gen.send(None if first else value) if not first else next(st.gen)
                first = False
                if isinstance(op, Noop):
                    value = None
                    continue
                if isinstance(op, (Recv, RecvOrQuiesce)):
                    # Fast path: a matching message is already in the mailbox.
                    idx = st.find_match(op.source, op.tag)
                    if idx is not None:
                        if self.schedule is not None:
                            idx = self._pick_match(st, op)
                        value = self._receive_env(st, idx)
                        continue
                    st.blocked_on = op
                    return
                if isinstance(op, Barrier):
                    st.blocked_on = op
                    return
                raise MPSimError(f"rank {st.rank} yielded unsupported operation {op!r}")
        except StopIteration:
            st.finished = True
            st.blocked_on = None
            if self.schedule is not None:
                self.schedule.on_progress()
        except (DeadlockError, MPSimError):
            raise
        except BaseException as exc:  # surface rank crashes with context
            raise RankFailure(st.rank, exc) from exc

    # ------------------------------------------------------------- inspection
    @property
    def in_flight(self) -> int:
        """Number of messages posted but not yet received."""
        return self._in_flight

    def clocks(self) -> list[float]:
        """Current virtual clock of every rank (post-run: completion times)."""
        return [st.clock for st in self._ranks]

    @property
    def makespan(self) -> float:
        """Simulated parallel runtime of the completed program."""
        return max(self.clocks()) if self._ranks else 0.0
