"""Bulk-synchronous (superstep) engine with NumPy bulk message exchange.

The paper's practical implementation buffers messages per destination and
ships each buffer with one MPI send (Section 3.5.1, "Message Buffering").
Executed to its logical conclusion, the algorithm becomes bulk-synchronous:

1. every rank performs local work and fills per-destination buffers;
2. one ``alltoallv`` exchanges the buffers;
3. repeat until no rank has work and no buffer is non-empty.

Because dependency chains have length ``O(log n)`` w.h.p. (Theorem 3.3), the
loop terminates in a logarithmic number of supersteps.

:class:`BSPEngine` runs a list of *rank programs* — shared-nothing objects
with a ``step(ctx, inbox)`` method — to quiescence.  The engine enforces
isolation: programs communicate exclusively through the returned outboxes.
Payloads are NumPy arrays (one array = one buffered MPI message; its length
is the logical record count the paper's Figure 7 plots).

Virtual time: each superstep, a rank is charged its recorded compute plus
per-record message overheads plus the per-round latency; the superstep's
duration is the *maximum* over ranks (barrier semantics) and
:attr:`BSPEngine.simulated_time` accumulates those maxima.  This is the
``T_p`` used by the strong/weak scaling reproductions.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import (
    DeadlockError,
    InjectedFault,
    InvalidRankError,
    MPSimError,
    RankFailure,
)
from repro.mpsim.stats import WorldStats
from repro.telemetry.collector import resolve
from repro.telemetry.metrics import proc_rss_bytes

__all__ = ["BSPEngine", "BSPRankContext", "RankProgram", "Outbox"]

#: A rank's outgoing mail for one superstep: destination -> list of payloads.
Outbox = dict[int, list[np.ndarray]]


class RankProgram(Protocol):
    """Interface the BSP engine drives.

    Implementations must be *shared-nothing*: all cross-rank data flows
    through the outbox/inbox arrays.
    """

    def step(
        self, ctx: "BSPRankContext", inbox: Sequence[tuple[int, np.ndarray]]
    ) -> Outbox | None:
        """Run one superstep.

        Parameters
        ----------
        ctx:
            Cost-accounting handle for this rank.
        inbox:
            ``(source, payload)`` pairs delivered this superstep, ordered by
            source rank then send order (deterministic).

        Returns
        -------
        Mapping of destination rank to payload arrays, or ``None`` for an
        empty outbox.
        """

    @property
    def done(self) -> bool:
        """True once this rank has no pending local work.

        The engine stops when every rank is done *and* the previous exchange
        carried no messages.
        """
        raise NotImplementedError


class BSPRankContext:
    """Per-rank accounting handle passed to :meth:`RankProgram.step`."""

    __slots__ = ("rank", "size", "_stats", "_step_compute", "_step_events", "_cost")

    def __init__(self, rank: int, size: int, stats: WorldStats, cost: CostModel) -> None:
        self.rank = rank
        self.size = size
        self._stats = stats
        self._cost = cost
        self._step_compute = 0.0
        self._step_events = 0

    def charge(self, nodes: int = 0, work_items: int = 0) -> None:
        """Account local computation: node events and auxiliary work items.

        Charging also counts as *progress* for the engine's stall detector,
        so compute-only supersteps (e.g. a single-rank iterative solver)
        are not mistaken for deadlock.
        """
        self._stats[self.rank].nodes += nodes
        self._stats[self.rank].work_items += work_items
        self._step_compute += self._cost.compute_time(nodes, work_items)
        self._step_events += 1

    def _drain_step_compute(self) -> float:
        t, self._step_compute = self._step_compute, 0.0
        return t

    def _drain_step_events(self) -> int:
        e, self._step_events = self._step_events, 0
        return e


class BSPEngine:
    """Drive shared-nothing rank programs through supersteps to quiescence.

    Parameters
    ----------
    size:
        Number of ranks.
    cost_model:
        Virtual-time charges (defaults to the paper-testbed preset).
    max_supersteps:
        Safety bound; exceeded only by a non-terminating program (the PA
        algorithms need ``O(log n)`` supersteps).

    Examples
    --------
    A trivial two-rank echo program:

    >>> import numpy as np
    >>> class Echo:
    ...     def __init__(self, rank):
    ...         self.rank, self.sent, self.got = rank, False, None
    ...     def step(self, ctx, inbox):
    ...         for src, arr in inbox:
    ...             self.got = (src, arr.copy())
    ...         if not self.sent and self.rank == 0:
    ...             self.sent = True
    ...             return {1: [np.arange(3)]}
    ...         return None
    ...     @property
    ...     def done(self):
    ...         return self.rank == 1 or self.sent
    >>> eng = BSPEngine(2)
    >>> programs = [Echo(0), Echo(1)]
    >>> _ = eng.run(programs)
    >>> programs[1].got[0], list(programs[1].got[1])
    (0, [np.int64(0), np.int64(1), np.int64(2)])
    """

    def __init__(
        self,
        size: int,
        cost_model: CostModel | None = None,
        max_supersteps: int = 10_000,
        topology: Any = None,
        telemetry: Any = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self.cost = cost_model or CostModel()
        self.max_supersteps = max_supersteps
        #: observability facade (:class:`repro.telemetry.Telemetry`); the
        #: engine is single-process, so spans are recorded directly —
        #: observation only, never part of the simulated cost model.
        self.tel = resolve(telemetry)
        #: optional :class:`repro.mpsim.topology.Topology`; when set, each
        #: outgoing byte's transfer charge is scaled by the (src, dst) hop
        #: multiplier (precomputed into a dense table).
        self.topology = topology
        self._topo_mult = (
            topology.multiplier_matrix() if topology is not None else None
        )
        if self._topo_mult is not None and self._topo_mult.shape != (size, size):
            raise MPSimError(
                f"topology covers {self._topo_mult.shape[0]} ranks, engine has {size}"
            )
        self.stats = WorldStats.for_size(size)
        self.simulated_time = 0.0
        self.supersteps = 0

    def run(
        self,
        programs: Sequence[RankProgram],
        checkpointer: Any = None,
        initial_inboxes: list[list[tuple[int, np.ndarray]]] | None = None,
        tracer: Any = None,
        fault_plan: Any = None,
        schedule: Any = None,
    ) -> WorldStats:
        """Execute ``programs`` (one per rank) until global quiescence.

        Parameters
        ----------
        programs:
            One rank program per rank.
        checkpointer:
            Optional :class:`repro.mpsim.checkpoint.Checkpointer`; its
            ``maybe_save(engine, programs, inboxes)`` hook runs after every
            superstep with the state needed to resume.
        initial_inboxes:
            In-flight messages to deliver in the first superstep (used by
            checkpoint resume; normal runs start with empty inboxes).
        tracer:
            Optional :class:`repro.mpsim.trace.Tracer`; receives per-step
            rank times and record counts for timeline analysis.
        fault_plan:
            Optional :class:`repro.mpsim.faults.FaultPlan`; scheduled rank
            crashes surface as :class:`RankFailure`, message drops and
            duplications are applied at exchange time, and straggler ranks
            have their per-step time inflated.
        schedule:
            Optional :class:`repro.schedsim.Schedule`.  Each superstep's
            rank activation order and each destination's inbox assembly
            order become explicit choice points (canonical order first, so
            a baseline schedule reproduces the unscheduled run bit-exactly),
            and the schedule's bounded-progress watchdog ticks once per
            superstep, resetting whenever the global done-count rises.
        """
        if len(programs) != self.size:
            raise MPSimError(
                f"expected {self.size} rank programs, got {len(programs)}"
            )
        contexts = [
            BSPRankContext(r, self.size, self.stats, self.cost) for r in range(self.size)
        ]
        inboxes: list[list[tuple[int, np.ndarray]]]
        if initial_inboxes is not None:
            if len(initial_inboxes) != self.size:
                raise MPSimError("initial_inboxes must have one entry per rank")
            inboxes = initial_inboxes
        else:
            inboxes = [[] for _ in range(self.size)]
        pending = True  # force at least one step so programs can initialise
        quiet_steps = 0
        done_prev = 0

        while pending:
            if self.supersteps >= self.max_supersteps:
                raise MPSimError(
                    f"exceeded max_supersteps={self.max_supersteps}; "
                    "rank programs are not quiescing"
                )
            self.supersteps += 1
            step_span = self.tel.span(
                "superstep", cat="superstep", tid=-1, superstep=self.supersteps
            )
            step_span.__enter__()
            step_times = np.zeros(self.size)
            step_records = np.zeros(self.size)
            next_inboxes: list[list[tuple[int, np.ndarray]]] = [
                [] for _ in range(self.size)
            ]
            any_traffic = False
            any_work = False

            rank_order: Sequence[int] = range(self.size)
            if schedule is not None:
                schedule.tick()
                rank_order = schedule.permute("activation", list(range(self.size)))
            for rank in rank_order:
                prog = programs[rank]
                if fault_plan is not None and fault_plan.should_crash(
                    rank, superstep=self.supersteps, time=self.simulated_time
                ):
                    raise RankFailure(
                        rank,
                        InjectedFault(
                            f"injected crash of rank {rank} at superstep "
                            f"{self.supersteps}"
                        ),
                    )
                ctx = contexts[rank]
                inbox = inboxes[rank]
                in_records = sum(len(arr) for _, arr in inbox)
                in_bytes = sum(arr.nbytes for _, arr in inbox)
                try:
                    outbox = prog.step(ctx, inbox) or {}
                except Exception as exc:
                    raise RankFailure(rank, exc) from exc

                out_records = 0
                out_bytes = 0
                weighted_out_bytes = 0.0
                for dest, payloads in outbox.items():
                    if not 0 <= dest < self.size:
                        raise InvalidRankError(
                            f"rank {rank} addressed invalid destination {dest}"
                        )
                    if dest == rank:
                        raise MPSimError(
                            f"rank {rank} attempted a self-send; local work "
                            "must not route through the exchange"
                        )
                    for arr in payloads:
                        if len(arr) == 0:
                            continue
                        # sender-side costs accrue regardless of delivery fate
                        out_records += len(arr)
                        out_bytes += arr.nbytes
                        weighted_out_bytes += arr.nbytes * (
                            self._topo_mult[rank, dest]
                            if self._topo_mult is not None
                            else 1.0
                        )
                        copies = 1
                        if fault_plan is not None:
                            copies = fault_plan.message_fate(
                                rank, dest, superstep=self.supersteps
                            )
                        for _ in range(copies):
                            next_inboxes[dest].append((rank, arr))
                        if copies:
                            any_traffic = True

                rs = self.stats[rank]
                rs.record_send(out_records, out_bytes)
                rs.record_receive(in_records, in_bytes)
                rs.rounds += 1
                if ctx._drain_step_events():
                    any_work = True
                t = (
                    ctx._drain_step_compute()
                    + self.cost.per_message * (out_records + in_records)
                    + self.cost.beta * (weighted_out_bytes + in_bytes)
                    + self.cost.round_time()
                )
                if fault_plan is not None:
                    t *= fault_plan.straggle_multiplier(rank)
                rs.busy_time += t
                step_times[rank] = t
                step_records[rank] = out_records

            if schedule is not None:
                for dest, items in enumerate(next_inboxes):
                    if len(items) > 1:
                        tags = [((self.supersteps, dest), src) for src, _ in items]
                        order = schedule.permute("inbox", tags)
                        next_inboxes[dest] = [items[i] for i in order]
                done_now = sum(1 for p in programs if p.done)
                if done_now > done_prev:
                    done_prev = done_now
                    schedule.on_progress()

            virtual_step = float(step_times.max())
            self.simulated_time += virtual_step
            step_span.note(
                virtual_s=virtual_step,
                virtual_total_s=self.simulated_time,
                records=int(step_records.sum()),
            )
            if self.tel.enabled:
                # memory trajectory: one sample per superstep, on the span
                # (for `repro inspect`) and as a gauge (for Prometheus)
                rss = proc_rss_bytes()
                step_span.note(rss_bytes=rss)
            step_span.__exit__(None, None, None)
            if self.tel.enabled:
                self.tel.counter(
                    "bsp_supersteps_total", "supersteps executed by BSPEngine"
                ).inc()
                self.tel.counter(
                    "bsp_records_total", "records exchanged (paper Fig. 7 metric)"
                ).inc(int(step_records.sum()))
                self.tel.gauge(
                    "bsp_simulated_time_seconds", "virtual T_p accumulated so far"
                ).set(self.simulated_time)
                self.tel.gauge(
                    "proc_rss_bytes", "resident set size, sampled per superstep"
                ).set(float(rss), rank=-1)
            if tracer is not None:
                tracer.record(step_times, step_records)
            inboxes = next_inboxes
            if checkpointer is not None and (any_traffic or any_work):
                # quiet supersteps carry no state change worth snapshotting,
                # and saving them would let a deadlocking (e.g. poisoned)
                # resume rotate away the older snapshots recovery still needs
                checkpointer.maybe_save(self, programs, inboxes)
            all_done = all(p.done for p in programs)
            if not any_traffic and all_done:
                pending = False
            elif not any_traffic and not any_work:
                quiet_steps += 1
                if quiet_steps >= 2:
                    # Two consecutive exchanges carried nothing, no rank did
                    # any local work, yet some rank is not done: nothing can
                    # unblock it.  This is the BSP analogue of the deadlock
                    # of Section 3.5.2.
                    stuck = [r for r, p in enumerate(programs) if not p.done]
                    raise DeadlockError(
                        f"no traffic or local work for {quiet_steps} "
                        f"supersteps but ranks {stuck} still have pending work",
                        blocked_ranks=tuple(stuck),
                    )
            else:
                quiet_steps = 0

        return self.stats

    # ------------------------------------------------------------- reporting
    def summary(self) -> dict[str, float]:
        """Engine-level summary for benchmark reports."""
        out = self.stats.summary()
        out["supersteps"] = float(self.supersteps)
        out["simulated_time"] = self.simulated_time
        return out


def exchange_alltoallv(
    outboxes: Sequence[Mapping[int, np.ndarray]],
) -> list[list[tuple[int, np.ndarray]]]:
    """Standalone alltoallv used by tests and the multiprocessing backend.

    ``outboxes[i][j]`` is the (single, concatenated) array rank ``i`` sends to
    rank ``j``; the result's element ``j`` lists ``(source, array)`` pairs in
    source order — the same delivery order the in-process engine produces.
    """
    size = len(outboxes)
    inboxes: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(size)]
    for src, outbox in enumerate(outboxes):
        for dest in sorted(outbox):
            arr = outbox[dest]
            if len(arr):
                inboxes[dest].append((src, arr))
    return inboxes
