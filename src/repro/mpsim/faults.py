"""Deterministic fault injection for both mpsim engines.

The paper's target regime — hundreds of ranks generating billions of edges —
is exactly where rank crashes, lost or duplicated messages, and stragglers
stop being corner cases.  A :class:`FaultPlan` is a *seeded, reproducible*
schedule of such faults, applied through hooks in
:class:`~repro.mpsim.bsp.BSPEngine` (``fault_plan=``) and the event-driven
:class:`~repro.mpsim.runtime.Simulator` (``fault_injector=``):

* **crashes** — a chosen rank raises
  :class:`~repro.mpsim.errors.InjectedFault` (surfaced as
  :class:`~repro.mpsim.errors.RankFailure`) at a scheduled superstep or
  virtual time;
* **drops / duplications** — individual messages are discarded or delivered
  twice at exchange time, from a bounded budget so a supervised retry can
  eventually run clean;
* **stragglers** — selected ranks have their per-superstep compute (BSP) or
  message latency (event engine) inflated by a constant factor.

Crash events are *one-shot*: once fired they are consumed, modelling a
transient fail-stop failure.  Combined with the deterministic engines this
gives the recovery property the test-suite asserts: a run crashed and
recovered through :class:`~repro.mpsim.supervisor.Supervisor` produces a
bit-identical edge list to a fault-free run.

Every fault actually applied is appended to :attr:`FaultPlan.log`, so tests
and operators can audit exactly what the plan did.

Engines differ in which fault kinds they can physically realise, so a plan
exposes its *pending* fault kinds through :meth:`FaultPlan.capabilities`
(machine-checkable capability strings) — the API backends use to accept or
reject a plan, instead of peeking at private fields.  The real-process
backend additionally uses :meth:`FaultPlan.consume_crash` to acknowledge a
crash that fired inside a worker it cannot observe directly: a killed
process takes its copy of the plan with it, so the coordinator marks the
event fired on *its* copy when it attributes the death — which is what keeps
a supervised retry from re-killing the respawned rank forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "FaultPlan",
    "FaultRecord",
    "CAP_CRASH_SUPERSTEP",
    "CAP_CRASH_TIME",
    "CAP_DROP",
    "CAP_DUPLICATE",
    "CAP_STRAGGLE",
]

#: capability strings returned by :meth:`FaultPlan.capabilities`
CAP_CRASH_SUPERSTEP = "crash:superstep"
CAP_CRASH_TIME = "crash:time"
CAP_DROP = "drop"
CAP_DUPLICATE = "duplicate"
CAP_STRAGGLE = "straggle"

#: message fates returned by :meth:`FaultPlan.message_fate`
DELIVER, DROP, DUPLICATE = 1, 0, 2


@dataclass(frozen=True)
class FaultRecord:
    """One fault the plan actually applied."""

    kind: str  # "crash" | "drop" | "duplicate" | "straggle"
    rank: int  # crashed/straggling rank, or the message's source rank
    dest: int | None = None  # message destination (drop/duplicate only)
    superstep: int | None = None  # BSP superstep of the fault, if known
    time: float | None = None  # virtual time of the fault, if known


class _Crash:
    __slots__ = ("rank", "at_superstep", "at_time", "fired")

    def __init__(self, rank: int, at_superstep: int | None, at_time: float | None) -> None:
        if at_superstep is None and at_time is None:
            raise ValueError("crash needs at_superstep or at_time")
        self.rank = rank
        self.at_superstep = at_superstep
        self.at_time = at_time
        self.fired = False


class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    Build one explicitly::

        plan = FaultPlan(seed=7).crash(2, at_superstep=3).straggle(0, factor=8)

    or derive a randomised plan from a single seed (the CLI's
    ``--inject-faults SEED``)::

        plan = FaultPlan.chaos(seed=7, size=16, crashes=1, drops=5)

    The same seed always produces the same schedule, and — because both
    engines iterate messages deterministically — the same fault sequence.
    """

    def __init__(self, seed: int | None = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._crashes: list[_Crash] = []
        self.drop_rate = 0.0
        self.duplicate_rate = 0.0
        self._drops_left = 0
        self._duplicates_left = 0
        self._stragglers: dict[int, float] = {}
        #: every fault actually applied, in application order
        self.log: list[FaultRecord] = []

    # ------------------------------------------------------------- building
    def crash(
        self, rank: int, at_superstep: int | None = None, at_time: float | None = None
    ) -> "FaultPlan":
        """Schedule a one-shot crash of ``rank``.

        ``at_superstep`` fires in the BSP engine just before the rank's
        ``step()`` of that superstep; ``at_time`` fires in the event-driven
        engine at the rank's next send or compute charge past that virtual
        time (either bound may fire in either engine if both are set).
        """
        self._crashes.append(_Crash(rank, at_superstep, at_time))
        return self

    def drop(self, count: int, rate: float = 0.05) -> "FaultPlan":
        """Drop up to ``count`` messages, each with probability ``rate``."""
        self._drops_left += count
        self.drop_rate = rate
        return self

    def duplicate(self, count: int, rate: float = 0.05) -> "FaultPlan":
        """Deliver up to ``count`` messages twice, each with probability ``rate``."""
        self._duplicates_left += count
        self.duplicate_rate = rate
        return self

    def straggle(self, rank: int, factor: float = 5.0) -> "FaultPlan":
        """Inflate ``rank``'s compute time / message latency by ``factor``."""
        if factor < 1.0:
            raise ValueError(f"straggle factor must be >= 1, got {factor}")
        self._stragglers[rank] = factor
        return self

    @classmethod
    def chaos(
        cls,
        seed: int | None,
        size: int,
        crashes: int = 1,
        drops: int = 0,
        duplicates: int = 0,
        stragglers: int = 0,
        straggle_factor: float = 5.0,
        crash_supersteps: tuple[int, int] = (2, 6),
        rate: float = 0.05,
    ) -> "FaultPlan":
        """Derive a randomised plan for a ``size``-rank job from one seed."""
        plan = cls(seed)
        rng = plan._rng
        lo, hi = crash_supersteps
        for _ in range(crashes):
            plan.crash(
                int(rng.integers(size)), at_superstep=int(rng.integers(lo, hi + 1))
            )
        if drops:
            plan.drop(drops, rate=rate)
        if duplicates:
            plan.duplicate(duplicates, rate=rate)
        for r in _sample_ranks(rng, size, stragglers):
            plan.straggle(r, factor=straggle_factor)
        return plan

    # --------------------------------------------------------- engine hooks
    def should_crash(
        self, rank: int, superstep: int | None = None, time: float | None = None
    ) -> bool:
        """Engine hook: does ``rank`` crash now?  Fires each event once."""
        for ev in self._crashes:
            if ev.fired or ev.rank != rank:
                continue
            due = (
                ev.at_superstep is not None
                and superstep is not None
                and superstep >= ev.at_superstep
            ) or (ev.at_time is not None and time is not None and time >= ev.at_time)
            if due:
                ev.fired = True
                self.log.append(
                    FaultRecord("crash", rank, superstep=superstep, time=time)
                )
                return True
        return False

    def message_fate(
        self, source: int, dest: int, superstep: int | None = None
    ) -> int:
        """Engine hook: deliver this message 1, 0 (drop), or 2 (dup) times.

        Draws consume the plan's RNG only while a fault budget remains, so a
        plan with exhausted budgets is a transparent pass-through (and a
        supervised retry eventually replays clean).
        """
        if self._drops_left > 0 and self._rng.random() < self.drop_rate:
            self._drops_left -= 1
            self.log.append(FaultRecord("drop", source, dest=dest, superstep=superstep))
            return DROP
        if self._duplicates_left > 0 and self._rng.random() < self.duplicate_rate:
            self._duplicates_left -= 1
            self.log.append(
                FaultRecord("duplicate", source, dest=dest, superstep=superstep)
            )
            return DUPLICATE
        return DELIVER

    def straggle_multiplier(self, rank: int) -> float:
        """Engine hook: time-inflation factor for ``rank`` (1.0 = healthy)."""
        return self._stragglers.get(rank, 1.0)

    def consume_crash(self, rank: int, superstep: int | None = None) -> bool:
        """Coordinator hook: acknowledge a crash that fired *out of process*.

        The multiprocessing backend realises crash events as real worker
        kills, which destroy the worker's (forked) copy of the plan before it
        can report the event as fired.  When the coordinator attributes the
        death to ``rank``, it calls this on its own copy: the earliest
        unfired crash scheduled for that rank — and, when the death superstep
        is known, not scheduled later than it — is marked fired and logged.
        Returns False (and marks nothing) when no matching crash was pending,
        i.e. the death was organic rather than injected.
        """
        for ev in self._crashes:
            if ev.fired or ev.rank != rank:
                continue
            if (
                superstep is not None
                and ev.at_superstep is not None
                and ev.at_superstep > superstep
            ):
                continue
            ev.fired = True
            self.log.append(FaultRecord("crash", rank, superstep=superstep))
            return True
        return False

    # ------------------------------------------------------------ inspection
    @property
    def pending_crashes(self) -> int:
        return sum(not ev.fired for ev in self._crashes)

    def capabilities(self) -> frozenset[str]:
        """The fault kinds this plan can still apply, as capability strings.

        Backends use this to accept or reject a plan without reaching into
        private fields: ``crash:superstep`` / ``crash:time`` for pending
        crashes (by how they are scheduled), ``drop`` / ``duplicate`` for
        remaining message-fate budget, and ``straggle`` for slow ranks.
        A crash scheduled by *both* superstep and time counts as
        ``crash:superstep`` — any engine with a superstep counter can fire
        it.
        """
        caps: set[str] = set()
        for ev in self._crashes:
            if ev.fired:
                continue
            caps.add(
                CAP_CRASH_SUPERSTEP if ev.at_superstep is not None else CAP_CRASH_TIME
            )
        if self._drops_left > 0:
            caps.add(CAP_DROP)
        if self._duplicates_left > 0:
            caps.add(CAP_DUPLICATE)
        if self._stragglers:
            caps.add(CAP_STRAGGLE)
        return frozenset(caps)

    def has_drops(self) -> bool:
        """True while message-drop budget remains unspent."""
        return self._drops_left > 0

    def has_duplicates(self) -> bool:
        """True while message-duplication budget remains unspent."""
        return self._duplicates_left > 0

    @property
    def straggler_ranks(self) -> tuple[int, ...]:
        return tuple(sorted(self._stragglers))

    def counts(self) -> dict[str, int]:
        """Applied-fault counts by kind (from the log)."""
        out: dict[str, int] = {}
        for rec in self.log:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, crashes={len(self._crashes)}, "
            f"drops_left={self._drops_left}, duplicates_left={self._duplicates_left}, "
            f"stragglers={self.straggler_ranks}, applied={self.counts()})"
        )


def _sample_ranks(rng: np.random.Generator, size: int, k: int) -> Iterable[int]:
    if k <= 0:
        return ()
    k = min(k, size)
    return (int(r) for r in rng.choice(size, size=k, replace=False))
