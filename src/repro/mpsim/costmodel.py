"""LogGP-style analytic cost model for the simulated cluster.

The paper reports wall-clock scaling on a Sandy Bridge / QDR InfiniBand
cluster.  We cannot reproduce those seconds, but the *shape* of the scaling
curves is determined by quantities the simulator measures exactly: per-rank
node counts, message counts, byte volumes, and the number of communication
rounds.  The cost model converts those counters into a virtual per-rank time:

``time(rank) = c * nodes + w * work_items + o * messages + beta * bytes
               + alpha * rounds``

and the simulated parallel runtime of a superstep program is the max over
ranks, summed over supersteps (ranks synchronise at each exchange, as the
buffered MPI implementation effectively does).

The default constants are calibrated in two steps: network terms from the
testbed's QDR InfiniBand specs (~1.3 us one-way latency, ~3.2 GB/s
effective bandwidth), and the per-event compute terms against the paper's
Section 4.5 headline measurement (50 B edges in 123 s on 768 ranks, i.e.
~19 us per edge per rank *end to end*).  The per-event constants are
therefore *effective* costs — they absorb cache misses on multi-GB tables
and MPI library overhead, not just the arithmetic.  The absolute values
matter only for the extrapolation experiment; every scaling figure is a
ratio in which the shape is driven by the measured counters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "MachinePreset", "PRESETS"]


@dataclass(frozen=True)
class CostModel:
    """Per-event virtual-time charges, in seconds.

    Attributes
    ----------
    alpha:
        Latency per communication round (superstep barrier + message group
        startup).  LogGP's ``L + 2o`` for the bulk exchange.
    beta:
        Transfer time per byte (inverse effective bandwidth).
    per_message:
        CPU overhead per logical message (pack/unpack of one request or
        resolved record) — LogGP's ``o`` at fine granularity.  Buffering many
        records into one MPI send is what makes this the dominant surviving
        software cost.
    per_node:
        Work to process one node: RNG draws, branch, local bookkeeping.
    per_work_item:
        Extra work per retry/queue operation beyond the base node charge.
    """

    alpha: float = 2.6e-6
    beta: float = 3.1e-10
    per_message: float = 3.3e-7
    per_node: float = 1.5e-6
    per_work_item: float = 3.6e-7

    def compute_time(self, nodes: int, work_items: int = 0) -> float:
        """Virtual seconds of pure computation for ``nodes`` node events."""
        return self.per_node * nodes + self.per_work_item * work_items

    def message_time(self, messages: int, nbytes: int) -> float:
        """Virtual seconds spent packing/transferring ``messages`` totaling ``nbytes``."""
        return self.per_message * messages + self.beta * nbytes

    def round_time(self) -> float:
        """Fixed charge for one bulk exchange round."""
        return self.alpha

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every compute charge scaled by ``factor``.

        Used by benchmarks to model slower/faster cores without touching the
        network terms.
        """
        return replace(
            self,
            per_node=self.per_node * factor,
            per_work_item=self.per_work_item * factor,
            per_message=self.per_message * factor,
        )


@dataclass(frozen=True)
class MachinePreset:
    """A named cluster configuration for extrapolation reports."""

    name: str
    cost: CostModel
    cores_per_node: int
    description: str


PRESETS: dict[str, MachinePreset] = {
    "sc13-sandybridge-qdr": MachinePreset(
        name="sc13-sandybridge-qdr",
        cost=CostModel(),
        cores_per_node=16,
        description=(
            "48-node dual-socket Intel Sandy Bridge E5-2670 (16 cores/node), "
            "QLogic QDR InfiniBand — the paper's testbed."
        ),
    ),
    "zero-latency": MachinePreset(
        name="zero-latency",
        cost=CostModel(alpha=0.0, beta=0.0, per_message=0.0),
        cores_per_node=16,
        description="Idealised machine: communication is free; isolates load imbalance.",
    ),
    "slow-network": MachinePreset(
        name="slow-network",
        cost=CostModel(alpha=5.0e-5, beta=1.0e-8, per_message=5.0e-7),
        cores_per_node=16,
        description="Gigabit-Ethernet-class network; stresses the message terms.",
    ),
}
