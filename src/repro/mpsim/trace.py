"""Execution tracing for BSP runs: per-superstep, per-rank timelines.

Load-balance numbers like Figure 7's are end-of-run aggregates; diagnosing
*why* a scheme loses time needs the time axis too.  A :class:`Tracer`
attached to a :class:`~repro.mpsim.bsp.BSPEngine` records, per superstep,
each rank's virtual busy time and traffic, from which it derives:

* per-superstep utilisation (mean busy / max busy — the barrier wait),
* an ASCII Gantt/heatmap of rank activity over supersteps,
* the cumulative barrier-wait per rank (the cost of imbalance).

The tracer is observation-only: it never changes scheduling and adds two
array writes per (rank, superstep).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tracer"]

_SHADES = " .:-=+*#%@"


class Tracer:
    """Record per-(superstep, rank) activity of a BSP run.

    Use by passing ``tracer=`` to :meth:`repro.mpsim.bsp.BSPEngine.run`.

    Examples
    --------
    >>> from repro.mpsim.bsp import BSPEngine
    >>> from repro.core.parallel_pa import PAx1RankProgram
    >>> from repro.core.partitioning import make_partition
    >>> from repro.rng import StreamFactory
    >>> part = make_partition("rrp", 500, 4)
    >>> f = StreamFactory(0)
    >>> progs = [PAx1RankProgram(r, part, 0.5, f.stream(r)) for r in range(4)]
    >>> tracer = Tracer()
    >>> eng = BSPEngine(4)
    >>> _ = eng.run(progs, tracer=tracer)
    >>> tracer.num_supersteps == eng.supersteps
    True
    """

    def __init__(self) -> None:
        self._times: list[np.ndarray] = []
        self._records: list[np.ndarray] = []
        #: out-of-band annotations, e.g. supervised crash recoveries:
        #: ``(superstep, label)`` pairs in occurrence order
        self.marks: list[tuple[int, str]] = []

    # ----------------------------------------------------------- recording
    def record(self, step_times: np.ndarray, step_records: np.ndarray) -> None:
        """Engine hook: one row per superstep."""
        self._times.append(step_times.copy())
        self._records.append(step_records.copy())

    def mark(self, superstep: int, label: str) -> None:
        """Annotate the timeline (used by the Supervisor for recoveries)."""
        self.marks.append((int(superstep), str(label)))

    # ------------------------------------------------------------ analysis
    @property
    def num_supersteps(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """``(supersteps, ranks)`` matrix of per-step busy times."""
        return np.array(self._times) if self._times else np.zeros((0, 0))

    @property
    def records(self) -> np.ndarray:
        """``(supersteps, ranks)`` matrix of per-step records sent."""
        return np.array(self._records) if self._records else np.zeros((0, 0))

    def utilisation(self) -> np.ndarray:
        """Per-superstep mean/max busy ratio (1.0 = no barrier waiting)."""
        t = self.times
        if t.size == 0:
            return np.zeros(0)
        peaks = t.max(axis=1)
        peaks[peaks == 0] = 1.0
        return t.mean(axis=1) / peaks

    def barrier_wait(self) -> np.ndarray:
        """Per-rank total virtual time spent waiting at superstep barriers."""
        t = self.times
        if t.size == 0:
            return np.zeros(0)
        return (t.max(axis=1, keepdims=True) - t).sum(axis=0)

    def gantt(self, max_width: int = 80) -> str:
        """ASCII heatmap: rows = ranks, columns = supersteps, shade = load.

        Each cell's shade is that rank's busy time relative to the
        superstep's busiest rank, so barrier waits show up as light cells.
        """
        t = self.times
        if t.size == 0:
            return "(no supersteps recorded)"
        steps, ranks = t.shape
        # pool supersteps into at most max_width columns
        cols = min(steps, max_width)
        pooled = np.zeros((cols, ranks))
        bounds = np.linspace(0, steps, cols + 1).astype(int)
        for c in range(cols):
            pooled[c] = t[bounds[c]:bounds[c + 1]].sum(axis=0)
        peaks = pooled.max(axis=1, keepdims=True)
        peaks[peaks == 0] = 1.0
        rel = pooled / peaks
        lines = [f"BSP Gantt: {ranks} ranks x {steps} supersteps "
                 f"(shade = share of the step's busiest rank)"]
        for r in range(ranks):
            cells = "".join(
                _SHADES[min(int(rel[c, r] * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
                for c in range(cols)
            )
            lines.append(f"rank {r:>3} |{cells}|")
        util = self.utilisation()
        lines.append(f"mean utilisation: {util.mean():.2%} "
                     f"(min superstep {util.min():.2%})")
        for superstep, label in self.marks:
            lines.append(f"mark @ superstep {superstep}: {label}")
        return "\n".join(lines)

    def summary(self) -> dict[str, float]:
        util = self.utilisation()
        return {
            "supersteps": float(self.num_supersteps),
            "mean_utilisation": float(util.mean()) if util.size else 1.0,
            "min_utilisation": float(util.min()) if util.size else 1.0,
            "total_barrier_wait": float(self.barrier_wait().sum()),
        }

    def to_chrome_trace(self, path: str | None = None) -> dict:
        """Render the virtual-time timeline as Chrome trace-event JSON.

        Emits the same schema the real engines' wall-clock telemetry uses
        (``tid`` = rank, ``cat`` = ``compute``/``barrier``), with *virtual*
        seconds on the time axis: each superstep occupies the interval the
        engine charged it (its slowest rank), a rank's own busy time is a
        ``compute`` span and the remainder a ``barrier`` span — so
        ``repro inspect`` and ``chrome://tracing`` show simulated and real
        runs identically, units aside.  Marks become instant events.
        """
        from repro.telemetry.export import chrome_trace, write_chrome_trace

        t = self.times
        events: list[dict] = []
        step_starts: list[float] = []
        clock = 0.0
        for step in range(t.shape[0] if t.size else 0):
            step_starts.append(clock)
            peak = float(t[step].max())
            for rank in range(t.shape[1]):
                busy = float(t[step, rank])
                events.append(
                    {
                        "name": "compute",
                        "cat": "compute",
                        "ph": "X",
                        "ts": clock * 1e6,
                        "dur": busy * 1e6,
                        "pid": 0,
                        "tid": rank,
                        "args": {
                            "superstep": step + 1,
                            "records": float(self._records[step][rank]),
                        },
                    }
                )
                if peak > busy:
                    events.append(
                        {
                            "name": "barrier.wait",
                            "cat": "barrier",
                            "ph": "X",
                            "ts": (clock + busy) * 1e6,
                            "dur": (peak - busy) * 1e6,
                            "pid": 0,
                            "tid": rank,
                            "args": {"superstep": step + 1},
                        }
                    )
            clock += peak
        for superstep, label in self.marks:
            idx = max(0, min(int(superstep) - 1, len(step_starts) - 1))
            ts = step_starts[idx] if step_starts else 0.0
            events.append(
                {
                    "name": label,
                    "cat": "mark",
                    "ph": "i",
                    "ts": ts * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "s": "g",
                    "args": {"superstep": int(superstep), "mark": True},
                }
            )
        events.sort(key=lambda e: e["ts"])
        trace = chrome_trace(
            events=events,
            metadata={
                "source": "tracer",
                "time_axis": "virtual_seconds",
                "dropped_events": 0,
                "marks": [[s, label] for s, label in self.marks],
            },
        )
        if path is not None:
            write_chrome_trace(path, trace)
        return trace
