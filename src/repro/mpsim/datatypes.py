"""Message envelopes and tags used by the simulated runtime.

The event-driven engine moves :class:`Envelope` objects between rank
mailboxes.  Payload size accounting is centralised in :func:`payload_nbytes`
so that the cost model and the traffic statistics agree on what a "byte" is
regardless of whether the payload is a NumPy array, a tuple of ints, or an
arbitrary picklable object.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "TAG_DEFAULT",
    "TAG_REQUEST",
    "TAG_RESOLVED",
    "TAG_COLLECTIVE",
    "Envelope",
    "payload_nbytes",
]

#: Wildcard source for receives, mirroring ``MPI.ANY_SOURCE``.
ANY_SOURCE = -1
#: Wildcard tag for receives, mirroring ``MPI.ANY_TAG``.
ANY_TAG = -1

TAG_DEFAULT = 0
#: Tag used by Algorithm 3.1/3.2 ``<request, ...>`` messages.
TAG_REQUEST = 1
#: Tag used by Algorithm 3.1/3.2 ``<resolved, ...>`` messages.
TAG_RESOLVED = 2
#: Reserved tag space for collectives built on point-to-point.
TAG_COLLECTIVE = 1 << 20


def payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a message payload.

    NumPy arrays report their buffer size; everything else is costed at its
    pickled size, matching how mpi4py's lowercase API would transmit it.
    Sizes feed the :class:`~repro.mpsim.costmodel.CostModel` byte term and the
    per-rank traffic counters.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if payload is None:
        return 0
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, tuple) and all(isinstance(x, (int, float, bool)) for x in payload):
        return 8 * len(payload)
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable payloads are costed flat
        return 64


@dataclass(order=True)
class Envelope:
    """A message in flight.

    Envelopes sort by ``(deliver_at, seq)`` so the event queue is a plain
    heap; ``seq`` breaks ties deterministically in send order.
    """

    deliver_at: float
    seq: int
    source: int = field(compare=False)
    dest: int = field(compare=False)
    tag: int = field(compare=False)
    payload: Any = field(compare=False)
    nbytes: int = field(compare=False, default=0)

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope match a receive posted for ``(source, tag)``?"""
        return (source in (ANY_SOURCE, self.source)) and (tag in (ANY_TAG, self.tag))
