"""Per-rank traffic and work counters.

The paper's load-balance evaluation (Section 4.6, Figure 7) measures three
per-processor quantities: the number of nodes, the number of outgoing
(request) messages, and the number of incoming (request) messages, and sums
them into a total load.  :class:`RankStats` tracks those plus byte volumes and
virtual busy time; :class:`WorldStats` aggregates across ranks and computes
the imbalance metrics the figures visualise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RankStats", "WorldStats"]


@dataclass
class RankStats:
    """Counters for one simulated rank."""

    rank: int
    nodes: int = 0
    work_items: int = 0
    msgs_sent: int = 0
    msgs_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    rounds: int = 0
    busy_time: float = 0.0

    def record_send(self, count: int = 1, nbytes: int = 0) -> None:
        self.msgs_sent += count
        self.bytes_sent += nbytes

    def record_receive(self, count: int = 1, nbytes: int = 0) -> None:
        self.msgs_received += count
        self.bytes_received += nbytes

    @property
    def total_load(self) -> int:
        """The paper's total-load metric: nodes + incoming + outgoing messages."""
        return self.nodes + self.msgs_sent + self.msgs_received

    def merge(self, other: "RankStats") -> None:
        """Accumulate ``other`` into this record (used by multi-phase runs)."""
        self.nodes += other.nodes
        self.work_items += other.work_items
        self.msgs_sent += other.msgs_sent
        self.msgs_received += other.msgs_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.rounds = max(self.rounds, other.rounds)
        self.busy_time += other.busy_time


@dataclass
class WorldStats:
    """Aggregate view over all ranks of one run."""

    ranks: list[RankStats] = field(default_factory=list)
    #: supervised crash-recovery events
    #: (:class:`repro.mpsim.supervisor.RecoveryEvent`) applied to this run,
    #: in occurrence order — empty for unsupervised or fault-free runs
    recoveries: list = field(default_factory=list)

    @classmethod
    def for_size(cls, size: int) -> "WorldStats":
        return cls(ranks=[RankStats(rank=r) for r in range(size)])

    def record_recovery(self, event) -> None:
        """Append one supervised recovery event (kept out of per-rank data
        so imbalance metrics are unaffected)."""
        self.recoveries.append(event)

    def __getitem__(self, rank: int) -> RankStats:
        return self.ranks[rank]

    def __len__(self) -> int:
        return len(self.ranks)

    def array(self, attr: str) -> np.ndarray:
        """Vector of one counter across ranks, in rank order."""
        return np.array([getattr(r, attr) for r in self.ranks], dtype=np.float64)

    @property
    def total_loads(self) -> np.ndarray:
        return np.array([r.total_load for r in self.ranks], dtype=np.int64)

    @property
    def imbalance(self) -> float:
        """max/mean total load — 1.0 is perfect balance.

        This single number summarises Figure 7(d): RRP should sit near 1,
        LCP slightly above, UCP far above.
        """
        loads = self.total_loads
        mean = loads.mean()
        if mean == 0:
            return 1.0
        return float(loads.max() / mean)

    @property
    def makespan(self) -> float:
        """Simulated parallel time: the busiest rank's virtual busy time."""
        if not self.ranks:
            return 0.0
        return max(r.busy_time for r in self.ranks)

    @property
    def total_messages(self) -> int:
        return sum(r.msgs_sent for r in self.ranks)

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes_sent for r in self.ranks)

    def summary(self) -> dict[str, float]:
        """Compact dict used by the benchmark reporters."""
        loads = self.total_loads
        return {
            "ranks": float(len(self.ranks)),
            "total_messages": float(self.total_messages),
            "total_bytes": float(self.total_bytes),
            "load_max": float(loads.max()) if len(loads) else 0.0,
            "load_mean": float(loads.mean()) if len(loads) else 0.0,
            "imbalance": self.imbalance,
            "makespan": self.makespan,
            "recoveries": float(len(self.recoveries)),
        }
