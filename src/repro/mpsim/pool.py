"""Persistent worker pool: fork once, run many BSP jobs.

:class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine` forks ``P``
processes, runs one job, and tears everything down — the right shape for a
single generation, but repeated jobs (parameter sweeps, a service handling
generation requests back-to-back) pay the fork, pipe, and shared-memory
setup every time.  On small jobs that startup dominates the whole run.

:class:`WorkerPool` keeps the fleet alive: workers, pipes, payload segments,
and (for the p2p exchange) the mailbox fabric are created once and reused by
every :meth:`WorkerPool.run`.  Jobs ship their rank programs to the workers
by pickle (the one-shot engine lets them ride the fork instead), and each
job's results, statistics, and telemetry land on the pool exactly as they
would on a one-shot engine — the two are drop-in interchangeable for
callers, and bit-identical in output (asserted by the test-suite).

.. code-block:: python

    from repro.mpsim.pool import WorkerPool

    with WorkerPool(size=8, exchange="p2p") as pool:
        for seed in range(100):
            pool.run(make_programs(seed))
            consume(pool.results)

A job that fails (a rank program raising, a worker dying) marks the pool
*broken*: the in-flight superstep state of the surviving workers is
unknowable, so subsequent :meth:`run` calls are refused and the pool must be
recreated.  :meth:`close` is always safe and idempotent.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Sequence

from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import MPSimError
from repro.mpsim.mp_backend import (
    _SHUTDOWN,
    EXCHANGE_P2P,
    _check_mp_fault_plan,
    _drive_job,
    _normalise_exchange,
    _worker_main,
)
from repro.mpsim.p2p import P2PFabric
from repro.mpsim.stats import WorldStats

__all__ = ["WorkerPool"]


class WorkerPool:
    """A persistent fleet of BSP worker processes.

    Parameters mirror :class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine`;
    the pool accepts the same ``exchange`` transports and produces
    bit-identical output.  Workers fork immediately (with no inherited
    program — jobs ship theirs) and live until :meth:`close`.
    """

    def __init__(
        self,
        size: int,
        exchange: str = "shm",
        max_supersteps: int = 10_000,
        cost_model: CostModel | None = None,
        mailbox_slot_bytes: int = 8192,
        barrier_timeout: float = 120.0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self.exchange = _normalise_exchange(exchange)
        self.max_supersteps = max_supersteps
        self.cost = cost_model or CostModel()
        self._fabric = (
            P2PFabric(size, slot_bytes=mailbox_slot_bytes, timeout=barrier_timeout)
            if self.exchange == EXCHANGE_P2P
            else None
        )
        ctx = mp.get_context("fork")
        self._parents: list[Any] = []
        self._procs: list[Any] = []
        for rank in range(size):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    rank, size, child_conn, self.exchange, self._fabric,
                    None, max_supersteps, self.cost,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._parents.append(parent_conn)
            self._procs.append(proc)

        #: jobs completed successfully since the pool was created
        self.jobs_run = 0
        self._closed = False
        self._broken = False
        # per-job outputs, same attributes the one-shot engine exposes
        self.stats = WorldStats.for_size(size)
        self.results: list[Any] = []
        self.telemetry: list[dict] = []
        self.supersteps = 0
        self.simulated_time = 0.0

    # ------------------------------------------------------------------ jobs
    def run(
        self, programs: Sequence[Any], fault_plan: Any = None
    ) -> WorldStats:
        """Run one job over the live workers; same contract as the engine's
        :meth:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine.run`."""
        if self._closed:
            raise MPSimError("worker pool is closed")
        if self._broken:
            raise MPSimError(
                "worker pool is broken by an earlier job failure; create a new pool"
            )
        if len(programs) != self.size:
            raise MPSimError(f"expected {self.size} rank programs, got {len(programs)}")
        _check_mp_fault_plan(fault_plan)
        self.stats = WorldStats.for_size(self.size)
        try:
            (
                self.results,
                self.telemetry,
                self.supersteps,
                self.simulated_time,
            ) = _drive_job(
                self._parents, self._procs, self.size, self.exchange,
                self._fabric, list(programs), fault_plan, self.stats,
                self.max_supersteps,
            )
        except Exception:
            self._broken = True
            raise
        self.jobs_run += 1
        return self.stats

    # --------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Shut the workers down and release every shared resource."""
        if self._closed:
            return
        self._closed = True
        for conn in self._parents:
            try:
                conn.send((_SHUTDOWN, None))
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for conn in self._parents:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        if self._fabric is not None:
            self._fabric.close(unlink=True)
            self._fabric = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("broken" if self._broken else "live")
        return (
            f"WorkerPool(size={self.size}, exchange={self.exchange!r}, "
            f"jobs_run={self.jobs_run}, {state})"
        )
