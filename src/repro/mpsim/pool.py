"""Persistent worker pool: fork once, run many BSP jobs.

:class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine` forks ``P``
processes, runs one job, and tears everything down — the right shape for a
single generation, but repeated jobs (parameter sweeps, a service handling
generation requests back-to-back) pay the fork, pipe, and shared-memory
setup every time.  On small jobs that startup dominates the whole run.

:class:`WorkerPool` keeps the fleet alive: workers, pipes, payload segments,
and (for the p2p exchange) the mailbox fabric are created once and reused by
every :meth:`WorkerPool.run`.  Jobs ship their rank programs to the workers
by pickle (the one-shot engine lets them ride the fork instead), and each
job's results, statistics, and telemetry land on the pool exactly as they
would on a one-shot engine — the two are drop-in interchangeable for
callers, and bit-identical in output (asserted by the test-suite).

.. code-block:: python

    from repro.mpsim.pool import WorkerPool

    with WorkerPool(size=8, exchange="p2p") as pool:
        for seed in range(100):
            pool.run(make_programs(seed))
            consume(pool.results)

A job that fails (a rank program raising, a worker dying — including an
injected ``SIGKILL`` crash) still raises from that :meth:`run`, but no
longer poisons the pool: the next :meth:`run` *heals* first — dead members
are replaced by freshly forked workers, survivors are told to abandon any
in-flight job state (and drained of stale replies), and the p2p barrier is
reset — so one casualty costs one job, not the pool.  The healed pool
produces bit-identical output to a fresh one.  :meth:`close` is always safe
and idempotent.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Sequence

from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import MPSimError
from repro.mpsim.heartbeat import Heartbeats
from repro.mpsim.mp_backend import (
    _ABANDON,
    _SHUTDOWN,
    EXCHANGE_P2P,
    _check_mp_fault_plan,
    _drive_job,
    _normalise_exchange,
    _worker_main,
)
from repro.mpsim.p2p import P2PFabric
from repro.mpsim.stats import WorldStats
from repro.telemetry.collector import RingCollector, resolve
from repro.telemetry.ringbuf import EventRing

__all__ = ["WorkerPool"]

#: wall seconds a healing pool waits for a survivor to acknowledge the
#: abandon token before giving up and replacing it too
_ABANDON_TIMEOUT = 5.0


class WorkerPool:
    """A persistent, self-healing fleet of BSP worker processes.

    Parameters mirror :class:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine`;
    the pool accepts the same ``exchange`` transports and produces
    bit-identical output.  Workers fork immediately (with no inherited
    program — jobs ship theirs) and live until :meth:`close`; members lost
    to a crash are replaced on the next :meth:`run` (see :attr:`respawns`).

    The pool does not take a checkpointer — supervised checkpoint/resume
    runs own their worker lifecycles and use the one-shot engine.
    """

    def __init__(
        self,
        size: int,
        exchange: str = "shm",
        max_supersteps: int = 10_000,
        cost_model: CostModel | None = None,
        mailbox_slot_bytes: int = 8192,
        barrier_timeout: float = 120.0,
        telemetry: Any = None,
        liveness_poll: float = 0.25,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if liveness_poll <= 0:
            raise ValueError(f"liveness_poll must be positive, got {liveness_poll}")
        self.size = size
        self.exchange = _normalise_exchange(exchange)
        self.max_supersteps = max_supersteps
        self.cost = cost_model or CostModel()
        self.liveness_poll = liveness_poll
        self.tel = resolve(telemetry)
        self._fabric = (
            P2PFabric(size, slot_bytes=mailbox_slot_bytes, timeout=barrier_timeout)
            if self.exchange == EXCHANGE_P2P
            else None
        )
        self._heartbeats = Heartbeats(size)
        # created before the first fork (and shared by respawned members):
        # one ring serves every job the pool ever runs
        self._ring = EventRing() if self.tel.enabled else None
        self._collector = RingCollector(self._ring) if self._ring is not None else None
        self._ctx = mp.get_context("fork")
        self._parents: list[Any] = []
        self._procs: list[Any] = []
        for rank in range(size):
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(
                    rank, size, child_conn, self.exchange, self._fabric,
                    None, max_supersteps, self.cost, self._heartbeats,
                    None, None, self._ring,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._parents.append(parent_conn)
            self._procs.append(proc)

        #: jobs completed successfully since the pool was created
        self.jobs_run = 0
        #: replacement workers forked while healing after failures
        self.respawns = 0
        self._closed = False
        self._broken = False
        self._heal_token = 0
        # per-job outputs, same attributes the one-shot engine exposes
        self.stats = WorldStats.for_size(size)
        self.results: list[Any] = []
        self.telemetry: list[dict] = []
        self.supersteps = 0
        self.simulated_time = 0.0

    # ------------------------------------------------------------------ jobs
    def run(
        self, programs: Sequence[Any], fault_plan: Any = None
    ) -> WorldStats:
        """Run one job over the live workers; same contract as the engine's
        :meth:`~repro.mpsim.mp_backend.MultiprocessingBSPEngine.run`.

        If an earlier job failed (or a member died between jobs), the pool
        heals itself first: dead workers are replaced and survivors reset,
        so the failure costs one job rather than the pool.
        """
        if self._closed:
            raise MPSimError("worker pool is closed")
        if len(programs) != self.size:
            raise MPSimError(f"expected {self.size} rank programs, got {len(programs)}")
        _check_mp_fault_plan(fault_plan)
        if self._broken or any(not p.is_alive() for p in self._procs):
            self._heal()
        self.stats = WorldStats.for_size(self.size)
        job_index = self.jobs_run
        try:
            with self.tel.span(
                "pool.job", cat="run", tid=-1, job=job_index, exchange=self.exchange
            ):
                (
                    self.results,
                    self.telemetry,
                    self.supersteps,
                    self.simulated_time,
                ) = _drive_job(
                    self._parents, self._procs, self.size, self.exchange,
                    self._fabric, list(programs), fault_plan, self.stats,
                    self.max_supersteps, heartbeats=self._heartbeats,
                    cost=self.cost, collector=self._collector, tel=self.tel,
                    liveness_poll=self.liveness_poll,
                )
        except Exception:
            self._broken = True
            if self.tel.enabled:
                self.tel.counter(
                    "pool_jobs_failed_total", "pool jobs that raised"
                ).inc()
            raise
        finally:
            if self._collector is not None:
                # fold whatever this job published (even a failed one's
                # partial history) into the pool's facade now, so the ring
                # starts the next job empty
                self._collector.merge_into(self.tel)
        self.jobs_run += 1
        if self.tel.enabled:
            self.tel.counter(
                "pool_jobs_total", "pool jobs completed successfully"
            ).inc()
        return self.stats

    # --------------------------------------------------------------- healing
    def _heal(self) -> None:
        """Restore every member to a known-idle state after a failure.

        Dead workers (killed, crashed, or wedged past the abandon timeout)
        are replaced by freshly forked processes inheriting the same pipes'
        replacements, fabric, and heartbeat board; live survivors — which
        may be mid-job, blocked waiting for a ``_STEP`` that will never come
        — are sent an ``_ABANDON`` token and their pipes drained of stale
        replies until they acknowledge it.  Only then is the p2p barrier
        reset (a straggler still inside ``wait()`` would re-break it).
        """
        self._heal_token += 1
        token = self._heal_token
        self.tel.mark(f"pool heal #{token}")
        for rank in range(self.size):
            if not self._procs[rank].is_alive():
                self._respawn(rank)
                continue
            conn = self._parents[rank]
            try:
                conn.send((_ABANDON, token))
            except (BrokenPipeError, OSError):
                self._respawn(rank)
                continue
            acked = False
            try:
                while conn.poll(_ABANDON_TIMEOUT):
                    msg = conn.recv()
                    if msg[0] == "abandoned" and msg[1] == token:
                        acked = True
                        break
            except (EOFError, OSError):
                pass
            if not acked:
                self._respawn(rank)
        if self._fabric is not None:
            self._fabric.reset()
        self._broken = False

    def _respawn(self, rank: int) -> None:
        """Replace one member with a freshly forked worker."""
        old = self._procs[rank]
        if old.is_alive():
            old.terminate()
        old.join(timeout=5)
        try:
            self._parents[rank].close()
        except OSError:  # pragma: no cover - already closed
            pass
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                rank, self.size, child_conn, self.exchange, self._fabric,
                None, self.max_supersteps, self.cost, self._heartbeats,
                None, None, self._ring,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._parents[rank] = parent_conn
        self._procs[rank] = proc
        self.respawns += 1
        if self.tel.enabled:
            self.tel.mark(f"pool respawned rank {rank}")
            self.tel.counter(
                "pool_respawns_total", "replacement workers forked while healing"
            ).inc(rank=rank)

    # --------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Shut the workers down and release every shared resource."""
        if self._closed:
            return
        self._closed = True
        for conn in self._parents:
            try:
                conn.send((_SHUTDOWN, None))
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for conn in self._parents:
            conn.close()
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1)
        if self._fabric is not None:
            self._fabric.close(unlink=True)
            self._fabric = None
        if self._collector is not None:
            self._collector.merge_into(self.tel)
            self._ring.close(unlink=True)
            self._ring, self._collector = None, None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("healing" if self._broken else "live")
        return (
            f"WorkerPool(size={self.size}, exchange={self.exchange!r}, "
            f"jobs_run={self.jobs_run}, respawns={self.respawns}, {state})"
        )
