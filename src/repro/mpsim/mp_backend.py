"""Real-parallelism backend: run BSP rank programs in OS processes.

The in-process :class:`~repro.mpsim.bsp.BSPEngine` *simulates* a distributed
machine; this backend *is* one (in miniature): each rank program runs in its
own forked process with its own address space.  It exists to prove the rank
programs are genuinely shared-nothing — any accidental reliance on shared
state would produce a different graph here than under the in-process engine,
and the test-suite compares the two bit-for-bit.

Three exchange topologies are available:

``"shm"`` (default)
    coordinator-routed descriptors, zero-copy payloads: every worker owns a
    double-buffered ``multiprocessing.shared_memory`` segment, writes its
    outbox arrays into the half assigned to the current superstep's parity,
    and ships only small ``(segment, offset, count, dtype)`` descriptors
    through the parent's pipes.  Receivers map the source segment and copy
    the records straight out of shared memory — the payload bytes never pass
    through pickle.  Double buffering makes the lockstep safe: superstep
    ``s`` writes half ``s % 2`` while every reader of superstep ``s - 1``
    data reads half ``(s - 1) % 2``.
``"pickle"``
    the original pipe path (arrays pickled through the coordinator's
    connections), kept as a portability fallback and as the baseline the
    hot-path benchmark compares against.
``"p2p"``
    fully peer-to-peer: payloads travel exactly as under ``"shm"``, but the
    descriptors go through a shared-memory mailbox matrix
    (:class:`repro.mpsim.p2p.P2PFabric`) and the supersteps are paced by a
    shared barrier with distributed termination detection — the parent never
    touches a byte of superstep traffic and only monitors liveness and
    collects final results.  This removes the coordinator's serial
    per-superstep work (two pipe hops per rank per superstep) from the
    critical path.

All transports deliver inboxes in identical (source-rank, send) order, so
they produce bit-identical graphs — asserted by the test-suite.

The coordinator paths drain worker replies with
``multiprocessing.connection.wait`` in *arrival* order (then process them in
rank order, keeping delivery deterministic), so a straggling rank no longer
blocks the parent from servicing the others' pipes.

Statistics are accounted *worker-side* with the same formulas the in-process
engine uses (message counts, byte volumes, virtual busy time, superstep
durations) and shipped to the parent at job end, so
``engine.stats.summary()`` agrees with a matching in-process run and
``engine.simulated_time`` is populated on every transport.

Fault tolerance (see ``docs/fault_tolerance.md``):

* :class:`~repro.mpsim.faults.FaultPlan` crashes scheduled by superstep are
  realised as *real* fail-stop deaths — the victim worker ``SIGKILL``\\ s
  itself just before stepping, with no cleanup or goodbye message.
* The parent detects any worker death within one liveness poll
  (:data:`_LIVENESS_POLL` seconds) by waiting on the process *sentinels*
  alongside the reply pipes, and attributes it to a rank and superstep via
  the shared :class:`~repro.mpsim.heartbeat.Heartbeats` board; under p2p
  the fabric's barrier is aborted so surviving ranks fail fast instead of
  waiting out the barrier timeout.  Deaths surface as
  :class:`~repro.mpsim.errors.RankFailure` with the victim's rank and last
  superstep attached.
* With a :class:`~repro.mpsim.checkpoint.Checkpointer` attached, workers
  write per-rank state *shards* at checkpoint supersteps and the parent
  assembles each complete cut into an ordinary checkpoint manifest — so a
  supervised run (:class:`~repro.mpsim.supervisor.Supervisor`) can reload
  the newest valid snapshot, respawn the ranks, resume, and still produce a
  bit-identical graph.

For repeated jobs over the same rank count, see
:class:`repro.mpsim.pool.WorkerPool`, which forks this module's workers once
and reuses them (pipes, payload segments, and p2p fabric included) across
many ``run()`` calls — and since this PR heals itself by forking
replacements for dead members instead of staying permanently broken.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
from multiprocessing import connection as _mpc
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpsim.bsp import BSPRankContext, RankProgram
from repro.mpsim.checkpoint import (
    CheckpointData,
    Checkpointer,
    ShardData,
    load_shard,
    save_shard,
)
from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import InvalidRankError, MPSimError, RankFailure
from repro.mpsim.faults import CAP_CRASH_TIME, CAP_DROP, CAP_DUPLICATE
from repro.mpsim.heartbeat import Heartbeats
from repro.mpsim.p2p import P2PFabric
from repro.mpsim.stats import RankStats, WorldStats
from repro.telemetry.collector import (
    NOOP_TELEMETRY,
    RingCollector,
    Telemetry,
    resolve,
)
from repro.telemetry.metrics import proc_rss_bytes
from repro.telemetry.ringbuf import EventRing

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "MultiprocessingBSPEngine",
    "EXCHANGE_SHM",
    "EXCHANGE_PICKLE",
    "EXCHANGE_P2P",
    "EXCHANGES",
]

# worker protocol commands (parent -> worker)
_STOP = "stop"
_STEP = "step"
_JOB = "job"
_SHUTDOWN = "shutdown"
_ABANDON = "abandon"

EXCHANGE_SHM = "shm"
EXCHANGE_PICKLE = "pickle"
EXCHANGE_P2P = "p2p"
EXCHANGES = (EXCHANGE_SHM, EXCHANGE_PICKLE, EXCHANGE_P2P)

#: Smallest per-half segment size; avoids churning tiny segments while the
#: first supersteps ramp up.
_MIN_HALF_BYTES = 1 << 16

#: wall seconds slept per superstep per unit of straggle factor above 1.0
#: when a fault plan marks a rank as a straggler — a *real* delay, so the
#: determinism tests exercise genuinely skewed arrival timings
_STRAGGLE_SLEEP = 1e-3

#: how often the parent re-checks worker liveness while waiting on pipes;
#: with sentinel watching a death is usually noticed immediately, this is
#: only the re-arm period of the wait
_LIVENESS_POLL = 0.25


def _attach(name: str):
    """Attach to an existing segment without resource-tracker ownership.

    Before Python 3.13 every attach registers the segment with the resource
    tracker.  With the per-process trackers of a plain fork that is merely
    noisy, but once the parent has created shared memory of its own (the p2p
    fabric) every child inherits the *same* tracker process — and the old
    register-then-``unregister`` dance removes the creating rank's
    registration, producing double-unregister errors when several ranks
    attach the same segment.  So the attach must not register at all: the
    registration is suppressed for the duration of the constructor, leaving
    the creator's registration as the single tracked owner.  Python 3.13+
    has ``track=False`` for exactly this.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        try:
            from multiprocessing import resource_tracker
        except ImportError:  # pragma: no cover - no tracker, nothing to dodge
            return _shared_memory.SharedMemory(name=name)
        original = resource_tracker.register

        def _skip_shm(rname: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - not hit today
                original(rname, rtype)

        resource_tracker.register = _skip_shm
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _ShmWriter:
    """One worker's double-buffered shared-memory outbox arena.

    The segment holds two halves; superstep ``s`` writes into half ``s % 2``
    (a bump allocator reset each superstep).  When a superstep's payload
    outgrows the current half, a fresh segment (doubled) is created under a
    new name — the old one is kept alive until shutdown because readers may
    still be copying last superstep's records out of it.
    """

    def __init__(self) -> None:
        self.shm = None
        self.half = 0
        self._retired: list[Any] = []

    def _ensure(self, nbytes: int) -> None:
        if self.shm is not None and nbytes <= self.half:
            return
        half = _MIN_HALF_BYTES
        while half < nbytes:
            half *= 2
        new = _shared_memory.SharedMemory(create=True, size=2 * half)
        if self.shm is not None:
            self._retired.append(self.shm)
        self.shm, self.half = new, half

    def write(self, outbox: dict[int, list[np.ndarray]], superstep: int) -> dict:
        """Copy ``outbox`` arrays into shared memory; return the descriptor
        outbox ``{dest: [(name, offset, count, dtype), ...]}``."""
        total = sum(
            arr.nbytes for arrs in outbox.values() for arr in arrs if len(arr)
        )
        self._ensure(total)
        off = (superstep % 2) * self.half
        meta: dict[int, list[tuple[str, int, int, np.dtype]]] = {}
        for dest, arrs in outbox.items():
            descs = []
            for arr in arrs:
                if len(arr) == 0:
                    continue
                arr = np.ascontiguousarray(arr)
                # byte-level copy: structured-dtype fancy assignment is ~20x
                # slower than a plain memcpy, so move raw bytes and let the
                # receiver reinterpret them with the dtype from the descriptor
                dst = np.frombuffer(self.shm.buf, np.uint8, count=arr.nbytes, offset=off)
                dst[:] = arr.view(np.uint8)
                del dst  # release the buffer export before any close()
                descs.append((self.shm.name, off, len(arr), arr.dtype))
                off += arr.nbytes
            if descs:
                meta[dest] = descs
        return meta

    def close(self) -> None:
        for seg in self._retired + ([self.shm] if self.shm is not None else []):
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._retired, self.shm, self.half = [], None, 0


class _ShmReader:
    """Attachment cache for reading other ranks' segments by name."""

    def __init__(self) -> None:
        self._cache: dict[str, Any] = {}

    def read(self, desc: tuple[str, int, int, np.dtype]) -> np.ndarray:
        name, off, count, dtype = desc
        shm = self._cache.get(name)
        if shm is None:
            shm = _attach(name)
            self._cache[name] = shm
        # private byte copy (the source half is reused two supersteps later),
        # then reinterpret: memcpy-speed, unlike structured-dtype .copy()
        nbytes = count * dtype.itemsize
        raw = np.empty(nbytes, np.uint8)
        src = np.frombuffer(shm.buf, np.uint8, count=nbytes, offset=off)
        raw[:] = src
        del src
        return raw.view(dtype)

    def close(self) -> None:
        for shm in self._cache.values():
            shm.close()
        self._cache.clear()


# ===================================================================== worker
class _ShutdownRequested(Exception):
    """Parent asked the worker to exit while a job was in flight."""


class _JobAbandoned(Exception):
    """Parent abandoned the in-flight job (pool healing); carries the token."""

    def __init__(self, token: Any) -> None:
        super().__init__(f"job abandoned (token {token!r})")
        self.token = token


def _result_of(rank: int, program: RankProgram) -> Any:
    """Extract a rank program's result payload, if it exposes one.

    A ``result()`` that raises is a *program* failure even though it happens
    during final collection rather than mid-superstep, so it is wrapped in
    :class:`RankFailure` exactly like a failing ``step()``.
    """
    getter = getattr(program, "result", None)
    if not callable(getter):
        return None
    try:
        return getter()
    except Exception as exc:
        raise RankFailure(rank, exc) from exc


def _telemetry_of(program: RankProgram) -> dict[str, int]:
    """Per-rank counters the generation facade reports (Figure 7 data)."""
    return {
        "requests_sent": int(getattr(program, "requests_sent", 0) or 0),
        "requests_received": int(getattr(program, "requests_received", 0) or 0),
    }


def _shard_path(shard_dir: str, cut: int, rank: int) -> Path:
    return Path(shard_dir) / f"cut{cut}.rank{rank}.shard"


def _execute_step(
    rank: int,
    size: int,
    program: RankProgram,
    ctx: BSPRankContext,
    rs: RankStats,
    inbox: Sequence[tuple[int, np.ndarray]],
    cost: CostModel,
    fault_plan: Any,
    superstep: int,
    heartbeats: Heartbeats | None,
) -> tuple[dict[int, list[np.ndarray]], int, float]:
    """Run one superstep of ``program`` and account it like the in-process
    engine does.

    Beats the heartbeat first (so a death is attributable to this
    superstep), then fires any scheduled crash as a real fail-stop death:
    the worker ``SIGKILL``\\ s itself before stepping — the same pre-step
    timing the in-process engine uses, which is what keeps recovery cuts
    aligned between engines.

    Returns the cleaned outbox (contiguous, non-empty arrays only), the
    outgoing record count, and the superstep's virtual duration for this
    rank.  Program exceptions surface as :class:`RankFailure`.
    """
    if heartbeats is not None:
        heartbeats.beat(rank, superstep)
    if fault_plan is not None and fault_plan.should_crash(rank, superstep=superstep):
        # a *real* fail-stop death: no cleanup, no goodbye message — the
        # parent must detect it from the sentinel and the silent heartbeat
        os.kill(os.getpid(), signal.SIGKILL)
    in_records = sum(len(arr) for _, arr in inbox)
    in_bytes = sum(arr.nbytes for _, arr in inbox)
    try:
        outbox = program.step(ctx, inbox) or {}
    except Exception as exc:
        raise RankFailure(rank, exc) from exc

    clean: dict[int, list[np.ndarray]] = {}
    out_records = 0
    out_bytes = 0
    for dest, payloads in outbox.items():
        if not 0 <= dest < size:
            raise InvalidRankError(
                f"rank {rank} addressed invalid destination {dest}"
            )
        if dest == rank:
            raise MPSimError(
                f"rank {rank} attempted a self-send; local work "
                "must not route through the exchange"
            )
        kept = [np.ascontiguousarray(arr) for arr in payloads if len(arr)]
        if not kept:
            continue
        clean[dest] = kept
        for arr in kept:
            out_records += len(arr)
            out_bytes += arr.nbytes

    rs.record_send(out_records, out_bytes)
    rs.record_receive(in_records, in_bytes)
    rs.rounds += 1
    ctx._drain_step_events()
    t = (
        ctx._drain_step_compute()
        + cost.per_message * (out_records + in_records)
        + cost.beta * (out_bytes + in_bytes)
        + cost.round_time()
    )
    if fault_plan is not None:
        mult = fault_plan.straggle_multiplier(rank)
        if mult > 1.0:
            t *= mult
            # a *real* wall-clock delay so exchange-arrival orderings are
            # genuinely perturbed, not just virtually charged
            time.sleep(_STRAGGLE_SLEEP * (mult - 1.0))
    rs.busy_time += t
    return clean, out_records, t


def _run_job_coordinator(
    rank: int,
    size: int,
    program: RankProgram,
    conn: Any,
    exchange: str,
    writer: Any,
    reader: Any,
    cost: CostModel,
    fault_plan: Any,
    heartbeats: Heartbeats | None = None,
    resume: tuple[int, RankStats, list] | None = None,
    tel: Any = NOOP_TELEMETRY,
) -> None:
    """Worker side of one coordinator-routed job (``shm``/``pickle``).

    ``resume`` — ``(superstep0, rank_stats, inbox0)`` — continues a
    checkpointed run: the superstep counter and statistics row pick up where
    the snapshot left off, and ``inbox0`` (the snapshot's in-flight
    messages) is consumed by the first ``_STEP``, whose payload from the
    parent is empty.

    A ``_STEP`` payload is ``(inbox_payload, shard_req)``; a non-``None``
    ``shard_req = (cut, simulated_time, shard_dir)`` instructs the worker to
    write its checkpoint shard for ``cut`` — its state at the *start* of
    this superstep, which equals the in-process engine's state after
    superstep ``cut`` — before stepping.
    """
    stats = WorldStats.for_size(size)
    superstep = 0
    pending_inbox: list | None = None
    if resume is not None:
        superstep, rank_stats, pending_inbox = resume
        stats.ranks[rank] = rank_stats
    ctx = BSPRankContext(rank, size, stats, cost)
    rs = stats[rank]
    while True:
        # time blocked on the coordinator: routing latency plus however long
        # the slowest peer makes everyone wait — the transport's barrier
        with tel.span("step.wait", cat="barrier", tid=rank, superstep=superstep + 1):
            cmd, payload = conn.recv()
        if cmd == _SHUTDOWN:
            raise _ShutdownRequested
        if cmd == _ABANDON:
            raise _JobAbandoned(payload)
        if cmd == _STOP:
            conn.send(
                ("final", rs, _result_of(rank, program), _telemetry_of(program), None)
            )
            return
        superstep += 1
        step_payload, shard_req = payload
        if exchange == EXCHANGE_SHM:
            with tel.span("exchange.read", cat="exchange", tid=rank, superstep=superstep):
                inbox = [(src, reader.read(desc)) for src, desc in step_payload]
        else:
            inbox = step_payload
        if pending_inbox is not None:
            inbox = pending_inbox + list(inbox)
            pending_inbox = None
        if shard_req is not None:
            cut, sim_abs, shard_dir = shard_req
            path = _shard_path(shard_dir, cut, rank)
            with tel.span("shard.save", cat="checkpoint", tid=rank, cut=cut):
                save_shard(
                    path, ShardData(rank, cut, sim_abs, program, list(inbox), rs)
                )
            conn.send(("shard", cut, str(path)))
        with tel.span("compute", cat="compute", tid=rank, superstep=superstep) as sp:
            clean, out_records, t = _execute_step(
                rank, size, program, ctx, rs, inbox, cost, fault_plan,
                superstep, heartbeats,
            )
            sp.note(virtual_s=t, records=out_records)
            if tel.enabled:
                sp.note(rss_bytes=proc_rss_bytes())
        with tel.span("exchange.write", cat="exchange", tid=rank, superstep=superstep):
            if exchange == EXCHANGE_SHM:
                meta = writer.write(clean, superstep)
            else:
                meta = clean
            conn.send(("out", meta, bool(program.done), t))
        if tel.enabled:
            tel.counter(
                "mp_worker_supersteps_total", "supersteps executed worker-side"
            ).inc(rank=rank)
            tel.gauge(
                "proc_rss_bytes", "resident set size, sampled per superstep"
            ).set(float(proc_rss_bytes()), rank=rank)
            tel.flush()


def _run_job_p2p(
    rank: int,
    size: int,
    program: RankProgram,
    conn: Any,
    fabric: P2PFabric,
    writer: _ShmWriter,
    reader: _ShmReader,
    cost: CostModel,
    fault_plan: Any,
    max_supersteps: int,
    heartbeats: Heartbeats | None = None,
    resume: tuple[int, RankStats, list] | None = None,
    ckpt: tuple[str, int, int, float] | None = None,
    tel: Any = NOOP_TELEMETRY,
) -> None:
    """Worker side of one peer-to-peer job: no parent on the data path.

    Each superstep: step the program, write payloads into this rank's
    shared-memory arena, post the descriptors into every peer's mailbox,
    publish the (done, traffic, time) triple, hit the barrier, then take the
    global termination decision from the shared counters and read the inbox
    straight out of the peers' segments.

    Checkpointing is decided *distributedly*: ``ckpt = (shard_dir, every,
    min_superstep, sim0)`` gives every rank the same schedule, and the shared
    traffic counters give every rank the same view of whether the cut is
    worth snapshotting — so all ranks write their shard for the same cuts
    without any coordinator round.  ``resume`` continues a checkpointed run
    exactly as in the coordinator paths; the final tail reports the
    superstep count (absolute) and the simulated time *delta* of this job.
    """
    stats = WorldStats.for_size(size)
    superstep = 0
    inbox: list[tuple[int, np.ndarray]] = []
    if resume is not None:
        superstep, rank_stats, inbox = resume
        stats.ranks[rank] = rank_stats
    ctx = BSPRankContext(rank, size, stats, cost)
    rs = stats[rank]
    simulated = 0.0
    try:
        while True:
            if superstep >= max_supersteps:
                raise MPSimError(f"exceeded max_supersteps={max_supersteps}")
            superstep += 1
            with tel.span("compute", cat="compute", tid=rank, superstep=superstep) as sp:
                clean, out_records, t = _execute_step(
                    rank, size, program, ctx, rs, inbox, cost, fault_plan,
                    superstep, heartbeats,
                )
                sp.note(virtual_s=t, records=out_records)
                if tel.enabled:
                    sp.note(rss_bytes=proc_rss_bytes())
            with tel.span("exchange.write", cat="exchange", tid=rank, superstep=superstep):
                meta = writer.write(clean, superstep)
                fabric.post(rank, superstep, meta)
            fabric.publish(rank, superstep, bool(program.done), out_records, t)
            # the real imbalance cost: fast ranks park here until the
            # slowest peer arrives (paper Section 4.6's load-balance story)
            with tel.span("barrier.wait", cat="barrier", tid=rank, superstep=superstep):
                fabric.wait(rank, superstep)
            if tel.enabled:
                tel.counter(
                    "mp_worker_supersteps_total", "supersteps executed worker-side"
                ).inc(rank=rank)
                tel.gauge(
                    "proc_rss_bytes", "resident set size, sampled per superstep"
                ).set(float(proc_rss_bytes()), rank=rank)
                tel.flush()
            simulated += fabric.max_step_time(superstep)
            if fabric.quiescent(superstep):
                break
            with tel.span("exchange.read", cat="exchange", tid=rank, superstep=superstep):
                inbox = [
                    (src, reader.read(desc))
                    for src, desc in fabric.collect(rank, superstep)
                ]
            if ckpt is not None:
                shard_dir, every, min_superstep, sim0 = ckpt
                if (
                    superstep % every == 0
                    and superstep > min_superstep
                    and fabric.traffic(superstep) > 0
                ):
                    path = _shard_path(shard_dir, superstep, rank)
                    with tel.span("shard.save", cat="checkpoint", tid=rank, cut=superstep):
                        save_shard(
                            path,
                            ShardData(
                                rank, superstep, sim0 + simulated, program,
                                list(inbox), rs,
                            ),
                        )
                    conn.send(("shard", superstep, str(path)))
    except Exception:
        fabric.abort()  # fail peers fast instead of letting them time out
        raise
    conn.send(
        (
            "final",
            rs,
            _result_of(rank, program),
            _telemetry_of(program),
            (superstep, simulated),
        )
    )


def _worker_main(
    rank: int,
    size: int,
    conn: Any,
    exchange: str,
    fabric: P2PFabric | None,
    program: RankProgram | None,
    max_supersteps: int,
    cost: CostModel,
    heartbeats: Heartbeats | None = None,
    resume: tuple[int, RankStats, list] | None = None,
    ckpt: tuple[str, int, int, float] | None = None,
    ring: EventRing | None = None,
) -> None:
    """One worker process: serve jobs until shutdown.

    ``program`` is the fork-inherited rank program for one-shot engine runs;
    pooled jobs ship their programs in the job command instead.  Payload
    segments (and the reader's attachment cache) persist across jobs so a
    :class:`~repro.mpsim.pool.WorkerPool` pays segment setup once.
    ``resume``/``ckpt`` ride the fork (no pickling) and apply to the first
    job only — a resumed engine run is always one-shot.  ``ring`` (also
    fork-inherited) is the shared telemetry event ring; when present the
    worker publishes spans as they close and cumulative metric snapshots
    every superstep, so a crash loses at most the current superstep.
    """
    needs_shm = exchange in (EXCHANGE_SHM, EXCHANGE_P2P)
    writer = _ShmWriter() if needs_shm else None
    reader = _ShmReader() if needs_shm else None
    tel = Telemetry.for_worker(ring, rank) if ring is not None else NOOP_TELEMETRY
    try:
        while True:
            try:
                cmd, payload = conn.recv()
            except EOFError:
                return
            if cmd == _SHUTDOWN:
                return
            if cmd == _ABANDON:
                # idle worker: nothing in flight, just acknowledge the token
                conn.send(("abandoned", payload))
                continue
            if cmd != _JOB:  # pragma: no cover - protocol violation
                conn.send(("error", "mpsim", f"unexpected command {cmd!r}", rank, None))
                return
            job_program, fault_plan = payload
            prog = job_program if job_program is not None else program
            job_resume, resume = resume, None
            try:
                if exchange == EXCHANGE_P2P:
                    _run_job_p2p(
                        rank, size, prog, conn, fabric, writer, reader,
                        cost, fault_plan, max_supersteps,
                        heartbeats, job_resume, ckpt, tel,
                    )
                else:
                    _run_job_coordinator(
                        rank, size, prog, conn, exchange, writer, reader,
                        cost, fault_plan, heartbeats, job_resume, tel,
                    )
                tel.flush()
            except _ShutdownRequested:
                return
            except _JobAbandoned as exc:
                conn.send(("abandoned", exc.token))
            except RankFailure as exc:
                # exc.rank may name a *peer* (barrier attribution), not the
                # reporter — carry it so the parent raises for the victim
                _report_error(
                    conn, fabric, "rank", repr(exc.original), exc.rank, exc.superstep
                )
            except Exception as exc:
                _report_error(conn, fabric, "mpsim", repr(exc), rank, None)
    finally:
        if reader is not None:
            reader.close()
        if writer is not None:
            writer.close()


def _report_error(
    conn: Any,
    fabric: P2PFabric | None,
    kind: str,
    msg: str,
    failing_rank: int,
    superstep: int | None,
) -> None:
    """Abort peers (p2p) and surface a job error to the parent, best-effort."""
    if fabric is not None:
        fabric.abort()
    try:
        conn.send(("error", kind, msg, failing_rank, superstep))
    except Exception:  # pragma: no cover - parent already gone
        pass


# ===================================================================== parent
def _attribute_death(
    rank: int,
    fabric: P2PFabric | None,
    heartbeats: Heartbeats | None,
    fault_plan: Any,
) -> None:
    """Raise the :class:`RankFailure` for a worker the parent saw die.

    The death superstep comes from the rank's last heartbeat; if the fault
    plan had an unfired crash scheduled for this rank the death is
    acknowledged on the *parent's* copy of the plan (the worker's forked
    copy died with it) — which is what stops a supervised retry from
    re-killing the respawned rank forever.  With a p2p fabric the barrier is
    aborted first so surviving peers fail fast too.
    """
    if fabric is not None:
        fabric.abort()
    superstep = heartbeats.last_superstep(rank) if heartbeats is not None else None
    injected = (
        fault_plan is not None
        and callable(getattr(fault_plan, "consume_crash", None))
        and fault_plan.consume_crash(rank, superstep)
    )
    why = (
        "worker killed by injected crash"
        if injected
        else "worker process died unexpectedly"
    )
    raise RankFailure(rank, RuntimeError(why), superstep=superstep)


def _safe_send(
    conn: Any,
    rank: int,
    msg: Any,
    fabric: P2PFabric | None,
    heartbeats: Heartbeats | None,
    fault_plan: Any,
) -> None:
    """Send to a worker, converting a dead pipe into an attributed failure."""
    try:
        conn.send(msg)
    except (BrokenPipeError, OSError):
        _attribute_death(rank, fabric, heartbeats, fault_plan)


def _recv_all(
    parents: Sequence[Any],
    procs: Sequence[Any],
    fabric: P2PFabric | None,
    heartbeats: Heartbeats | None = None,
    fault_plan: Any = None,
    on_shard: Callable[[int, int, str], None] | None = None,
    tick: Callable[[], Any] | None = None,
    liveness_poll: float = _LIVENESS_POLL,
) -> dict[int, tuple]:
    """Collect exactly one reply per worker, draining in *arrival* order.

    ``multiprocessing.connection.wait`` services whichever pipes are ready,
    so a straggler rank cannot head-of-line-block the parent from reading
    the others (the pre-PR path ``recv``-ed in strict rank order).  Callers
    then iterate the returned dict in rank order, which keeps downstream
    routing deterministic regardless of arrival timing.

    The wait set includes every outstanding worker's process *sentinel*, so
    a death wakes the parent immediately instead of after a poll interval.
    Dead workers surface as :class:`RankFailure` with heartbeat-attributed
    rank and superstep (see :func:`_attribute_death`).

    ``("shard", cut, path)`` checkpoint notifications are routed to
    ``on_shard`` without consuming the worker's pending reply slot; before
    a death is raised, every buffered shard notification is drained so the
    newest complete cut can still be committed.

    ``tick`` is invoked once per wait cycle — the telemetry ring drain rides
    the liveness poll here, so long p2p jobs cannot overflow the ring while
    the parent sits waiting for finals.
    """
    msgs: dict[int, tuple] = {}
    pending: dict[Any, int] = {conn: rank for rank, conn in enumerate(parents)}

    def _died(rank: int) -> None:
        # the victim (and its peers) may have flushed shard notifications
        # before the death; keep them — the cut they complete is exactly the
        # recovery point the supervisor wants
        for conn2, rank2 in pending.items():
            try:
                while conn2.poll(0):
                    m = conn2.recv()
                    if m[0] == "shard" and on_shard is not None:
                        on_shard(rank2, m[1], m[2])
            except (EOFError, OSError):
                pass
        _attribute_death(rank, fabric, heartbeats, fault_plan)

    while pending:
        if tick is not None:
            tick()
        sentinels = {procs[r].sentinel: r for r in pending.values()}
        ready = _mpc.wait(list(pending) + list(sentinels), timeout=liveness_poll)
        for conn in [c for c in ready if c in pending]:
            rank = pending[conn]
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                _died(rank)
            if msg[0] == "shard":
                if on_shard is not None:
                    on_shard(rank, msg[1], msg[2])
                continue  # still owed this worker's real reply
            msgs[rank] = msg
            del pending[conn]
        for obj in ready:
            rank = sentinels.get(obj)
            if rank is None:
                continue
            conn = parents[rank]
            if conn not in pending:
                continue  # reply already collected; death surfaces later
            if conn.poll(0):
                continue  # buffered data first; re-check on the next pass
            _died(rank)
    return msgs


def _raise_job_errors(msgs: dict[int, tuple]) -> None:
    """Map worker error reports to the exceptions the in-process engine uses.

    Program/rank failures win over engine failures (a crashing rank aborts
    the barrier, so its peers' reports are collateral).  Error reports carry
    the *failing* rank — which, for barrier-attributed failures, may differ
    from the reporting rank — and the lowest failing rank is raised for
    determinism.
    """
    errors = {r: m for r, m in msgs.items() if m[0] == "error"}
    if not errors:
        return
    rank_reports: dict[int, tuple[str, int | None]] = {}
    for reporter in sorted(errors):
        _tag, kind, msg, failing_rank, superstep = errors[reporter]
        if kind == "rank" and failing_rank not in rank_reports:
            rank_reports[failing_rank] = (msg, superstep)
    if rank_reports:
        failing = min(rank_reports)
        msg, superstep = rank_reports[failing]
        raise RankFailure(failing, RuntimeError(msg), superstep=superstep)
    reporter = min(errors)
    raise MPSimError(f"rank {reporter}: {errors[reporter][2]}")


def _commit_cut(
    checkpointer: Checkpointer,
    size: int,
    cost: CostModel,
    max_supersteps: int,
    cut: int,
    paths: dict[int, str],
) -> bool:
    """Assemble one complete cut's shards into a checkpoint manifest.

    Loads and validates all ``size`` shards (any invalid shard voids the
    cut — an older manifest remains the recovery point), builds an ordinary
    :class:`CheckpointData`, and commits it through the checkpointer's
    atomic-write/rotation path.  Consumed shard files are deleted.
    """
    try:
        shards = [load_shard(paths[r]) for r in range(size)]
    except MPSimError:
        return False
    world = WorldStats.for_size(size)
    for s in shards:
        world.ranks[s.rank] = s.rank_stats
    data = CheckpointData(
        size=size,
        cost=cost,
        max_supersteps=max_supersteps,
        supersteps=cut,
        simulated_time=shards[0].simulated_time,
        stats=world,
        programs=[s.program for s in shards],
        inboxes=[list(s.inbox) for s in shards],
    )
    saved = checkpointer.commit(data)
    for p in paths.values():
        try:
            Path(p).unlink()
        except OSError:  # pragma: no cover - already gone
            pass
    return saved


def _drive_job(
    parents: Sequence[Any],
    procs: Sequence[Any],
    size: int,
    exchange: str,
    fabric: P2PFabric | None,
    programs: Sequence[RankProgram] | None,
    fault_plan: Any,
    stats: WorldStats,
    max_supersteps: int,
    heartbeats: Heartbeats | None = None,
    checkpointer: Checkpointer | None = None,
    shard_dir: str | None = None,
    cost: CostModel | None = None,
    step0: int = 0,
    sim0: float = 0.0,
    collector: RingCollector | None = None,
    tel: Any = NOOP_TELEMETRY,
    liveness_poll: float = _LIVENESS_POLL,
) -> tuple[list[Any], list[dict], int, float]:
    """Parent side of one job, shared by the engine and the worker pool.

    ``programs`` is ``None`` when workers inherited their programs at fork
    (one-shot engine runs); pooled jobs pass the list to pickle across.
    ``step0`` is the superstep the job resumes from (0 for fresh runs);
    ``sim0`` the simulated time already on the engine's clock, used only to
    stamp checkpoint manifests with absolute times.  ``collector`` drains
    the telemetry event ring opportunistically (once per superstep on the
    coordinator transports, once per liveness-poll cycle under p2p) and
    ``tel`` records the parent's own routing/waiting spans.  Returns
    ``(results, telemetry, supersteps, simulated_delta)`` — the superstep
    count is absolute, the simulated time is this job's increment — and
    writes the workers' final :class:`RankStats` into ``stats``.
    """
    shards: dict[int, dict[int, str]] = {}

    def _on_shard(rank: int, cut: int, path: str) -> None:
        got = shards.setdefault(cut, {})
        got[rank] = path
        if len(got) == size and checkpointer is not None:
            _commit_cut(
                checkpointer, size, cost or CostModel(), max_supersteps,
                cut, shards.pop(cut),
            )

    for rank, conn in enumerate(parents):
        shipped = programs[rank] if programs is not None else None
        _safe_send(
            conn, rank, (_JOB, (shipped, fault_plan)), fabric, heartbeats, fault_plan
        )

    results: list[Any] = [None] * size
    telemetry: list[dict] = [{} for _ in range(size)]
    tick = collector.drain if collector is not None else None

    if exchange == EXCHANGE_P2P:
        # workers run to quiescence on their own; just collect the finals
        # (and commit checkpoint cuts as their shard notifications arrive)
        with tel.span("job.collect", cat="run", tid=-1):
            msgs = _recv_all(
                parents, procs, fabric, heartbeats, fault_plan, _on_shard, tick,
                liveness_poll,
            )
        _raise_job_errors(msgs)
        supersteps = step0
        simulated = 0.0
        for rank in range(size):
            kind, rank_stats, result, tele, tail = msgs[rank]
            if kind != "final":  # pragma: no cover - protocol violation
                raise MPSimError(f"unexpected final message {kind!r} from rank {rank}")
            _install_rank_stats(stats, rank, rank_stats)
            results[rank] = result
            telemetry[rank] = tele
            steps, sim = tail
            supersteps = max(supersteps, steps)
            simulated = max(simulated, sim)
        return results, telemetry, supersteps, simulated

    # coordinator topologies: the parent routes descriptors (shm) or whole
    # payloads (pickle) between workers each superstep, and decides the
    # checkpoint schedule itself (a shard request rides the next _STEP)
    supersteps = step0
    simulated = 0.0
    inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
    shard_req: tuple[int, float, str] | None = None
    while True:
        if supersteps >= max_supersteps:
            raise MPSimError(f"exceeded max_supersteps={max_supersteps}")
        supersteps += 1
        step_span = tel.span("superstep", cat="superstep", tid=-1, superstep=supersteps)
        step_span.__enter__()
        for rank, conn in enumerate(parents):
            _safe_send(
                conn, rank, (_STEP, (inboxes[rank], shard_req)),
                fabric, heartbeats, fault_plan,
            )
        shard_req = None
        msgs = _recv_all(
            parents, procs, None, heartbeats, fault_plan, _on_shard, tick,
            liveness_poll,
        )
        _raise_job_errors(msgs)
        next_inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
        any_traffic = False
        all_done = True
        step_max = 0.0
        step_records = 0
        for rank in range(size):  # rank order: deterministic delivery
            kind, payload, done, t = msgs[rank]
            if kind != "out":  # pragma: no cover - protocol violation
                raise MPSimError(f"unexpected step message {kind!r} from rank {rank}")
            for dest in sorted(payload):
                for item in payload[dest]:
                    next_inboxes[dest].append((rank, item))
                    step_records += 1
                    any_traffic = True
            all_done = all_done and done
            step_max = max(step_max, t)
        simulated += step_max
        step_span.note(virtual_s=step_max, routed_payloads=step_records)
        if tel.enabled:
            rss = proc_rss_bytes()
            step_span.note(rss_bytes=rss)
            tel.gauge(
                "proc_rss_bytes", "resident set size, sampled per superstep"
            ).set(float(rss), rank=-1)
        step_span.__exit__(None, None, None)
        inboxes = next_inboxes
        if not any_traffic and all_done:
            break
        if (
            checkpointer is not None
            and any_traffic
            and supersteps % checkpointer.every == 0
            and supersteps > checkpointer.min_superstep
        ):
            # snapshot cut `supersteps`: each worker's state at the start of
            # the *next* superstep equals the in-process engine's state
            # after this one, so the manifest is engine-interchangeable
            shard_req = (supersteps, sim0 + simulated, shard_dir)

    for rank, conn in enumerate(parents):
        _safe_send(conn, rank, (_STOP, None), fabric, heartbeats, fault_plan)
    msgs = _recv_all(
        parents, procs, None, heartbeats, fault_plan, _on_shard, tick, liveness_poll
    )
    # a worker may fail *during* final collection (e.g. its ``result()``
    # raises); surface that as a RankFailure like any mid-run crash
    _raise_job_errors(msgs)
    for rank in range(size):
        kind, rank_stats, result, tele, _tail = msgs[rank]
        if kind != "final":  # pragma: no cover - protocol violation
            raise MPSimError(f"unexpected final message {kind!r} from rank {rank}")
        _install_rank_stats(stats, rank, rank_stats)
        results[rank] = result
        telemetry[rank] = tele
    return results, telemetry, supersteps, simulated


def _install_rank_stats(stats: WorldStats, rank: int, rank_stats: Any) -> None:
    """Adopt a worker's authoritative counters as the parent's per-rank row."""
    if not isinstance(rank_stats, RankStats) or rank_stats.rank != rank:
        raise MPSimError(f"rank {rank} returned malformed stats {rank_stats!r}")
    stats.ranks[rank] = rank_stats


def _check_mp_fault_plan(fault_plan: Any) -> None:
    """Reject fault kinds the real-process backend cannot realise.

    Checked via the public :meth:`~repro.mpsim.faults.FaultPlan.capabilities`
    API (plans without it are trusted to only use hooks the engine calls):

    * superstep-scheduled **crashes** are supported — realised as real
      worker ``SIGKILL`` deaths;
    * **stragglers** are supported — realised as real sleeps;
    * **drops/duplications** are rejected: payload bytes travel real pipes
      and shared memory, and a sent message cannot be un-sent or doubled
      without putting the engine back on the data path (use the in-process
      engine to exercise those);
    * **time-scheduled crashes** are rejected: workers share no global
      virtual clock, so a wall-time trigger would fire non-deterministically
      (schedule with ``crash(rank, at_superstep=...)`` instead).
    """
    if fault_plan is None:
        return
    get_caps = getattr(fault_plan, "capabilities", None)
    if not callable(get_caps):
        return
    caps = get_caps()
    if CAP_DROP in caps or CAP_DUPLICATE in caps:
        raise ValueError(
            "mp backend cannot inject message drops/duplications: payloads "
            "travel real pipes and shared memory and cannot be un-sent; "
            "run drop/duplicate plans on the in-process engine "
            "(engine='bsp'/'sim')"
        )
    if CAP_CRASH_TIME in caps:
        raise ValueError(
            "mp backend cannot schedule crashes by virtual time: workers "
            "share no global virtual clock; schedule deterministically with "
            "crash(rank, at_superstep=...)"
        )


def _normalise_exchange(exchange: str) -> str:
    if exchange not in EXCHANGES:
        raise ValueError(
            f"unknown exchange {exchange!r}; use one of {', '.join(EXCHANGES)}"
        )
    if exchange != EXCHANGE_PICKLE and _shared_memory is None:  # pragma: no cover
        return EXCHANGE_PICKLE
    return exchange


class MultiprocessingBSPEngine:
    """Drive :class:`~repro.mpsim.bsp.RankProgram` objects in real processes.

    The API mirrors :class:`~repro.mpsim.bsp.BSPEngine.run` — including the
    ``checkpointer``/``initial_inboxes`` hooks, so
    :class:`~repro.mpsim.supervisor.Supervisor` can drive either engine —
    with one addition: because programs live in child address spaces, their
    final state is not visible to the caller.  Programs may expose a
    ``result()`` method; the values are collected into :attr:`results` (rank
    order) after :meth:`run`, and per-rank request counters (when the
    program exposes them) into :attr:`telemetry`.

    Parameters
    ----------
    size:
        Number of ranks (one process each).
    max_supersteps:
        Safety bound on the superstep loop.
    exchange:
        :data:`EXCHANGE_SHM` (default) for coordinator-routed zero-copy
        payloads, :data:`EXCHANGE_PICKLE` for the pickle-pipe fallback, or
        :data:`EXCHANGE_P2P` for the peer-to-peer mailbox fabric.  Platforms
        without ``multiprocessing.shared_memory`` fall back to pickle
        automatically.
    cost_model:
        Virtual-time charges used by the worker-side accounting (defaults to
        the paper-testbed preset, same as the in-process engine).
    mailbox_slot_bytes, barrier_timeout:
        p2p fabric tuning; ignored by the coordinator transports.  The
        barrier timeout is a last-resort backstop — worker deaths are
        detected by the parent within one liveness poll and abort the
        barrier long before it can expire.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`.  When enabled, a
        shared-memory event ring is created before forking; workers publish
        compute / exchange / barrier-wait spans (``tid`` = rank) and
        cumulative metric snapshots into it, and the parent drains them into
        the facade — including everything a crashed worker published before
        dying.  Stored as :attr:`tel` (the pre-existing :attr:`telemetry`
        attribute holds the per-rank request counters).
    """

    def __init__(
        self,
        size: int,
        max_supersteps: int = 10_000,
        exchange: str = EXCHANGE_SHM,
        cost_model: CostModel | None = None,
        mailbox_slot_bytes: int = 8192,
        barrier_timeout: float = 120.0,
        telemetry: Any = None,
        liveness_poll: float = _LIVENESS_POLL,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if liveness_poll <= 0:
            raise ValueError(f"liveness_poll must be positive, got {liveness_poll}")
        self.size = size
        self.max_supersteps = max_supersteps
        self.exchange = _normalise_exchange(exchange)
        self.cost = cost_model or CostModel()
        self.mailbox_slot_bytes = mailbox_slot_bytes
        self.barrier_timeout = barrier_timeout
        self.liveness_poll = liveness_poll
        self.stats = WorldStats.for_size(size)
        self.results: list[Any] = []
        self.telemetry: list[dict] = []
        self.tel = resolve(telemetry)
        self.supersteps = 0
        self.simulated_time = 0.0

    def run(
        self,
        programs: Sequence[RankProgram],
        fault_plan: Any = None,
        checkpointer: Checkpointer | None = None,
        initial_inboxes: list[list[tuple[int, Any]]] | None = None,
        tracer: Any = None,
    ) -> WorldStats:
        """Fork one worker per rank, run ``programs`` to quiescence, collect.

        ``fault_plan`` may schedule stragglers (real sleeps) and
        superstep-scheduled crashes (real worker ``SIGKILL`` deaths,
        surfaced as :class:`RankFailure` with the victim's rank and
        heartbeat-attributed superstep); message drop/duplication and
        time-scheduled crashes are rejected — see :func:`_check_mp_fault_plan`.

        ``checkpointer`` enables cross-process snapshots: workers write
        per-rank shards at checkpoint supersteps (into a ``<path>.shards/``
        sibling directory) and the parent commits each complete cut as an
        ordinary checkpoint manifest, loadable by either engine.  A cut is
        snapshotted only if its exchange carried traffic.

        ``initial_inboxes`` switches the run into *resume* mode (used by the
        supervisor): the engine's ``stats``/``supersteps``/``simulated_time``
        — restored from the snapshot by the caller — are continued rather
        than reset, and each worker starts from its restored program, stats
        row, and in-flight inbox.

        ``tracer`` is accepted for engine-interchangeability but ignored:
        per-superstep timelines are not observable parent-side on the p2p
        transport, and this backend exists to measure *real* time anyway.
        """
        if len(programs) != self.size:
            raise MPSimError(f"expected {self.size} rank programs, got {len(programs)}")
        _check_mp_fault_plan(fault_plan)
        resume_mode = initial_inboxes is not None
        if resume_mode and len(initial_inboxes) != self.size:
            raise MPSimError("initial_inboxes must have one entry per rank")
        if not resume_mode:
            self.stats = WorldStats.for_size(self.size)
            self.supersteps = 0
        heartbeats = Heartbeats(self.size)
        shard_dir: str | None = None
        if checkpointer is not None:
            shards_path = checkpointer.path.parent / (checkpointer.path.name + ".shards")
            shards_path.mkdir(parents=True, exist_ok=True)
            for stale in shards_path.glob("*.shard"):
                # leftovers of an incomplete cut from a crashed run; the
                # committed manifests are the only trusted recovery points
                try:
                    stale.unlink()
                except OSError:  # pragma: no cover - already gone
                    pass
            shard_dir = str(shards_path)
        ckpt = (
            (shard_dir, checkpointer.every, checkpointer.min_superstep, self.simulated_time)
            if checkpointer is not None and self.exchange == EXCHANGE_P2P
            else None
        )
        ctx = mp.get_context("fork")
        fabric = (
            P2PFabric(
                self.size,
                slot_bytes=self.mailbox_slot_bytes,
                timeout=self.barrier_timeout,
            )
            if self.exchange == EXCHANGE_P2P
            else None
        )
        # the event ring must exist before the fork so workers inherit it
        ring = EventRing() if self.tel.enabled else None
        collector = RingCollector(ring) if ring is not None else None
        parents: list[Any] = []
        procs: list[Any] = []
        try:
            for rank, prog in enumerate(programs):
                resume = (
                    (self.supersteps, self.stats.ranks[rank], list(initial_inboxes[rank]))
                    if resume_mode
                    else None
                )
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank, self.size, child_conn, self.exchange, fabric,
                        prog, self.max_supersteps, self.cost,
                        heartbeats, resume, ckpt, ring,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                parents.append(parent_conn)
                procs.append(proc)

            with self.tel.span(
                "mp.run", cat="run", tid=-1, exchange=self.exchange, size=self.size
            ):
                results, telemetry, supersteps, simulated = _drive_job(
                    parents, procs, self.size, self.exchange, fabric,
                    None, fault_plan, self.stats, self.max_supersteps,
                    heartbeats=heartbeats, checkpointer=checkpointer,
                    shard_dir=shard_dir, cost=self.cost,
                    step0=self.supersteps, sim0=self.simulated_time,
                    collector=collector, tel=self.tel,
                    liveness_poll=self.liveness_poll,
                )
            self.results, self.telemetry = results, telemetry
            steps_this_job = supersteps - self.supersteps
            self.supersteps = supersteps
            # accumulate like the in-process engine: the supervisor charges
            # restart backoff onto the clock between attempts
            self.simulated_time += simulated
            if self.tel.enabled:
                if steps_this_job > 0:
                    self.tel.counter(
                        "mp_supersteps_total", "supersteps completed by the mp engine"
                    ).inc(steps_this_job)
                self.tel.gauge(
                    "mp_simulated_time_seconds", "virtual T_p accumulated so far"
                ).set(self.simulated_time)
                self.tel.meta.setdefault("engine", "mp")
                self.tel.meta["exchange"] = self.exchange
                self.tel.meta["size"] = self.size
        finally:
            # shut down on *every* path: after a failure the survivors sit
            # in their command loop, and closing the parent ends alone does
            # not EOF them (later-forked siblings inherited the earlier
            # ranks' parent pipe ends), so they would eat the join timeout
            for conn in parents:
                try:
                    conn.send((_SHUTDOWN, None))
                except (BrokenPipeError, OSError):  # worker already gone
                    pass
                conn.close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=1)
            if fabric is not None:
                fabric.close(unlink=True)
            if collector is not None:
                # merge on every path: a crashed run's published history is
                # exactly what the post-mortem trace needs
                collector.merge_into(self.tel)
                ring.close(unlink=True)
        return self.stats
