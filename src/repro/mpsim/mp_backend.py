"""Real-parallelism backend: run BSP rank programs in OS processes.

The in-process :class:`~repro.mpsim.bsp.BSPEngine` *simulates* a distributed
machine; this backend *is* one (in miniature): each rank program runs in its
own forked process with its own address space, and all cross-rank data moves
through pipes.  It exists to prove the rank programs are genuinely
shared-nothing — any accidental reliance on shared state would produce a
different graph here than under the in-process engine, and the test-suite
compares the two bit-for-bit.

Topology: a coordinator (the parent process) performs the superstep exchange.
Each worker sends its outbox up one pipe; the coordinator routes payloads and
sends each worker its inbox for the next superstep, plus a global
``continue/stop`` flag (the quiescence decision needs a global view, exactly
like the termination detection a real MPI code would run).

This backend favours clarity over throughput — pickling NumPy arrays through
pipes is not fast — and is intended for validation and small demonstrations,
not for the scaling benchmarks.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Sequence

import numpy as np

from repro.mpsim.bsp import BSPRankContext, RankProgram
from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import MPSimError, RankFailure
from repro.mpsim.stats import RankStats, WorldStats

__all__ = ["MultiprocessingBSPEngine"]

_STOP = "stop"
_STEP = "step"


def _worker_loop(rank: int, size: int, program: RankProgram, conn: Any) -> None:
    """Run one rank's program inside a worker process."""
    stats = WorldStats.for_size(size)
    ctx = BSPRankContext(rank, size, stats, CostModel())
    try:
        while True:
            cmd, inbox = conn.recv()
            if cmd == _STOP:
                conn.send(("final", stats[rank], _result_of(program)))
                return
            outbox = program.step(ctx, inbox) or {}
            ctx._drain_step_compute()
            serializable = {
                dest: [np.ascontiguousarray(a) for a in arrs if len(a)]
                for dest, arrs in outbox.items()
            }
            conn.send(("out", serializable, bool(program.done)))
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        conn.send(("error", repr(exc), None))


def _result_of(program: RankProgram) -> Any:
    """Extract a rank program's result payload, if it exposes one."""
    getter = getattr(program, "result", None)
    if callable(getter):
        return getter()
    return None


class MultiprocessingBSPEngine:
    """Drive :class:`~repro.mpsim.bsp.RankProgram` objects in real processes.

    The API mirrors :class:`~repro.mpsim.bsp.BSPEngine.run`, with one
    addition: because programs live in child address spaces, their final
    state is not visible to the caller.  Programs may expose a ``result()``
    method; the values are collected into :attr:`results` (rank order) after
    :meth:`run`.
    """

    def __init__(self, size: int, max_supersteps: int = 10_000) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self.max_supersteps = max_supersteps
        self.stats = WorldStats.for_size(size)
        self.results: list[Any] = []
        self.supersteps = 0

    def run(self, programs: Sequence[RankProgram]) -> WorldStats:
        if len(programs) != self.size:
            raise MPSimError(f"expected {self.size} rank programs, got {len(programs)}")
        ctx = mp.get_context("fork")
        parents, procs = [], []
        for rank, prog in enumerate(programs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop,
                args=(rank, self.size, prog, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            parents.append(parent_conn)
            procs.append(proc)

        try:
            inboxes: list[list[tuple[int, np.ndarray]]] = [[] for _ in range(self.size)]
            while True:
                if self.supersteps >= self.max_supersteps:
                    raise MPSimError(
                        f"exceeded max_supersteps={self.max_supersteps}"
                    )
                self.supersteps += 1
                for rank, conn in enumerate(parents):
                    conn.send((_STEP, inboxes[rank]))
                next_inboxes: list[list[tuple[int, np.ndarray]]] = [
                    [] for _ in range(self.size)
                ]
                any_traffic = False
                all_done = True
                for rank, conn in enumerate(parents):
                    kind, payload, done = conn.recv()
                    if kind == "error":
                        raise RankFailure(rank, RuntimeError(payload))
                    for dest in sorted(payload):
                        for arr in payload[dest]:
                            next_inboxes[dest].append((rank, arr))
                            any_traffic = True
                            self.stats[rank].record_send(len(arr), arr.nbytes)
                            self.stats[dest].record_receive(len(arr), arr.nbytes)
                    all_done = all_done and done
                inboxes = next_inboxes
                if not any_traffic and all_done:
                    break

            self.results = [None] * self.size
            for rank, conn in enumerate(parents):
                conn.send((_STOP, None))
            for rank, conn in enumerate(parents):
                kind, rank_stats, result = conn.recv()
                if kind != "final":  # pragma: no cover - protocol violation
                    raise MPSimError(f"unexpected final message {kind!r} from rank {rank}")
                assert isinstance(rank_stats, RankStats)
                self.stats[rank].nodes = rank_stats.nodes
                self.stats[rank].work_items = rank_stats.work_items
                self.results[rank] = result
        finally:
            for conn in parents:
                conn.close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
        return self.stats
