"""Real-parallelism backend: run BSP rank programs in OS processes.

The in-process :class:`~repro.mpsim.bsp.BSPEngine` *simulates* a distributed
machine; this backend *is* one (in miniature): each rank program runs in its
own forked process with its own address space.  It exists to prove the rank
programs are genuinely shared-nothing — any accidental reliance on shared
state would produce a different graph here than under the in-process engine,
and the test-suite compares the two bit-for-bit.

Three exchange topologies are available:

``"shm"`` (default)
    coordinator-routed descriptors, zero-copy payloads: every worker owns a
    double-buffered ``multiprocessing.shared_memory`` segment, writes its
    outbox arrays into the half assigned to the current superstep's parity,
    and ships only small ``(segment, offset, count, dtype)`` descriptors
    through the parent's pipes.  Receivers map the source segment and copy
    the records straight out of shared memory — the payload bytes never pass
    through pickle.  Double buffering makes the lockstep safe: superstep
    ``s`` writes half ``s % 2`` while every reader of superstep ``s - 1``
    data reads half ``(s - 1) % 2``.
``"pickle"``
    the original pipe path (arrays pickled through the coordinator's
    connections), kept as a portability fallback and as the baseline the
    hot-path benchmark compares against.
``"p2p"``
    fully peer-to-peer: payloads travel exactly as under ``"shm"``, but the
    descriptors go through a shared-memory mailbox matrix
    (:class:`repro.mpsim.p2p.P2PFabric`) and the supersteps are paced by a
    shared barrier with distributed termination detection — the parent never
    touches a byte of superstep traffic and only monitors liveness and
    collects final results.  This removes the coordinator's serial
    per-superstep work (two pipe hops per rank per superstep) from the
    critical path.

All transports deliver inboxes in identical (source-rank, send) order, so
they produce bit-identical graphs — asserted by the test-suite.

The coordinator paths drain worker replies with
``multiprocessing.connection.wait`` in *arrival* order (then process them in
rank order, keeping delivery deterministic), so a straggling rank no longer
blocks the parent from servicing the others' pipes.

Statistics are accounted *worker-side* with the same formulas the in-process
engine uses (message counts, byte volumes, virtual busy time, superstep
durations) and shipped to the parent at job end, so
``engine.stats.summary()`` agrees with a matching in-process run and
``engine.simulated_time`` is populated on every transport.

For repeated jobs over the same rank count, see
:class:`repro.mpsim.pool.WorkerPool`, which forks this module's workers once
and reuses them (pipes, payload segments, and p2p fabric included) across
many ``run()`` calls.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import connection as _mpc
from typing import Any, Sequence

import numpy as np

from repro.mpsim.bsp import BSPRankContext, RankProgram
from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import InvalidRankError, MPSimError, RankFailure
from repro.mpsim.p2p import P2PFabric
from repro.mpsim.stats import RankStats, WorldStats

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "MultiprocessingBSPEngine",
    "EXCHANGE_SHM",
    "EXCHANGE_PICKLE",
    "EXCHANGE_P2P",
    "EXCHANGES",
]

# worker protocol commands (parent -> worker)
_STOP = "stop"
_STEP = "step"
_JOB = "job"
_SHUTDOWN = "shutdown"

EXCHANGE_SHM = "shm"
EXCHANGE_PICKLE = "pickle"
EXCHANGE_P2P = "p2p"
EXCHANGES = (EXCHANGE_SHM, EXCHANGE_PICKLE, EXCHANGE_P2P)

#: Smallest per-half segment size; avoids churning tiny segments while the
#: first supersteps ramp up.
_MIN_HALF_BYTES = 1 << 16

#: wall seconds slept per superstep per unit of straggle factor above 1.0
#: when a fault plan marks a rank as a straggler — a *real* delay, so the
#: determinism tests exercise genuinely skewed arrival timings
_STRAGGLE_SLEEP = 1e-3

#: how often the parent re-checks worker liveness while waiting on pipes
_LIVENESS_POLL = 0.25


def _attach(name: str):
    """Attach to an existing segment without resource-tracker ownership.

    Before Python 3.13 every attach registers the segment with the resource
    tracker.  With the per-process trackers of a plain fork that is merely
    noisy, but once the parent has created shared memory of its own (the p2p
    fabric) every child inherits the *same* tracker process — and the old
    register-then-``unregister`` dance removes the creating rank's
    registration, producing double-unregister errors when several ranks
    attach the same segment.  So the attach must not register at all: the
    registration is suppressed for the duration of the constructor, leaving
    the creator's registration as the single tracked owner.  Python 3.13+
    has ``track=False`` for exactly this.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        try:
            from multiprocessing import resource_tracker
        except ImportError:  # pragma: no cover - no tracker, nothing to dodge
            return _shared_memory.SharedMemory(name=name)
        original = resource_tracker.register

        def _skip_shm(rname: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - not hit today
                original(rname, rtype)

        resource_tracker.register = _skip_shm
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _ShmWriter:
    """One worker's double-buffered shared-memory outbox arena.

    The segment holds two halves; superstep ``s`` writes into half ``s % 2``
    (a bump allocator reset each superstep).  When a superstep's payload
    outgrows the current half, a fresh segment (doubled) is created under a
    new name — the old one is kept alive until shutdown because readers may
    still be copying last superstep's records out of it.
    """

    def __init__(self) -> None:
        self.shm = None
        self.half = 0
        self._retired: list[Any] = []

    def _ensure(self, nbytes: int) -> None:
        if self.shm is not None and nbytes <= self.half:
            return
        half = _MIN_HALF_BYTES
        while half < nbytes:
            half *= 2
        new = _shared_memory.SharedMemory(create=True, size=2 * half)
        if self.shm is not None:
            self._retired.append(self.shm)
        self.shm, self.half = new, half

    def write(self, outbox: dict[int, list[np.ndarray]], superstep: int) -> dict:
        """Copy ``outbox`` arrays into shared memory; return the descriptor
        outbox ``{dest: [(name, offset, count, dtype), ...]}``."""
        total = sum(
            arr.nbytes for arrs in outbox.values() for arr in arrs if len(arr)
        )
        self._ensure(total)
        off = (superstep % 2) * self.half
        meta: dict[int, list[tuple[str, int, int, np.dtype]]] = {}
        for dest, arrs in outbox.items():
            descs = []
            for arr in arrs:
                if len(arr) == 0:
                    continue
                arr = np.ascontiguousarray(arr)
                # byte-level copy: structured-dtype fancy assignment is ~20x
                # slower than a plain memcpy, so move raw bytes and let the
                # receiver reinterpret them with the dtype from the descriptor
                dst = np.frombuffer(self.shm.buf, np.uint8, count=arr.nbytes, offset=off)
                dst[:] = arr.view(np.uint8)
                del dst  # release the buffer export before any close()
                descs.append((self.shm.name, off, len(arr), arr.dtype))
                off += arr.nbytes
            if descs:
                meta[dest] = descs
        return meta

    def close(self) -> None:
        for seg in self._retired + ([self.shm] if self.shm is not None else []):
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._retired, self.shm, self.half = [], None, 0


class _ShmReader:
    """Attachment cache for reading other ranks' segments by name."""

    def __init__(self) -> None:
        self._cache: dict[str, Any] = {}

    def read(self, desc: tuple[str, int, int, np.dtype]) -> np.ndarray:
        name, off, count, dtype = desc
        shm = self._cache.get(name)
        if shm is None:
            shm = _attach(name)
            self._cache[name] = shm
        # private byte copy (the source half is reused two supersteps later),
        # then reinterpret: memcpy-speed, unlike structured-dtype .copy()
        nbytes = count * dtype.itemsize
        raw = np.empty(nbytes, np.uint8)
        src = np.frombuffer(shm.buf, np.uint8, count=nbytes, offset=off)
        raw[:] = src
        del src
        return raw.view(dtype)

    def close(self) -> None:
        for shm in self._cache.values():
            shm.close()
        self._cache.clear()


# ===================================================================== worker
class _ShutdownRequested(Exception):
    """Parent asked the worker to exit while a job was in flight."""


def _result_of(rank: int, program: RankProgram) -> Any:
    """Extract a rank program's result payload, if it exposes one.

    A ``result()`` that raises is a *program* failure even though it happens
    during final collection rather than mid-superstep, so it is wrapped in
    :class:`RankFailure` exactly like a failing ``step()``.
    """
    getter = getattr(program, "result", None)
    if not callable(getter):
        return None
    try:
        return getter()
    except Exception as exc:
        raise RankFailure(rank, exc) from exc


def _telemetry_of(program: RankProgram) -> dict[str, int]:
    """Per-rank counters the generation facade reports (Figure 7 data)."""
    return {
        "requests_sent": int(getattr(program, "requests_sent", 0) or 0),
        "requests_received": int(getattr(program, "requests_received", 0) or 0),
    }


def _execute_step(
    rank: int,
    size: int,
    program: RankProgram,
    ctx: BSPRankContext,
    rs: RankStats,
    inbox: Sequence[tuple[int, np.ndarray]],
    cost: CostModel,
    fault_plan: Any,
) -> tuple[dict[int, list[np.ndarray]], int, float]:
    """Run one superstep of ``program`` and account it like the in-process
    engine does.

    Returns the cleaned outbox (contiguous, non-empty arrays only), the
    outgoing record count, and the superstep's virtual duration for this
    rank.  Program exceptions surface as :class:`RankFailure`.
    """
    in_records = sum(len(arr) for _, arr in inbox)
    in_bytes = sum(arr.nbytes for _, arr in inbox)
    try:
        outbox = program.step(ctx, inbox) or {}
    except Exception as exc:
        raise RankFailure(rank, exc) from exc

    clean: dict[int, list[np.ndarray]] = {}
    out_records = 0
    out_bytes = 0
    for dest, payloads in outbox.items():
        if not 0 <= dest < size:
            raise InvalidRankError(
                f"rank {rank} addressed invalid destination {dest}"
            )
        if dest == rank:
            raise MPSimError(
                f"rank {rank} attempted a self-send; local work "
                "must not route through the exchange"
            )
        kept = [np.ascontiguousarray(arr) for arr in payloads if len(arr)]
        if not kept:
            continue
        clean[dest] = kept
        for arr in kept:
            out_records += len(arr)
            out_bytes += arr.nbytes

    rs.record_send(out_records, out_bytes)
    rs.record_receive(in_records, in_bytes)
    rs.rounds += 1
    ctx._drain_step_events()
    t = (
        ctx._drain_step_compute()
        + cost.per_message * (out_records + in_records)
        + cost.beta * (out_bytes + in_bytes)
        + cost.round_time()
    )
    if fault_plan is not None:
        mult = fault_plan.straggle_multiplier(rank)
        if mult > 1.0:
            t *= mult
            # a *real* wall-clock delay so exchange-arrival orderings are
            # genuinely perturbed, not just virtually charged
            time.sleep(_STRAGGLE_SLEEP * (mult - 1.0))
    rs.busy_time += t
    return clean, out_records, t


def _run_job_coordinator(
    rank: int,
    size: int,
    program: RankProgram,
    conn: Any,
    exchange: str,
    writer: Any,
    reader: Any,
    cost: CostModel,
    fault_plan: Any,
) -> None:
    """Worker side of one coordinator-routed job (``shm``/``pickle``)."""
    stats = WorldStats.for_size(size)
    ctx = BSPRankContext(rank, size, stats, cost)
    rs = stats[rank]
    superstep = 0
    while True:
        cmd, payload = conn.recv()
        if cmd == _SHUTDOWN:
            raise _ShutdownRequested
        if cmd == _STOP:
            conn.send(
                ("final", rs, _result_of(rank, program), _telemetry_of(program), None)
            )
            return
        superstep += 1
        if exchange == EXCHANGE_SHM:
            inbox = [(src, reader.read(desc)) for src, desc in payload]
        else:
            inbox = payload
        clean, _, t = _execute_step(
            rank, size, program, ctx, rs, inbox, cost, fault_plan
        )
        if exchange == EXCHANGE_SHM:
            meta = writer.write(clean, superstep)
        else:
            meta = clean
        conn.send(("out", meta, bool(program.done), t))


def _run_job_p2p(
    rank: int,
    size: int,
    program: RankProgram,
    conn: Any,
    fabric: P2PFabric,
    writer: _ShmWriter,
    reader: _ShmReader,
    cost: CostModel,
    fault_plan: Any,
    max_supersteps: int,
) -> None:
    """Worker side of one peer-to-peer job: no parent on the data path.

    Each superstep: step the program, write payloads into this rank's
    shared-memory arena, post the descriptors into every peer's mailbox,
    publish the (done, traffic, time) triple, hit the barrier, then take the
    global termination decision from the shared counters and read the inbox
    straight out of the peers' segments.
    """
    stats = WorldStats.for_size(size)
    ctx = BSPRankContext(rank, size, stats, cost)
    rs = stats[rank]
    inbox: list[tuple[int, np.ndarray]] = []
    superstep = 0
    simulated = 0.0
    try:
        while True:
            if superstep >= max_supersteps:
                raise MPSimError(f"exceeded max_supersteps={max_supersteps}")
            superstep += 1
            clean, out_records, t = _execute_step(
                rank, size, program, ctx, rs, inbox, cost, fault_plan
            )
            meta = writer.write(clean, superstep)
            fabric.post(rank, superstep, meta)
            fabric.publish(rank, superstep, bool(program.done), out_records, t)
            fabric.wait()
            simulated += fabric.max_step_time(superstep)
            if fabric.quiescent(superstep):
                break
            inbox = [
                (src, reader.read(desc))
                for src, desc in fabric.collect(rank, superstep)
            ]
    except Exception:
        fabric.abort()  # fail peers fast instead of letting them time out
        raise
    conn.send(
        (
            "final",
            rs,
            _result_of(rank, program),
            _telemetry_of(program),
            (superstep, simulated),
        )
    )


def _worker_main(
    rank: int,
    size: int,
    conn: Any,
    exchange: str,
    fabric: P2PFabric | None,
    program: RankProgram | None,
    max_supersteps: int,
    cost: CostModel,
) -> None:
    """One worker process: serve jobs until shutdown.

    ``program`` is the fork-inherited rank program for one-shot engine runs;
    pooled jobs ship their programs in the job command instead.  Payload
    segments (and the reader's attachment cache) persist across jobs so a
    :class:`~repro.mpsim.pool.WorkerPool` pays segment setup once.
    """
    needs_shm = exchange in (EXCHANGE_SHM, EXCHANGE_P2P)
    writer = _ShmWriter() if needs_shm else None
    reader = _ShmReader() if needs_shm else None
    try:
        while True:
            try:
                cmd, payload = conn.recv()
            except EOFError:
                return
            if cmd == _SHUTDOWN:
                return
            if cmd != _JOB:  # pragma: no cover - protocol violation
                conn.send(("error", "mpsim", f"unexpected command {cmd!r}"))
                return
            job_program, fault_plan = payload
            prog = job_program if job_program is not None else program
            try:
                if exchange == EXCHANGE_P2P:
                    _run_job_p2p(
                        rank, size, prog, conn, fabric, writer, reader,
                        cost, fault_plan, max_supersteps,
                    )
                else:
                    _run_job_coordinator(
                        rank, size, prog, conn, exchange, writer, reader,
                        cost, fault_plan,
                    )
            except _ShutdownRequested:
                return
            except RankFailure as exc:
                _report_error(conn, fabric, "rank", repr(exc.original))
            except Exception as exc:
                _report_error(conn, fabric, "mpsim", repr(exc))
    finally:
        if reader is not None:
            reader.close()
        if writer is not None:
            writer.close()


def _report_error(conn: Any, fabric: P2PFabric | None, kind: str, msg: str) -> None:
    """Abort peers (p2p) and surface a job error to the parent, best-effort."""
    if fabric is not None:
        fabric.abort()
    try:
        conn.send(("error", kind, msg))
    except Exception:  # pragma: no cover - parent already gone
        pass


# ===================================================================== parent
def _recv_all(
    parents: Sequence[Any],
    procs: Sequence[Any],
    fabric: P2PFabric | None,
) -> dict[int, tuple]:
    """Collect exactly one message per worker, draining in *arrival* order.

    ``multiprocessing.connection.wait`` services whichever pipes are ready,
    so a straggler rank cannot head-of-line-block the parent from reading
    the others (the pre-PR path ``recv``-ed in strict rank order).  Callers
    then iterate the returned dict in rank order, which keeps downstream
    routing deterministic regardless of arrival timing.

    Dead workers surface as :class:`RankFailure`; with a p2p fabric the
    barrier is aborted first so surviving peers fail fast too.
    """
    msgs: dict[int, tuple] = {}
    pending: dict[Any, int] = {conn: rank for rank, conn in enumerate(parents)}
    while pending:
        ready = _mpc.wait(list(pending), timeout=_LIVENESS_POLL)
        if not ready:
            for conn, rank in pending.items():
                if not procs[rank].is_alive():
                    if fabric is not None:
                        fabric.abort()
                    raise RankFailure(
                        rank, RuntimeError("worker process died unexpectedly")
                    )
            continue
        for conn in ready:
            rank = pending.pop(conn)
            try:
                msgs[rank] = conn.recv()
            except EOFError:
                if fabric is not None:
                    fabric.abort()
                raise RankFailure(
                    rank, RuntimeError("worker closed its pipe unexpectedly")
                )
    return msgs


def _raise_job_errors(msgs: dict[int, tuple]) -> None:
    """Map worker error reports to the exceptions the in-process engine uses.

    Program failures win over engine/barrier failures (a crashing rank
    aborts the barrier, so its peers' ``barrier`` reports are collateral),
    and the lowest-ranked report is raised for determinism.
    """
    errors = {r: m for r, m in msgs.items() if m[0] == "error"}
    if not errors:
        return
    for rank in sorted(errors):
        kind, msg = errors[rank][1], errors[rank][2]
        if kind == "rank":
            raise RankFailure(rank, RuntimeError(msg))
    rank = min(errors)
    raise MPSimError(f"rank {rank}: {errors[rank][2]}")


def _drive_job(
    parents: Sequence[Any],
    procs: Sequence[Any],
    size: int,
    exchange: str,
    fabric: P2PFabric | None,
    programs: Sequence[RankProgram] | None,
    fault_plan: Any,
    stats: WorldStats,
    max_supersteps: int,
) -> tuple[list[Any], list[dict], int, float]:
    """Parent side of one job, shared by the engine and the worker pool.

    ``programs`` is ``None`` when workers inherited their programs at fork
    (one-shot engine runs); pooled jobs pass the list to pickle across.
    Returns ``(results, telemetry, supersteps, simulated_time)`` and writes
    the workers' final :class:`RankStats` into ``stats``.
    """
    for rank, conn in enumerate(parents):
        shipped = programs[rank] if programs is not None else None
        conn.send((_JOB, (shipped, fault_plan)))

    results: list[Any] = [None] * size
    telemetry: list[dict] = [{} for _ in range(size)]

    if exchange == EXCHANGE_P2P:
        # workers run to quiescence on their own; just collect the finals
        msgs = _recv_all(parents, procs, fabric)
        _raise_job_errors(msgs)
        supersteps = 0
        simulated = 0.0
        for rank in range(size):
            kind, rank_stats, result, tele, tail = msgs[rank]
            if kind != "final":  # pragma: no cover - protocol violation
                raise MPSimError(f"unexpected final message {kind!r} from rank {rank}")
            _install_rank_stats(stats, rank, rank_stats)
            results[rank] = result
            telemetry[rank] = tele
            steps, sim = tail
            supersteps = max(supersteps, steps)
            simulated = max(simulated, sim)
        return results, telemetry, supersteps, simulated

    # coordinator topologies: the parent routes descriptors (shm) or whole
    # payloads (pickle) between workers each superstep
    supersteps = 0
    simulated = 0.0
    inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
    while True:
        if supersteps >= max_supersteps:
            raise MPSimError(f"exceeded max_supersteps={max_supersteps}")
        supersteps += 1
        for rank, conn in enumerate(parents):
            conn.send((_STEP, inboxes[rank]))
        msgs = _recv_all(parents, procs, None)
        _raise_job_errors(msgs)
        next_inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(size)]
        any_traffic = False
        all_done = True
        step_max = 0.0
        for rank in range(size):  # rank order: deterministic delivery
            kind, payload, done, t = msgs[rank]
            if kind != "out":  # pragma: no cover - protocol violation
                raise MPSimError(f"unexpected step message {kind!r} from rank {rank}")
            for dest in sorted(payload):
                for item in payload[dest]:
                    next_inboxes[dest].append((rank, item))
                    any_traffic = True
            all_done = all_done and done
            step_max = max(step_max, t)
        simulated += step_max
        inboxes = next_inboxes
        if not any_traffic and all_done:
            break

    for conn in parents:
        conn.send((_STOP, None))
    msgs = _recv_all(parents, procs, None)
    # a worker may fail *during* final collection (e.g. its ``result()``
    # raises); surface that as a RankFailure like any mid-run crash
    _raise_job_errors(msgs)
    for rank in range(size):
        kind, rank_stats, result, tele, _tail = msgs[rank]
        if kind != "final":  # pragma: no cover - protocol violation
            raise MPSimError(f"unexpected final message {kind!r} from rank {rank}")
        _install_rank_stats(stats, rank, rank_stats)
        results[rank] = result
        telemetry[rank] = tele
    return results, telemetry, supersteps, simulated


def _install_rank_stats(stats: WorldStats, rank: int, rank_stats: Any) -> None:
    """Adopt a worker's authoritative counters as the parent's per-rank row."""
    if not isinstance(rank_stats, RankStats) or rank_stats.rank != rank:
        raise MPSimError(f"rank {rank} returned malformed stats {rank_stats!r}")
    stats.ranks[rank] = rank_stats


def _check_mp_fault_plan(fault_plan: Any) -> None:
    """The mp backend supports straggler injection only.

    Crash schedules and message drops/duplications require the engine to sit
    on the message path with a single global RNG; in this backend each worker
    holds a forked copy of the plan, so those draws would diverge.  The
    in-process engine remains the place to exercise them.
    """
    if fault_plan is None:
        return
    if getattr(fault_plan, "pending_crashes", 0):
        raise ValueError("mp backend does not support crash injection; use BSPEngine")
    if getattr(fault_plan, "_drops_left", 0) or getattr(fault_plan, "_duplicates_left", 0):
        raise ValueError(
            "mp backend does not support message drop/duplication; use BSPEngine"
        )


def _normalise_exchange(exchange: str) -> str:
    if exchange not in EXCHANGES:
        raise ValueError(
            f"unknown exchange {exchange!r}; use one of {', '.join(EXCHANGES)}"
        )
    if exchange != EXCHANGE_PICKLE and _shared_memory is None:  # pragma: no cover
        return EXCHANGE_PICKLE
    return exchange


class MultiprocessingBSPEngine:
    """Drive :class:`~repro.mpsim.bsp.RankProgram` objects in real processes.

    The API mirrors :class:`~repro.mpsim.bsp.BSPEngine.run`, with one
    addition: because programs live in child address spaces, their final
    state is not visible to the caller.  Programs may expose a ``result()``
    method; the values are collected into :attr:`results` (rank order) after
    :meth:`run`, and per-rank request counters (when the program exposes
    them) into :attr:`telemetry`.

    Parameters
    ----------
    size:
        Number of ranks (one process each).
    max_supersteps:
        Safety bound on the superstep loop.
    exchange:
        :data:`EXCHANGE_SHM` (default) for coordinator-routed zero-copy
        payloads, :data:`EXCHANGE_PICKLE` for the pickle-pipe fallback, or
        :data:`EXCHANGE_P2P` for the peer-to-peer mailbox fabric.  Platforms
        without ``multiprocessing.shared_memory`` fall back to pickle
        automatically.
    cost_model:
        Virtual-time charges used by the worker-side accounting (defaults to
        the paper-testbed preset, same as the in-process engine).
    mailbox_slot_bytes, barrier_timeout:
        p2p fabric tuning; ignored by the coordinator transports.
    """

    def __init__(
        self,
        size: int,
        max_supersteps: int = 10_000,
        exchange: str = EXCHANGE_SHM,
        cost_model: CostModel | None = None,
        mailbox_slot_bytes: int = 8192,
        barrier_timeout: float = 120.0,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        self.max_supersteps = max_supersteps
        self.exchange = _normalise_exchange(exchange)
        self.cost = cost_model or CostModel()
        self.mailbox_slot_bytes = mailbox_slot_bytes
        self.barrier_timeout = barrier_timeout
        self.stats = WorldStats.for_size(size)
        self.results: list[Any] = []
        self.telemetry: list[dict] = []
        self.supersteps = 0
        self.simulated_time = 0.0

    def run(
        self, programs: Sequence[RankProgram], fault_plan: Any = None
    ) -> WorldStats:
        """Fork one worker per rank, run ``programs`` to quiescence, collect.

        ``fault_plan`` may schedule stragglers
        (:meth:`repro.mpsim.faults.FaultPlan.straggle`), which sleep for real
        wall time in the affected workers; crash/drop schedules are rejected
        (see the in-process engine for those).
        """
        if len(programs) != self.size:
            raise MPSimError(f"expected {self.size} rank programs, got {len(programs)}")
        _check_mp_fault_plan(fault_plan)
        self.stats = WorldStats.for_size(self.size)
        ctx = mp.get_context("fork")
        fabric = (
            P2PFabric(
                self.size,
                slot_bytes=self.mailbox_slot_bytes,
                timeout=self.barrier_timeout,
            )
            if self.exchange == EXCHANGE_P2P
            else None
        )
        parents: list[Any] = []
        procs: list[Any] = []
        try:
            for rank, prog in enumerate(programs):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank, self.size, child_conn, self.exchange, fabric,
                        prog, self.max_supersteps, self.cost,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                parents.append(parent_conn)
                procs.append(proc)

            self.results, self.telemetry, self.supersteps, self.simulated_time = (
                _drive_job(
                    parents, procs, self.size, self.exchange, fabric,
                    None, fault_plan, self.stats, self.max_supersteps,
                )
            )
            for conn in parents:
                conn.send((_SHUTDOWN, None))
        finally:
            for conn in parents:
                conn.close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join(timeout=1)
            if fabric is not None:
                fabric.close(unlink=True)
        return self.stats
