"""Real-parallelism backend: run BSP rank programs in OS processes.

The in-process :class:`~repro.mpsim.bsp.BSPEngine` *simulates* a distributed
machine; this backend *is* one (in miniature): each rank program runs in its
own forked process with its own address space.  It exists to prove the rank
programs are genuinely shared-nothing — any accidental reliance on shared
state would produce a different graph here than under the in-process engine,
and the test-suite compares the two bit-for-bit.

Topology: a coordinator (the parent process) performs the superstep exchange.
Each worker sends its outbox up one pipe; the coordinator routes payloads and
sends each worker its inbox for the next superstep, plus a global
``continue/stop`` flag (the quiescence decision needs a global view, exactly
like the termination detection a real MPI code would run).

Two exchange paths are available:

``"shm"`` (default)
    zero-copy for the bulk record payloads: every worker owns a
    double-buffered ``multiprocessing.shared_memory`` segment, writes its
    outbox arrays into the half assigned to the current superstep's parity,
    and ships only small ``(segment, offset, count, dtype)`` descriptors
    through the pipe.  Receivers map the source segment and copy the records
    straight out of shared memory — the payload bytes never pass through
    pickle.  Double buffering makes the lockstep safe: superstep ``s``
    writes half ``s % 2`` while every reader of superstep ``s - 1`` data
    reads half ``(s - 1) % 2``.
``"pickle"``
    the original pipe path (arrays pickled through the connection), kept as
    a portability fallback and as the baseline the hot-path benchmark
    compares against.

Both paths deliver inboxes in identical (source-rank, send) order, so they
produce bit-identical graphs — asserted by the test-suite.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Sequence

import numpy as np

from repro.mpsim.bsp import BSPRankContext, RankProgram
from repro.mpsim.costmodel import CostModel
from repro.mpsim.errors import MPSimError, RankFailure
from repro.mpsim.stats import RankStats, WorldStats

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["MultiprocessingBSPEngine", "EXCHANGE_SHM", "EXCHANGE_PICKLE"]

_STOP = "stop"
_STEP = "step"

EXCHANGE_SHM = "shm"
EXCHANGE_PICKLE = "pickle"

#: Smallest per-half segment size; avoids churning tiny segments while the
#: first supersteps ramp up.
_MIN_HALF_BYTES = 1 << 16


def _attach(name: str):
    """Attach to an existing segment without resource-tracker ownership.

    Before Python 3.13 every attach registers the segment with the resource
    tracker, which then warns about (and tries to re-unlink) segments the
    creating rank already cleaned up; unregistering restores create-side-only
    ownership.  Python 3.13+ has ``track=False`` for exactly this.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        shm = _shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return shm


class _ShmWriter:
    """One worker's double-buffered shared-memory outbox arena.

    The segment holds two halves; superstep ``s`` writes into half ``s % 2``
    (a bump allocator reset each superstep).  When a superstep's payload
    outgrows the current half, a fresh segment (doubled) is created under a
    new name — the old one is kept alive until shutdown because readers may
    still be copying last superstep's records out of it.
    """

    def __init__(self) -> None:
        self.shm = None
        self.half = 0
        self._retired: list[Any] = []

    def _ensure(self, nbytes: int) -> None:
        if self.shm is not None and nbytes <= self.half:
            return
        half = _MIN_HALF_BYTES
        while half < nbytes:
            half *= 2
        new = _shared_memory.SharedMemory(create=True, size=2 * half)
        if self.shm is not None:
            self._retired.append(self.shm)
        self.shm, self.half = new, half

    def write(self, outbox: dict[int, list[np.ndarray]], superstep: int) -> dict:
        """Copy ``outbox`` arrays into shared memory; return the descriptor
        outbox ``{dest: [(name, offset, count, dtype), ...]}``."""
        total = sum(
            arr.nbytes for arrs in outbox.values() for arr in arrs if len(arr)
        )
        self._ensure(total)
        off = (superstep % 2) * self.half
        meta: dict[int, list[tuple[str, int, int, np.dtype]]] = {}
        for dest, arrs in outbox.items():
            descs = []
            for arr in arrs:
                if len(arr) == 0:
                    continue
                arr = np.ascontiguousarray(arr)
                # byte-level copy: structured-dtype fancy assignment is ~20x
                # slower than a plain memcpy, so move raw bytes and let the
                # receiver reinterpret them with the dtype from the descriptor
                dst = np.frombuffer(self.shm.buf, np.uint8, count=arr.nbytes, offset=off)
                dst[:] = arr.view(np.uint8)
                del dst  # release the buffer export before any close()
                descs.append((self.shm.name, off, len(arr), arr.dtype))
                off += arr.nbytes
            if descs:
                meta[dest] = descs
        return meta

    def close(self) -> None:
        for seg in self._retired + ([self.shm] if self.shm is not None else []):
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._retired, self.shm, self.half = [], None, 0


class _ShmReader:
    """Attachment cache for reading other ranks' segments by name."""

    def __init__(self) -> None:
        self._cache: dict[str, Any] = {}

    def read(self, desc: tuple[str, int, int, np.dtype]) -> np.ndarray:
        name, off, count, dtype = desc
        shm = self._cache.get(name)
        if shm is None:
            shm = _attach(name)
            self._cache[name] = shm
        # private byte copy (the source half is reused two supersteps later),
        # then reinterpret: memcpy-speed, unlike structured-dtype .copy()
        nbytes = count * dtype.itemsize
        raw = np.empty(nbytes, np.uint8)
        src = np.frombuffer(shm.buf, np.uint8, count=nbytes, offset=off)
        raw[:] = src
        del src
        return raw.view(dtype)

    def close(self) -> None:
        for shm in self._cache.values():
            shm.close()
        self._cache.clear()


def _worker_loop(
    rank: int, size: int, program: RankProgram, conn: Any, exchange: str
) -> None:
    """Run one rank's program inside a worker process."""
    stats = WorldStats.for_size(size)
    ctx = BSPRankContext(rank, size, stats, CostModel())
    writer = _ShmWriter() if exchange == EXCHANGE_SHM else None
    reader = _ShmReader() if exchange == EXCHANGE_SHM else None
    superstep = 0
    try:
        while True:
            cmd, payload = conn.recv()
            if cmd == _STOP:
                if reader is not None:
                    reader.close()
                if writer is not None:
                    writer.close()
                conn.send(("final", stats[rank], _result_of(program)))
                return
            superstep += 1
            if exchange == EXCHANGE_SHM:
                inbox = [(src, reader.read(desc)) for src, desc in payload]
            else:
                inbox = payload
            outbox = program.step(ctx, inbox) or {}
            ctx._drain_step_compute()
            if exchange == EXCHANGE_SHM:
                meta = writer.write(outbox, superstep)
                conn.send(("out", meta, bool(program.done)))
            else:
                serializable = {
                    dest: [np.ascontiguousarray(a) for a in arrs if len(a)]
                    for dest, arrs in outbox.items()
                }
                conn.send(("out", serializable, bool(program.done)))
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        conn.send(("error", repr(exc), None))


def _result_of(program: RankProgram) -> Any:
    """Extract a rank program's result payload, if it exposes one."""
    getter = getattr(program, "result", None)
    if callable(getter):
        return getter()
    return None


class MultiprocessingBSPEngine:
    """Drive :class:`~repro.mpsim.bsp.RankProgram` objects in real processes.

    The API mirrors :class:`~repro.mpsim.bsp.BSPEngine.run`, with one
    addition: because programs live in child address spaces, their final
    state is not visible to the caller.  Programs may expose a ``result()``
    method; the values are collected into :attr:`results` (rank order) after
    :meth:`run`.

    Parameters
    ----------
    size:
        Number of ranks (one process each).
    max_supersteps:
        Safety bound on the superstep loop.
    exchange:
        :data:`EXCHANGE_SHM` (default) for the zero-copy shared-memory
        payload path, or :data:`EXCHANGE_PICKLE` for the pickle-pipe
        fallback.  Platforms without ``multiprocessing.shared_memory`` fall
        back to pickle automatically.
    """

    def __init__(
        self,
        size: int,
        max_supersteps: int = 10_000,
        exchange: str = EXCHANGE_SHM,
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if exchange not in (EXCHANGE_SHM, EXCHANGE_PICKLE):
            raise ValueError(
                f"unknown exchange {exchange!r}; use {EXCHANGE_SHM!r} or {EXCHANGE_PICKLE!r}"
            )
        if exchange == EXCHANGE_SHM and _shared_memory is None:  # pragma: no cover
            exchange = EXCHANGE_PICKLE
        self.size = size
        self.max_supersteps = max_supersteps
        self.exchange = exchange
        self.stats = WorldStats.for_size(size)
        self.results: list[Any] = []
        self.supersteps = 0

    def run(self, programs: Sequence[RankProgram]) -> WorldStats:
        if len(programs) != self.size:
            raise MPSimError(f"expected {self.size} rank programs, got {len(programs)}")
        shm = self.exchange == EXCHANGE_SHM
        ctx = mp.get_context("fork")
        parents, procs = [], []
        for rank, prog in enumerate(programs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_loop,
                args=(rank, self.size, prog, child_conn, self.exchange),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            parents.append(parent_conn)
            procs.append(proc)

        try:
            # pickle path: inbox items are (src, array); shm path: (src, desc)
            inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(self.size)]
            while True:
                if self.supersteps >= self.max_supersteps:
                    raise MPSimError(
                        f"exceeded max_supersteps={self.max_supersteps}"
                    )
                self.supersteps += 1
                for rank, conn in enumerate(parents):
                    conn.send((_STEP, inboxes[rank]))
                next_inboxes: list[list[tuple[int, Any]]] = [
                    [] for _ in range(self.size)
                ]
                any_traffic = False
                all_done = True
                for rank, conn in enumerate(parents):
                    kind, payload, done = conn.recv()
                    if kind == "error":
                        raise RankFailure(rank, RuntimeError(payload))
                    for dest in sorted(payload):
                        for item in payload[dest]:
                            if shm:
                                _name, _off, count, dtype = item
                                nbytes = count * dtype.itemsize
                            else:
                                count, nbytes = len(item), item.nbytes
                            next_inboxes[dest].append((rank, item))
                            any_traffic = True
                            self.stats[rank].record_send(count, nbytes)
                            self.stats[dest].record_receive(count, nbytes)
                    all_done = all_done and done
                inboxes = next_inboxes
                if not any_traffic and all_done:
                    break

            self.results = [None] * self.size
            for rank, conn in enumerate(parents):
                conn.send((_STOP, None))
            for rank, conn in enumerate(parents):
                kind, rank_stats, result = conn.recv()
                if kind != "final":  # pragma: no cover - protocol violation
                    raise MPSimError(f"unexpected final message {kind!r} from rank {rank}")
                assert isinstance(rank_stats, RankStats)
                self.stats[rank].nodes = rank_stats.nodes
                self.stats[rank].work_items = rank_stats.work_items
                self.results[rank] = result
        finally:
            for conn in parents:
                conn.close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
        return self.stats
