"""Run BSP rank programs under real MPI (mpi4py) when available.

The rank programs in this library are shared-nothing by construction
(tested via the multiprocessing backend), so porting to a real cluster is a
matter of swapping the exchange: this adapter implements the BSP superstep
loop over ``mpi4py``'s alltoall, letting the *identical* program objects run
as genuine MPI ranks:

.. code-block:: python

    # mpirun -n 16 python my_driver.py
    from repro.mpsim.mpi_adapter import mpi_available, run_under_mpi

    program = PAGeneralRankProgram(rank=COMM_WORLD.rank, ...)
    edges = run_under_mpi(program).local_edges()

Environments without mpi4py (like this repository's CI) can still exercise
everything except the actual transport: the packing/unpacking helpers and
the termination logic are transport-independent and unit-tested against the
in-process engine, and :func:`run_under_mpi` raises a clear error when
mpi4py is missing.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.mpsim.errors import MPSimError

__all__ = [
    "mpi_available",
    "pack_outbox",
    "unpack_inbox",
    "quiesced",
    "run_under_mpi",
]


def mpi_available() -> bool:
    """True when mpi4py can be imported (never in this repo's offline CI)."""
    try:  # pragma: no cover - depends on environment
        import mpi4py  # noqa: F401

        return True
    except ImportError:
        return False


def pack_outbox(
    outbox: dict[int, list[np.ndarray]] | None, size: int
) -> list[np.ndarray | None]:
    """Convert a rank program's outbox into an alltoall send list.

    Element ``j`` is the concatenated record array destined for rank ``j``
    (``None`` when there is nothing to send) — the shape
    ``mpi4py.Comm.alltoall`` expects.
    """
    sends: list[np.ndarray | None] = [None] * size
    if not outbox:
        return sends
    for dest, payloads in outbox.items():
        if not 0 <= dest < size:
            raise MPSimError(f"invalid destination {dest}")
        chunks = [arr for arr in payloads if len(arr)]
        if chunks:
            sends[dest] = np.concatenate(chunks)
    return sends


def unpack_inbox(received: Sequence[np.ndarray | None]) -> list[tuple[int, np.ndarray]]:
    """Convert an alltoall receive list into the inbox format programs expect."""
    inbox = []
    for src, arr in enumerate(received):
        if arr is not None and len(arr):
            inbox.append((src, arr))
    return inbox


def quiesced(local_done: bool, local_sent_any: bool, allreduce_and, allreduce_or) -> bool:
    """Global-termination decision from local state + two reductions.

    ``allreduce_and`` / ``allreduce_or`` are callables mapping a local bool
    to the global AND/OR — injected so the logic is testable without MPI.
    The run is over when everyone is done *and* nobody sent anything this
    superstep (mirroring the in-process engine's rule).
    """
    return allreduce_and(local_done) and not allreduce_or(local_sent_any)


def run_under_mpi(program: Any, comm: Any = None, max_supersteps: int = 10_000) -> Any:
    """Drive one rank's program under mpi4py; returns the program.

    Must be launched with ``mpiexec``; every rank constructs its own program
    (rank ``comm.rank`` of ``comm.size``) and calls this function.
    """
    if comm is None:  # pragma: no cover - requires an MPI launch
        if not mpi_available():
            raise MPSimError(
                "mpi4py is not installed; run_under_mpi needs a real MPI "
                "environment (use BSPEngine or MultiprocessingBSPEngine locally)"
            )
        from mpi4py import MPI

        comm = MPI.COMM_WORLD

    size = comm.Get_size()
    from repro.mpsim.bsp import BSPRankContext
    from repro.mpsim.costmodel import CostModel
    from repro.mpsim.stats import WorldStats

    ctx = BSPRankContext(comm.Get_rank(), size, WorldStats.for_size(size), CostModel())
    inbox: list[tuple[int, np.ndarray]] = []
    for _ in range(max_supersteps):
        outbox = program.step(ctx, inbox)
        sends = pack_outbox(outbox, size)
        received = comm.alltoall(sends)
        inbox = unpack_inbox(received)
        sent_any = any(s is not None for s in sends)
        if quiesced(
            bool(program.done) and not inbox,
            sent_any,
            lambda flag: comm.allreduce(flag, op=_mpi_and(comm)),
            lambda flag: comm.allreduce(flag, op=_mpi_or(comm)),
        ):
            return program
    raise MPSimError(f"exceeded max_supersteps={max_supersteps} under MPI")


def _mpi_and(comm):  # pragma: no cover - requires mpi4py
    from mpi4py import MPI

    return MPI.LAND


def _mpi_or(comm):  # pragma: no cover - requires mpi4py
    from mpi4py import MPI

    return MPI.LOR
