"""Collective operations layered on simulated point-to-point messages.

Every collective here is a generator meant to be driven with ``yield from``
inside a rank program.  They are implemented the way MPI libraries implement
them — trees and exchanges of point-to-point messages — so the simulator's
per-rank traffic counters and virtual clocks reflect realistic collective
costs:

* :func:`bcast` / :func:`reduce` use binomial trees (``log2 P`` rounds);
* :func:`gather` / :func:`scatter` are flat (root-centric), as for small
  payloads in practice;
* :func:`allgather` and :func:`allreduce` compose the above;
* :func:`alltoall` posts ``P - 1`` sends then receives ``P - 1`` messages.

Tags are drawn from a reserved space (:data:`~repro.mpsim.datatypes.TAG_COLLECTIVE`)
offset by an operation code so concurrent user traffic cannot be matched by
a collective receive.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Generator, TYPE_CHECKING

from repro.mpsim.datatypes import TAG_COLLECTIVE
from repro.mpsim.errors import CollectiveMismatchError
from repro.mpsim.runtime import Message, Recv

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpsim.comm import Comm

__all__ = [
    "bcast",
    "gather",
    "scatter",
    "allgather",
    "reduce",
    "allreduce",
    "alltoall",
]

_OP_BCAST = TAG_COLLECTIVE + 1
_OP_GATHER = TAG_COLLECTIVE + 2
_OP_SCATTER = TAG_COLLECTIVE + 3
_OP_REDUCE = TAG_COLLECTIVE + 4
_OP_ALLTOALL = TAG_COLLECTIVE + 5


def _vrank(rank: int, root: int, size: int) -> int:
    """Virtual rank with ``root`` mapped to 0 (standard tree trick)."""
    return (rank - root) % size


def _arank(vrank: int, root: int, size: int) -> int:
    return (vrank + root) % size


def bcast(comm: "Comm", value: Any, root: int = 0) -> Generator[Any, Message, Any]:
    """Binomial-tree broadcast; returns the root's value on every rank.

    MPICH-style: relative rank ``v`` receives from ``v ^ mask`` where ``mask``
    is ``v``'s lowest set bit, then forwards to ``v + mask'`` for every
    ``mask' < mask`` (scanning downward), giving ``ceil(log2 P)`` rounds.
    """
    size = comm.size
    if not 0 <= root < size:
        raise CollectiveMismatchError(f"bcast root {root} outside [0, {size})")
    v = _vrank(comm.rank, root, size)
    mask = 1
    while mask < size:
        if v & mask:
            parent = _arank(v ^ mask, root, size)
            msg = yield Recv(source=parent, tag=_OP_BCAST)
            value = msg.payload
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = v + mask
        if child < size:
            comm.send(_arank(child, root, size), value, tag=_OP_BCAST)
        mask >>= 1
    return value


def gather(comm: "Comm", value: Any, root: int = 0) -> Generator[Any, Message, list[Any] | None]:
    """Flat gather: everyone sends to root; root returns the rank-ordered list."""
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = value
        for _ in range(comm.size - 1):
            msg = yield Recv(tag=_OP_GATHER)
            out[msg.source] = msg.payload
        return out
    comm.send(root, value, tag=_OP_GATHER)
    return None
    yield  # pragma: no cover - makes non-root branch a generator too


def scatter(comm: "Comm", values: list[Any] | None, root: int = 0) -> Generator[Any, Message, Any]:
    """Flat scatter from root; returns this rank's element."""
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise CollectiveMismatchError(
                f"scatter at root needs exactly {comm.size} values, got "
                f"{None if values is None else len(values)}"
            )
        for dest in range(comm.size):
            if dest != root:
                comm.send(dest, values[dest], tag=_OP_SCATTER)
        return values[root]
    msg = yield Recv(source=root, tag=_OP_SCATTER)
    return msg.payload


def allgather(comm: "Comm", value: Any) -> Generator[Any, Message, list[Any]]:
    """Gather to rank 0, then broadcast the assembled list."""
    gathered = yield from gather(comm, value, root=0)
    result = yield from bcast(comm, gathered, root=0)
    return result


def reduce(
    comm: "Comm",
    value: Any,
    op: Callable[[Any, Any], Any] | None = None,
    root: int = 0,
) -> Generator[Any, Message, Any]:
    """Binomial-tree reduction; ``op`` defaults to ``operator.add``.

    Only the root receives the reduced value; other ranks get ``None``.
    The combine order is deterministic (children combined in virtual-rank
    order), so non-commutative ``op`` behaves reproducibly.
    """
    op = op or operator.add
    size = comm.size
    v = _vrank(comm.rank, root, size)
    acc = value
    mask = 1
    while mask < size:
        if v & mask:
            comm.send(_arank(v & ~mask, root, size), acc, tag=_OP_REDUCE)
            return None
        partner = v | mask
        if partner < size:
            msg = yield Recv(source=_arank(partner, root, size), tag=_OP_REDUCE)
            acc = op(acc, msg.payload)
        mask <<= 1
    return acc


def allreduce(
    comm: "Comm", value: Any, op: Callable[[Any, Any], Any] | None = None
) -> Generator[Any, Message, Any]:
    """Reduce to rank 0 then broadcast the result to everyone."""
    reduced = yield from reduce(comm, value, op, root=0)
    result = yield from bcast(comm, reduced, root=0)
    return result


def alltoall(comm: "Comm", values: list[Any]) -> Generator[Any, Message, list[Any]]:
    """Personalised exchange: element ``j`` of ``values`` goes to rank ``j``."""
    if len(values) != comm.size:
        raise CollectiveMismatchError(
            f"alltoall needs exactly {comm.size} values, got {len(values)}"
        )
    out: list[Any] = [None] * comm.size
    out[comm.rank] = values[comm.rank]
    for dest in range(comm.size):
        if dest != comm.rank:
            comm.send(dest, values[dest], tag=_OP_ALLTOALL)
    for _ in range(comm.size - 1):
        msg = yield Recv(tag=_OP_ALLTOALL)
        out[msg.source] = msg.payload
    return out
