"""Peer-to-peer superstep exchange fabric for the multiprocessing backend.

The coordinator exchange (`repro.mpsim.mp_backend`) funnels every superstep
through the parent process: each worker ships its outbox descriptors up a
pipe, the parent routes them and mails each worker its inbox.  That is two
pipe hops and a full parent wake-up per rank per superstep — a serial
bottleneck no real ``alltoallv`` has.

:class:`P2PFabric` removes the parent from the data path.  It is created
*before* the workers fork and inherited by all of them, and provides three
shared facilities:

**Mailbox matrix.**  A single ``multiprocessing.shared_memory`` segment
holds one fixed-size slot per ``(src, dst, parity)`` triple.  In superstep
``s`` rank ``src`` writes, for every ``dst``, a small pickled list of
payload descriptors (produced by the shm payload writer) into slot
``(src, dst, s % 2)``; after the barrier, rank ``dst`` reads column
``(*, dst, s % 2)`` in source order.  Slots are double-buffered by superstep
parity exactly like the payload segments: superstep ``s + 1`` writes the
other parity, and parity ``s % 2`` is not rewritten until superstep
``s + 2`` — by which time every reader of superstep ``s`` has passed the
``s + 1`` barrier, so a single barrier per superstep is sufficient.

**Control arrays.**  Parity-indexed per-rank ``done`` flags, sent-record
counters, and virtual step times.  Every rank publishes its triple before
the barrier and reads everyone's after it, so all ranks take the same
termination decision on the same superstep — distributed termination
detection with shared counters instead of a coordinator round.

**Barrier.**  A ``multiprocessing.Barrier`` (semaphore-backed, so waiting
ranks *block* instead of spinning — essential on oversubscribed hosts where
``P`` exceeds the core count).  A crashing rank aborts the barrier so its
peers fail fast with :class:`~repro.mpsim.errors.MPSimError` instead of
waiting out the timeout.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

import numpy as np

from repro.mpsim.errors import MPSimError, RankFailure

try:  # pragma: no cover - import guard exercised only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = ["P2PFabric", "MailboxOverflow"]

#: bytes reserved at the head of each mailbox slot for the blob length
_HEADER = 8
_LEN = struct.Struct("<q")


class MailboxOverflow(MPSimError):
    """A superstep's descriptor blob outgrew its fixed mailbox slot.

    Descriptors are tiny (a segment name, offset, count, and dtype per
    payload array), so the default slot comfortably fits hundreds of arrays
    per destination per superstep; programs that somehow exceed it should
    raise the engine's ``mailbox_slot_bytes``.
    """


class P2PFabric:
    """Shared-memory exchange fabric connecting ``size`` worker ranks.

    Create in the parent before forking; every worker uses the inherited
    object directly.  The parent calls :meth:`close` (with ``unlink=True``)
    once after the workers are gone.

    Parameters
    ----------
    size:
        Number of ranks.
    slot_bytes:
        Capacity of one ``(src, dst, parity)`` descriptor slot, excluding
        the length header.
    timeout:
        Barrier wait timeout in wall seconds; a rank that waits this long
        concludes the world is wedged and raises.
    """

    def __init__(self, size: int, slot_bytes: int = 8192, timeout: float = 120.0) -> None:
        if _shared_memory is None:  # pragma: no cover - platform guard
            raise MPSimError("p2p exchange requires multiprocessing.shared_memory")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        import multiprocessing as mp

        self.size = size
        self.slot_bytes = int(slot_bytes)
        self.timeout = timeout
        self._slot = _HEADER + self.slot_bytes
        self._mail = _shared_memory.SharedMemory(
            create=True, size=max(size * size * 2 * self._slot, 1)
        )
        # control block: done flags, sent-record counters, virtual step
        # times — each [2][size], indexed by superstep parity — plus one
        # [size] barrier-progress row (highest superstep whose barrier each
        # rank has *reached*, for attributing a broken barrier to the
        # rank(s) that never arrived)
        self._ctl = _shared_memory.SharedMemory(create=True, size=2 * size * 8 * 3 + size * 8)
        self._done = np.frombuffer(self._ctl.buf, np.int64, 2 * size, 0).reshape(2, size)
        self._traffic = np.frombuffer(
            self._ctl.buf, np.int64, 2 * size, 2 * size * 8
        ).reshape(2, size)
        self._times = np.frombuffer(
            self._ctl.buf, np.float64, 2 * size, 4 * size * 8
        ).reshape(2, size)
        self._progress = np.frombuffer(
            self._ctl.buf, np.int64, size, 6 * size * 8
        )
        self._done[:] = 0
        self._traffic[:] = 0
        self._times[:] = 0.0
        self._progress[:] = -1
        self.barrier = mp.get_context("fork").Barrier(size)

    # ------------------------------------------------------------- mailboxes
    def _offset(self, src: int, dst: int, parity: int) -> int:
        return ((src * self.size + dst) * 2 + parity) * self._slot

    def post(self, src: int, superstep: int, meta: dict[int, list[Any]]) -> None:
        """Publish rank ``src``'s outbox descriptors for ``superstep``.

        ``meta`` maps destination rank to a list of payload descriptors.
        Every slot in the row is (re)written — destinations absent from
        ``meta`` get an empty marker — so readers never see stale parity
        data, even across :class:`~repro.mpsim.pool.WorkerPool` jobs.
        """
        parity = superstep % 2
        buf = self._mail.buf
        for dst in range(self.size):
            if dst == src:
                continue
            off = self._offset(src, dst, parity)
            descs = meta.get(dst)
            if not descs:
                _LEN.pack_into(buf, off, 0)
                continue
            blob = pickle.dumps(descs, protocol=pickle.HIGHEST_PROTOCOL)
            if len(blob) > self.slot_bytes:
                raise MailboxOverflow(
                    f"rank {src} -> {dst} descriptor blob is {len(blob)} bytes; "
                    f"mailbox slots hold {self.slot_bytes} (raise mailbox_slot_bytes)"
                )
            _LEN.pack_into(buf, off, len(blob))
            buf[off + _HEADER : off + _HEADER + len(blob)] = blob

    def collect(self, dst: int, superstep: int) -> list[tuple[int, Any]]:
        """Read rank ``dst``'s inbox descriptors for ``superstep``.

        Returns ``(source, descriptor)`` pairs ordered by source rank then
        send order — the identical delivery order the in-process engine and
        the coordinator paths produce, which is what keeps all transports
        bit-identical.
        """
        parity = superstep % 2
        buf = self._mail.buf
        inbox: list[tuple[int, Any]] = []
        for src in range(self.size):
            if src == dst:
                continue
            off = self._offset(src, dst, parity)
            (length,) = _LEN.unpack_from(buf, off)
            if length == 0:
                continue
            descs = pickle.loads(bytes(buf[off + _HEADER : off + _HEADER + length]))
            inbox.extend((src, desc) for desc in descs)
        return inbox

    # ----------------------------------------------------- termination state
    def publish(
        self, rank: int, superstep: int, done: bool, sent_records: int, step_time: float
    ) -> None:
        """Publish ``rank``'s pre-barrier status triple for ``superstep``."""
        parity = superstep % 2
        self._done[parity, rank] = 1 if done else 0
        self._traffic[parity, rank] = sent_records
        self._times[parity, rank] = step_time

    def quiescent(self, superstep: int) -> bool:
        """Post-barrier global termination test for ``superstep``.

        True when every rank reported ``done`` and no rank sent a record —
        the same decision the in-process engine's coordinator takes, computed
        identically by every rank from the same shared counters.
        """
        parity = superstep % 2
        return bool(self._done[parity].all()) and int(self._traffic[parity].sum()) == 0

    def max_step_time(self, superstep: int) -> float:
        """Post-barrier: the superstep's virtual duration (max over ranks)."""
        return float(self._times[superstep % 2].max())

    def traffic(self, superstep: int) -> int:
        """Post-barrier: total records sent world-wide in ``superstep``."""
        return int(self._traffic[superstep % 2].sum())

    # --------------------------------------------------------------- barrier
    def wait(self, rank: int | None = None, superstep: int | None = None) -> None:
        """Block until all ranks arrive.

        When the caller identifies itself (``rank``/``superstep``), its
        arrival is recorded in the shared progress row *before* waiting, so
        a broken barrier can be attributed: the raised
        :class:`~repro.mpsim.errors.RankFailure` names the lowest rank whose
        progress never reached this superstep's barrier — the casualty, not
        the survivor that noticed.  Without attribution context (or when all
        ranks did arrive and the barrier was aborted externally) a plain
        :class:`MPSimError` is raised.
        """
        import threading

        if rank is not None and superstep is not None:
            self._progress[rank] = superstep
        try:
            self.barrier.wait(self.timeout)
        except threading.BrokenBarrierError:
            if superstep is not None:
                missing = [
                    r for r in range(self.size) if int(self._progress[r]) < superstep
                ]
                if missing:
                    raise RankFailure(
                        missing[0],
                        MPSimError(
                            f"rank(s) {missing} never reached the superstep-"
                            f"{superstep} barrier (died or wedged)"
                        ),
                        superstep=superstep,
                    )
            raise MPSimError("p2p barrier broken (a peer rank aborted or timed out)")

    def abort(self) -> None:
        """Break the barrier so peer ranks fail fast instead of waiting."""
        try:
            self.barrier.abort()
        except Exception:  # pragma: no cover - barrier already torn down
            pass

    def reset(self) -> None:
        """Restore a clean fabric after an aborted job.

        Resets the barrier and zeroes every control row so the next job
        starts from the same state a fresh fabric would — used by
        :class:`~repro.mpsim.pool.WorkerPool` when healing after a casualty.
        Only call once every worker has acknowledged abandoning the failed
        job; a straggler still inside ``wait()`` would re-break the barrier.
        """
        try:
            self.barrier.reset()
        except Exception:  # pragma: no cover - barrier already torn down
            pass
        self._done[:] = 0
        self._traffic[:] = 0
        self._times[:] = 0.0
        self._progress[:] = -1

    # --------------------------------------------------------------- cleanup
    def close(self, unlink: bool = False) -> None:
        """Detach (and with ``unlink=True``, destroy) the shared segments."""
        # drop the numpy views first: SharedMemory.close() refuses while
        # exported buffers exist
        self._done = self._traffic = self._times = self._progress = None
        for seg in (self._mail, self._ctl):
            if seg is None:
                continue
            try:
                seg.close()
                if unlink:
                    seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._mail = self._ctl = None
