"""Shared-memory worker heartbeats for the multiprocessing backend.

When a worker process dies, its OS sentinel tells the coordinator *that* it
died within one liveness poll — but not *where* in the run it was.  For
fault attribution (and for marking an injected crash as consumed on the
coordinator's copy of the plan) the coordinator also needs the superstep the
rank was executing when it stopped beating.

:class:`Heartbeats` is a tiny ``multiprocessing.RawArray`` of
``(superstep, monotonic-timestamp)`` doubles per rank, created in the parent
before forking and inherited by every worker.  A worker calls :meth:`beat`
at the top of each superstep; the coordinator reads :meth:`last_superstep`
when it attributes a death, and :meth:`age` exposes staleness for
liveness-style diagnostics.  Lock-free by design: each rank writes only its
own pair, the coordinator only reads, and a torn read costs at most an
off-by-one superstep in an error message.
"""

from __future__ import annotations

import time
from multiprocessing import RawArray

__all__ = ["Heartbeats"]


class Heartbeats:
    """Per-rank ``(superstep, timestamp)`` heartbeat board for ``size`` ranks."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.size = size
        # flat [superstep0, time0, superstep1, time1, ...]; RawArray is
        # fork-inherited without pickling and needs no lock (single writer
        # per slot pair)
        self._arr = RawArray("d", 2 * size)
        for r in range(size):
            self._arr[2 * r] = -1.0
            self._arr[2 * r + 1] = time.monotonic()

    def beat(self, rank: int, superstep: int) -> None:
        """Record that ``rank`` is alive and entering ``superstep``."""
        self._arr[2 * rank] = float(superstep)
        self._arr[2 * rank + 1] = time.monotonic()

    def last_superstep(self, rank: int) -> int | None:
        """The last superstep ``rank`` reported entering, or None if never."""
        s = self._arr[2 * rank]
        return None if s < 0 else int(s)

    def age(self, rank: int) -> float:
        """Seconds since ``rank`` last beat (since creation if it never did)."""
        return time.monotonic() - self._arr[2 * rank + 1]
