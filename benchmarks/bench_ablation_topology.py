"""Ablation — interconnect topology and partition locality.

The paper's testbed has (approximately) full bisection bandwidth, so
message *destination* never matters.  This ablation asks what changes on
locality-sensitive networks: we re-run the generation under ring, 2-D
torus, and two-level fat-tree topologies with a stiff hop penalty and
compare the simulated times of the partitioning schemes.

Expected shape: RRP's advantage persists (its win is load balance, which no
topology changes), but all schemes slow on high-diameter networks, and
consecutive schemes — whose requests flow strictly from high ranks to low
ranks — gain slightly on the ring relative to their flat-network selves
because much of their traffic is short-range.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.core.parallel_pa_general import PAGeneralRankProgram
from repro.core.partitioning import make_partition
from repro.mpsim.bsp import BSPEngine
from repro.mpsim.topology import FatTreeTopology, FlatTopology, RingTopology, Torus2D
from repro.rng import StreamFactory

N = 30_000
X = 6
P = 32
SEED = 31
PENALTY = 2.0

TOPOLOGIES = {
    "flat": FlatTopology(P, hop_penalty=PENALTY),
    "fat-tree (radix 8)": FatTreeTopology(P, radix=8, hop_penalty=PENALTY),
    "torus 4x8": Torus2D(4, 8, hop_penalty=PENALTY),
    "ring": RingTopology(P, hop_penalty=PENALTY),
}


def _run(scheme: str, topology) -> float:
    part = make_partition(scheme, N, P)
    factory = StreamFactory(SEED)
    programs = [
        PAGeneralRankProgram(r, part, X, 0.5, factory.stream(r)) for r in range(P)
    ]
    engine = BSPEngine(P, topology=topology)
    engine.run(programs)
    return engine.simulated_time


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for name, topo in TOPOLOGIES.items():
        t_ucp = _run("ucp", topo)
        t_rrp = _run("rrp", topo)
        rows.append((name, f"{t_ucp * 1e3:.2f}", f"{t_rrp * 1e3:.2f}",
                     round(t_ucp / t_rrp, 2)))
    return rows


def test_topology_report(report, sweep):
    report.emit(format_table(
        ["topology", "UCP T_p (ms)", "RRP T_p (ms)", "UCP/RRP"],
        sweep,
        title=f"Ablation: interconnect topology, n={N:.0e}, x={X}, P={P}, "
              f"hop penalty {PENALTY}",
    ))


def test_rrp_wins_on_every_topology(sweep):
    for name, _t_ucp, _t_rrp, ratio in sweep:
        assert ratio > 1.0, name


def test_high_diameter_costs_more(sweep):
    times = {name: float(t_rrp) for name, _t, t_rrp, _r in sweep}
    assert times["ring"] > times["flat"]
    assert times["torus 4x8"] >= times["fat-tree (radix 8)"] * 0.9


@pytest.mark.benchmark(group="ablation-topology")
def test_bench_ring_run(benchmark):
    t = benchmark.pedantic(
        lambda: _run("rrp", TOPOLOGIES["ring"]), rounds=1, iterations=1
    )
    assert t > 0
