"""Copy-model generality — the exponent varies with p (Section 3.1).

The paper adopts the copy model because it is "more general than the BA
model": per Kumar et al., the degree exponent of the ``x = 1`` copy model is

``gamma(p) = 1 + 1 / (1 - p)``   (γ = 3 at p = 1/2, the BA case).

This benchmark sweeps ``p`` on the *parallel* generator and fits the
exponent, verifying the claimed dependence — evidence the parallelisation
preserves the model's full parameter space, not just the BA point.
"""

import numpy as np
import pytest

from repro import generate
from repro.bench.reporting import format_table
from repro.graph.powerlaw import fit_powerlaw

N = 400_000
PS = [0.3, 0.5, 0.7]
RANKS = 16


def theory_gamma(p: float) -> float:
    return 1.0 + 1.0 / (1.0 - p)


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for p in PS:
        r = generate(n=N, x=1, p=p, ranks=RANKS, scheme="rrp", seed=17)
        # KS-minimising k_min: steep tails (large p) need a deeper cutoff
        # before the asymptotic power law sets in.
        fit = fit_powerlaw(r.degrees())
        rows.append((p, round(theory_gamma(p), 2), round(fit.gamma, 2),
                     round(fit.ks_distance, 4)))
    return rows


def test_exponent_report(report, sweep):
    report.emit(format_table(
        ["p", "theory gamma = 1 + 1/(1-p)", "fitted gamma (MLE)", "KS"],
        sweep,
        title=f"Copy-model exponent sweep, n={N:.0e}, x=1, P={RANKS} "
              "(Section 3.1: gamma depends on p)",
    ))


def test_gamma_tracks_theory(sweep):
    """Fitted exponents track 1 + 1/(1-p) within finite-size tolerance.

    Steep tails (p = 0.7, gamma > 4) are known to be under-estimated at
    finite n because the extreme tail is cut off; the relative band below
    reflects that.
    """
    for p, theory, fitted, _ks in sweep:
        assert abs(fitted - theory) < 0.2 * theory, (p, theory, fitted)


def test_gamma_monotone_in_p(sweep):
    fitted = [row[2] for row in sweep]
    assert fitted == sorted(fitted)


@pytest.mark.benchmark(group="exponent")
def test_bench_one_point(benchmark):
    r = benchmark.pedantic(
        lambda: generate(n=100_000, x=1, p=0.3, ranks=RANKS, seed=17),
        rounds=1, iterations=1,
    )
    assert r.validate().ok
