"""Section 4.5 — generating the 50-billion-edge network.

Paper result: n = 10^9, x = 5 (50 B edges) generated in 123 s on 768 ranks
with RRP.  We cannot hold 50 B edges; instead we (1) generate the largest
practical instance end-to-end to demonstrate the pipeline, and (2)
extrapolate the cost model from a measured sample to the paper's target
configuration, reporting our estimate next to the paper's 123 s.

Regenerates: the Section 4.5 headline row (paper vs model estimate).
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.scaling import extrapolate_large_network


@pytest.fixture(scope="module")
def extrapolation():
    return extrapolate_large_network(
        n_target=10**9, x_target=5, ranks_target=768,
        scheme="rrp", n_sample=400_000, seed=0,
    )


def test_large_network_report(report, extrapolation):
    e = extrapolation
    rows = [
        ("sample run", f"{e['n_sample']:.0e}", f"{e['edges_sample']:.1e}",
         int(e["ranks_sample"]), f"{e['simulated_time_sample']:.3f}"),
        ("target (model estimate)", f"{e['n_target']:.0e}", f"{e['edges_target']:.0e}",
         int(e["ranks_target"]), f"{e['estimated_time_target']:.1f}"),
        ("target (paper, measured)", "1e+09", "5e+09", 768,
         f"{e['paper_time_target']:.1f}"),
    ]
    report.emit(format_table(
        ["configuration", "n", "edges", "ranks", "time (s)"],
        rows,
        title="Section 4.5: 50-billion-edge generation (RRP)",
    ))


def test_estimate_same_order_of_magnitude(extrapolation):
    est = extrapolation["estimated_time_target"]
    assert 12.3 <= est <= 1230.0, (
        f"model estimate {est:.1f}s should be within 10x of the paper's 123s"
    )


@pytest.mark.benchmark(group="large")
def test_bench_largest_practical(benchmark):
    """End-to-end generation of the largest instance we run in CI."""
    from repro import generate

    result = benchmark.pedantic(
        lambda: generate(n=400_000, x=5, ranks=96, scheme="rrp", seed=1),
        rounds=1, iterations=1,
    )
    assert len(result.edges) == 5 * (5 - 1) // 2 + (400_000 - 5) * 5
    assert result.validate().ok
