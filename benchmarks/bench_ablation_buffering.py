"""Ablation — message buffering (Section 3.5, "Message Buffering").

The paper argues buffering is essential: without it "there can be a large
number of outstanding messages in the system".  This ablation runs the
literal event-driven Algorithm 3.1 with buffering disabled and with
increasing buffer capacities, measuring MPI-level sends, and contrasts the
hazardous hold-until-full policy with the safe flush-on-idle policy.

Regenerates: the buffering design-choice table DESIGN.md calls out.
"""

import pytest

from repro.bench.reporting import format_table
from repro.core.event_driven import run_event_driven_pa_x1
from repro.core.partitioning import make_partition
from repro.mpsim.errors import DeadlockError

N = 3_000
P = 8
CAPACITIES = [None, 4, 16, 64, 256]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    part = make_partition("rrp", N, P)
    for cap in CAPACITIES:
        _, sim = run_event_driven_pa_x1(
            N, part, seed=0, buffer_capacity=cap, flush_on_idle=True
        )
        rows.append((
            "unbuffered" if cap is None else cap,
            sim.stats.total_messages,
            sim.stats.total_bytes,
            f"{sim.makespan * 1e3:.2f}",
        ))
    return rows


def test_buffering_report(report, sweep):
    report.emit(format_table(
        ["buffer capacity", "MPI sends", "bytes", "sim time (ms)"],
        sweep,
        title=f"Ablation: message buffering, n={N}, P={P}, RRP "
              "(paper: buffering cuts outstanding messages and overhead)",
    ))


def test_buffering_reduces_sends_monotonically(sweep):
    sends = [row[1] for row in sweep]
    assert sends == sorted(sends, reverse=True)
    assert sends[0] > 5 * sends[-1]


def test_hazardous_policy_deadlock_rate(report):
    """Hold-until-full (no idle flush) deadlocks under RRP; the paper's
    every-group rule (subsumed by flush-on-idle) never does."""
    part = make_partition("rrp", N, P)
    deadlocks = 0
    trials = 5
    for seed in range(trials):
        try:
            run_event_driven_pa_x1(
                N, part, seed=seed, buffer_capacity=1 << 20, flush_on_idle=False
            )
        except DeadlockError:
            deadlocks += 1
    report.emit(
        f"hold-until-full policy: {deadlocks}/{trials} runs deadlocked; "
        "flush-on-idle policy: 0 deadlocks (verified in tests/core/test_deadlock.py)"
    )
    assert deadlocks > 0


@pytest.mark.benchmark(group="ablation-buffering")
def test_bench_buffered_run(benchmark):
    part = make_partition("rrp", N, P)
    edges, _ = benchmark.pedantic(
        lambda: run_event_driven_pa_x1(N, part, seed=1, buffer_capacity=64),
        rounds=1, iterations=1,
    )
    assert len(edges) == N - 1
