"""Figure 5 — strong scaling of the three partitioning schemes.

Paper setting: n = 10^9, x = 6, P = 1..768, speedup = T_s / T_p measured on
the Sandy Bridge / QDR InfiniBand cluster.  Scaled-down setting: n = 10^5,
x = 6, P = 1..256 on the simulated cluster; T_p is the cost-model virtual
time of the fully-executed algorithm and T_s the sequential copy model's.

Reproduction target (shape): speedups grow near-linearly with P, and
LCP ≈ RRP dominate UCP (the paper attributes UCP's gap to load imbalance).

Regenerates: the Figure 5 speedup-vs-P series for UCP, LCP, RRP.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.scaling import strong_scaling

N = 100_000
X = 6
RANKS = [1, 2, 4, 8, 16, 32, 64, 128, 256]
SCHEMES = ("ucp", "lcp", "rrp")


@pytest.fixture(scope="module")
def curves():
    return strong_scaling(N, X, RANKS, schemes=SCHEMES, seed=0)


def test_fig5_report(report, curves):
    rows = []
    for P_idx, P in enumerate(RANKS):
        row = [P]
        for scheme in SCHEMES:
            row.append(round(curves[scheme][P_idx].speedup, 2))
        rows.append(tuple(row))
    report.emit(format_table(
        ["P", "UCP speedup", "LCP speedup", "RRP speedup"],
        rows,
        title=f"Figure 5: strong scaling, n={N:.0e}, x={X} "
              "(paper: almost-linear speedup; LCP/RRP above UCP)",
    ))


def test_fig5_speedup_grows(curves):
    for scheme in SCHEMES:
        speedups = [p.speedup for p in curves[scheme]]
        # monotone growth over the sweep (tolerate tiny local dips)
        assert speedups[-1] > speedups[0]
        assert speedups[-1] > 8.0


def test_fig5_scheme_ordering(curves):
    """At high P, UCP trails the balanced schemes (the paper's key contrast)."""
    last = {s: curves[s][-1].speedup for s in SCHEMES}
    assert last["rrp"] > last["ucp"]
    assert last["lcp"] > last["ucp"]


def test_fig5_imbalance_explains_gap(curves):
    """UCP's imbalance at high P far exceeds RRP's (mechanism check)."""
    assert curves["ucp"][-1].imbalance > 1.5 * curves["rrp"][-1].imbalance


@pytest.mark.benchmark(group="fig5")
def test_bench_single_point(benchmark):
    from repro import generate

    result = benchmark.pedantic(
        lambda: generate(n=N, x=X, ranks=64, scheme="rrp", seed=0),
        rounds=1, iterations=1,
    )
    assert result.supersteps > 0
