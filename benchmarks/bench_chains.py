"""Section 3.4 / Theorem 3.3 — dependency-chain length statistics.

Not a figure in the paper, but the analysis its performance rests on:
``E[L_t] <= log n``, average ``<= 1/p``, ``L_max = O(log n)`` w.h.p.  This
benchmark measures the empirical chain lengths across n and p and compares
them to the bounds, and also records the BSP superstep counts (which the
chain lengths control).

Regenerates: the Theorem 3.3 bound table.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.core.chains import chain_statistics

NS = [10_000, 100_000, 1_000_000]
PS = [0.3, 0.5, 0.8]


@pytest.fixture(scope="module")
def table():
    rows = []
    for n in NS:
        for p in PS:
            st = chain_statistics(n, p=p, seed=0)
            rows.append((n, p, round(st.mean, 3), round(1 / p, 2),
                         st.max, round(5 * np.log(n), 1)))
    return rows


def test_chains_report(report, table):
    report.emit(format_table(
        ["n", "p", "mean L", "bound 1/p", "max L", "bound 5 ln n"],
        table,
        title="Theorem 3.3: dependency-chain lengths vs bounds",
    ))


def test_bounds_hold_everywhere(table):
    for n, p, mean, bound_mean, mx, bound_max in table:
        assert mean <= bound_mean * 1.05
        assert mx <= bound_max


def test_supersteps_track_chain_length(report):
    """BSP supersteps grow like the max dependency chain, i.e. O(log n)."""
    from repro import generate

    rows = []
    for n in (1_000, 10_000, 100_000):
        r = generate(n=n, x=1, ranks=16, scheme="rrp", seed=1)
        st = chain_statistics(n, seed=1)
        rows.append((n, r.supersteps, st.max, round(np.log(n), 1)))
    report.emit(format_table(
        ["n", "BSP supersteps", "max chain", "ln n"],
        rows,
        title="Supersteps vs dependency-chain length (both O(log n))",
    ))
    supersteps = [row[1] for row in rows]
    assert supersteps[-1] <= supersteps[0] + 3 * np.log(100)


@pytest.mark.benchmark(group="chains")
def test_bench_chain_lengths_1m(benchmark):
    st = benchmark.pedantic(
        lambda: chain_statistics(1_000_000, seed=2), rounds=1, iterations=1
    )
    assert st.max_within_bounds
