"""Figure 3 — exact Eqn-10 node distribution vs the LCP linear approximation.

Paper setting: the node-count-per-processor curve that motivates linear
consecutive partitioning.  We solve the nonlinear balanced-load system
exactly (scipy root-finding; the paper calls this "prohibitively large" at
scale and approximates it) and overlay the fitted arithmetic progression.

Regenerates: the two curves of Figure 3 as a table of nodes-per-rank.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.core.load_model import lcp_parameters, solve_balanced_boundaries

N = 1_000_000
P = 160


@pytest.fixture(scope="module")
def exact_sizes():
    return np.diff(solve_balanced_boundaries(N, P))


@pytest.fixture(scope="module")
def linear_sizes():
    return lcp_parameters(N, P).partition_sizes()


def test_fig3_report(report, exact_sizes, linear_sizes):
    sample = list(range(0, P, 16)) + [P - 1]
    rows = [
        (r, int(exact_sizes[r]), int(round(linear_sizes[r])),
         f"{abs(exact_sizes[r] - linear_sizes[r]) / exact_sizes[r]:.3%}")
        for r in sample
    ]
    report.emit(format_table(
        ["rank", "exact Eqn-10 nodes", "LCP linear nodes", "rel err"],
        rows,
        title=f"Figure 3: node distribution, n={N:.0e}, P={P} "
              "(paper: linear approximation tracks the exact solution)",
    ))
    rel = np.abs(exact_sizes - linear_sizes) / exact_sizes
    report.emit(f"median relative error: {np.median(rel):.3%}; "
                f"max: {rel.max():.3%}")
    assert np.median(rel) < 0.15


def test_fig3_shape_monotone_increasing(exact_sizes, linear_sizes):
    """Both curves increase with rank (low ranks get fewer nodes)."""
    assert (np.diff(exact_sizes) > 0).all()
    assert linear_sizes[0] < linear_sizes[-1]


def bench_solver(n, p):
    return solve_balanced_boundaries(n, p)


@pytest.mark.benchmark(group="fig3")
def test_bench_eqn10_solver(benchmark):
    """Cost of the 'prohibitive' exact solve at analysis scale."""
    bounds = benchmark.pedantic(bench_solver, args=(N, P), rounds=3, iterations=1)
    assert len(bounds) == P + 1


@pytest.mark.benchmark(group="fig3")
def test_bench_lcp_fit(benchmark):
    """The two-point linear fit the paper uses instead."""
    params = benchmark.pedantic(lcp_parameters, args=(N, P), rounds=3, iterations=1)
    assert params.d > 0
