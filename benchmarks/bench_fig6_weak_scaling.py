"""Figure 6 — weak scaling: fixed edges per rank, growing rank count.

Paper setting: 10^7 edges per processor, P = 16..768; runtime should stay
nearly constant for LCP/RRP and degrade for UCP.  Scaled-down setting:
5·10^4 edges per rank, P = 2..128.

Regenerates: the Figure 6 runtime-vs-P series for UCP, LCP, RRP.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.scaling import weak_scaling

EDGES_PER_RANK = 50_000
X = 6
RANKS = [2, 4, 8, 16, 32, 64, 128]
SCHEMES = ("ucp", "lcp", "rrp")


@pytest.fixture(scope="module")
def curves():
    return weak_scaling(EDGES_PER_RANK, X, RANKS, schemes=SCHEMES, seed=0)


def test_fig6_report(report, curves):
    rows = []
    for i, P in enumerate(RANKS):
        rows.append((
            P,
            curves["ucp"][i].n,
            f"{curves['ucp'][i].simulated_time * 1e3:.2f}",
            f"{curves['lcp'][i].simulated_time * 1e3:.2f}",
            f"{curves['rrp'][i].simulated_time * 1e3:.2f}",
        ))
    report.emit(format_table(
        ["P", "n", "UCP T_p (ms)", "LCP T_p (ms)", "RRP T_p (ms)"],
        rows,
        title=f"Figure 6: weak scaling, {EDGES_PER_RANK:.0e} edges/rank, x={X} "
              "(paper: LCP/RRP nearly constant; UCP grows)",
    ))


def test_fig6_rrp_nearly_constant(curves):
    times = [p.simulated_time for p in curves["rrp"]]
    assert max(times) / min(times) < 2.5


def test_fig6_ucp_degrades_relative_to_rrp(curves):
    """UCP's runtime at high P exceeds RRP's by a growing margin."""
    ratio_first = curves["ucp"][0].simulated_time / curves["rrp"][0].simulated_time
    ratio_last = curves["ucp"][-1].simulated_time / curves["rrp"][-1].simulated_time
    assert ratio_last > ratio_first


@pytest.mark.benchmark(group="fig6")
def test_bench_weak_point(benchmark):
    from repro import generate

    n = EDGES_PER_RANK * 32 // X
    result = benchmark.pedantic(
        lambda: generate(n=n, x=X, ranks=32, scheme="rrp", seed=0),
        rounds=1, iterations=1,
    )
    assert result.supersteps > 0
