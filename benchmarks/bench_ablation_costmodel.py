"""Ablation — what drives the scaling curves: load imbalance vs communication.

The simulated runtimes combine compute imbalance with message costs.  This
ablation re-runs the strong-scaling point sweep under the ``zero-latency``
preset (communication free — isolates pure load imbalance) and the
``slow-network`` preset (Ethernet-class — stresses the message terms),
showing that UCP's disadvantage is an imbalance effect (it persists with
free communication), which is the paper's Section 4.6 explanation.
"""

import pytest

from repro.bench.reporting import format_table
from repro.bench.scaling import strong_scaling
from repro.mpsim.costmodel import PRESETS

N = 60_000
X = 6
RANKS = [16, 64]


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for preset in ("sc13-sandybridge-qdr", "zero-latency", "slow-network"):
        out[preset] = strong_scaling(
            N, X, RANKS, schemes=("ucp", "rrp"), seed=0,
            cost_model=PRESETS[preset].cost,
        )
    return out


def test_costmodel_report(report, sweeps):
    rows = []
    for preset, curves in sweeps.items():
        for i, P in enumerate(RANKS):
            rows.append((
                preset, P,
                round(curves["ucp"][i].speedup, 2),
                round(curves["rrp"][i].speedup, 2),
                round(curves["rrp"][i].speedup / max(curves["ucp"][i].speedup, 1e-9), 2),
            ))
    report.emit(format_table(
        ["cost model", "P", "UCP speedup", "RRP speedup", "RRP/UCP"],
        rows,
        title=f"Ablation: machine model vs scheme gap, n={N:.0e}, x={X}",
    ))


def test_imbalance_gap_survives_free_communication(sweeps):
    """RRP > UCP even when messages cost nothing => it's load imbalance."""
    curves = sweeps["zero-latency"]
    assert curves["rrp"][-1].speedup > 1.2 * curves["ucp"][-1].speedup


def test_slow_network_hurts_everyone(sweeps):
    fast = sweeps["sc13-sandybridge-qdr"]
    slow = sweeps["slow-network"]
    for scheme in ("ucp", "rrp"):
        assert slow[scheme][-1].speedup < fast[scheme][-1].speedup
