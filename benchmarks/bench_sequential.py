"""Section 4.3 context — sequential generator comparison.

The paper states its C++ sequential implementation "outperforms the best
available implementation of BA model given in NetworkX".  We reproduce the
comparison in Python: our Batagelj–Brandes and copy-model implementations
against NetworkX's ``barabasi_albert_graph`` and the naive Θ(n²) strawman.

Regenerates: the sequential-throughput comparison (edges/second table).
"""

import time

import pytest

from repro.bench.reporting import format_table
from repro.seq.ba_naive import ba_naive
from repro.seq.batagelj_brandes import batagelj_brandes
from repro.seq.copy_model import copy_model, copy_model_x1

N = 100_000
X = 4


def _networkx_ba(n, x, seed):
    import networkx as nx

    return nx.barabasi_albert_graph(n, x, seed=seed)


@pytest.mark.benchmark(group="sequential-x4")
def test_bench_batagelj_brandes(benchmark):
    el = benchmark.pedantic(batagelj_brandes, args=(N,), kwargs={"x": X, "seed": 0},
                            rounds=2, iterations=1)
    assert len(el) > 0


@pytest.mark.benchmark(group="sequential-x4")
def test_bench_copy_model(benchmark):
    el = benchmark.pedantic(copy_model, args=(N,), kwargs={"x": X, "seed": 0},
                            rounds=2, iterations=1)
    assert len(el) > 0


@pytest.mark.benchmark(group="sequential-x4")
def test_bench_networkx(benchmark):
    pytest.importorskip("networkx")
    g = benchmark.pedantic(_networkx_ba, args=(N, X, 0), rounds=2, iterations=1)
    assert g.number_of_nodes() == N


@pytest.mark.benchmark(group="sequential-x1")
def test_bench_copy_model_x1_vectorised(benchmark):
    """The pointer-jumping x=1 path is the fastest generator in the repo."""
    el = benchmark.pedantic(copy_model_x1, args=(1_000_000,), kwargs={"seed": 0},
                            rounds=2, iterations=1)
    assert len(el) == 999_999


@pytest.mark.benchmark(group="sequential-naive")
def test_bench_naive_small(benchmark):
    """The Θ(n²) strawman at a size it can still handle."""
    el = benchmark.pedantic(ba_naive, args=(4_000,), kwargs={"x": 1, "seed": 0},
                            rounds=1, iterations=1)
    assert len(el) == 3_999


def test_throughput_report(report):
    rows = []
    for name, fn, n in (
        ("naive theta(n^2)", lambda: ba_naive(4_000, x=X, seed=1), 4_000),
        ("batagelj-brandes", lambda: batagelj_brandes(N, x=X, seed=1), N),
        ("copy model (x=4)", lambda: copy_model(N, x=X, seed=1), N),
        ("copy model x=1 (vectorised)", lambda: copy_model_x1(1_000_000, seed=1), 1_000_000),
    ):
        t0 = time.perf_counter()
        el = fn()
        dt = time.perf_counter() - t0
        rows.append((name, n, len(el), f"{len(el) / dt / 1e6:.2f}"))
    try:
        import networkx as nx

        t0 = time.perf_counter()
        g = nx.barabasi_albert_graph(N, X, seed=1)
        dt = time.perf_counter() - t0
        rows.append(("networkx BA", N, g.number_of_edges(),
                     f"{g.number_of_edges() / dt / 1e6:.2f}"))
    except ImportError:  # pragma: no cover
        pass
    report.emit(format_table(
        ["generator", "n", "edges", "Medges/s"],
        rows,
        title="Sequential generator throughput (Section 4.3 context)",
    ))


def test_scaling_gap_naive_vs_bb(report):
    """Quadrupling n blows up the naive time far faster than BB's.

    Wall-clock ratios are noisy on loaded hosts, so the measurement is
    retried (best-of-3 per point, up to 3 measurement rounds) before the
    asymptotic-gap assertion is considered failed.
    """
    def measure():
        times = {}
        for n in (6_000, 24_000):
            for name, fn in (("naive", ba_naive), ("bb", batagelj_brandes)):
                best = float("inf")
                for _ in range(3):
                    t0 = time.perf_counter()
                    fn(n, x=1, seed=2)
                    best = min(best, time.perf_counter() - t0)
                times[(name, n)] = best
        naive_ratio = times[("naive", 24_000)] / times[("naive", 6_000)]
        bb_ratio = times[("bb", 24_000)] / times[("bb", 6_000)]
        return naive_ratio, bb_ratio

    for _round in range(3):
        naive_ratio, bb_ratio = measure()
        if naive_ratio > 1.5 * bb_ratio:
            break
    report.emit(f"time ratio for n 6k->24k: naive {naive_ratio:.1f}x "
                f"(Theta(n^2) predicts 16x), Batagelj-Brandes {bb_ratio:.1f}x "
                "(O(m) predicts 4x)")
    assert naive_ratio > 1.5 * bb_ratio
