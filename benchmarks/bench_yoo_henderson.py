"""Section 1 comparison — the Yoo–Henderson approximate baseline.

The paper's case for its algorithm is that the only prior distributed PA
generator (i) is approximate and (ii) needs manually-tuned control
parameters.  This benchmark quantifies both: degree-tail accuracy versus the
exact generator as a function of the ``sync_interval`` control parameter.

Regenerates: the accuracy-vs-control-parameter comparison.
"""

import numpy as np
import pytest

from repro.baselines import yoo_henderson
from repro.bench.reporting import format_table
from repro.graph.degree import degrees_from_edges
from repro.graph.powerlaw import fit_powerlaw
from repro.seq.copy_model import copy_model

N = 20_000
X = 2
REPS = 3
INTERVALS = [1, 8, 64, 512, 4096]


@pytest.fixture(scope="module")
def accuracy_rows():
    exact_max = np.mean([
        degrees_from_edges(copy_model(N, x=X, seed=s), N).max() for s in range(REPS)
    ])
    exact_gamma = np.mean([
        fit_powerlaw(degrees_from_edges(copy_model(N, x=X, seed=s), N), k_min=4).gamma
        for s in range(REPS)
    ])
    rows = [("exact (this paper)", "-", f"{exact_max:.0f}", f"{exact_gamma:.2f}", "0.0%")]
    for interval in INTERVALS:
        maxes, gammas = [], []
        for s in range(REPS):
            deg = degrees_from_edges(
                yoo_henderson(N, x=X, ranks=8, sync_interval=interval, seed=s), N
            )
            maxes.append(deg.max())
            gammas.append(fit_powerlaw(deg, k_min=4).gamma)
        err = abs(np.mean(maxes) - exact_max) / exact_max
        rows.append((
            "yoo-henderson", interval, f"{np.mean(maxes):.0f}",
            f"{np.mean(gammas):.2f}", f"{err:.1%}",
        ))
    return rows, exact_max


def test_yh_report(report, accuracy_rows):
    rows, _ = accuracy_rows
    report.emit(format_table(
        ["generator", "sync_interval", "mean max degree", "gamma", "hub error"],
        rows,
        title=f"Approximate baseline accuracy, n={N}, x={X}, 8 ranks "
              "(paper Section 1: accuracy depends on control parameters)",
    ))


def test_error_grows_with_staleness(accuracy_rows):
    rows, exact_max = accuracy_rows
    errs = [float(r[4].rstrip("%")) for r in rows[1:]]
    # tightest sync is the most accurate; stale settings are far worse
    # (the error saturates once the pool is almost never refreshed, so we
    # assert ordering at the front and a large gap, not strict monotonicity)
    assert errs[0] == min(errs)
    assert max(errs) > 2 * max(errs[0], 1.0)
    # even the tightest sync stays approximate: concurrent block growth
    # never sees same-epoch updates from other ranks (the paper's point (i))
    assert errs[0] > 5.0


@pytest.mark.benchmark(group="yoo-henderson")
def test_bench_yh_generation(benchmark):
    el = benchmark.pedantic(
        lambda: yoo_henderson(N, x=X, ranks=8, sync_interval=64, seed=0),
        rounds=1, iterations=1,
    )
    assert not el.has_duplicates()
