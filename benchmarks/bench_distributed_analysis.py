"""Extension — distributed analysis of the generated (still-partitioned) graph.

The paper motivates its partitioning flexibility with downstream analysis
(Section 3.2).  This benchmark exercises that workflow end-to-end: generate
with the parallel algorithm, hand the per-rank edges to the distributed
graph layer without gathering, and run BFS / connected components /
PageRank / degree histogram as BSP programs — reporting supersteps and
traffic for each kernel, plus the utilisation Gantt that shows where
barrier time goes.
"""

import numpy as np
import pytest

from repro.bench.reporting import format_table
from repro.core.parallel_pa_general import run_parallel_pa
from repro.core.partitioning import make_partition
from repro.distgraph import (
    DistributedGraph,
    distributed_bfs,
    distributed_components,
    distributed_degree_histogram,
    distributed_kcore,
    distributed_pagerank,
    distributed_triangles,
)

N = 100_000
X = 4
P = 32
SEED = 23


@pytest.fixture(scope="module")
def graph():
    part = make_partition("rrp", N, P)
    _, _, programs = run_parallel_pa(N, X, part, seed=SEED)
    return DistributedGraph.from_rank_edges(
        [prog.local_edges() for prog in programs], part
    )


@pytest.fixture(scope="module")
def kernel_rows(graph):
    rows = []
    dist, eng = distributed_bfs(graph, 0)
    rows.append(("BFS (from node 0)", eng.supersteps, eng.stats.total_messages,
                 f"ecc={dist.max()}"))
    labels, eng = distributed_components(graph)
    rows.append(("connected components", eng.supersteps, eng.stats.total_messages,
                 f"components={len(np.unique(labels))}"))
    pr, eng = distributed_pagerank(graph, iterations=20)
    rows.append(("PageRank (20 iters)", eng.supersteps, eng.stats.total_messages,
                 f"top mass={pr.max():.2e}"))
    hist, eng = distributed_degree_histogram(graph)
    rows.append(("degree histogram", eng.supersteps, eng.stats.total_messages,
                 f"max degree={len(hist) - 1}"))
    mask, eng = distributed_kcore(graph, X + 1)
    rows.append((f"{X + 1}-core membership", eng.supersteps,
                 eng.stats.total_messages, f"core size={int(mask.sum())}"))
    return rows


def test_distributed_analysis_report(report, graph, kernel_rows):
    report.emit(format_table(
        ["kernel", "supersteps", "protocol records", "result"],
        kernel_rows,
        title=f"Distributed analysis on the partitioned graph, "
              f"n={N:.0e}, x={X}, P={P} (never gathered)",
    ))


def test_bfs_is_ultra_small_world(kernel_rows):
    ecc = int(kernel_rows[0][3].split("=")[1])
    assert ecc <= 3 * np.log(N) / np.log(np.log(N))


def test_graph_is_connected(kernel_rows):
    comps = int(kernel_rows[1][3].split("=")[1])
    assert comps == 1


def test_gantt_report(report, graph):
    from repro.mpsim.bsp import BSPEngine
    from repro.mpsim.trace import Tracer
    from repro.distgraph.bfs import _BFSProgram

    programs = [_BFSProgram(r, graph, 0) for r in range(P)]
    tracer = Tracer()
    BSPEngine(P).run(programs, tracer=tracer)
    report.emit(tracer.gantt(max_width=60))
    assert tracer.utilisation().mean() > 0.05


@pytest.mark.benchmark(group="distributed-analysis")
def test_bench_pagerank(benchmark, graph):
    pr, _ = benchmark.pedantic(
        lambda: distributed_pagerank(graph, iterations=10), rounds=1, iterations=1
    )
    assert abs(pr.sum() - 1.0) < 1e-9
