"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one figure/table of the paper (see the
experiment index in DESIGN.md).  Reports are printed *and* persisted under
``benchmarks/results/`` so ``bench_output.txt`` and the result files can be
compared against EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class Reporter:
    """Collects report text for one benchmark module and persists it."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.chunks: list[str] = []

    def emit(self, text: str) -> None:
        self.chunks.append(text)
        # Write through stderr so pytest's capture still shows it with -s
        # and the text also lands in the persisted file either way.
        print(text, file=sys.stderr)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{self.name}.txt"
        out.write_text("\n\n".join(self.chunks) + "\n")


@pytest.fixture(scope="module")
def report(request):
    rep = Reporter(Path(request.fspath).stem)
    yield rep
    rep.flush()
