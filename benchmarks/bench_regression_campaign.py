"""Regression campaign — the full scheme × size grid as one CSV artefact.

Runs the cross-product of the evaluation's axes at CI scale and persists a
CSV next to the per-figure reports, giving reviewers a single machine-
readable table to diff across code revisions (the numeric columns are
deterministic for fixed seeds; only wall-time varies).
"""

import pytest

from repro.bench.campaign import expand_grid, run_campaign, summarize_campaign, write_csv
from repro.bench.reporting import format_table

GRID = expand_grid(
    n=[20_000, 60_000],
    x=[2, 6],
    ranks=[8, 32],
    scheme=["ucp", "lcp", "rrp", "ecp"],
)


@pytest.fixture(scope="module")
def records():
    return run_campaign("regression", GRID, seed=0)


def test_campaign_report(report, records, tmp_path_factory):
    from pathlib import Path

    out = Path(__file__).parent / "results" / "regression_campaign.csv"
    write_csv(out, records)
    summary = summarize_campaign(records, by="scheme")
    rows = [
        (key, int(v["runs"]), f"{v['mean_simulated_time'] * 1e3:.2f}",
         f"{v['mean_imbalance']:.3f}", f"{v['mean_supersteps']:.1f}")
        for key, v in summary.items()
    ]
    report.emit(format_table(
        ["scheme", "runs", "mean T_p (ms)", "mean imbalance", "mean supersteps"],
        rows,
        title=f"Regression campaign: {len(records)} runs "
              "(full CSV in results/regression_campaign.csv)",
    ))


def test_every_run_structurally_consistent(records):
    for record in records:
        expected = record.x * (record.x - 1) // 2 + (record.n - record.x) * record.x
        assert record.num_edges == expected
        assert record.imbalance >= 1.0
        assert record.supersteps >= 1


def test_scheme_ordering_holds_across_grid(records):
    summary = summarize_campaign(records, by="scheme")
    assert summary["rrp"]["mean_imbalance"] < summary["lcp"]["mean_imbalance"]
    assert summary["lcp"]["mean_imbalance"] < summary["ucp"]["mean_imbalance"]
    # ECP (exact Eqn 10) also clearly beats UCP
    assert summary["ecp"]["mean_imbalance"] < summary["ucp"]["mean_imbalance"]


@pytest.mark.benchmark(group="regression")
def test_bench_grid_cell(benchmark):
    from repro import generate

    result = benchmark.pedantic(
        lambda: generate(n=20_000, x=6, ranks=32, scheme="rrp", seed=0),
        rounds=1, iterations=1,
    )
    assert result.validate().ok
