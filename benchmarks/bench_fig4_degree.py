"""Figure 4 — log-log degree distribution of the generated network.

Paper setting: n = 10^9, x = 4, measured exponent γ = 2.7.  Scaled-down
setting here: n = 3·10^5, x = 4 on 16 simulated ranks; the distribution's
*shape* (heavy tail, straight log-log line) and fitted exponent are the
reproduction targets.

Regenerates: the Figure 4 series (log-binned P(k) vs k) plus the γ fit.
"""

import numpy as np
import pytest

from repro import generate
from repro.bench.reporting import ascii_loglog, format_series
from repro.graph.degree import log_binned_distribution
from repro.graph.powerlaw import fit_ccdf_slope, fit_powerlaw

N = 300_000
X = 4
RANKS = 16
SEED = 413


@pytest.fixture(scope="module")
def degrees():
    result = generate(n=N, x=X, ranks=RANKS, scheme="rrp", seed=SEED)
    report = result.validate()
    assert report.ok, report.errors
    return result.degrees()


def test_fig4_report(report, degrees):
    centers, density = log_binned_distribution(degrees)
    report.emit(format_series(
        f"Figure 4: degree distribution, n={N:.0e}, x={X} (log-binned)",
        centers.round(1).tolist(),
        density.tolist(),
    ))
    report.emit(ascii_loglog(centers, density,
                             label="Figure 4 (ASCII): P(k) vs k, log-log"))
    mle = fit_powerlaw(degrees, k_min=2 * X)
    slope = fit_ccdf_slope(degrees, k_min=X)
    report.emit(
        f"power-law exponent: MLE gamma = {mle.gamma:.2f} (KS {mle.ks_distance:.4f}); "
        f"CCDF-slope gamma = {slope:.2f}; paper reports gamma = 2.7"
    )
    assert 2.3 < mle.gamma < 3.4


def test_fig4_heavy_tail(degrees):
    """Distinct feature the paper calls out: the distribution is heavy-tailed."""
    assert degrees.max() > 50 * degrees.mean()
    assert degrees.min() == X


@pytest.mark.benchmark(group="fig4")
def test_bench_generation(benchmark):
    result = benchmark.pedantic(
        lambda: generate(n=N, x=X, ranks=RANKS, scheme="rrp", seed=SEED),
        rounds=1, iterations=1,
    )
    assert len(result.edges) == X * (X - 1) // 2 + (N - X) * X
