"""Subprocess probe for the ``out_of_core`` bench case.

Runs ONE generation in a fresh interpreter and prints one JSON object::

    {"edges": ..., "wall_s": ..., "peak_rss_bytes": ..., "digest": ...}

A subprocess because ``ru_maxrss`` is a *process-lifetime* high-water mark:
measured inside the bench harness it would report whichever earlier case was
fattest, not this run.  ``peak_rss_bytes`` is ``max(RUSAGE_SELF,
RUSAGE_CHILDREN)`` sampled immediately after ``generate()`` returns — i.e.
the generation's own peak, coordinator or any single waited worker,
whichever was larger.  The bit-identity digest is computed *after* that
sample on purpose: digesting a spilled run pages its memmapped segment
files back in, and those file-cache pages (reclaimable, not heap) would
otherwise mask the bounded-RSS property under test.

Not a public interface — driven by ``bench_hotpaths.py``'s
``case_out_of_core`` and the CI out-of-core smoke job.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.generator import generate
from repro.core.spill import edges_digest


def peak_rss_bytes() -> int:
    """Lifetime peak RSS of this process or its largest waited child."""
    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    # Linux reports KiB, macOS bytes
    return peak if sys.platform == "darwin" else peak * 1024


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, required=True)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--mode", choices=("spill", "ram"), required=True)
    ap.add_argument("--dir", type=Path, default=None,
                    help="spill directory (required with --mode spill)")
    ap.add_argument("--budget-mb", type=float, default=64.0)
    ap.add_argument("--seed", type=int, default=1234)
    ap.add_argument("--generator", default="commfree")
    ap.add_argument("--engine", default="mp")
    args = ap.parse_args(argv)

    kwargs = {}
    if args.mode == "spill":
        if args.dir is None:
            ap.error("--dir is required with --mode spill")
        kwargs["out_of_core"] = str(args.dir)
        kwargs["spill_budget_bytes"] = int(args.budget_mb * (1 << 20))

    t0 = time.perf_counter()
    result = generate(
        args.n,
        ranks=args.ranks,
        seed=args.seed,
        engine=args.engine,
        generator=args.generator,
        **kwargs,
    )
    wall = time.perf_counter() - t0
    rss = peak_rss_bytes()  # before the digest pages the segment files in

    digest = edges_digest(result.edges)
    print(json.dumps({
        "edges": len(result.edges),
        "wall_s": wall,
        "peak_rss_bytes": rss,
        "digest": digest,
    }))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
