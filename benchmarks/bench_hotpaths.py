"""Hot-path benchmark harness — the repo's tracked performance baseline.

Times the four hot paths that dominate generation cost and writes a single
machine-readable ``BENCH_hotpaths.json`` at the repository root:

* ``copy_model_general`` — the sequential general-``x`` copy model,
  reference per-slot loop vs the vectorised ``method="fast"`` path;
* ``copy_model_x1`` — the pointer-jumping ``x = 1`` generator;
* ``resolve_pointers`` — the early-exit pointer-jumping kernel alone;
* ``bsp_pa`` — end-to-end parallel PA on the in-process BSP engine;
* ``mp_exchange`` — the multiprocessing backend's superstep exchange,
  pickle-pipe vs zero-copy shared memory vs peer-to-peer mailbox fabric, at
  8 ranks under a bulk-payload flood (the regime the zero-copy path is
  built for), including fork-overhead-corrected per-superstep latency;
* ``mp_endtoend`` — full ``x = 1`` PA generation on the multiprocessing
  backend, one entry per exchange topology (wall seconds and
  supersteps/sec);
* ``commfree`` — the communication-free ``x = 1`` generator
  (:mod:`repro.core.commfree`) on one core vs ``copy_model_x1`` — the
  recompute-instead-of-message algorithm must win before parallelism even
  starts;
* ``commfree_endtoend`` — the same generator on forked slice workers at the
  ``mp_endtoend`` scale; the derived ``speedup_vs_copy_p2p`` compares it
  against the copy-model pipeline's best transport at equal n and P;
* ``mp_pool`` — five consecutive generation jobs on a persistent
  :class:`~repro.mpsim.pool.WorkerPool` vs five cold engine runs;
* ``telemetry_overhead`` — end-to-end BSP generation with telemetry
  disabled (the default no-op path) vs enabled, the observability tax;
* ``out_of_core`` — spilled (``out_of_core=``) vs in-RAM mp generation in
  fresh subprocesses, recording wall time, edges/s, and each run's peak RSS
  via ``resource.getrusage`` (see ``_oocore_child.py`` for why a
  subprocess), and asserting the two runs are bit-identical by streaming
  sha256 digest.  ``--oocore-n 100000000`` opts into the paper-scale run
  (pair it with ``--oocore-spill-only``: at that n the in-RAM reference is
  the thing that cannot exist);
* ``dyngraph_incremental`` — churn application throughput (epochs/s of
  :func:`repro.dyngraph.evolve` at n=10^6 under the full scale) and the
  warm-vs-scratch pagerank comparison on the final snapshot: both runs go
  to the same ``tol``, the warm one seeded from the previous epoch's
  vector, and the report records the wall/superstep speedup.

Every measurement is best-of-``--repeats`` wall time: single-occupancy CI
boxes (and the 1-CPU container this repo grew up on) show multi-x run-to-run
variance, and the *minimum* is the standard robust estimator of the true
cost.  See ``docs/performance.md`` for how to read the output.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py              # full scale
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --scale ci \
        --require-speedup 10                                        # CI gate

``--require-speedup S`` exits non-zero unless the fast general copy model is
at least ``S``× the reference — the repo's perf-regression tripwire.
``--require-p2p-speedup S`` exits non-zero unless end-to-end p2p generation
is at least ``S``× coordinator-shm (CI uses ``S = 1.0``: p2p must never be
slower).
``--max-telemetry-overhead R`` exits non-zero if enabled telemetry costs
more than ``R``× the disabled run (needs the ``telemetry_overhead`` case;
CI allows generous noise headroom on shared boxes).
``--require-commfree-speedup S`` exits non-zero unless end-to-end commfree
generation is at least ``S``× the copy-model p2p pipeline at equal n and P
(needs both the ``commfree_endtoend`` and ``mp_endtoend`` cases; CI uses
``S = 1.0``: trading messages for recomputation must never lose).
``--max-oocore-rss M`` exits non-zero if the spilled run's peak RSS exceeds
``M`` MB *or* the spilled and in-RAM graphs are not bit-identical (needs
the ``out_of_core`` case) — the hard ceiling the CI out-of-core smoke job
enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.parallel_pa import RECORD_DTYPE, run_parallel_pa_x1
from repro.core.parallel_pa_general import run_parallel_pa
from repro.core.partitioning import UniformPartition
from repro.core.parallel_pa import PAx1RankProgram
from repro.mpsim.mp_backend import (
    EXCHANGE_P2P,
    EXCHANGE_PICKLE,
    EXCHANGE_SHM,
    EXCHANGES,
    MultiprocessingBSPEngine,
)
from repro.mpsim.pool import WorkerPool
from repro.core.commfree import commfree_mp, commfree_x1
from repro.rng import StreamFactory
from repro.seq.copy_model import copy_model, copy_model_x1, resolve_pointers

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_hotpaths.json"

#: Per-case problem sizes.  ``ci`` keeps everything small *except* the
#: general copy model, which the CI gate requires at full size (the 10x
#: acceptance threshold is defined at n=200k, x=4).
SCALES = {
    "small": dict(
        general_n=20_000, x1_n=100_000, ptr_n=200_000,
        bsp_n=5_000, bsp_general_n=2_000, bsp_P=4,
        mp_records=20_000, mp_rounds=5, mp_P=8,
        endtoend_n=50_000, pool_n=5_000, pool_jobs=5,
        telemetry_n=50_000,
        sched_n=200, sched_schedules=8,
        oocore_n=200_000, oocore_P=4, oocore_budget_mb=2,
        dyn_n=50_000, dyn_P=4, dyn_epochs=4,
    ),
    "ci": dict(
        general_n=200_000, x1_n=200_000, ptr_n=500_000,
        bsp_n=10_000, bsp_general_n=4_000, bsp_P=4,
        mp_records=50_000, mp_rounds=10, mp_P=8,
        endtoend_n=200_000, pool_n=10_000, pool_jobs=5,
        telemetry_n=200_000,
        sched_n=300, sched_schedules=16,
        oocore_n=1_000_000, oocore_P=4, oocore_budget_mb=8,
        dyn_n=200_000, dyn_P=4, dyn_epochs=4,
    ),
    "full": dict(
        general_n=200_000, x1_n=1_000_000, ptr_n=2_000_000,
        bsp_n=50_000, bsp_general_n=10_000, bsp_P=4,
        # enough rounds that the per-superstep exchange cost dominates the
        # one-off fork/join of 8 worker processes (noisy on small hosts)
        mp_records=50_000, mp_rounds=20, mp_P=8,
        endtoend_n=1_000_000, pool_n=20_000, pool_jobs=5,
        telemetry_n=500_000,
        sched_n=300, sched_schedules=64,
        oocore_n=10_000_000, oocore_P=4, oocore_budget_mb=64,
        dyn_n=1_000_000, dyn_P=8, dyn_epochs=5,
    ),
}

X = 4
SEED = 1234


def best_of(repeats: int, fn, *args, **kwargs) -> float:
    """Best-of-``repeats`` wall seconds for ``fn(*args, **kwargs)``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------- cases
def case_copy_model_general(sizes, repeats):
    n = sizes["general_n"]
    ref = best_of(repeats, copy_model, n, x=X, seed=SEED, method="reference")
    fast = best_of(repeats, copy_model, n, x=X, seed=SEED, method="fast")
    return {
        "n": n, "x": X,
        "reference_s": ref, "fast_s": fast,
        "speedup": ref / fast,
        "edges_per_s_fast": (n - X) * X / fast,
    }


def case_copy_model_x1(sizes, repeats):
    n = sizes["x1_n"]
    t = best_of(repeats, copy_model_x1, n, seed=SEED)
    return {"n": n, "seconds": t, "edges_per_s": (n - 1) / t}


def case_resolve_pointers(sizes, repeats):
    n = sizes["ptr_n"]
    rng = np.random.default_rng(SEED)
    idx = np.arange(n, dtype=np.int64)
    ptr = np.where(
        rng.random(n) < 0.5,
        idx,  # roots (direct attachments) point to themselves
        (rng.random(n) * np.maximum(idx, 1)).astype(np.int64),
    )
    t = best_of(repeats, resolve_pointers, ptr)
    return {"n": n, "seconds": t, "pointers_per_s": n / t}


def case_bsp_pa(sizes, repeats):
    n, P = sizes["bsp_n"], sizes["bsp_P"]
    t_x1 = best_of(repeats, run_parallel_pa_x1, n, UniformPartition(n, P), seed=SEED)
    ng = sizes["bsp_general_n"]
    t_gen = best_of(repeats, run_parallel_pa, ng, X, UniformPartition(ng, P), seed=SEED)
    return {
        "x1": {"n": n, "P": P, "seconds": t_x1},
        "general": {"n": ng, "x": X, "P": P, "seconds": t_gen},
    }


class FloodProgram:
    """Bulk-exchange load generator: each rank sends ``records`` protocol
    records to every other rank for ``rounds`` supersteps.

    This isolates the exchange itself (the thing the shm path accelerates)
    from generator compute, at the large-payload scale where serialization
    cost dominates — the regime massive-graph supersteps actually live in.
    """

    def __init__(self, rank: int, size: int, records: int, rounds: int) -> None:
        self.rank, self.size = rank, size
        self.records, self.rounds = records, rounds
        self.step_no = 0
        self.checksum = 0

    @property
    def done(self) -> bool:
        return self.step_no >= self.rounds

    def result(self):
        return self.checksum

    def step(self, ctx, inbox):
        for _src, arr in inbox:
            self.checksum = (self.checksum + int(arr["t"][0]) + len(arr)) & 0x7FFFFFFF
        self.step_no += 1
        if self.step_no > self.rounds:
            return {}
        rec = np.empty(self.records, dtype=RECORD_DTYPE)
        rec["kind"] = 0
        rec["t"] = self.rank * 1000 + self.step_no
        rec["a"] = np.arange(self.records, dtype=np.int64)
        return {d: [rec] for d in range(self.size) if d != self.rank}


def _run_flood(exchange: str, P: int, records: int, rounds: int) -> int:
    engine = MultiprocessingBSPEngine(P, exchange=exchange)
    engine.run([FloodProgram(r, P, records, rounds) for r in range(P)])
    return sum(engine.results)


def case_mp_exchange(sizes, repeats):
    """Flood benchmark over all three exchange topologies.

    Besides raw wall time, each mode gets a *superstep latency*: the
    difference between an R-round and a 1-round flood divided by the extra
    rounds, which cancels the one-off fork/join cost and isolates what the
    p2p fabric actually attacks — the per-superstep exchange round trip.
    """
    P, records, rounds = sizes["mp_P"], sizes["mp_records"], sizes["mp_rounds"]
    out = {
        "P": P, "records_per_dest": records, "rounds": rounds,
        "payload_bytes": records * RECORD_DTYPE.itemsize * (P - 1) * P * rounds,
    }
    lat = {}
    for exchange in EXCHANGES:
        t = best_of(repeats, _run_flood, exchange, P, records, rounds)
        t1 = best_of(repeats, _run_flood, exchange, P, records, 1)
        out[f"{exchange}_s"] = t
        lat[exchange] = max(t - t1, 1e-9) / (rounds - 1) if rounds > 1 else t
        out[f"{exchange}_superstep_latency_s"] = lat[exchange]
    out["speedup_shm_over_pickle"] = out["pickle_s"] / out["shm_s"]
    out["speedup_p2p_over_shm"] = out["shm_s"] / out["p2p_s"]
    out["latency_speedup_p2p_over_shm"] = (
        lat[EXCHANGE_SHM] / lat[EXCHANGE_P2P]
    )
    return out


def _x1_mp_programs(n: int, P: int):
    part = UniformPartition(n, P)
    factory = StreamFactory(SEED)
    return [PAx1RankProgram(r, part, 0.5, factory.stream(r)) for r in range(P)]


def case_mp_endtoend(sizes, repeats):
    """Full x=1 PA generation on the multiprocessing backend, per exchange."""
    n, P = sizes["endtoend_n"], sizes["mp_P"]
    out = {"n": n, "P": P, "modes": {}}
    for exchange in EXCHANGES:
        best = float("inf")
        supersteps = 0
        for _ in range(repeats):
            engine = MultiprocessingBSPEngine(P, exchange=exchange)
            programs = _x1_mp_programs(n, P)
            t0 = time.perf_counter()
            engine.run(programs)
            best = min(best, time.perf_counter() - t0)
            supersteps = engine.supersteps
        out["modes"][exchange] = {
            "wall_s": best,
            "supersteps": supersteps,
            "supersteps_per_s": supersteps / best,
            "nodes_per_s": n / best,
        }
    out["speedup_p2p_over_shm"] = (
        out["modes"][EXCHANGE_SHM]["wall_s"] / out["modes"][EXCHANGE_P2P]["wall_s"]
    )
    return out


def case_commfree(sizes, repeats):
    """Single-core x=1: communication-free generator vs the copy model.

    Same machine, same n, both fully vectorised — this isolates the
    algorithmic trade (counter-hash draws + chain chasing vs PCG draws +
    pointer jumping) before any parallelism enters the picture.
    """
    n = sizes["x1_n"]
    t_cf = best_of(repeats, commfree_x1, n, seed=SEED)
    t_copy = best_of(repeats, copy_model_x1, n, seed=SEED)
    return {
        "n": n,
        "seconds": t_cf,
        "edges_per_s": (n - 1) / t_cf,
        "copy_model_x1_s": t_copy,
        "speedup_vs_copy_x1": t_copy / t_cf,
    }


def case_commfree_endtoend(sizes, repeats):
    """Parallel x=1 generation with zero communication: forked slice
    workers, coordinator concatenates.  ``main()`` derives
    ``speedup_vs_copy_p2p`` against the ``mp_endtoend`` case (same n, same
    P, same fork-based process model — the only difference is the
    algorithm)."""
    n, P = sizes["endtoend_n"], sizes["mp_P"]
    t = best_of(repeats, commfree_mp, n, ranks=P, seed=SEED)
    return {
        "n": n, "P": P,
        "wall_s": t,
        "nodes_per_s": n / t,
        "edges_per_s": (n - 1) / t,
    }


def case_mp_pool(sizes, repeats):
    """Amortised startup: J jobs on one pool vs J cold engine runs.

    The pooled total *includes* pool construction and shutdown — the pool
    must win on honest accounting, by paying fork/pipe/fabric setup once
    instead of J times.
    """
    n, P, jobs = sizes["pool_n"], sizes["mp_P"], sizes["pool_jobs"]

    def cold():
        for seed_off in range(jobs):
            engine = MultiprocessingBSPEngine(P, exchange=EXCHANGE_P2P)
            engine.run(_x1_mp_programs(n + seed_off, P))

    def pooled():
        with WorkerPool(P, exchange=EXCHANGE_P2P) as pool:
            for seed_off in range(jobs):
                pool.run(_x1_mp_programs(n + seed_off, P))

    t_cold = best_of(repeats, cold)
    t_pool = best_of(repeats, pooled)
    return {
        "n": n, "P": P, "jobs": jobs,
        "cold_s": t_cold, "pooled_s": t_pool,
        "speedup_pool_over_cold": t_cold / t_pool,
    }


def case_telemetry_overhead(sizes, repeats):
    """The observability tax on the hottest instrumented loop.

    Disabled telemetry is the default for every run, so its cost must be
    indistinguishable from noise (the no-op path allocates nothing and
    reads no clock); enabled telemetry pays two monotonic reads per span
    and must stay within a few percent end to end.
    """
    from repro.telemetry import Telemetry

    # a dedicated (larger) size: at BSP-case scale a run is milliseconds
    # and scheduler noise swamps the single-digit-percent effect under test
    n, P = sizes["telemetry_n"], sizes["bsp_P"]
    part = UniformPartition(n, P)

    def disabled():
        run_parallel_pa_x1(n, part, seed=SEED)

    def enabled():
        tel = Telemetry()
        run_parallel_pa_x1(n, part, seed=SEED, telemetry=tel)
        return tel

    # interleave-friendly: time disabled, enabled, then disabled again and
    # keep the best of each, so drift on a shared box hits both sides
    t_off = best_of(repeats, disabled)
    t_on = best_of(repeats, enabled)
    t_off = min(t_off, best_of(repeats, disabled))
    return {
        "n": n, "P": P,
        "disabled_s": t_off,
        "enabled_s": t_on,
        "overhead_enabled_over_disabled": t_on / t_off,
    }


def case_sched_explore(sizes, repeats):
    """Throughput of the interleaving fuzzer (schedules per second).

    Exploration is meant to run as a bounded CI sweep, so its cost per
    schedule — a full permuted generation plus outcome hashing — is a
    tracked quantity: a regression here silently shrinks how much of the
    schedule space the same CI budget covers.
    """
    from repro.schedsim import explore

    n, k = sizes["sched_n"], sizes["sched_schedules"]
    out = {}
    for engine in ("bsp", "event"):
        config = {"n": n, "x": X, "ranks": sizes["bsp_P"], "scheme": "ecp",
                  "seed": SEED, "engine": engine}

        def sweep():
            report = explore(config, policy="random", schedules=k)
            assert report.ok, f"divergence in benchmark sweep: {engine}"

        t = best_of(repeats, sweep)
        out[engine] = {
            "n": n, "x": X, "schedules": k,
            "seconds": t, "schedules_per_s": k / t,
        }
    return out


def _probe_oocore(n, P, budget_mb, mode, spill_dir=None):
    """One generation in a fresh interpreter; returns its printed JSON."""
    child = Path(__file__).resolve().parent / "_oocore_child.py"
    cmd = [
        sys.executable, str(child),
        "--n", str(n), "--ranks", str(P), "--mode", mode,
        "--budget-mb", str(budget_mb), "--seed", str(SEED),
    ]
    if mode == "spill":
        cmd += ["--dir", str(spill_dir)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(
            f"oocore child failed ({mode}, n={n}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def case_out_of_core(sizes, repeats):
    """Spilled vs in-RAM mp generation: wall, peak RSS, and bit-identity.

    Each probe is a fresh subprocess (``ru_maxrss`` is a process-lifetime
    high-water mark, so in-harness measurement would be cross-contaminated
    by earlier cases).  Spill mode writes sealed shards plus segment files
    into a throwaway directory that is deleted between repeats — every
    repeat pays the full emission, not an overwrite of hot files.  The
    digest must agree across repeats (determinism) and across modes
    (bit-transparency of the spill path); a mismatch raises rather than
    producing a report that quietly benchmarks two different graphs.
    """
    n, P = sizes["oocore_n"], sizes["oocore_P"]
    budget_mb = sizes["oocore_budget_mb"]
    spill_only = sizes.get("oocore_spill_only", False)

    def best_probe(mode):
        walls, rsss, digest, edges = [], [], None, None
        for _ in range(repeats):
            if mode == "spill":
                with tempfile.TemporaryDirectory(prefix="bench-oocore.") as d:
                    r = _probe_oocore(n, P, budget_mb, mode, spill_dir=d)
            else:
                r = _probe_oocore(n, P, budget_mb, mode)
            walls.append(r["wall_s"])
            rsss.append(r["peak_rss_bytes"])
            if digest is None:
                digest, edges = r["digest"], r["edges"]
            elif r["digest"] != digest:
                raise RuntimeError(
                    f"oocore {mode} runs disagree at equal seed — "
                    f"nondeterministic generation"
                )
        wall = min(walls)
        return {
            "wall_s": wall,
            "edges_per_s": edges / wall,
            "peak_rss_bytes": min(rsss),
            "digest": digest,
            "edges": edges,
        }

    spill = best_probe("spill")
    out = {
        "n": n, "P": P, "budget_mb": budget_mb,
        "edges": spill["edges"],
        "spill": {k: spill[k] for k in ("wall_s", "edges_per_s", "peak_rss_bytes")},
        "digest": spill["digest"],
    }
    if spill_only:
        out["bit_identical"] = None  # no reference to compare against
        return out
    ram = best_probe("ram")
    out["ram"] = {k: ram[k] for k in ("wall_s", "edges_per_s", "peak_rss_bytes")}
    out["bit_identical"] = spill["digest"] == ram["digest"]
    out["rss_spill_over_ram"] = (
        spill["peak_rss_bytes"] / max(ram["peak_rss_bytes"], 1)
    )
    out["slowdown_spill_over_ram"] = spill["wall_s"] / ram["wall_s"]
    return out


def case_dyngraph_incremental(sizes, repeats):
    """Churn throughput and the warm-vs-scratch pagerank payoff.

    Evolves an n-node commfree graph for E epochs (``epochs_per_s`` is the
    sequential churn-application rate), then compares pagerank on the final
    snapshot started cold (uniform) vs warm (the previous epoch's vector,
    extended and renormalised by :func:`warm_start_pagerank`) — both run to
    the same ``tol``, so they agree within the contraction ball and the
    only difference is how fast they enter it.
    """
    from repro.core.commfree import commfree
    from repro.core.partitioning import make_partition
    from repro.distgraph.pagerank import distributed_pagerank
    from repro.distgraph.storage import DistributedGraph
    from repro.dyngraph import ChurnSchedule
    from repro.dyngraph.evolve import evolve
    from repro.dyngraph.incremental import warm_start_pagerank
    from repro.graph.edgelist import EdgeList

    n, P, epochs = sizes["dyn_n"], sizes["dyn_P"], sizes["dyn_epochs"]
    tol = 1e-9
    edges = commfree(n, x=2, seed=SEED)
    sched = ChurnSchedule(
        seed=SEED, epochs=epochs,
        arrival_rate=n / 1000, attach_x=2, departure_prob=0.001,
        deletion_rate=n / 2000, rewire_rate=n / 2000,
    )

    t_evolve = best_of(repeats, evolve, edges, n, sched)

    # prefix property: an (epochs-1)-epoch run IS the final run's prefix,
    # so its state is exactly "the previous snapshot"
    prev = evolve(edges, n, sched, epochs=epochs - 1).state
    final = evolve(edges, n, sched).state

    def graph_of(state):
        part = make_partition("rrp", state.n, P)
        return DistributedGraph.from_edgelist(
            EdgeList.from_arrays(state.u, state.v, copy=False), part
        )

    g_prev, g_final = graph_of(prev), graph_of(final)
    prev_pr, _ = distributed_pagerank(g_prev, iterations=500, tol=tol)
    x0 = warm_start_pagerank(prev_pr, final.n)

    cold = {"wall_s": float("inf")}
    warm = {"wall_s": float("inf")}
    for _ in range(repeats):
        t0 = time.perf_counter()
        cold_pr, eng = distributed_pagerank(g_final, iterations=500, tol=tol)
        t = time.perf_counter() - t0
        if t < cold["wall_s"]:
            cold = {"wall_s": t, "supersteps": eng.supersteps}
        t0 = time.perf_counter()
        warm_pr, eng = distributed_pagerank(
            g_final, iterations=500, tol=tol, x0=x0
        )
        t = time.perf_counter() - t0
        if t < warm["wall_s"]:
            warm = {"wall_s": t, "supersteps": eng.supersteps}
    linf = float(np.abs(cold_pr - warm_pr).max())
    if linf > 1e-6:
        raise RuntimeError(
            f"warm pagerank diverged from scratch by {linf:.3e}"
        )
    return {
        "n": n, "P": P, "epochs": epochs, "tol": tol,
        "evolve_wall_s": t_evolve,
        "epochs_per_s": epochs / t_evolve,
        "final_edges": final.num_edges,
        "pagerank_cold": cold,
        "pagerank_warm": warm,
        "warm_vs_scratch_linf": linf,
        "speedup_warm_over_scratch": cold["wall_s"] / warm["wall_s"],
        "superstep_ratio_cold_over_warm": (
            cold["supersteps"] / warm["supersteps"]
        ),
    }


CASES = {
    "copy_model_general": case_copy_model_general,
    "copy_model_x1": case_copy_model_x1,
    "resolve_pointers": case_resolve_pointers,
    "bsp_pa": case_bsp_pa,
    "mp_exchange": case_mp_exchange,
    "mp_endtoend": case_mp_endtoend,
    "commfree": case_commfree,
    "commfree_endtoend": case_commfree_endtoend,
    "mp_pool": case_mp_pool,
    "telemetry_overhead": case_telemetry_overhead,
    "sched_explore": case_sched_explore,
    "out_of_core": case_out_of_core,
    "dyngraph_incremental": case_dyngraph_incremental,
}


# ------------------------------------------------------------------ main
def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", choices=sorted(SCALES), default="full")
    ap.add_argument("--repeats", type=int, default=3,
                    help="best-of-K timing repeats (default 3)")
    ap.add_argument("--cases", default=",".join(CASES),
                    help="comma-separated subset of: " + ", ".join(CASES))
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT)
    ap.add_argument("--merge", action="store_true",
                    help="update only the cases run this invocation inside "
                         "an existing --out report (instead of replacing the "
                         "whole file) — for recording one new/changed case "
                         "without re-timing everything")
    ap.add_argument("--require-speedup", type=float, default=None, metavar="S",
                    help="fail unless fast general copy model is >= S x reference")
    ap.add_argument("--require-p2p-speedup", type=float, default=None, metavar="S",
                    help="fail unless end-to-end p2p generation is >= S x "
                         "coordinator-shm (needs the mp_endtoend case)")
    ap.add_argument("--max-telemetry-overhead", type=float, default=None,
                    metavar="R",
                    help="fail if enabled telemetry costs more than R x the "
                         "disabled run (needs the telemetry_overhead case)")
    ap.add_argument("--require-commfree-speedup", type=float, default=None,
                    metavar="S",
                    help="fail unless end-to-end commfree generation is >= "
                         "S x the copy-model p2p pipeline (needs the "
                         "commfree_endtoend and mp_endtoend cases)")
    ap.add_argument("--max-oocore-rss", type=float, default=None, metavar="M",
                    help="fail if the spilled run's peak RSS exceeds M MB, or "
                         "if the spilled graph is not bit-identical to the "
                         "in-RAM one (needs the out_of_core case)")
    ap.add_argument("--oocore-n", type=int, default=None, metavar="N",
                    help="override the out_of_core case's n (e.g. 100000000 "
                         "for the opt-in paper-scale run)")
    ap.add_argument("--oocore-spill-only", action="store_true",
                    help="skip the out_of_core case's in-RAM reference probe "
                         "— for paper-scale n, where the in-RAM run is the "
                         "thing that cannot exist (disables the bit-identity "
                         "half of --max-oocore-rss)")
    args = ap.parse_args(argv)

    wanted = [c.strip() for c in args.cases.split(",") if c.strip()]
    unknown = sorted(set(wanted) - set(CASES))
    if unknown:
        ap.error(f"unknown cases: {', '.join(unknown)}")

    sizes = dict(SCALES[args.scale])
    if args.oocore_n is not None:
        sizes["oocore_n"] = args.oocore_n
    if args.oocore_spill_only:
        sizes["oocore_spill_only"] = True
    report = {
        "schema": "bench_hotpaths/v1",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scale": args.scale,
        "repeats": args.repeats,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            # both counts: cpu_count() is what the box has, the affinity
            # mask is what this process may actually use — mp speedups are
            # unreadable without knowing which one constrained the run
            "cpus_logical": os.cpu_count(),
            "cpus_affinity": (
                len(os.sched_getaffinity(0))
                if hasattr(os, "sched_getaffinity")
                else os.cpu_count()
            ),
        },
        "cases": {},
    }
    for name in wanted:
        print(f"[bench_hotpaths] {name} ...", flush=True)
        t0 = time.perf_counter()
        report["cases"][name] = CASES[name](sizes, args.repeats)
        print(f"[bench_hotpaths] {name} done in {time.perf_counter() - t0:.1f}s",
              flush=True)

    # cross-case derivation: commfree end-to-end vs the copy-model pipeline's
    # peer-to-peer transport at the same n and P (computed before the report
    # is written so the tracked JSON carries the headline number)
    cf_e2e = report["cases"].get("commfree_endtoend")
    endtoend_modes = report["cases"].get("mp_endtoend", {}).get("modes", {})
    if cf_e2e is not None and "p2p" in endtoend_modes:
        cf_e2e["speedup_vs_copy_p2p"] = (
            endtoend_modes["p2p"]["wall_s"] / cf_e2e["wall_s"]
        )

    if args.merge and args.out.exists():
        merged = json.loads(args.out.read_text())
        merged["cases"].update(report["cases"])
        merged["generated"] = report["generated"]
        report = merged
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[bench_hotpaths] wrote {args.out}")

    general = report["cases"].get("copy_model_general")
    if general is not None:
        print(f"[bench_hotpaths] general copy model: reference "
              f"{general['reference_s']:.3f}s, fast {general['fast_s']:.3f}s "
              f"({general['speedup']:.1f}x)")
    if args.require_speedup is not None:
        if general is None:
            print("[bench_hotpaths] --require-speedup needs the "
                  "copy_model_general case", file=sys.stderr)
            return 2
        if general["speedup"] < args.require_speedup:
            print(f"[bench_hotpaths] FAIL: speedup {general['speedup']:.2f}x "
                  f"< required {args.require_speedup}x", file=sys.stderr)
            return 1
        print(f"[bench_hotpaths] speedup gate passed "
              f"({general['speedup']:.1f}x >= {args.require_speedup}x)")
    mp = report["cases"].get("mp_exchange")
    if mp is not None:
        print(f"[bench_hotpaths] mp exchange at P={mp['P']}: pickle "
              f"{mp['pickle_s']:.3f}s, shm {mp['shm_s']:.3f}s, "
              f"p2p {mp['p2p_s']:.3f}s; superstep latency "
              f"shm {mp['shm_superstep_latency_s'] * 1e3:.1f}ms vs "
              f"p2p {mp['p2p_superstep_latency_s'] * 1e3:.1f}ms "
              f"({mp['latency_speedup_p2p_over_shm']:.2f}x)")
    endtoend = report["cases"].get("mp_endtoend")
    if endtoend is not None:
        modes = endtoend["modes"]
        summary = ", ".join(
            f"{ex} {modes[ex]['wall_s']:.3f}s" for ex in modes
        )
        print(f"[bench_hotpaths] mp end-to-end n={endtoend['n']} "
              f"P={endtoend['P']}: {summary} "
              f"(p2p {endtoend['speedup_p2p_over_shm']:.2f}x vs shm)")
    pool = report["cases"].get("mp_pool")
    if pool is not None:
        print(f"[bench_hotpaths] worker pool {pool['jobs']} jobs: cold "
              f"{pool['cold_s']:.3f}s, pooled {pool['pooled_s']:.3f}s "
              f"({pool['speedup_pool_over_cold']:.2f}x)")
    if args.require_p2p_speedup is not None:
        if endtoend is None:
            print("[bench_hotpaths] --require-p2p-speedup needs the "
                  "mp_endtoend case", file=sys.stderr)
            return 2
        got = endtoend["speedup_p2p_over_shm"]
        if got < args.require_p2p_speedup:
            print(f"[bench_hotpaths] FAIL: p2p end-to-end speedup {got:.2f}x "
                  f"< required {args.require_p2p_speedup}x", file=sys.stderr)
            return 1
        print(f"[bench_hotpaths] p2p speedup gate passed "
              f"({got:.2f}x >= {args.require_p2p_speedup}x)")
    cf = report["cases"].get("commfree")
    if cf is not None:
        print(f"[bench_hotpaths] commfree single-core n={cf['n']}: "
              f"{cf['seconds']:.3f}s vs copy_model_x1 "
              f"{cf['copy_model_x1_s']:.3f}s "
              f"({cf['speedup_vs_copy_x1']:.2f}x)")
    if cf_e2e is not None:
        vs = cf_e2e.get("speedup_vs_copy_p2p")
        extra = f" ({vs:.2f}x vs copy-model p2p)" if vs is not None else ""
        print(f"[bench_hotpaths] commfree end-to-end n={cf_e2e['n']} "
              f"P={cf_e2e['P']}: {cf_e2e['wall_s']:.3f}s, "
              f"{cf_e2e['nodes_per_s'] / 1e6:.2f}M nodes/s{extra}")
    if args.require_commfree_speedup is not None:
        if cf_e2e is None or "speedup_vs_copy_p2p" not in cf_e2e:
            print("[bench_hotpaths] --require-commfree-speedup needs the "
                  "commfree_endtoend and mp_endtoend cases", file=sys.stderr)
            return 2
        got = cf_e2e["speedup_vs_copy_p2p"]
        if got < args.require_commfree_speedup:
            print(f"[bench_hotpaths] FAIL: commfree end-to-end speedup "
                  f"{got:.2f}x < required {args.require_commfree_speedup}x",
                  file=sys.stderr)
            return 1
        print(f"[bench_hotpaths] commfree speedup gate passed "
              f"({got:.2f}x >= {args.require_commfree_speedup}x)")
    oo = report["cases"].get("out_of_core")
    if oo is not None:
        spill_mb = oo["spill"]["peak_rss_bytes"] / (1 << 20)
        line = (f"[bench_hotpaths] out-of-core n={oo['n']} P={oo['P']} "
                f"budget={oo['budget_mb']}MB: spilled {oo['spill']['wall_s']:.3f}s "
                f"({oo['spill']['edges_per_s'] / 1e6:.2f}M edges/s, "
                f"peak RSS {spill_mb:.0f}MB)")
        if "ram" in oo:
            line += (f" vs in-RAM {oo['ram']['wall_s']:.3f}s "
                     f"(peak RSS {oo['ram']['peak_rss_bytes'] / (1 << 20):.0f}MB); "
                     f"bit-identical: {oo['bit_identical']}")
        print(line)
    if args.max_oocore_rss is not None:
        if oo is None:
            print("[bench_hotpaths] --max-oocore-rss needs the out_of_core "
                  "case", file=sys.stderr)
            return 2
        got_mb = oo["spill"]["peak_rss_bytes"] / (1 << 20)
        if got_mb > args.max_oocore_rss:
            print(f"[bench_hotpaths] FAIL: spilled peak RSS {got_mb:.0f}MB "
                  f"> allowed {args.max_oocore_rss:.0f}MB", file=sys.stderr)
            return 1
        if oo["bit_identical"] is False:
            print("[bench_hotpaths] FAIL: spilled graph differs from the "
                  "in-RAM graph at equal seed", file=sys.stderr)
            return 1
        print(f"[bench_hotpaths] out-of-core RSS gate passed "
              f"({got_mb:.0f}MB <= {args.max_oocore_rss:.0f}MB, "
              f"bit_identical={oo['bit_identical']})")
    dyn = report["cases"].get("dyngraph_incremental")
    if dyn is not None:
        print(f"[bench_hotpaths] dyngraph n={dyn['n']} "
              f"({dyn['epochs']} epochs): evolve {dyn['evolve_wall_s']:.3f}s "
              f"({dyn['epochs_per_s']:.1f} epochs/s); pagerank cold "
              f"{dyn['pagerank_cold']['wall_s']:.3f}s vs warm "
              f"{dyn['pagerank_warm']['wall_s']:.3f}s "
              f"({dyn['speedup_warm_over_scratch']:.2f}x, supersteps "
              f"{dyn['pagerank_cold']['supersteps']} -> "
              f"{dyn['pagerank_warm']['supersteps']})")
    tel = report["cases"].get("telemetry_overhead")
    if tel is not None:
        print(f"[bench_hotpaths] telemetry: disabled {tel['disabled_s']:.3f}s, "
              f"enabled {tel['enabled_s']:.3f}s "
              f"({tel['overhead_enabled_over_disabled']:.3f}x)")
    if args.max_telemetry_overhead is not None:
        if tel is None:
            print("[bench_hotpaths] --max-telemetry-overhead needs the "
                  "telemetry_overhead case", file=sys.stderr)
            return 2
        got = tel["overhead_enabled_over_disabled"]
        if got > args.max_telemetry_overhead:
            print(f"[bench_hotpaths] FAIL: enabled telemetry costs {got:.3f}x "
                  f"> allowed {args.max_telemetry_overhead}x", file=sys.stderr)
            return 1
        print(f"[bench_hotpaths] telemetry overhead gate passed "
              f"({got:.3f}x <= {args.max_telemetry_overhead}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
