"""Figure 7 — node, message, and total-load distribution per rank.

Paper setting: n = 10^8, x = 10, P = 160; four panels: (a) nodes per rank,
(b) outgoing request messages, (c) incoming request messages, (d) total
load, for UCP/LCP/RRP.  Scaled-down setting: n = 2·10^5, x = 10, P = 160 —
the per-rank *patterns* are size-independent.

Reproduction targets:
  (a) UCP/RRP flat; LCP increasing with rank;
  (b) outgoing ∝ nodes per rank; rank 0 sends none under UCP/LCP;
  (c) incoming decreasing with rank under UCP/LCP (Lemma 3.4), flat for RRP;
  (d) RRP nearly perfectly balanced, LCP good, UCP poor.

Also checks Lemma 3.4 quantitatively against the measured incoming counts.
"""

import numpy as np
import pytest

from repro import generate
from repro.bench.reporting import format_table
from repro.core.load_model import expected_incoming_messages
from repro.core.partitioning import make_partition

N = 200_000
X = 10
P = 160
SEED = 7


@pytest.fixture(scope="module")
def runs():
    out = {}
    for scheme in ("ucp", "lcp", "rrp"):
        out[scheme] = generate(n=N, x=X, ranks=P, scheme=scheme, seed=SEED)
    return out


def test_fig7_report(report, runs):
    sample = list(range(0, P, 20)) + [P - 1]
    for panel, attr in (
        ("7a: nodes per processor", "nodes_per_rank"),
        ("7b: outgoing request messages", "requests_sent"),
        ("7c: incoming request messages", "requests_received"),
        ("7d: total load", "total_load_per_rank"),
    ):
        rows = []
        for r in sample:
            rows.append((
                r,
                int(getattr(runs["ucp"], attr)[r]),
                int(getattr(runs["lcp"], attr)[r]),
                int(getattr(runs["rrp"], attr)[r]),
            ))
        report.emit(format_table(
            ["rank", "UCP", "LCP", "RRP"],
            rows,
            title=f"Figure {panel}, n={N:.0e}, x={X}, P={P}",
        ))
    report.emit(
        "total-load imbalance (max/mean): "
        + ", ".join(f"{s}={runs[s].imbalance:.3f}" for s in ("ucp", "lcp", "rrp"))
    )


def test_fig7a_node_distribution(runs):
    assert runs["ucp"].nodes_per_rank.std() <= 1
    assert runs["rrp"].nodes_per_rank.std() <= 1
    lcp = runs["lcp"].nodes_per_rank
    assert lcp[0] < lcp[-1]


def test_fig7b_rank0_sends_nothing_consecutive(runs):
    """UCP/LCP rank 0 owns the lowest nodes: all its k-draws are local."""
    assert runs["ucp"].requests_sent[0] == 0
    assert runs["lcp"].requests_sent[0] == 0
    assert runs["rrp"].requests_sent[0] > 0


def test_fig7c_incoming_decreasing_consecutive(runs):
    """Lemma 3.4: low ranks receive more requests under UCP."""
    inc = runs["ucp"].requests_received.astype(float)
    # compare first and last quartile means
    q = P // 4
    assert inc[:q].mean() > 2 * inc[-q:].mean()
    # RRP spreads them evenly
    inc_rrp = runs["rrp"].requests_received.astype(float)
    assert inc_rrp[:q].mean() < 1.15 * inc_rrp[-q:].mean()


def test_fig7d_total_load_ordering(runs):
    """RRP ~ perfectly balanced; LCP good; UCP poor (the paper's summary)."""
    assert runs["rrp"].imbalance < 1.05
    assert runs["rrp"].imbalance <= runs["lcp"].imbalance <= runs["ucp"].imbalance
    assert runs["ucp"].imbalance > 1.5


def test_lemma34_quantitative(runs, report):
    """Measured incoming requests track (1-p)(H_{n-1} - H_k) per UCP block."""
    part = make_partition("ucp", N, P)
    ks = np.arange(1, N)
    em = expected_incoming_messages(ks, N, p=0.5)
    measured = runs["ucp"].requests_received.astype(float)
    expected = np.empty(P)
    for r in range(P):
        lo, hi = part.partition_range(r)
        block = em[(ks >= max(lo, X)) & (ks < hi)].sum()
        expected[r] = block * X * (P - 1) / P  # x slots, remote fraction
    # relative agreement over the heavy half of the curve
    half = P // 2
    rel = np.abs(measured[:half] - expected[:half]) / expected[:half]
    report.emit(
        f"Lemma 3.4 check (UCP, first {half} ranks): median rel. dev. "
        f"{np.median(rel):.2%}"
    )
    assert np.median(rel) < 0.25


@pytest.mark.benchmark(group="fig7")
def test_bench_load_run(benchmark):
    result = benchmark.pedantic(
        lambda: generate(n=50_000, x=X, ranks=P, scheme="rrp", seed=SEED),
        rounds=1, iterations=1,
    )
    assert result.validate().ok
