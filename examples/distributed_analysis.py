#!/usr/bin/env python
"""Scenario: analyse the network without ever gathering it.

The paper's Section 3.2 anticipates exactly this consumer: "Many network
analysis algorithms require partitioning the graph ... Our different
partitioning schemes can be used to satisfy many such requirements."  This
example runs the full distributed pipeline:

1. generate a PA network with the parallel algorithm (per-rank edge lists);
2. hand those per-rank edges to the distributed graph layer — no global
   gather ever happens;
3. run BFS, connected components, PageRank, and the degree histogram as
   BSP programs over the same partition;
4. render the execution Gantt showing per-rank utilisation.

Run:  python examples/distributed_analysis.py  [--small]
"""

import sys

import numpy as np

from repro.core.parallel_pa_general import run_parallel_pa
from repro.core.partitioning import make_partition
from repro.distgraph import (
    DistributedGraph,
    distributed_bfs,
    distributed_components,
    distributed_degree_histogram,
    distributed_pagerank,
)
from repro.mpsim.bsp import BSPEngine
from repro.mpsim.trace import Tracer


def main() -> None:
    small = "--small" in sys.argv
    n, x, ranks = (4_000, 3, 4) if small else (60_000, 4, 16)

    print(f"1. Generating PA network: n={n:,}, x={x} on {ranks} ranks (RRP)")
    part = make_partition("rrp", n, ranks)
    _, engine, programs = run_parallel_pa(n, x, part, seed=29)
    print(f"   done in {engine.supersteps} supersteps; edges stay per-rank")

    print("2. Building the distributed adjacency (one scatter exchange)")
    graph = DistributedGraph.from_rank_edges(
        [prog.local_edges() for prog in programs], part
    )
    print(f"   {graph!r}")

    print("3. Distributed kernels:")
    dist, eng = distributed_bfs(graph, 0)
    print(f"   BFS from node 0: eccentricity {int(dist.max())} "
          f"({eng.supersteps} supersteps) — ultra-small world")

    labels, eng = distributed_components(graph)
    print(f"   components: {len(np.unique(labels))} "
          f"({eng.supersteps} supersteps) — PA graphs are connected")

    pr, eng = distributed_pagerank(graph, iterations=20)
    hubs = np.argsort(pr)[-3:][::-1]
    print("   PageRank top-3: "
          + ", ".join(f"node {int(h)} ({pr[h]:.2e})" for h in hubs))

    hist, eng = distributed_degree_histogram(graph)
    tail = int(np.flatnonzero(hist)[-1])
    print(f"   degree histogram: max degree {tail}, "
          f"{int(hist[x])} nodes at the minimum degree {x}")

    print("4. Execution timeline of the BFS (shade = rank utilisation):")
    from repro.distgraph.bfs import _BFSProgram

    bfs_programs = [_BFSProgram(r, graph, 0) for r in range(ranks)]
    tracer = Tracer()
    BSPEngine(ranks).run(bfs_programs, tracer=tracer)
    print(tracer.gantt(max_width=48))


if __name__ == "__main__":
    main()
