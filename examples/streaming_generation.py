#!/usr/bin/env python
"""Scenario: generate a huge network on the fly, analyse in one pass.

Section 3.2: "Some network analysts may prefer to generate networks on the
fly and analyze it without performing disk I/O."  This example streams a
two-million-node preferential-attachment network in fixed-size blocks —
edges are consumed and discarded as they are produced — while a one-pass
accumulator maintains the degree statistics.  The full edge list
(~32 MB here, ~800 GB at the paper's 50 B-edge scale) never exists.

Run:  python examples/streaming_generation.py  [--small]
"""

import sys
import time

import numpy as np

from repro.core.streaming import StreamingDegreeAccumulator, stream_copy_model_x1
from repro.graph.powerlaw import fit_powerlaw


def main() -> None:
    small = "--small" in sys.argv
    n = 100_000 if small else 2_000_000
    block = 65_536

    print(f"Streaming an n={n:,} PA network in {block:,}-node blocks")
    acc = StreamingDegreeAccumulator(n)
    t0 = time.perf_counter()
    blocks = 0
    peak_edges_held = 0
    for u, v in stream_copy_model_x1(n, seed=99, block_size=block):
        acc.update(u, v)
        blocks += 1
        peak_edges_held = max(peak_edges_held, len(u))
    dt = time.perf_counter() - t0

    print(f"  blocks processed:     {blocks}")
    print(f"  edges streamed:       {acc.num_edges:,} "
          f"({acc.num_edges / dt / 1e6:.2f} M edges/s)")
    print(f"  peak edges in memory: {peak_edges_held:,} "
          f"(vs {acc.num_edges:,} if materialised)")
    print(f"  degree range:         1 .. {acc.max_degree} "
          f"(mean {acc.mean_degree:.3f})")

    fit = fit_powerlaw(acc.degrees, k_min=2)
    print(f"  power-law fit:        gamma = {fit.gamma:.2f} "
          "(x=1 copy model at p=1/2: gamma -> 3)")

    k, pk = acc.distribution()
    head = ", ".join(f"P({int(ki)})={pi:.3f}" for ki, pi in zip(k[:4], pk[:4]))
    print(f"  distribution head:    {head}")

    # the stream is bit-identical to the batch generator for the same seed,
    # so analyses are exactly reproducible later if the graph is re-made
    print("  reproducible:         same seed regenerates the identical stream")


if __name__ == "__main__":
    main()
