#!/usr/bin/env python
"""Quickstart: generate a scale-free network on a simulated cluster.

Runs the paper's parallel preferential-attachment algorithm (Algorithm 3.2)
on 16 simulated MPI ranks with round-robin partitioning, validates every
structural invariant, and fits the power-law exponent the paper reports
(Figure 4: gamma ~ 2.7).

Run:  python examples/quickstart.py
"""

import sys
from repro import fit_powerlaw, generate


def main() -> None:
    small = "--small" in sys.argv
    n, x, ranks = (5_000, 4, 4) if small else (100_000, 4, 16)

    print(f"Generating PA network: n={n:,}, x={x}, {ranks} simulated ranks (RRP)")
    result = generate(n=n, x=x, ranks=ranks, scheme="rrp", seed=42)

    print(f"  edges:            {len(result.edges):,}")
    print(f"  BSP supersteps:   {result.supersteps}")
    print(f"  simulated time:   {result.simulated_time * 1e3:.1f} ms on the virtual cluster")
    print(f"  load imbalance:   {result.imbalance:.3f} (max/mean, 1.0 = perfect)")

    report = result.validate()
    report.raise_if_failed()
    print("  validation:       all invariants hold "
          "(no duplicates/self-loops, x distinct targets per node)")

    degrees = result.degrees()
    print(f"  degree range:     {degrees.min()} .. {degrees.max()} "
          f"(mean {degrees.mean():.2f})")

    fit = fit_powerlaw(degrees, k_min=2 * x)
    print(f"  power-law fit:    gamma = {fit.gamma:.2f} "
          f"(paper reports 2.7 at n=1e9)")

    # The same graph is reproducible from the same seed and configuration.
    again = generate(n=n, x=x, ranks=ranks, scheme="rrp", seed=42)
    assert again.edges == result.edges
    print("  reproducibility:  identical graph regenerated from seed 42")


if __name__ == "__main__":
    main()
