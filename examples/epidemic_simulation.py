#!/usr/bin/env python
"""Scenario: epidemic spread on a generated contact network.

NDSSL — the authors' lab — builds exactly this pipeline: generate a massive
synthetic contact network, then run epidemic dynamics on it.  This example
generates a PA contact network with the parallel algorithm, writes it
per-rank to disk (the paper's shared-file-system output model), reloads it,
and runs a discrete-time SIR process, comparing spread from a random seed
case versus a hub seed case.

With ``--churn`` the contact network itself evolves while the epidemic
runs: a seeded :class:`repro.dyngraph.ChurnSchedule` applies arrivals,
departures, deletions, and rewires between bursts of SIR steps, so the
disease spreads over a different (but deterministically replayable)
network each epoch.

Run:  python examples/epidemic_simulation.py [--small] [--churn]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import generate
from repro.graph.io import merge_rank_files, write_rank_edges
from repro.graph.metrics import adjacency_from_edges

S, I, R = 0, 1, 2


def sir_step(indptr, nbrs, state, beta, gamma, rng):
    """One synchronous SIR step, fully vectorized; returns newly infected count.

    Every infected node's neighbourhood is gathered in one shot (CSR
    fancy-indexing, no per-node Python loop); each susceptible contact
    rolls an independent transmission with probability ``beta``, then the
    infected recover with probability ``gamma``.
    """
    infected = np.flatnonzero(state == I)
    if not len(infected):
        return 0
    counts = indptr[infected + 1] - indptr[infected]
    total = int(counts.sum())
    newly = 0
    if total:
        # gather all infected nodes' neighbours at once
        offsets = np.repeat(indptr[infected] - np.concatenate(
            ([0], np.cumsum(counts)[:-1])), counts)
        neigh = nbrs[np.arange(total) + offsets]
        sus = neigh[state[neigh] == S]
        hit = np.unique(sus[rng.random(len(sus)) < beta])
        state[hit] = I
        newly = len(hit)
    recover = infected[rng.random(len(infected)) < gamma]
    state[recover] = R
    return newly


def sir(indptr, nbrs, n, patient_zero, beta, gamma, rng, max_steps=100):
    """Discrete-time SIR; returns (peak_infected, total_ever_infected, steps)."""
    state = np.zeros(n, dtype=np.int8)
    state[patient_zero] = I
    peak, ever = 1, 1
    for step in range(1, max_steps + 1):
        if not (state == I).any():
            return peak, ever, step
        ever += sir_step(indptr, nbrs, state, beta, gamma, rng)
        peak = max(peak, int((state == I).sum()))
    return peak, ever, max_steps


def sir_over_churn(store, patient_zero, beta, gamma, rng, steps_per_epoch=4):
    """SIR over an evolving network: one snapshot's graph per epoch.

    Node ids are never reused by the churn machinery, so infection state
    carries across epochs by id: arrivals enter susceptible, departed
    nodes keep their state but have no contacts (they are isolates in
    later snapshots).  Returns (peak, ever, per-epoch infected counts).
    """
    epochs = store.epochs()
    final_n = store.load(epochs[-1]).n
    state = np.zeros(final_n, dtype=np.int8)
    state[patient_zero] = I
    peak, ever = 1, 1
    curve = []
    for epoch in epochs:
        snap = store.load(epoch)
        indptr, nbrs = adjacency_from_edges(snap.state().edgelist(), final_n)
        for _ in range(steps_per_epoch):
            ever += sir_step(indptr, nbrs, state, beta, gamma, rng)
            peak = max(peak, int((state == I).sum()))
        curve.append(int((state == I).sum()))
    return peak, ever, curve


def run_churn(n: int, beta: float, gamma: float, small: bool) -> None:
    from repro.dyngraph import ChurnSchedule, evolve

    epochs = 6 if small else 10
    schedule = ChurnSchedule(
        seed=11,
        epochs=epochs,
        arrival_rate=max(n // 100, 4),
        attach_x=4,
        departure_prob=0.01,
        deletion_rate=max(n // 200, 2),
        rewire_rate=max(n // 200, 2),
    )
    print(f"\nEvolving the contact network under churn "
          f"({epochs} epochs, ~{schedule.arrival_rate:.0f} arrivals/epoch) ...")
    base = generate(n=n, x=4, ranks=1, engine="sequential", seed=11)
    with tempfile.TemporaryDirectory() as snapdir:
        res = evolve(base.edges, base.n, schedule, snapshot_dir=snapdir)
        store = res.snapshots
        hub = int(np.argmax(store.load(0).state().degrees()))
        peak, ever, curve = sir_over_churn(
            store, hub, beta, gamma, np.random.default_rng(100))
        final = res.state
        print(f"  network: n={n:,} -> {final.n:,} ids "
              f"({final.num_alive:,} alive), m={base.edges.num_edges:,} -> "
              f"{final.num_edges:,}")
        print(f"  epidemic over the evolving network (hub seed): "
              f"peak {peak:,}, attack size {ever / final.n:.1%}")
        print("  infected at each epoch boundary: "
              + " ".join(f"{c:,}" for c in curve))
    print("Churn reshapes the hub structure while the epidemic runs; the "
          "schedule is seeded, so the whole co-evolution replays exactly.")


def main() -> None:
    small = "--small" in sys.argv
    churn = "--churn" in sys.argv
    n, x, ranks = (3_000, 4, 4) if small else (30_000, 4, 8)
    print(f"Generating contact network: n={n:,}, x={x}, {ranks} ranks")
    result = generate(n=n, x=x, ranks=ranks, scheme="rrp", seed=11)
    result.validate().raise_if_failed()

    # Per-rank disk output, as the MPI ranks would write on a shared FS.
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        from repro.core.partitioning import make_partition
        from repro.core.parallel_pa_general import run_parallel_pa

        part = make_partition("rrp", n, ranks)
        _, _, programs = run_parallel_pa(n, x, part, seed=11)
        for r, prog in enumerate(programs):
            path = write_rank_edges(tmp_path, r, ranks, prog.local_edges())
        print(f"wrote {ranks} rank files under {tmp_path.name}/ "
              f"(e.g. {path.name})")
        edges = merge_rank_files(tmp_path, ranks)
    print(f"reloaded {len(edges):,} edges from disk")

    indptr, nbrs = adjacency_from_edges(edges, n)
    degrees = np.diff(indptr)
    rng = np.random.default_rng(11)

    beta, gamma = 0.08, 0.35
    print(f"\nSIR dynamics: transmission beta={beta}, recovery gamma={gamma}")

    random_seed_case = int(rng.integers(0, n))
    hub = int(np.argmax(degrees))
    for label, p0 in (("random member", random_seed_case), ("top hub", hub)):
        peaks, evers = [], []
        for rep in range(5):
            peak, ever, _ = sir(indptr, nbrs, n, p0, beta, gamma,
                                np.random.default_rng(100 + rep))
            peaks.append(peak)
            evers.append(ever)
        print(f"  patient zero = {label:>13} (degree {degrees[p0]:>4}): "
              f"peak infected {np.mean(peaks):>8.0f}, "
              f"attack size {np.mean(evers) / n:.1%}")

    print("\nHub seeding ignites faster/larger outbreaks — why hub structure "
          "matters and why generators must reproduce it faithfully.")

    if churn:
        run_churn(n, beta, gamma, small)


if __name__ == "__main__":
    main()
