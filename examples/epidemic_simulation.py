#!/usr/bin/env python
"""Scenario: epidemic spread on a generated contact network.

NDSSL — the authors' lab — builds exactly this pipeline: generate a massive
synthetic contact network, then run epidemic dynamics on it.  This example
generates a PA contact network with the parallel algorithm, writes it
per-rank to disk (the paper's shared-file-system output model), reloads it,
and runs a discrete-time SIR process, comparing spread from a random seed
case versus a hub seed case.

Run:  python examples/epidemic_simulation.py
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import generate
from repro.graph.io import merge_rank_files, write_rank_edges
from repro.graph.metrics import adjacency_from_edges


def sir(indptr, nbrs, n, patient_zero, beta, gamma, rng, max_steps=100):
    """Discrete-time SIR; returns (peak_infected, total_ever_infected, steps)."""
    S, I, R = 0, 1, 2
    state = np.zeros(n, dtype=np.int8)
    state[patient_zero] = I
    peak, ever = 1, 1
    for step in range(1, max_steps + 1):
        infected = np.flatnonzero(state == I)
        if not len(infected):
            return peak, ever, step
        for v in infected.tolist():
            neigh = nbrs[indptr[v]:indptr[v + 1]]
            sus = neigh[state[neigh] == S]
            hit = sus[rng.random(len(sus)) < beta]
            state[hit] = I
            ever += len(np.unique(hit))
        recover = infected[rng.random(len(infected)) < gamma]
        state[recover] = R
        peak = max(peak, int((state == I).sum()))
    return peak, ever, max_steps


def main() -> None:
    small = "--small" in sys.argv
    n, x, ranks = (3_000, 4, 4) if small else (30_000, 4, 8)
    print(f"Generating contact network: n={n:,}, x={x}, {ranks} ranks")
    result = generate(n=n, x=x, ranks=ranks, scheme="rrp", seed=11)
    result.validate().raise_if_failed()

    # Per-rank disk output, as the MPI ranks would write on a shared FS.
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        from repro.core.partitioning import make_partition
        from repro.core.parallel_pa_general import run_parallel_pa

        part = make_partition("rrp", n, ranks)
        _, _, programs = run_parallel_pa(n, x, part, seed=11)
        for r, prog in enumerate(programs):
            path = write_rank_edges(tmp_path, r, ranks, prog.local_edges())
        print(f"wrote {ranks} rank files under {tmp_path.name}/ "
              f"(e.g. {path.name})")
        edges = merge_rank_files(tmp_path, ranks)
    print(f"reloaded {len(edges):,} edges from disk")

    indptr, nbrs = adjacency_from_edges(edges, n)
    degrees = np.diff(indptr)
    rng = np.random.default_rng(11)

    beta, gamma = 0.08, 0.35
    print(f"\nSIR dynamics: transmission beta={beta}, recovery gamma={gamma}")

    random_seed_case = int(rng.integers(0, n))
    hub = int(np.argmax(degrees))
    for label, p0 in (("random member", random_seed_case), ("top hub", hub)):
        peaks, evers = [], []
        for rep in range(5):
            peak, ever, _ = sir(indptr, nbrs, n, p0, beta, gamma,
                                np.random.default_rng(100 + rep))
            peaks.append(peak)
            evers.append(ever)
        print(f"  patient zero = {label:>13} (degree {degrees[p0]:>4}): "
              f"peak infected {np.mean(peaks):>8.0f}, "
              f"attack size {np.mean(evers) / n:.1%}")

    print("\nHub seeding ignites faster/larger outbreaks — why hub structure "
          "matters and why generators must reproduce it faithfully.")


if __name__ == "__main__":
    main()
