#!/usr/bin/env python
"""Scenario: choosing a partitioning scheme for your cluster run.

Reproduces the paper's Section 4.6 methodology at laptop scale: run the
same generation under UCP, LCP, and RRP and compare per-rank node counts,
request-message traffic, and total load — then look at what that does to
the simulated runtime.  Ends with the rule of thumb the paper's results
support: RRP when you can, LCP when consecutive node ranges are required.

Run:  python examples/partitioning_study.py
"""

import sys
import numpy as np

from repro import generate
from repro.bench.reporting import format_table


def main() -> None:
    small = "--small" in sys.argv
    n, x, ranks = (5_000, 10, 8) if small else (50_000, 10, 32)
    print(f"Comparing partitioning schemes: n={n:,}, x={x}, P={ranks}\n")

    results = {}
    for scheme in ("ucp", "lcp", "rrp"):
        results[scheme] = generate(n=n, x=x, ranks=ranks, scheme=scheme, seed=3)
        results[scheme].validate().raise_if_failed()

    rows = []
    for scheme, r in results.items():
        loads = r.total_load_per_rank
        rows.append((
            scheme.upper(),
            int(r.nodes_per_rank.min()), int(r.nodes_per_rank.max()),
            int(r.requests_received.max()),
            int(loads.max()), f"{r.imbalance:.3f}",
            f"{r.simulated_time * 1e3:.1f}",
        ))
    print(format_table(
        ["scheme", "min nodes", "max nodes", "max incoming req",
         "max total load", "imbalance", "sim time (ms)"],
        rows,
    ))

    ucp, rrp = results["ucp"], results["rrp"]
    print(f"\nUCP rank 0 receives {int(ucp.requests_received[0]):,} requests; "
          f"its last rank only {int(ucp.requests_received[-1]):,} "
          "(Lemma 3.4: low node ids attract requests).")
    print(f"RRP spreads incoming requests within "
          f"{np.ptp(rrp.requests_received):,} records of each other across ranks.")

    speedup_gain = ucp.simulated_time / rrp.simulated_time
    print(f"\nSwitching UCP -> RRP cuts the simulated runtime by "
          f"{(1 - 1 / speedup_gain):.0%} at P={ranks}.")
    print("\nRule of thumb (paper Section 4.6): use RRP for balance; "
          "use LCP when downstream analysis needs consecutive node ranges "
          "per rank; avoid UCP for preferential-attachment workloads.")


if __name__ == "__main__":
    main()
