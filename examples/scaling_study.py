#!/usr/bin/env python
"""Scenario: capacity planning — how many ranks do I need?

Uses the scaling drivers to answer the practical question the paper's
evaluation answers for its cluster: given a target network size and a
machine profile, how does runtime fall with processor count, and where does
communication stop it?  Sweeps strong scaling under two machine presets and
prints the knee of each curve, then extrapolates to the paper's headline
configuration.

Run:  python examples/scaling_study.py
"""

import sys
from repro.bench.reporting import format_table
from repro.bench.scaling import extrapolate_large_network, strong_scaling
from repro.mpsim.costmodel import PRESETS


def main() -> None:
    small = "--small" in sys.argv
    n, x = (8_000, 6) if small else (80_000, 6)
    ranks = [1, 4, 16] if small else [1, 4, 16, 64, 256]

    print(f"Strong scaling study: n={n:,}, x={x} (RRP)\n")
    rows = []
    curves = {}
    for preset_name in ("sc13-sandybridge-qdr", "slow-network"):
        preset = PRESETS[preset_name]
        curves[preset_name] = strong_scaling(
            n, x, ranks, schemes=("rrp",), seed=0, cost_model=preset.cost
        )["rrp"]
    for i, P in enumerate(ranks):
        rows.append((
            P,
            f"{curves['sc13-sandybridge-qdr'][i].speedup:.1f}",
            f"{curves['slow-network'][i].speedup:.1f}",
        ))
    print(format_table(
        ["P", "speedup (InfiniBand-class)", "speedup (Ethernet-class)"],
        rows,
    ))

    fast = curves["sc13-sandybridge-qdr"]
    # efficiency relative to the P=1 run of the *parallel* code, so constant
    # per-node overheads of the parallel algorithm don't masquerade as
    # communication cost
    t1 = fast[0].simulated_time
    eff = [(t1 / pt.simulated_time) / pt.ranks for pt in fast]
    knee = next((pt.ranks for pt, e in zip(fast, eff) if e < 0.5), ranks[-1])
    print(f"\nParallel efficiency (vs the P=1 run) drops below 50% around "
          f"P={knee} at this problem size — weak scaling (grow n with P) is "
          "the regime the paper targets.")

    print("\nExtrapolating the paper's headline configuration "
          "(n=1e9, x=5, P=768, RRP):")
    est = extrapolate_large_network(n_sample=100_000, seed=0)
    print(f"  cost-model estimate: {est['estimated_time_target']:.0f} s; "
          f"paper measured: {est['paper_time_target']:.0f} s "
          "(same order of magnitude; see EXPERIMENTS.md for the gap analysis)")


if __name__ == "__main__":
    main()
