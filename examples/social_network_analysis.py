#!/usr/bin/env python
"""Scenario: structural analysis of a synthetic social network.

The paper's introduction motivates massive PA generation with the study of
social and infrastructure networks.  This example plays the downstream
network scientist: generate a synthetic social graph, then measure the
structural fingerprints scale-free networks are known for —

* heavy-tailed degree distribution (hubs),
* ultra-small world distances,
* low clustering that the pure BA process produces,
* slight degree disassortativity,
* full connectivity and hub-dominated robustness.

Run:  python examples/social_network_analysis.py
"""

import sys
import numpy as np

from repro import generate
from repro.graph.degree import ccdf
from repro.graph.metrics import (
    degree_assortativity,
    largest_component_fraction,
    sampled_clustering_coefficient,
    sampled_mean_shortest_path,
)


def main() -> None:
    small = "--small" in sys.argv
    n, x = (5_000, 5) if small else (50_000, 5)
    print(f"Synthetic social network: n={n:,} members, {x} ties per newcomer")
    result = generate(n=n, x=x, ranks=8, scheme="rrp", seed=7)
    result.validate().raise_if_failed()
    edges = result.edges
    degrees = result.degrees()
    rng = np.random.default_rng(7)

    # --- hubs -------------------------------------------------------------
    top = np.argsort(degrees)[-5:][::-1]
    print("\nTop-5 hubs (node id, degree):")
    for node in top:
        print(f"  member {node:>6}  degree {degrees[node]:>5}  "
              f"({degrees[node] / (2 * len(edges)) :.2%} of all ties)")

    k, tail = ccdf(degrees)
    k99 = k[np.searchsorted(-tail, -0.01)]
    print(f"1% of members have degree >= {k99}; median degree is "
          f"{int(np.median(degrees))} — the classic heavy tail.")

    # --- small world ------------------------------------------------------
    dist = sampled_mean_shortest_path(edges, n, sources=6, rng=rng)
    print(f"\nMean separation: {dist:.2f} hops "
          f"(log n / log log n ~ {np.log(n) / np.log(np.log(n)):.1f})")

    # --- clustering and mixing ---------------------------------------------
    cc = sampled_clustering_coefficient(edges, n, samples=2_000, rng=rng)
    assort = degree_assortativity(edges, n)
    print(f"Clustering coefficient (sampled): {cc:.4f} "
          "(pure PA yields low clustering)")
    print(f"Degree assortativity: {assort:+.4f} "
          "(BA-style graphs are weakly disassortative)")

    # --- robustness --------------------------------------------------------
    frac = largest_component_fraction(edges, n)
    print(f"\nConnectivity: largest component holds {frac:.1%} of members")

    # random failures vs targeted attack on hubs (Albert et al. motif)
    frac_nodes = n // 100
    random_removed = rng.choice(n, frac_nodes, replace=False)
    hubs_removed = np.argsort(degrees)[-frac_nodes:]
    for label, removed_nodes in (("1% random members", random_removed),
                                 ("the top-1% hubs  ", hubs_removed)):
        comp, ties_lost = _damage(edges, n, removed_nodes)
        print(f"After removing {label}: {ties_lost:.1%} of ties lost, "
              f"giant component {comp:.1%}")
    print("-> random failures barely register, while hubs carry a "
          "disproportionate share of ties: the scale-free signature "
          "(Albert, Jeong & Barabasi 2000).")


def _damage(edges, n, remove) -> tuple[float, float]:
    removed = np.zeros(n, dtype=bool)
    removed[remove] = True
    keep = ~(removed[edges.sources] | removed[edges.targets])
    from repro.graph.edgelist import EdgeList
    surviving = EdgeList.from_arrays(edges.sources[keep], edges.targets[keep])
    return (
        largest_component_fraction(surviving, n),
        1.0 - keep.mean(),
    )


if __name__ == "__main__":
    main()
