"""Statistical acceptance tests: the parallel generator's output law.

These tests compare whole degree distributions (chi-square over binned
counts and tail-mass checks) between the parallel algorithms and reference
sequential implementations.  They are the repository's strongest evidence of
*exactness* — the property the paper claims over Yoo–Henderson.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro import generate
from repro.graph.degree import degrees_from_edges
from repro.seq.batagelj_brandes import batagelj_brandes


def binned_counts(deg: np.ndarray, edges: np.ndarray) -> np.ndarray:
    counts, _ = np.histogram(deg, bins=edges)
    return counts


class TestDegreeLawX1:
    def test_chi_square_vs_sequential(self):
        """Parallel x=1 degree histogram is consistent with sequential's."""
        n, reps = 15_000, 4
        bins = np.array([1, 2, 3, 4, 6, 9, 14, 21, 1_000_000])
        par = np.zeros(len(bins) - 1)
        seq = np.zeros(len(bins) - 1)
        for s in range(reps):
            rp = generate(n, x=1, ranks=8, scheme="rrp", seed=s)
            par += binned_counts(rp.degrees(), bins)
            rs = generate(n, x=1, ranks=1, engine="sequential", seed=1000 + s)
            seq += binned_counts(rs.degrees(), bins)
        # two-sample chi-square on contingency table
        table = np.vstack([par, seq])
        keep = table.sum(axis=0) > 10
        _, pvalue, _, _ = sps.chi2_contingency(table[:, keep])
        assert pvalue > 1e-3, pvalue


class TestDegreeLawGeneral:
    def test_chi_square_vs_batagelj_brandes(self):
        """Parallel x=4 matches the *BA* reference (copy model at p=1/2)."""
        n, x, reps = 10_000, 4, 3
        bins = np.array([4, 5, 6, 8, 11, 16, 24, 40, 1_000_000])
        par = np.zeros(len(bins) - 1)
        ref = np.zeros(len(bins) - 1)
        for s in range(reps):
            rp = generate(n, x=x, ranks=8, scheme="rrp", seed=s)
            par += binned_counts(rp.degrees(), bins)
            ref += binned_counts(
                degrees_from_edges(batagelj_brandes(n, x=x, seed=2000 + s), n), bins
            )
        table = np.vstack([par, ref])
        keep = table.sum(axis=0) > 10
        _, pvalue, _, _ = sps.chi2_contingency(table[:, keep])
        assert pvalue > 1e-3, pvalue


class TestPowerLawExponent:
    def test_gamma_near_paper_value(self):
        """Paper Figure 4: gamma measured at 2.7 for n=1e9, x=4.

        At our scale the MLE lands near 2.7-3.0; assert the window.
        """
        from repro.graph.powerlaw import fit_powerlaw

        n, x = 60_000, 4
        r = generate(n, x=x, ranks=16, scheme="rrp", seed=3)
        fit = fit_powerlaw(r.degrees(), k_min=2 * x)
        assert 2.4 < fit.gamma < 3.4, fit

    def test_heavy_tail_present(self):
        n, x = 30_000, 4
        r = generate(n, x=x, ranks=8, seed=4)
        deg = r.degrees()
        assert deg.max() > 30 * deg.mean()


class TestCommfreeEquivalence:
    """The recomputation-based generator draws from the same law as the
    message-passing copy model — different RNG consumption, same process."""

    def test_chi_square_vs_copy_model_x1(self):
        n, reps = 15_000, 4
        bins = np.array([1, 2, 3, 4, 6, 9, 14, 21, 1_000_000])
        cf = np.zeros(len(bins) - 1)
        cm = np.zeros(len(bins) - 1)
        for s in range(reps):
            rc = generate(n, x=1, generator="commfree", seed=s)
            cf += binned_counts(rc.degrees(), bins)
            rm = generate(n, x=1, ranks=1, engine="sequential", seed=3000 + s)
            cm += binned_counts(rm.degrees(), bins)
        table = np.vstack([cf, cm])
        keep = table.sum(axis=0) > 10
        _, pvalue, _, _ = sps.chi2_contingency(table[:, keep])
        assert pvalue > 1e-3, pvalue

    def test_chi_square_general_x_vs_copy_model(self):
        n, x, reps = 10_000, 4, 3
        bins = np.array([4, 5, 6, 8, 11, 16, 24, 40, 1_000_000])
        cf = np.zeros(len(bins) - 1)
        cm = np.zeros(len(bins) - 1)
        for s in range(reps):
            rc = generate(n, x=x, generator="commfree", seed=s)
            cf += binned_counts(rc.degrees(), bins)
            rm = generate(n, x=x, ranks=8, scheme="rrp", seed=4000 + s)
            cm += binned_counts(rm.degrees(), bins)
        table = np.vstack([cf, cm])
        keep = table.sum(axis=0) > 10
        _, pvalue, _, _ = sps.chi2_contingency(table[:, keep])
        assert pvalue > 1e-3, pvalue

    def test_gamma_in_paper_window(self):
        from repro.graph.powerlaw import fit_powerlaw

        n, x = 60_000, 4
        r = generate(n, x=x, generator="commfree", engine="bsp", ranks=8,
                     seed=3)
        fit = fit_powerlaw(r.degrees(), k_min=2 * x)
        assert 2.4 < fit.gamma < 3.4, fit

    def test_tail_mass_matches_copy_model(self):
        n, x = 12_000, 2
        rc = generate(n, x=x, generator="commfree", seed=6)
        rm = generate(n, x=x, ranks=12, scheme="rrp", seed=6)
        tail_cf = (rc.degrees() >= 10).mean()
        tail_cm = (rm.degrees() >= 10).mean()
        assert abs(tail_cf - tail_cm) < 0.01


class TestSchemeInvariance:
    @pytest.mark.parametrize("scheme", ["ucp", "lcp", "rrp"])
    def test_mean_degree_exact(self, scheme):
        n, x = 8_000, 3
        r = generate(n, x=x, ranks=10, scheme=scheme, seed=5)
        deg = r.degrees()
        expected_mean = 2 * (x * (x - 1) // 2 + (n - x) * x) / n
        assert deg.mean() == pytest.approx(expected_mean)

    def test_schemes_share_tail_mass(self):
        n, x = 12_000, 2
        tails = {}
        for scheme in ("ucp", "lcp", "rrp"):
            r = generate(n, x=x, ranks=12, scheme=scheme, seed=6)
            tails[scheme] = (r.degrees() >= 10).mean()
        assert max(tails.values()) - min(tails.values()) < 0.01
