"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestGenerate:
    def test_generate_binary_and_validate(self, tmp_path, capsys):
        out = tmp_path / "g.bin"
        rc = main([
            "generate", "-n", "500", "-x", "3", "-P", "4",
            "--scheme", "rrp", "--seed", "1", "--validate", "-o", str(out),
        ])
        assert rc == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "validation: ok" in captured
        assert "m=1494" in captured

    def test_generate_text_output(self, tmp_path):
        out = tmp_path / "g.txt"
        rc = main([
            "generate", "-n", "100", "-P", "2", "--seed", "0",
            "--text", "-o", str(out),
        ])
        assert rc == 0
        assert len(out.read_text().splitlines()) == 99

    def test_generate_event_engine(self, capsys):
        rc = main(["generate", "-n", "80", "-x", "2", "-P", "3",
                   "--engine", "event", "--seed", "2"])
        assert rc == 0

    def test_generate_sequential(self, capsys):
        rc = main(["generate", "-n", "80", "-x", "2", "--engine", "sequential",
                   "--seed", "2"])
        assert rc == 0


class TestValidateCommand:
    def test_valid_file(self, tmp_path, capsys):
        out = tmp_path / "g.bin"
        main(["generate", "-n", "200", "-x", "2", "-P", "2", "--seed", "3",
              "-o", str(out)])
        rc = main(["validate", str(out), "-n", "200", "-x", "2"])
        assert rc == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_file(self, tmp_path, capsys):
        out = tmp_path / "g.bin"
        main(["generate", "-n", "200", "-x", "2", "-P", "2", "--seed", "3",
              "-o", str(out)])
        rc = main(["validate", str(out), "-n", "200", "-x", "3"])  # wrong x
        assert rc == 1
        assert "FAILED" in capsys.readouterr().err


class TestStats:
    def test_stats_output(self, tmp_path, capsys):
        out = tmp_path / "g.bin"
        main(["generate", "-n", "3000", "-x", "4", "-P", "4", "--seed", "4",
              "-o", str(out)])
        rc = main(["stats", str(out), "--k-min", "8"])
        assert rc == 0
        cap = capsys.readouterr().out
        assert "power-law fit" in cap
        assert "edges: 11990" in cap


class TestScalingCommand:
    def test_table_printed(self, capsys):
        rc = main(["scaling", "-n", "2000", "-x", "2", "--ranks", "1", "4",
                   "--schemes", "rrp"])
        assert rc == 0
        cap = capsys.readouterr().out
        assert "strong scaling" in cap
        assert "rrp" in cap


class TestChainsCommand:
    def test_within_bounds(self, capsys):
        rc = main(["chains", "-n", "50000", "--seed", "1"])
        assert rc == 0
        assert "within Theorem 3.3 bounds: True" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_n(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestOtherModels:
    def test_er(self, tmp_path, capsys):
        out = tmp_path / "er.bin"
        rc = main(["other", "--model", "er", "-n", "500", "-p", "0.02",
                   "-P", "4", "--seed", "0", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "G(n=500" in capsys.readouterr().out

    def test_rmat(self, capsys):
        rc = main(["other", "--model", "rmat", "--scale", "8", "-m", "2000",
                   "-P", "4", "--seed", "1"])
        assert rc == 0
        assert "R-MAT" in capsys.readouterr().out

    def test_chung_lu(self, capsys):
        rc = main(["other", "--model", "chung-lu", "-n", "500",
                   "--mean-degree", "6", "-P", "2", "--seed", "2"])
        assert rc == 0
        assert "Chung-Lu" in capsys.readouterr().out


class TestDegreeDist:
    def test_series_and_plot(self, tmp_path, capsys):
        out = tmp_path / "g.bin"
        main(["generate", "-n", "3000", "-x", "3", "-P", "4", "--seed", "5",
              "-o", str(out)])
        rc = main(["degree-dist", str(out), "--plot"])
        assert rc == 0
        cap = capsys.readouterr().out
        assert "log-binned degree distribution" in cap
        assert "*" in cap


class TestCheckpointFlag:
    def test_checkpoint_written(self, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        rc = main(["generate", "-n", "2000", "-x", "3", "-P", "4",
                   "--seed", "6", "--checkpoint", str(ckpt)])
        assert rc == 0
        assert ckpt.exists()
        from repro.mpsim.checkpoint import load_checkpoint

        assert load_checkpoint(ckpt).size == 4


class TestAnalyze:
    def test_distributed_analysis(self, tmp_path, capsys):
        out = tmp_path / "g.bin"
        main(["generate", "-n", "800", "-x", "2", "-P", "4", "--seed", "7",
              "-o", str(out)])
        rc = main(["analyze", str(out), "-n", "800", "-P", "4",
                   "--pagerank-iters", "10"])
        assert rc == 0
        cap = capsys.readouterr().out
        assert "BFS from 0" in cap
        assert "components: 1" in cap
        assert "top PageRank nodes" in cap

    def test_ecp_scheme_accepted(self, capsys):
        rc = main(["generate", "-n", "500", "-x", "2", "-P", "4",
                   "--scheme", "ecp", "--seed", "8", "--validate"])
        assert rc == 0


class TestTelemetryCLI:
    def test_trace_and_metrics_out_then_inspect(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        prom = tmp_path / "run.prom"
        rc = main(["generate", "-n", "1500", "-P", "4", "--engine", "mp",
                   "--seed", "5", "--trace-out", str(trace),
                   "--metrics-out", str(prom)])
        assert rc == 0
        cap = capsys.readouterr().out
        assert "wrote trace" in cap and "wrote metrics" in cap

        from repro.telemetry.export import load_chrome_trace, validate_chrome_trace

        assert validate_chrome_trace(load_chrome_trace(trace)) == []
        assert "mp_supersteps_total" in prom.read_text()

        rc = main(["inspect", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lane" in out and "barrier" in out

    def test_trace_out_with_pool(self, tmp_path, capsys):
        trace = tmp_path / "pool.trace.json"
        rc = main(["generate", "-n", "1000", "-P", "4", "--engine", "mp",
                   "--exchange", "p2p", "--pool", "--seed", "5",
                   "--trace-out", str(trace)])
        assert rc == 0
        from repro.telemetry.export import load_chrome_trace, validate_chrome_trace

        assert validate_chrome_trace(load_chrome_trace(trace)) == []

    def test_plain_generate_records_no_telemetry(self, capsys):
        rc = main(["generate", "-n", "200", "-P", "2", "--seed", "1"])
        assert rc == 0
        assert "wrote trace" not in capsys.readouterr().out

    def test_inspect_missing_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["inspect", str(tmp_path / "nope.trace.json")])
        assert rc == 1
        cap = capsys.readouterr()
        assert "no such trace file" in cap.err
        assert "Traceback" not in cap.err

    def test_inspect_corrupt_trace_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace.json"
        bad.write_text("{not json")
        rc = main(["inspect", str(bad)])
        assert rc == 1
        cap = capsys.readouterr()
        assert "not valid trace JSON" in cap.err
        assert "Traceback" not in cap.err


class TestExploreCLI:
    def test_clean_sweep_exits_zero(self, capsys):
        rc = main(["explore", "-n", "200", "-x", "1", "-P", "4",
                   "--engine", "bsp", "--schedules", "6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "explored 6 random schedules" in out
        assert "all schedules agree" in out

    def test_divergent_sweep_then_replay(self, tmp_path, capsys):
        # the seeded order-sensitivity knob is not exposed on the CLI; drive
        # explore directly to produce an artifact, then replay it via the CLI
        from repro.schedsim import explore

        rep = explore(
            {"n": 300, "x": 3, "p": 0.5, "ranks": 4, "scheme": "ecp",
             "seed": 7, "engine": "bsp", "knobs": {"canonical_inbox": False}},
            policy="random", schedules=16, artifact_dir=str(tmp_path),
        )
        assert not rep.ok
        art = rep.divergences[0].artifact
        rc = main(["explore", "--replay", art])
        assert rc == 0
        assert "reproduced" in capsys.readouterr().out

    def test_replay_missing_artifact_fails_cleanly(self, tmp_path, capsys):
        rc = main(["explore", "--replay", str(tmp_path / "gone.json")])
        assert rc == 1
        assert "no such artifact" in capsys.readouterr().err

    def test_crash_rank_requires_trigger(self, capsys):
        rc = main(["explore", "-n", "200", "-x", "1", "--crash-rank", "1"])
        assert rc == 2
        assert "--crash-superstep or --crash-time" in capsys.readouterr().err

    def test_crash_plan_sweep(self, capsys):
        rc = main(["explore", "-n", "200", "-x", "1", "-P", "4",
                   "--engine", "bsp", "--schedules", "4",
                   "--crash-rank", "2", "--crash-superstep", "2"])
        assert rc == 0
        assert "RankFailure(rank=2)" in capsys.readouterr().out


class TestLivenessPollFlag:
    def test_generate_mp_accepts_liveness_poll(self, capsys):
        rc = main(["generate", "-n", "1000", "-P", "4", "--engine", "mp",
                   "--seed", "5", "--liveness-poll", "0.05"])
        assert rc == 0

    def test_pool_accepts_liveness_poll(self, capsys):
        rc = main(["generate", "-n", "1000", "-P", "4", "--engine", "mp",
                   "--pool", "--seed", "5", "--liveness-poll", "0.05"])
        assert rc == 0


class TestCommfreeCLI:
    def test_generate_commfree_default_engine(self, tmp_path, capsys):
        out = tmp_path / "g.bin"
        rc = main(["generate", "-n", "500", "--generator", "commfree",
                   "--seed", "1", "--validate", "-o", str(out)])
        assert rc == 0
        assert out.exists()
        assert "validation: ok" in capsys.readouterr().out

    def test_commfree_matches_library_output(self, tmp_path, capsys):
        from repro.core.commfree import commfree
        from repro.graph.io import read_edges_binary

        out = tmp_path / "g.bin"
        rc = main(["generate", "-n", "400", "-x", "3", "-P", "2",
                   "--generator", "commfree", "--engine", "mp",
                   "--seed", "9", "-o", str(out)])
        assert rc == 0
        assert read_edges_binary(out) == commfree(400, x=3, seed=9)

    @pytest.mark.parametrize("extra,fragment", [
        (["--inject-faults", "1"], "no distributed state to crash"),
        (["--checkpoint-dir", "unused"], "nothing to snapshot"),
        (["--pool", "--engine", "mp"], "drop --pool"),
        (["--engine", "event"], "nothing to simulate"),
    ])
    def test_meaningless_flags_rejected(self, extra, fragment, capsys):
        rc = main(["generate", "-n", "100", "--generator", "commfree",
                   "--seed", "1", *extra])
        assert rc == 2
        assert fragment in capsys.readouterr().err


class TestEvolveCLI:
    def test_evolve_snapshot_inspect_roundtrip(self, tmp_path, capsys):
        snaps = tmp_path / "snaps"
        out = tmp_path / "evolved.bin"
        rc = main(["evolve", "-n", "300", "-x", "2", "--engine", "bsp",
                   "-P", "3", "--epochs", "4", "--seed", "3",
                   "--snapshot-dir", str(snaps), "-o", str(out)])
        assert rc == 0
        assert out.exists()
        run_out = capsys.readouterr().out
        assert "evolved n=300" in run_out
        assert "wrote 5 snapshots" in run_out

        rc = main(["evolve", "--inspect", str(snaps)])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 5
        assert lines[0].startswith("epoch")
        assert all("digest=" in line for line in lines)

    def test_evolve_deterministic_digest(self, capsys):
        digests = []
        for _ in range(2):
            rc = main(["evolve", "-n", "200", "--epochs", "3", "--seed", "5"])
            assert rc == 0
            out = capsys.readouterr().out
            digests.append(out.rsplit("digest ", 1)[1].strip())
        assert digests[0] == digests[1]

    def test_evolve_departure_faults(self, tmp_path, capsys):
        rc = main(["evolve", "-n", "200", "--engine", "bsp", "-P", "2",
                   "--epochs", "3", "--seed", "7",
                   "--checkpoint-dir", str(tmp_path / "ckpt"),
                   "--departure-faults"])
        assert rc == 0
        assert "recoveries:" in capsys.readouterr().out

    def test_inspect_missing_dir_fails_cleanly(self, tmp_path, capsys):
        rc = main(["evolve", "--inspect", str(tmp_path / "nope")])
        assert rc == 1
        assert "no snapshot manifest" in capsys.readouterr().err

    @pytest.mark.parametrize("extra,fragment", [
        (["-P", "2"], "one rank"),
        (["--departure-faults", "--engine", "bsp", "-P", "2"],
         "--checkpoint-dir"),
        (["--departure-faults", "--engine", "bsp", "-P", "1",
          "--checkpoint-dir", "unused"], "-P >= 2"),
    ])
    def test_invalid_combinations_rejected(self, extra, fragment, capsys):
        rc = main(["evolve", "-n", "100", "--epochs", "2", *extra])
        assert rc == 2
        assert fragment in capsys.readouterr().err
