"""Acceptance tests: the paper's headline claims, one assertion each.

Every claim here is covered more thoroughly elsewhere (see the experiment
index in DESIGN.md); this module is the executive summary a reviewer can
run in under a minute:

    pytest tests/test_paper_claims.py -v
"""

import numpy as np
import pytest

from repro import generate
from repro.core.chains import chain_statistics
from repro.core.partitioning import make_partition


class TestExactness:
    """Claim: 'the first distributed-memory parallel algorithms for
    generating random graphs following the preferential attachment model
    *exactly*.'"""

    def test_degree_law_is_exact_ba(self):
        from repro.graph.theory import ba_chi_square_gof

        r = generate(30_000, x=3, ranks=12, scheme="rrp", seed=0)
        _, pvalue = ba_chi_square_gof(r.degrees(), 3)
        assert pvalue > 1e-3

    def test_prior_art_is_not_exact(self):
        from repro.baselines import yoo_henderson
        from repro.graph.degree import degrees_from_edges
        from repro.graph.theory import ba_chi_square_gof

        deg = degrees_from_edges(
            yoo_henderson(30_000, x=3, ranks=8, sync_interval=1024, seed=0), 30_000
        )
        _, pvalue = ba_chi_square_gof(deg, 3)
        assert pvalue < 1e-4


class TestStructure:
    """Claim: the algorithm avoids duplicate edges and handles the
    dependencies exactly (Sections 3.2-3.3)."""

    @pytest.mark.parametrize("scheme", ["ucp", "lcp", "rrp"])
    def test_structural_invariants(self, scheme):
        r = generate(5_000, x=5, ranks=16, scheme=scheme, seed=1)
        r.validate().raise_if_failed()


class TestDependencyChains:
    """Claim (Theorem 3.3): chains are O(log n); average <= 1/p."""

    def test_bounds(self):
        st = chain_statistics(500_000, p=0.5, seed=2)
        assert st.mean == pytest.approx(2.0, rel=0.05)
        assert st.max <= 5 * np.log(500_000)

    def test_rounds_follow_chains(self):
        r = generate(100_000, x=1, ranks=16, scheme="rrp", seed=3)
        assert r.supersteps <= 6 * np.log(100_000)


class TestScalability:
    """Claim (Figures 5-6): near-linear speedup; LCP/RRP beat UCP."""

    def test_speedup_and_scheme_ordering(self):
        from repro.bench.scaling import strong_scaling

        curves = strong_scaling(30_000, 6, [8, 64], schemes=("ucp", "rrp"), seed=4)
        rrp8, rrp64 = (pt.speedup for pt in curves["rrp"])
        assert rrp64 > 4 * rrp8 * 0.8          # near-linear: ~8x ranks -> ~8x
        assert rrp64 > curves["ucp"][1].speedup  # RRP beats UCP


class TestLoadBalance:
    """Claim (Figure 7 / Section 4.6): RRP nearly perfect, UCP poor."""

    def test_imbalance_ordering(self):
        res = {
            scheme: generate(20_000, x=10, ranks=40, scheme=scheme, seed=5)
            for scheme in ("ucp", "lcp", "rrp")
        }
        assert res["rrp"].imbalance < 1.1
        assert res["rrp"].imbalance <= res["lcp"].imbalance <= res["ucp"].imbalance
        assert res["ucp"].imbalance > 1.4

    def test_lemma_34_rank0_hotspot(self):
        r = generate(20_000, x=4, ranks=20, scheme="ucp", seed=6)
        assert r.requests_received[0] > 2 * r.requests_received[-1]
        assert r.requests_sent[0] == 0


class TestBuffering:
    """Claim (Section 3.5.2): careless resolved-message buffering under RRP
    can deadlock; the flush rule prevents it."""

    def test_hazard_and_fix(self):
        from repro.core.event_driven import run_event_driven_pa_x1
        from repro.mpsim.errors import DeadlockError

        part = make_partition("rrp", 400, 8)
        hazard_seen = False
        for seed in range(3):
            try:
                run_event_driven_pa_x1(
                    400, part, seed=seed, buffer_capacity=1 << 20, flush_on_idle=False
                )
            except DeadlockError:
                hazard_seen = True
        assert hazard_seen
        edges, _ = run_event_driven_pa_x1(
            400, part, seed=0, buffer_capacity=1 << 20, flush_on_idle=True
        )
        assert len(edges) == 399


class TestPowerLaw:
    """Claim (Figure 4): heavy-tailed power law, gamma near 2.7."""

    def test_gamma_window(self):
        from repro.graph.powerlaw import fit_powerlaw

        r = generate(60_000, x=4, ranks=16, seed=7)
        fit = fit_powerlaw(r.degrees(), k_min=8)
        assert 2.4 < fit.gamma < 3.4
        assert r.degrees().max() > 50 * r.degrees().mean()
