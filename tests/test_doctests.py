"""Run every module's docstring examples as part of the suite.

Documentation that executes is documentation that stays true; each public
module carries Examples sections, and this collector keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


@pytest.mark.parametrize("module_name", sorted(_iter_modules()))
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
