"""Tests for Algorithm 3.2 (x >= 1) on the BSP engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel_pa_general import run_parallel_pa
from repro.core.partitioning import make_partition
from repro.graph.degree import degrees_from_edges
from repro.graph.validation import validate_pa_graph

SCHEMES = ["ucp", "lcp", "rrp"]


@pytest.mark.parametrize("scheme", SCHEMES)
class TestCorrectness:
    @pytest.mark.parametrize("n,x,P", [(100, 2, 4), (500, 5, 8), (300, 10, 3), (64, 3, 64)])
    def test_valid_structure(self, scheme, n, x, P):
        part = make_partition(scheme, n, P)
        edges, _, _ = run_parallel_pa(n, x, part, seed=0)
        report = validate_pa_graph(edges, n, x)
        assert report.ok, report.errors

    def test_deterministic(self, scheme):
        part = make_partition(scheme, 400, 8)
        a, _, _ = run_parallel_pa(400, 3, part, seed=11)
        b, _, _ = run_parallel_pa(400, 3, part, seed=11)
        assert a == b

    def test_single_rank(self, scheme):
        part = make_partition(scheme, 300, 1)
        edges, engine, _ = run_parallel_pa(300, 4, part, seed=1)
        assert engine.stats.total_messages == 0
        assert validate_pa_graph(edges, 300, 4).ok


class TestEdgeSemantics:
    def test_clique_present(self):
        n, x = 200, 5
        part = make_partition("rrp", n, 7)
        edges, _, _ = run_parallel_pa(n, x, part, seed=2)
        canon = {tuple(row) for row in edges.canonical().tolist()}
        for i in range(x):
            for j in range(i + 1, x):
                assert (i, j) in canon

    def test_node_x_attaches_to_clique(self):
        n, x = 100, 4
        part = make_partition("ucp", n, 5)
        edges, _, _ = run_parallel_pa(n, x, part, seed=3)
        targets = sorted(
            int(v) for u, v in zip(edges.sources, edges.targets) if u == x
        )
        assert targets == list(range(x))

    def test_all_attachments_point_backwards(self):
        n, x = 300, 3
        part = make_partition("rrp", n, 6)
        edges, _, _ = run_parallel_pa(n, x, part, seed=4)
        hi = np.maximum(edges.sources, edges.targets)
        lo = np.minimum(edges.sources, edges.targets)
        assert (lo < hi).all()

    def test_x_distinct_targets_per_node(self):
        n, x = 500, 6
        part = make_partition("lcp", n, 9)
        edges, _, _ = run_parallel_pa(n, x, part, seed=5)
        from collections import defaultdict

        targets = defaultdict(set)
        for u, v in zip(edges.sources.tolist(), edges.targets.tolist()):
            hi, lo = max(u, v), min(u, v)
            targets[hi].add(lo)
        for t in range(x, n):
            assert len(targets[t]) == x


class TestRetryBehaviour:
    def test_retries_occur_but_bounded(self):
        """Small ranges (t near x) force duplicate retries; they stay modest."""
        n, x = 400, 8
        part = make_partition("rrp", n, 8)
        _, _, programs = run_parallel_pa(n, x, part, seed=6)
        total_retries = sum(p.retries for p in programs)
        assert total_retries > 0
        assert total_retries < n * x  # far fewer retries than slots

    def test_x1_general_path_matches_specialised(self):
        """run_parallel_pa with x=1 produces a valid x=1 graph too."""
        n = 300
        part = make_partition("rrp", n, 4)
        edges, _, _ = run_parallel_pa(n, 1, part, seed=7)
        assert validate_pa_graph(edges, n, 1).ok


class TestDistribution:
    def test_degree_tail_matches_sequential(self):
        from repro.seq.copy_model import copy_model

        n, x = 20_000, 4
        part = make_partition("rrp", n, 10)
        par_edges, _, _ = run_parallel_pa(n, x, part, seed=8)
        seq_edges = copy_model(n, x=x, seed=9)
        d_par = degrees_from_edges(par_edges, n)
        d_seq = degrees_from_edges(seq_edges, n)
        for threshold in (8, 16, 32):
            assert abs(
                (d_par >= threshold).mean() - (d_seq >= threshold).mean()
            ) < 0.01, threshold

    def test_min_degree_is_x(self):
        n, x = 5000, 5
        part = make_partition("rrp", n, 8)
        edges, _, _ = run_parallel_pa(n, x, part, seed=10)
        deg = degrees_from_edges(edges, n)
        assert deg.min() == x

    @given(n=st.integers(min_value=10, max_value=200),
           x=st.integers(min_value=2, max_value=5),
           P=st.integers(min_value=1, max_value=8),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_always_valid(self, n, x, P, seed):
        if n <= x:
            n = x + 2
        P = min(P, n)
        part = make_partition("rrp", n, P)
        edges, _, _ = run_parallel_pa(n, x, part, seed=seed)
        report = validate_pa_graph(edges, n, x)
        assert report.ok, report.errors


class TestErrors:
    def test_x_too_large(self):
        part = make_partition("rrp", 5, 2)
        with pytest.raises(ValueError):
            run_parallel_pa(5, 5, part, seed=0)

    def test_partition_mismatch(self):
        part = make_partition("rrp", 100, 4)
        with pytest.raises(ValueError, match="partition covers"):
            run_parallel_pa(50, 2, part, seed=0)
