"""Tests for per-destination message buffering."""

import pytest

from repro.core.buffers import FLUSH_EVERY_GROUP, FLUSH_WHEN_FULL, MessageBuffers


class TestAddAndFlush:
    def test_add_below_capacity_buffers(self):
        mb = MessageBuffers(4, capacity=3)
        assert mb.add(1, "a") is None
        assert mb.add(1, "b") is None
        assert mb.pending(1) == 2

    def test_add_at_capacity_flushes(self):
        mb = MessageBuffers(4, capacity=2)
        assert mb.add(2, "a") is None
        batch = mb.add(2, "b")
        assert batch == ["a", "b"]
        assert mb.pending(2) == 0

    def test_flush_empties(self):
        mb = MessageBuffers(2, capacity=10)
        mb.add(0, 1)
        assert mb.flush(0) == [1]
        assert mb.flush(0) == []

    def test_flush_all_only_nonempty(self):
        mb = MessageBuffers(4, capacity=10)
        mb.add(1, "x")
        mb.add(3, "y")
        flushed = dict(mb.flush_all())
        assert flushed == {1: ["x"], 3: ["y"]}
        assert mb.pending() == 0

    def test_counters(self):
        mb = MessageBuffers(2, capacity=2)
        mb.add(0, 1)
        mb.add(0, 2)  # flush 1
        mb.add(1, 3)
        list(mb.flush_all())  # flush 2
        assert mb.flush_count == 2
        assert mb.record_count == 3

    def test_order_preserved(self):
        mb = MessageBuffers(2, capacity=100)
        for i in range(10):
            mb.add(0, i)
        assert mb.flush(0) == list(range(10))


class TestValidation:
    def test_bad_dest(self):
        mb = MessageBuffers(2)
        with pytest.raises(ValueError):
            mb.add(5, "x")

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            MessageBuffers(0)
        with pytest.raises(ValueError):
            MessageBuffers(2, capacity=0)
        with pytest.raises(ValueError):
            MessageBuffers(2, policy="whenever")


class TestPolicy:
    def test_group_flush_flag(self):
        assert MessageBuffers(2, policy=FLUSH_EVERY_GROUP).needs_group_flush()
        assert not MessageBuffers(2, policy=FLUSH_WHEN_FULL).needs_group_flush()

    def test_repr(self):
        mb = MessageBuffers(2, capacity=5)
        mb.add(0, 1)
        assert "pending=1" in repr(mb)
