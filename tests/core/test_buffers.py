"""Tests for per-destination message buffering."""

import pytest

from repro.core.buffers import FLUSH_EVERY_GROUP, FLUSH_WHEN_FULL, MessageBuffers


class TestAddAndFlush:
    def test_add_below_capacity_buffers(self):
        mb = MessageBuffers(4, capacity=3)
        assert mb.add(1, "a") is None
        assert mb.add(1, "b") is None
        assert mb.pending(1) == 2

    def test_add_at_capacity_flushes(self):
        mb = MessageBuffers(4, capacity=2)
        assert mb.add(2, "a") is None
        batch = mb.add(2, "b")
        assert batch == ["a", "b"]
        assert mb.pending(2) == 0

    def test_flush_empties(self):
        mb = MessageBuffers(2, capacity=10)
        mb.add(0, 1)
        assert mb.flush(0) == [1]
        assert mb.flush(0) == []

    def test_flush_all_only_nonempty(self):
        mb = MessageBuffers(4, capacity=10)
        mb.add(1, "x")
        mb.add(3, "y")
        flushed = dict(mb.flush_all())
        assert flushed == {1: ["x"], 3: ["y"]}
        assert mb.pending() == 0

    def test_counters(self):
        mb = MessageBuffers(2, capacity=2)
        mb.add(0, 1)
        mb.add(0, 2)  # flush 1
        mb.add(1, 3)
        list(mb.flush_all())  # flush 2
        assert mb.flush_count == 2
        assert mb.record_count == 3

    def test_order_preserved(self):
        mb = MessageBuffers(2, capacity=100)
        for i in range(10):
            mb.add(0, i)
        assert mb.flush(0) == list(range(10))


class TestValidation:
    def test_bad_dest(self):
        mb = MessageBuffers(2)
        with pytest.raises(ValueError):
            mb.add(5, "x")

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            MessageBuffers(0)
        with pytest.raises(ValueError):
            MessageBuffers(2, capacity=0)
        with pytest.raises(ValueError):
            MessageBuffers(2, policy="whenever")


class TestPolicy:
    def test_group_flush_flag(self):
        assert MessageBuffers(2, policy=FLUSH_EVERY_GROUP).needs_group_flush()
        assert not MessageBuffers(2, policy=FLUSH_WHEN_FULL).needs_group_flush()


class TestAccounting:
    """flush_count / record_count bookkeeping under both flush policies."""

    @pytest.mark.parametrize("policy", [FLUSH_WHEN_FULL, FLUSH_EVERY_GROUP])
    def test_record_count_is_total_adds(self, policy):
        mb = MessageBuffers(3, capacity=4, policy=policy)
        for i in range(25):
            mb.add(i % 3, i)
        assert mb.record_count == 25

    def test_when_full_counts_capacity_flushes(self):
        mb = MessageBuffers(2, capacity=3, policy=FLUSH_WHEN_FULL)
        drained = 0
        for i in range(10):  # dest 0 fills at records 3, 6, 9
            batch = mb.add(0, i)
            if batch is not None:
                assert len(batch) == 3
                drained += len(batch)
        assert mb.flush_count == 3
        drained += sum(len(b) for _, b in mb.flush_all())
        assert mb.flush_count == 4  # final partial batch of 1
        assert drained == mb.record_count == 10

    def test_every_group_flush_all_after_each_group(self):
        """RRP resolved-message discipline: drain after every group; every
        drained record is accounted for exactly once."""
        mb = MessageBuffers(4, capacity=1000, policy=FLUSH_EVERY_GROUP)
        drained = 0
        for group in range(5):
            for i in range(group + 1):  # uneven groups across dests
                mb.add(i % 4, (group, i))
            assert mb.needs_group_flush()
            for _dest, batch in mb.flush_all():
                drained += len(batch)
            assert mb.pending() == 0
        assert drained == mb.record_count == 5 + 4 + 3 + 2 + 1
        # one flush per non-empty buffer per group
        assert mb.flush_count == 1 + 2 + 3 + 4 + 4

    @pytest.mark.parametrize("policy", [FLUSH_WHEN_FULL, FLUSH_EVERY_GROUP])
    def test_empty_flushes_not_counted(self, policy):
        mb = MessageBuffers(2, capacity=2, policy=policy)
        mb.flush(0)
        list(mb.flush_all())
        assert mb.flush_count == 0 and mb.record_count == 0

    def test_repr(self):
        mb = MessageBuffers(2, capacity=5)
        mb.add(0, 1)
        assert "pending=1" in repr(mb)
