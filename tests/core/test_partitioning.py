"""Tests for UCP / LCP / RRP node partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitioning import (
    ExactPartition,
    LinearPartition,
    RoundRobinPartition,
    UniformPartition,
    make_partition,
)

ALL_SCHEMES = ["ucp", "lcp", "rrp", "ecp"]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestPartitionContract:
    """Invariants every scheme must satisfy (Appendix A's three queries)."""

    @pytest.mark.parametrize("n,P", [(10, 1), (100, 7), (1000, 16), (64, 64)])
    def test_partitions_cover_disjointly(self, scheme, n, P):
        part = make_partition(scheme, n, P)
        seen = np.concatenate([part.partition_nodes(r) for r in range(P)])
        assert len(seen) == n
        assert np.array_equal(np.sort(seen), np.arange(n))

    @pytest.mark.parametrize("n,P", [(100, 7), (1000, 16)])
    def test_owner_inverse_of_partition_nodes(self, scheme, n, P):
        part = make_partition(scheme, n, P)
        for r in range(P):
            nodes = part.partition_nodes(r)
            assert (np.asarray(part.owner(nodes)) == r).all()

    @pytest.mark.parametrize("n,P", [(100, 7), (513, 8)])
    def test_local_index_is_position(self, scheme, n, P):
        part = make_partition(scheme, n, P)
        for r in range(P):
            nodes = part.partition_nodes(r)
            idx = np.asarray(part.local_index(r, nodes))
            assert np.array_equal(idx, np.arange(len(nodes)))

    def test_scalar_owner(self, scheme):
        part = make_partition(scheme, 100, 4)
        o = part.owner(17)
        assert isinstance(o, int)
        assert 17 in part.partition_nodes(o)

    def test_sizes_sum_to_n(self, scheme):
        part = make_partition(scheme, 997, 13)
        assert part.sizes().sum() == 997

    def test_invalid_rank_queries(self, scheme):
        part = make_partition(scheme, 10, 2)
        with pytest.raises(ValueError):
            part.partition_nodes(2)
        with pytest.raises(ValueError):
            part.partition_size(-1)

    def test_invalid_construction(self, scheme):
        with pytest.raises(ValueError):
            make_partition(scheme, 0, 1)
        with pytest.raises(ValueError):
            make_partition(scheme, 10, 0)
        with pytest.raises(ValueError):
            make_partition(scheme, 4, 8)  # more ranks than nodes

    @given(n=st.integers(min_value=1, max_value=2000),
           P=st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_cover_property(self, scheme, n, P):
        if P > n:
            P = n
        part = make_partition(scheme, n, P)
        owners = np.asarray(part.owner(np.arange(n)))
        sizes = np.bincount(owners, minlength=P)
        assert np.array_equal(sizes, part.sizes())


class TestUniform:
    def test_block_structure(self):
        part = UniformPartition(10, 3)  # B = 4
        assert np.array_equal(part.partition_nodes(0), [0, 1, 2, 3])
        assert np.array_equal(part.partition_nodes(2), [8, 9])

    def test_owner_closed_form(self):
        part = UniformPartition(100, 7)
        assert part.owner(0) == 0
        assert part.owner(99) == 99 // part.B

    def test_balanced_within_one(self):
        sizes = UniformPartition(1000, 7).sizes()
        assert sizes.max() - sizes.min() <= 1 or sizes.min() == 0


class TestLinear:
    def test_sizes_increase_with_rank(self):
        part = LinearPartition(100_000, 16)
        sizes = part.sizes()
        # LCP gives low ranks fewer nodes (they receive more messages)
        assert sizes[0] < sizes[-1]
        assert (np.diff(sizes) >= -1).all()  # monotone up to rounding

    def test_closed_form_owner_close_to_exact(self):
        part = LinearPartition(50_000, 16)
        u = np.arange(50_000)
        exact = np.asarray(part.owner(u))
        closed = np.asarray(part.owner_closed_form(u))
        assert np.abs(exact - closed).max() <= 1

    def test_single_rank(self):
        part = LinearPartition(100, 1)
        assert part.partition_size(0) == 100

    def test_custom_b(self):
        a = LinearPartition(10_000, 8, b=1.0).sizes()
        b = LinearPartition(10_000, 8, b=10.0).sizes()
        # larger b = more constant work per node = flatter distribution
        assert (b.max() - b.min()) < (a.max() - a.min())


class TestRoundRobin:
    def test_stride_structure(self):
        part = RoundRobinPartition(10, 3)
        assert np.array_equal(part.partition_nodes(0), [0, 3, 6, 9])
        assert np.array_equal(part.partition_nodes(1), [1, 4, 7])

    def test_owner_is_mod(self):
        part = RoundRobinPartition(100, 7)
        u = np.arange(100)
        assert np.array_equal(np.asarray(part.owner(u)), u % 7)

    def test_balanced_within_one(self):
        sizes = RoundRobinPartition(1000, 7).sizes()
        assert sizes.max() - sizes.min() <= 1


class TestFactory:
    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_partition("nope", 10, 2)

    def test_case_insensitive(self):
        assert isinstance(make_partition("RRP", 10, 2), RoundRobinPartition)

    def test_repr(self):
        assert "n=10" in repr(make_partition("ucp", 10, 2))


class TestExact:
    def test_balances_better_than_lcp(self):
        """ECP equalises the analytic load strictly better than LCP."""
        from repro.core.load_model import consecutive_partition_load

        n, P = 200_000, 32
        loads = {}
        for cls in (LinearPartition, ExactPartition):
            part = cls(n, P)
            b = part.boundaries.astype(float)
            per = np.array([
                consecutive_partition_load(b[i], b[i + 1], n) for i in range(P)
            ])
            loads[cls.scheme] = per.max() / per.mean()
        assert loads["ecp"] < loads["lcp"]
        assert loads["ecp"] < 1.01

    def test_generates_valid_graphs(self):
        from repro import generate

        r = generate(3000, x=3, ranks=8, scheme="ecp", seed=0)
        assert r.validate().ok

    def test_sizes_increase_with_rank(self):
        sizes = ExactPartition(50_000, 16).sizes()
        assert sizes[0] < sizes[-1]

    def test_single_rank(self):
        part = ExactPartition(100, 1)
        assert part.partition_size(0) == 100

    def test_measured_load_beats_ucp(self):
        """End-to-end: ECP's measured total-load imbalance beats UCP's."""
        from repro import generate

        ecp = generate(20_000, x=4, ranks=16, scheme="ecp", seed=1)
        ucp = generate(20_000, x=4, ranks=16, scheme="ucp", seed=1)
        assert ecp.imbalance < ucp.imbalance
