"""Tests for the parallel ER and Chung–Lu generators (future-work extension)."""

import numpy as np
import pytest

from repro.core.parallel_er import run_parallel_chung_lu, run_parallel_er


class TestParallelER:
    def test_communication_free(self):
        _, engine, _ = run_parallel_er(500, 0.02, ranks=8, seed=0)
        assert engine.stats.total_messages == 0

    def test_simple_graph(self):
        edges, _, _ = run_parallel_er(400, 0.05, ranks=4, seed=1)
        assert not edges.has_duplicates()
        assert not edges.has_self_loops()

    def test_edge_count_within_ci(self):
        n, p = 1500, 0.01
        edges, _, _ = run_parallel_er(n, p, ranks=8, seed=2)
        mean = p * n * (n - 1) / 2
        sd = np.sqrt(mean * (1 - p))
        assert abs(len(edges) - mean) < 5 * sd

    @pytest.mark.parametrize("ranks", [1, 2, 7, 16])
    def test_rank_count_does_not_bias(self, ranks):
        """Different rank counts partition the pair space differently but
        sample the same distribution."""
        n, p, reps = 500, 0.03, 5
        total = sum(
            len(run_parallel_er(n, p, ranks=ranks, seed=s)[0]) for s in range(reps)
        )
        mean = reps * p * n * (n - 1) / 2
        assert abs(total - mean) < 5 * np.sqrt(mean)

    def test_p_extremes(self):
        n = 60
        empty, _, _ = run_parallel_er(n, 0.0, ranks=4, seed=0)
        assert len(empty) == 0
        full, _, _ = run_parallel_er(n, 1.0, ranks=4, seed=0)
        assert len(full) == n * (n - 1) // 2
        assert not full.has_duplicates()

    def test_ranks_partition_pair_space_disjointly(self):
        n = 80
        edges, _, programs = run_parallel_er(n, 1.0, ranks=5, seed=0)
        spans = [(p.lo, p.hi) for p in programs]
        assert spans[0][0] == 0
        assert spans[-1][1] == n * (n - 1) // 2
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            run_parallel_er(10, 0.5, ranks=0)
        with pytest.raises(ValueError):
            run_parallel_er(10, 1.5, ranks=2)

    def test_deterministic(self):
        a, _, _ = run_parallel_er(300, 0.05, ranks=4, seed=9)
        b, _, _ = run_parallel_er(300, 0.05, ranks=4, seed=9)
        assert a == b


class TestParallelChungLu:
    def test_communication_free_and_simple(self):
        w = np.full(400, 6.0)
        edges, engine, _ = run_parallel_chung_lu(w, ranks=4, seed=0)
        assert engine.stats.total_messages == 0
        assert not edges.has_duplicates()
        assert not edges.has_self_loops()

    def test_edge_count_tracks_expected(self):
        n, wv = 1200, 8.0
        edges, _, _ = run_parallel_chung_lu(np.full(n, wv), ranks=8, seed=1)
        expected = wv * n / 2
        assert abs(len(edges) - expected) < 5 * np.sqrt(expected)

    def test_degrees_track_weights(self):
        from repro.graph.degree import degrees_from_edges

        n = 2500
        w = np.ones(n)
        w[:25] = 60.0
        edges, _, _ = run_parallel_chung_lu(w, ranks=6, seed=2)
        deg = degrees_from_edges(edges, n)
        assert deg[:25].mean() > 10 * deg[25:].mean()

    def test_matches_sequential_distribution(self):
        from repro.seq.chung_lu import chung_lu

        n, wv, reps = 800, 6.0, 4
        par = sum(len(run_parallel_chung_lu(np.full(n, wv), ranks=4, seed=s)[0])
                  for s in range(reps))
        seq = sum(len(chung_lu(np.full(n, wv), seed=100 + s)) for s in range(reps))
        assert abs(par - seq) < 6 * np.sqrt(max(par, seq))

    def test_degenerate_inputs(self):
        assert len(run_parallel_chung_lu(np.zeros(50), ranks=4, seed=0)[0]) == 0
        assert len(run_parallel_chung_lu(np.array([3.0]), ranks=1, seed=0)[0]) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            run_parallel_chung_lu(np.array([-1.0]), ranks=1)
        with pytest.raises(ValueError):
            run_parallel_chung_lu(np.ones((2, 2)), ranks=1)
        with pytest.raises(ValueError):
            run_parallel_chung_lu(np.ones(5), ranks=0)
