"""Tests for selection/dependency chains (Section 3.4, Lemma 3.1, Thm 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chains import (
    chain_statistics,
    dependency_chain_lengths,
    dependency_chains,
    draw_attachment_variates,
    selection_chain,
    selection_chain_lengths,
)


class TestDraws:
    def test_shapes_and_ranges(self):
        k, direct = draw_attachment_variates(1000, seed=0)
        assert len(k) == len(direct) == 1000
        ts = np.arange(2, 1000)
        assert (k[2:] >= 1).all()
        assert (k[2:] < ts).all()
        assert direct[1]

    def test_p_one_all_direct(self):
        _, direct = draw_attachment_variates(500, p=1.0, seed=1)
        assert direct[1:].all()

    def test_invalid(self):
        with pytest.raises(ValueError):
            draw_attachment_variates(0)
        with pytest.raises(ValueError):
            draw_attachment_variates(10, p=0.0)


class TestExplicitChains:
    def test_selection_chain_ends_at_one(self):
        k, _ = draw_attachment_variates(200, seed=2)
        for t in (5, 50, 199):
            chain = selection_chain(t, k)
            assert chain[0] == t
            assert chain[-1] == 1
            assert all(chain[i] > chain[i + 1] for i in range(len(chain) - 1))

    def test_dependency_is_prefix_of_selection(self):
        k, direct = draw_attachment_variates(200, seed=3)
        for t in range(2, 200):
            dep = dependency_chains(t, k, direct)
            sel = selection_chain(t, k)
            assert dep == sel[: len(dep)]
            assert direct[dep[-1]]

    def test_invalid_start(self):
        with pytest.raises(ValueError):
            selection_chain(0, np.zeros(5, dtype=np.int64))


class TestVectorisedLengths:
    @given(n=st.integers(min_value=2, max_value=500),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_matches_explicit_walk(self, n, seed):
        k, direct = draw_attachment_variates(n, seed=seed)
        dep_len = dependency_chain_lengths(k, direct)
        sel_len = selection_chain_lengths(k)
        for t in range(1, n):
            assert dep_len[t] == len(dependency_chains(t, k, direct))
            assert sel_len[t] == len(selection_chain(t, k))

    def test_dependency_never_exceeds_selection(self):
        k, direct = draw_attachment_variates(5000, seed=4)
        assert (dependency_chain_lengths(k, direct) <= selection_chain_lengths(k)).all()


class TestLemma31:
    def test_membership_probability_is_one_over_i(self):
        """Monte Carlo: P(i in S_t) = 1/i for i < t."""
        n, reps = 40, 4000
        t = n - 1
        counts = np.zeros(n)
        rng = np.random.default_rng(5)
        for _ in range(reps):
            k, _ = draw_attachment_variates(n, rng=rng)
            for node in selection_chain(t, k):
                counts[node] += 1
        for i in (1, 2, 4, 8, 16):
            est = counts[i] / reps
            expect = 1 / i
            sd = np.sqrt(expect * (1 - expect) / reps)
            assert abs(est - expect) < 5 * sd + 1e-9, (i, est, expect)

    def test_expected_selection_length_is_harmonic(self):
        """E|S_t| = 1 + H_{t-1}: check the empirical mean at a fixed t."""
        from repro.core.load_model import harmonic

        n, reps = 200, 1500
        rng = np.random.default_rng(6)
        total = 0
        for _ in range(reps):
            k, _ = draw_attachment_variates(n, rng=rng)
            total += len(selection_chain(n - 1, k))
        mean = total / reps
        expect = 1 + float(harmonic(n - 2))
        assert mean == pytest.approx(expect, rel=0.05)


class TestTheorem33:
    @pytest.mark.parametrize("n", [1000, 30_000, 300_000])
    def test_bounds_hold(self, n):
        st_ = chain_statistics(n, p=0.5, seed=7)
        assert st_.mean_within_bounds
        assert st_.max_within_bounds

    def test_mean_approaches_one_over_p(self):
        """For constant p the average chain length converges to 1/p."""
        for p in (0.3, 0.5, 0.8):
            st_ = chain_statistics(200_000, p=p, seed=8)
            assert st_.mean == pytest.approx(1 / p, rel=0.05)

    def test_max_grows_slowly(self):
        """L_max should grow like log n, i.e. gain only a few when n x100."""
        small = chain_statistics(1000, seed=9).max
        large = chain_statistics(100_000, seed=9).max
        assert large <= small + 15
        assert large <= 5 * np.log(100_000)

    def test_p_one_degenerate(self):
        st_ = chain_statistics(10_000, p=1.0, seed=10)
        assert st_.max == 1
        assert st_.mean == pytest.approx(1.0)

    def test_tiny_n(self):
        st_ = chain_statistics(1, seed=0)
        assert st_.mean == 0.0 and st_.max == 0
