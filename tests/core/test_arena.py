"""Tests for the arena wait queues and shared destination routing."""

import pickle
from collections import defaultdict

import numpy as np
import pytest

from repro.core.arena import ArrayArena, RecordQueue
from repro.core.routing import route_by_dest


class TestArrayArena:
    def test_push_and_view(self):
        a = ArrayArena(capacity=2)
        a.push(np.array([1, 2, 3]))
        a.push(np.array([4]))
        assert a.view().tolist() == [1, 2, 3, 4]
        assert len(a) == 4

    def test_growth_is_amortised(self):
        """Many small pushes trigger only O(log n) reallocations."""
        a = ArrayArena(capacity=1)
        caps = set()
        for i in range(5000):
            a.push(np.array([i]))
            caps.add(len(a._buf))
        assert a.view().tolist() == list(range(5000))
        # doubling from 1 to >=5000 passes through at most ~13 capacities
        assert len(caps) <= 15

    def test_keep_compacts(self):
        a = ArrayArena()
        a.push(np.arange(10))
        a.keep(np.arange(10) % 3 == 0)
        assert a.view().tolist() == [0, 3, 6, 9]

    def test_keep_empty_mask(self):
        a = ArrayArena()
        a.push(np.arange(4))
        a.keep(np.zeros(4, dtype=bool))
        assert len(a) == 0

    def test_clear(self):
        a = ArrayArena()
        a.push(np.arange(7))
        a.clear()
        assert len(a) == 0
        a.push(np.array([42]))
        assert a.view().tolist() == [42]

    def test_pickle_roundtrip_is_compact(self):
        a = ArrayArena(capacity=4096)
        a.push(np.arange(3))
        b = pickle.loads(pickle.dumps(a))
        assert b.view().tolist() == [0, 1, 2]
        # only the live prefix travels: restored capacity is the live size
        assert len(b._buf) == 3
        b.push(np.array([9]))
        assert b.view().tolist() == [0, 1, 2, 9]


class TestRecordQueue:
    def test_push_and_columns(self):
        q = RecordQueue(2, capacity=2)
        q.push(np.array([1, 2]), np.array([10, 20]))
        q.push(np.array([3]), np.array([30]))
        t, k = q.columns()
        assert t.tolist() == [1, 2, 3]
        assert k.tolist() == [10, 20, 30]
        assert q.column(1).tolist() == [10, 20, 30]
        assert len(q) == 3 and q.ncols == 2

    def test_keep_applies_to_all_columns(self):
        q = RecordQueue(3)
        q.push(np.arange(6), np.arange(6) * 10, np.arange(6) * 100)
        q.keep(np.arange(6) % 2 == 1)
        a, b, c = q.columns()
        assert a.tolist() == [1, 3, 5]
        assert b.tolist() == [10, 30, 50]
        assert c.tolist() == [100, 300, 500]

    def test_wrong_batch_count_raises(self):
        q = RecordQueue(2)
        with pytest.raises(ValueError):
            q.push(np.array([1]))

    def test_unequal_batch_lengths_raise(self):
        q = RecordQueue(2)
        with pytest.raises(ValueError):
            q.push(np.array([1, 2]), np.array([1]))

    def test_ncols_validation(self):
        with pytest.raises(ValueError):
            RecordQueue(0)

    def test_clear(self):
        q = RecordQueue(2)
        q.push(np.array([1]), np.array([2]))
        q.clear()
        assert len(q) == 0

    def test_pickle_roundtrip(self):
        q = RecordQueue(2)
        q.push(np.array([1, 2]), np.array([10, 20]))
        r = pickle.loads(pickle.dumps(q))
        assert [c.tolist() for c in r.columns()] == [[1, 2], [10, 20]]
        r.push(np.array([3]), np.array([30]))
        assert len(r) == 3


class TestRouteByDest:
    def test_groups_by_destination(self):
        out = defaultdict(list)
        records = np.array([10, 11, 12, 13, 14])
        dests = np.array([2, 0, 2, 1, 0])
        route_by_dest(out, records, dests)
        merged = {d: np.concatenate(chunks).tolist() for d, chunks in out.items()}
        assert merged == {0: [11, 14], 1: [13], 2: [10, 12]}

    def test_stable_within_destination(self):
        """Batch order is preserved inside each destination's chunk."""
        out = defaultdict(list)
        records = np.arange(100)
        dests = records % 3
        route_by_dest(out, records, dests)
        for d in range(3):
            got = np.concatenate(out[d])
            assert got.tolist() == sorted(got.tolist())

    def test_appends_to_existing_outbox(self):
        out = defaultdict(list)
        out[1].append(np.array([99]))
        route_by_dest(out, np.array([5]), np.array([1]))
        assert np.concatenate(out[1]).tolist() == [99, 5]

    def test_empty_records_is_noop(self):
        out = defaultdict(list)
        route_by_dest(out, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out == {}

    def test_structured_records(self):
        dtype = np.dtype([("t", "i8"), ("a", "i8")])
        rec = np.zeros(4, dtype=dtype)
        rec["t"] = [1, 2, 3, 4]
        out = defaultdict(list)
        route_by_dest(out, rec, np.array([1, 0, 1, 0]))
        assert np.concatenate(out[0])["t"].tolist() == [2, 4]
        assert np.concatenate(out[1])["t"].tolist() == [1, 3]
